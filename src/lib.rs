//! # ibsim
//!
//! Facade crate re-exporting the full `ibsim` workspace: a packet-level
//! InfiniBand Reliable Connection + On-Demand Paging simulator that
//! reproduces the ISPASS 2021 study *Pitfalls of InfiniBand with On-Demand
//! Paging* (Fukuoka, Sato, Taura).
//!
//! See the sub-crate docs for details:
//!
//! * [`event`] — deterministic discrete-event kernel,
//! * [`fabric`] — links, switch, LID routing, loss injection, capture,
//! * [`verbs`] — packets, memory regions, RC queue pairs, verbs API,
//! * [`odp`] — On-Demand Paging engine, device models, pitfall analysis,
//! * [`ucp`] — UCX-like messaging/RMA layer,
//! * [`dsm`] — ArgoDSM-like distributed shared memory,
//! * [`shuffle`] — SparkUCX-like shuffle engine,
//! * [`telemetry`] — metric registry, fault-lifecycle spans, exporters,
//! * [`perftest`] — `ib_read_lat`/`ib_read_bw`-style micro-benchmarks,
//! * [`analysis`] — RC trace linter, pitfall signature detectors, packet
//!   conservation, and the runtime invariant registry,
//! * [`scenario`] — seeded fault-schedule fuzzing with a differential RC
//!   oracle, a failing-seed minimizer, and a parallel conformance runner.
//!
//! Building with `--features checks` turns on runtime invariant checking
//! (QP state-machine legality, event-clock monotonicity) across the
//! stack; violations are counted, never panicking, and surface in the
//! usual counter reports.

#![warn(missing_docs)]

pub use ibsim_analysis as analysis;
pub use ibsim_dsm as dsm;
pub use ibsim_event as event;
pub use ibsim_fabric as fabric;
pub use ibsim_odp as odp;
pub use ibsim_perftest as perftest;
pub use ibsim_scenario as scenario;
pub use ibsim_shuffle as shuffle;
pub use ibsim_telemetry as telemetry;
pub use ibsim_ucp as ucp;
pub use ibsim_verbs as verbs;
