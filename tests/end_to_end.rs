//! Cross-crate integration tests: the facade crate driving every layer of
//! the stack together — transport, ODP engine, UCP, DSM, shuffle and the
//! pitfall analyzers.

use ibsim::dsm::{Dsm, DsmConfig};
use ibsim::event::{Engine, SimTime};
use ibsim::fabric::LinkSpec;
use ibsim::odp::{
    detect_damming, detect_flood, fnv1a_str, run_microbench, run_microbench_digest,
    run_microbench_sharded, run_microbench_sharded_with, MicrobenchConfig, MicrobenchDigest,
    OdpMode, SystemProfile,
};
use ibsim::shuffle::{run_shuffle, ShuffleConfig};
use ibsim::ucp::{MemSlice, Tag, Ucp, UcpConfig};
use ibsim::verbs::{
    export_jsonl, Cluster, DeviceProfile, MrMode, QpConfig, ReadWr, ShardPlan, Telemetry,
};

#[test]
fn facade_reexports_are_usable() {
    // A minimal end-to-end run through the facade paths only.
    let mut eng = Engine::new();
    let mut cl = Cluster::new(1);
    let a = cl.add_host("a", DeviceProfile::connectx6());
    let b = cl.add_host("b", DeviceProfile::connectx6());
    let src = cl.alloc_mr(b, 4096, MrMode::Pinned);
    let dst = cl.alloc_mr(a, 4096, MrMode::Pinned);
    cl.mem_write(b, src.base, b"facade");
    let (qp, _) = cl.connect_pair(&mut eng, a, b, QpConfig::default());
    cl.post(&mut eng, a, qp, ReadWr::new(dst.key, src.key).len(6).id(1));
    eng.run(&mut cl);
    assert_eq!(cl.mem_read(a, dst.base, 6), b"facade");
}

#[test]
fn paper_headline_damming_and_detection() {
    // §V-A headline + §IX-A detection, through the facade.
    let cfg = MicrobenchConfig {
        interval: SimTime::from_ms(1),
        capture: true,
        ..Default::default()
    };
    let run = run_microbench(&cfg);
    assert!(run.execution_time >= SimTime::from_ms(400));
    let incidents = detect_damming(run.cluster.capture(run.client), SimTime::from_ms(20));
    assert_eq!(incidents.len(), 1);
}

#[test]
fn paper_headline_flood_and_detection() {
    let cfg = MicrobenchConfig {
        size: 32,
        num_ops: 96,
        num_qps: 96,
        odp: OdpMode::ClientSide,
        cack: 18,
        capture: true,
        ..Default::default()
    };
    let run = run_microbench(&cfg);
    let storms = detect_flood(run.cluster.capture(run.client), 3);
    assert!(!storms.is_empty());
    assert_eq!(run.errors, 0);
    assert!(run.data_ok);
}

// ---------------------------------------------------------------------
// Cross-shard conformance battery: the sharded conservative-lookahead
// engine must reproduce the sequential goldens bit for bit at every
// shard count (1, 2, 4, 8) — same pinned capture hash, same telemetry
// event counts, same merged metrics export.
// ---------------------------------------------------------------------

fn damming_probe_cfg() -> MicrobenchConfig {
    MicrobenchConfig {
        interval: SimTime::from_ms(1),
        capture: true,
        telemetry: true,
        ..Default::default()
    }
}

fn flood_probe_cfg() -> MicrobenchConfig {
    MicrobenchConfig {
        size: 32,
        num_ops: 128,
        num_qps: 128,
        odp: OdpMode::ClientSide,
        cack: 18,
        capture: true,
        telemetry: true,
        ..Default::default()
    }
}

/// Sum of one counter family across all label sets.
fn counter_sum(t: &Telemetry, name: &str) -> u64 {
    t.registry()
        .iter()
        .filter(|&(n, _, _)| n == name)
        .filter_map(|(_, _, i)| match i {
            ibsim::telemetry::Instrument::Counter(v) => Some(*v),
            _ => None,
        })
        .sum()
}

fn assert_digest_matches(seq: &MicrobenchDigest, sh: &MicrobenchDigest, ctx: &str) {
    assert_eq!(seq.client_timeline, sh.client_timeline, "{ctx}: timeline");
    assert_eq!(seq.op_completions, sh.op_completions, "{ctx}: completions");
    assert_eq!(
        seq.execution_time, sh.execution_time,
        "{ctx}: execution time"
    );
    assert_eq!(seq.total_packets, sh.total_packets, "{ctx}: packet count");
    assert_eq!(seq.faults, sh.faults, "{ctx}: fault count");
    assert_eq!(seq.queue_stats, sh.queue_stats, "{ctx}: queue stats");
    assert_eq!(
        seq.telemetry.spans().len(),
        sh.telemetry.spans().len(),
        "{ctx}: span count"
    );
    for name in ["fault.raised", "fault.resolved", "cq.completions"] {
        assert_eq!(
            counter_sum(&seq.telemetry, name),
            counter_sum(&sh.telemetry, name),
            "{ctx}: {name}"
        );
    }
    assert_eq!(
        export_jsonl(&seq.telemetry),
        export_jsonl(&sh.telemetry),
        "{ctx}: telemetry export"
    );
}

#[test]
fn sharded_damming_reproduces_pinned_golden_at_every_shard_count() {
    let seq = run_microbench_digest(&damming_probe_cfg());
    assert_eq!(seq.client_timeline.len(), 919, "sequential golden drifted");
    assert_eq!(
        fnv1a_str(&seq.client_timeline),
        0xeabf_f70d_d984_76b9,
        "sequential golden drifted"
    );
    for shards in [1, 2, 4, 8] {
        let sh = run_microbench_sharded(&damming_probe_cfg(), shards);
        assert_eq!(
            fnv1a_str(&sh.client_timeline),
            0xeabf_f70d_d984_76b9,
            "damming trace diverged at {shards} shards"
        );
        assert_digest_matches(&seq, &sh, &format!("damming, {shards} shards"));
    }
}

#[test]
fn sharded_flood_reproduces_pinned_golden_at_every_shard_count() {
    let seq = run_microbench_digest(&flood_probe_cfg());
    assert_eq!(
        seq.client_timeline.len(),
        135_890,
        "sequential golden drifted"
    );
    assert_eq!(
        fnv1a_str(&seq.client_timeline),
        0xa115_5303_7a19_1337,
        "sequential golden drifted"
    );
    for shards in [1, 2, 4, 8] {
        let sh = run_microbench_sharded(&flood_probe_cfg(), shards);
        assert_eq!(
            fnv1a_str(&sh.client_timeline),
            0xa115_5303_7a19_1337,
            "flood trace diverged at {shards} shards"
        );
        assert_digest_matches(&seq, &sh, &format!("flood, {shards} shards"));
    }
}

#[test]
fn sharded_stage_sum_law_holds_with_cross_shard_fault_lifecycles() {
    // Both-side ODP across 2 shards: faults are raised and resolved on
    // each host's own shard, but the retransmit drain closing every span
    // is driven by packets from the peer's shard. The stage-sum
    // conservation law must survive the epoch-merged telemetry.
    let sh = run_microbench_sharded(&damming_probe_cfg(), 2);
    assert!(
        !sh.telemetry.spans().is_empty(),
        "damming probe must record fault spans"
    );
    assert!(
        sh.telemetry.spans().iter().any(|s| s.host == 0)
            && sh.telemetry.spans().iter().any(|s| s.host == 1),
        "both shards must contribute spans"
    );
    assert_eq!(sh.telemetry.stage_sum_violations(), 0);
    let seq = run_microbench_digest(&damming_probe_cfg());
    assert_eq!(seq.telemetry.stage_sum_violations(), 0);
    assert_eq!(seq.telemetry.spans().len(), sh.telemetry.spans().len());
}

#[test]
#[should_panic(expected = "lookahead violation")]
fn oversized_lookahead_override_is_rejected() {
    // A lookahead wider than the real minimum cross-shard latency lets a
    // packet arrive inside the epoch it was sent in; the leader must
    // reject the run with a diagnostic instead of silently reordering.
    let cfg = MicrobenchConfig {
        odp: OdpMode::None,
        ..Default::default()
    };
    let mut plan = ShardPlan::new(2, vec![0, 1]);
    plan.lookahead_override = Some(SimTime::from_ms(1000));
    run_microbench_sharded_with(&cfg, plan);
}

#[test]
fn ucp_over_damming_hardware_still_delivers() {
    // A rendezvous transfer on ODP-by-default UCX settings across
    // damming-prone ConnectX-4: slow maybe, but correct.
    let mut eng = Engine::new();
    let mut cl = Cluster::new(77);
    let ucp = Ucp::new(UcpConfig::default());
    let a = ucp.add_worker(&mut cl, "a", DeviceProfile::connectx4(LinkSpec::fdr()));
    let b = ucp.add_worker(&mut cl, "b", DeviceProfile::connectx4(LinkSpec::fdr()));
    let ep = ucp.connect(&mut eng, &mut cl, a, b);
    let len = 32 * 1024u32;
    let src = ucp.mem_map(&mut cl, a, len as u64);
    let dst = ucp.mem_map(&mut cl, b, len as u64);
    let payload: Vec<u8> = (0..len).map(|i| (i % 131) as u8).collect();
    cl.mem_write(a, src.base, &payload);
    ucp.tag_recv(
        &mut eng,
        &mut cl,
        b,
        Tag(1),
        MemSlice {
            host: b,
            mr: dst.key,
            offset: 0,
            len,
        },
    );
    ucp.tag_send(
        &mut eng,
        &mut cl,
        ep,
        a,
        Tag(1),
        MemSlice {
            host: a,
            mr: src.key,
            offset: 0,
            len,
        },
    );
    eng.run(&mut cl);
    assert_eq!(ucp.take_completed(b).len(), 1);
    assert_eq!(cl.mem_read(b, dst.base, len as usize), payload);
}

#[test]
fn dsm_init_faults_on_odp_but_not_pinned() {
    for odp in [false, true] {
        let mut eng = Engine::new();
        let mut cl = Cluster::new(3);
        let cfg = DsmConfig {
            odp,
            compute_base: SimTime::from_ms(10),
            compute_jitter: SimTime::from_ms(1),
            lock_gap_max: SimTime::from_ms(6),
            ..Default::default()
        };
        let dsm = Dsm::build(&mut eng, &mut cl, cfg);
        let finished = std::rc::Rc::new(std::cell::Cell::new(SimTime::ZERO));
        let f = finished.clone();
        dsm.init(&mut eng, &mut cl, move |_, _, at| f.set(at));
        eng.run(&mut cl);
        assert!(finished.get() > SimTime::ZERO);
        let faults: u64 = (0..2)
            .map(|n| {
                let host = dsm.host(n);
                cl.qp_stats_sum(host).faults_raised
            })
            .sum();
        if odp {
            assert!(faults > 0, "ODP init must fault");
        } else {
            assert_eq!(faults, 0, "pinned init must not fault");
        }
    }
}

#[test]
fn shuffle_runs_on_every_table_one_generation() {
    // The shuffle engine works on all four RNIC generations.
    for sys in SystemProfile::all() {
        let cfg = ShuffleConfig {
            device: sys.device.clone(),
            odp: true,
            map_tasks: 4,
            reduce_tasks: 4,
            block_bytes: 512,
            endpoints_per_pair: 4,
            setup_compute: SimTime::from_us(100),
            ..Default::default()
        };
        let rep = run_shuffle(&cfg);
        assert!(rep.data_ok, "{}", sys.name);
        assert_eq!(rep.failed_fetches, 0, "{}", sys.name);
    }
}

#[test]
fn connectx6_shuffle_beats_connectx4_under_odp() {
    // Damming hardware pays timeouts the fixed hardware does not.
    let mk = |device: DeviceProfile| ShuffleConfig {
        device,
        odp: true,
        map_tasks: 16,
        reduce_tasks: 16,
        block_bytes: 256,
        endpoints_per_pair: 64,
        fetch_parallelism: 12,
        fetch_stagger: SimTime::from_us(2),
        setup_compute: SimTime::from_us(100),
        seed: 9,
        ..Default::default()
    };
    let cx4 = run_shuffle(&mk(DeviceProfile::connectx4(LinkSpec::fdr())));
    let cx6 = run_shuffle(&mk(DeviceProfile::connectx6()));
    assert!(cx4.data_ok && cx6.data_ok);
    assert!(
        cx6.duration <= cx4.duration,
        "cx6 {} vs cx4 {}",
        cx6.duration,
        cx4.duration
    );
}
