//! Cross-crate integration tests: the facade crate driving every layer of
//! the stack together — transport, ODP engine, UCP, DSM, shuffle and the
//! pitfall analyzers.

use ibsim::dsm::{Dsm, DsmConfig};
use ibsim::event::{Engine, SimTime};
use ibsim::fabric::LinkSpec;
use ibsim::odp::{
    detect_damming, detect_flood, run_microbench, MicrobenchConfig, OdpMode, SystemProfile,
};
use ibsim::shuffle::{run_shuffle, ShuffleConfig};
use ibsim::ucp::{MemSlice, Tag, Ucp, UcpConfig};
use ibsim::verbs::{Cluster, DeviceProfile, MrMode, QpConfig, ReadWr};

#[test]
fn facade_reexports_are_usable() {
    // A minimal end-to-end run through the facade paths only.
    let mut eng = Engine::new();
    let mut cl = Cluster::new(1);
    let a = cl.add_host("a", DeviceProfile::connectx6());
    let b = cl.add_host("b", DeviceProfile::connectx6());
    let src = cl.alloc_mr(b, 4096, MrMode::Pinned);
    let dst = cl.alloc_mr(a, 4096, MrMode::Pinned);
    cl.mem_write(b, src.base, b"facade");
    let (qp, _) = cl.connect_pair(&mut eng, a, b, QpConfig::default());
    cl.post(&mut eng, a, qp, ReadWr::new(dst.key, src.key).len(6).id(1));
    eng.run(&mut cl);
    assert_eq!(cl.mem_read(a, dst.base, 6), b"facade");
}

#[test]
fn paper_headline_damming_and_detection() {
    // §V-A headline + §IX-A detection, through the facade.
    let cfg = MicrobenchConfig {
        interval: SimTime::from_ms(1),
        capture: true,
        ..Default::default()
    };
    let run = run_microbench(&cfg);
    assert!(run.execution_time >= SimTime::from_ms(400));
    let incidents = detect_damming(run.cluster.capture(run.client), SimTime::from_ms(20));
    assert_eq!(incidents.len(), 1);
}

#[test]
fn paper_headline_flood_and_detection() {
    let cfg = MicrobenchConfig {
        size: 32,
        num_ops: 96,
        num_qps: 96,
        odp: OdpMode::ClientSide,
        cack: 18,
        capture: true,
        ..Default::default()
    };
    let run = run_microbench(&cfg);
    let storms = detect_flood(run.cluster.capture(run.client), 3);
    assert!(!storms.is_empty());
    assert_eq!(run.errors, 0);
    assert!(run.data_ok);
}

#[test]
fn ucp_over_damming_hardware_still_delivers() {
    // A rendezvous transfer on ODP-by-default UCX settings across
    // damming-prone ConnectX-4: slow maybe, but correct.
    let mut eng = Engine::new();
    let mut cl = Cluster::new(77);
    let ucp = Ucp::new(UcpConfig::default());
    let a = ucp.add_worker(&mut cl, "a", DeviceProfile::connectx4(LinkSpec::fdr()));
    let b = ucp.add_worker(&mut cl, "b", DeviceProfile::connectx4(LinkSpec::fdr()));
    let ep = ucp.connect(&mut eng, &mut cl, a, b);
    let len = 32 * 1024u32;
    let src = ucp.mem_map(&mut cl, a, len as u64);
    let dst = ucp.mem_map(&mut cl, b, len as u64);
    let payload: Vec<u8> = (0..len).map(|i| (i % 131) as u8).collect();
    cl.mem_write(a, src.base, &payload);
    ucp.tag_recv(
        &mut eng,
        &mut cl,
        b,
        Tag(1),
        MemSlice {
            host: b,
            mr: dst.key,
            offset: 0,
            len,
        },
    );
    ucp.tag_send(
        &mut eng,
        &mut cl,
        ep,
        a,
        Tag(1),
        MemSlice {
            host: a,
            mr: src.key,
            offset: 0,
            len,
        },
    );
    eng.run(&mut cl);
    assert_eq!(ucp.take_completed(b).len(), 1);
    assert_eq!(cl.mem_read(b, dst.base, len as usize), payload);
}

#[test]
fn dsm_init_faults_on_odp_but_not_pinned() {
    for odp in [false, true] {
        let mut eng = Engine::new();
        let mut cl = Cluster::new(3);
        let cfg = DsmConfig {
            odp,
            compute_base: SimTime::from_ms(10),
            compute_jitter: SimTime::from_ms(1),
            lock_gap_max: SimTime::from_ms(6),
            ..Default::default()
        };
        let dsm = Dsm::build(&mut eng, &mut cl, cfg);
        let finished = std::rc::Rc::new(std::cell::Cell::new(SimTime::ZERO));
        let f = finished.clone();
        dsm.init(&mut eng, &mut cl, move |_, _, at| f.set(at));
        eng.run(&mut cl);
        assert!(finished.get() > SimTime::ZERO);
        let faults: u64 = (0..2)
            .map(|n| {
                let host = dsm.host(n);
                cl.qp_stats_sum(host).faults_raised
            })
            .sum();
        if odp {
            assert!(faults > 0, "ODP init must fault");
        } else {
            assert_eq!(faults, 0, "pinned init must not fault");
        }
    }
}

#[test]
fn shuffle_runs_on_every_table_one_generation() {
    // The shuffle engine works on all four RNIC generations.
    for sys in SystemProfile::all() {
        let cfg = ShuffleConfig {
            device: sys.device.clone(),
            odp: true,
            map_tasks: 4,
            reduce_tasks: 4,
            block_bytes: 512,
            endpoints_per_pair: 4,
            setup_compute: SimTime::from_us(100),
            ..Default::default()
        };
        let rep = run_shuffle(&cfg);
        assert!(rep.data_ok, "{}", sys.name);
        assert_eq!(rep.failed_fetches, 0, "{}", sys.name);
    }
}

#[test]
fn connectx6_shuffle_beats_connectx4_under_odp() {
    // Damming hardware pays timeouts the fixed hardware does not.
    let mk = |device: DeviceProfile| ShuffleConfig {
        device,
        odp: true,
        map_tasks: 16,
        reduce_tasks: 16,
        block_bytes: 256,
        endpoints_per_pair: 64,
        fetch_parallelism: 12,
        fetch_stagger: SimTime::from_us(2),
        setup_compute: SimTime::from_us(100),
        seed: 9,
        ..Default::default()
    };
    let cx4 = run_shuffle(&mk(DeviceProfile::connectx4(LinkSpec::fdr())));
    let cx6 = run_shuffle(&mk(DeviceProfile::connectx6()));
    assert!(cx4.data_ok && cx6.data_ok);
    assert!(
        cx6.duration <= cx4.duration,
        "cx6 {} vs cx4 {}",
        cx6.duration,
        cx4.duration
    );
}
