#!/usr/bin/env bash
# Repository CI: static checks, full test suite, runtime-invariant
# builds, and the pitfall-probe golden runs. Everything is offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> ibsim-lint determinism analyzer (workspace + self-check,"
echo "    unused suppressions are errors)"
cargo run -q --offline -p ibsim-lint -- --workspace --deny-unused-allows

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test --workspace"
cargo test -q --offline --workspace

echo "==> runtime invariant checks (--features checks)"
cargo test -q --offline -p ibsim-verbs --features checks
cargo test -q --offline -p ibsim-analysis --features checks

echo "==> telemetry unit tests (registry, spans, exporters)"
cargo test -q --offline -p ibsim-telemetry

echo "==> pitfall probes (linter must flag each probe's own signature;"
echo "    flood probe exits nonzero if telemetry records zero fault spans)"
cargo run -q --offline --release --example damming_probe
cargo run -q --offline --release --example flood_probe

echo "==> qpsweep smoke (dead-event pops must stay under 5% of executed)"
cargo run -q --offline --release -p ibsim-bench --bin qpsweep -- --quick

echo "==> perfsuite smoke (schema-valid artifact + non-zero throughput;"
echo "    deliberately no wall-time gate so shared hardware cannot flake)"
cargo run -q --offline --release -p ibsim-bench --bin perfsuite -- --quick --out target/BENCH_smoke.json
grep -q '"schema": "ibsim-perfsuite/v1"' target/BENCH_smoke.json
for key in engine fabric scenario_corpus qpsweep pdes congestion; do
    grep -q "\"$key\"" target/BENCH_smoke.json
done

echo "==> recovery-backend ablation (go-back-N timelines must match the"
echo "    pinned goldens; IRN must cut the flood's retransmissions; pinning"
echo "    must never fault)"
cargo run -q --offline --release -p ibsim-bench --bin recovery

echo "==> scenario conformance (paper corpus + 256-seed fuzz through the"
echo "    differential oracle, 1-vs-4-worker hash identity, minimizer demo)"
cargo run -q --offline --release -p ibsim-bench --bin scenario -- --workers 4 --fuzz 256 --minimize-demo

echo "==> pdes conformance (corpus trace hashes must survive the move from"
echo "    the sequential engine to 1 and 4 PDES shards byte for byte; the"
echo "    qpsweep stage above already smoke-tests the sharded flood rung)"
cargo run -q --offline --release -p ibsim-bench --bin scenario -- --workers 1 --shards 1 \
    | tee target/scenario_seq.out
cargo run -q --offline --release -p ibsim-bench --bin scenario -- --workers 4 --shards 4

echo "==> topology conformance (routed-fabric corpus entries must survive the"
echo "    move to 4 PDES shards byte for byte; the crossbar default must keep"
echo "    the pre-topology damming golden hash identical — zero re-pinning)"
cargo run -q --offline --release -p ibsim-bench --bin scenario -- \
    --only fattree,ring --workers 2 --shards 1
cargo run -q --offline --release -p ibsim-bench --bin scenario -- \
    --only fattree,ring --workers 2 --shards 4
grep -q '0x82cd0331e596f726' target/scenario_seq.out

echo "==> congestion smoke (fat-tree shared-uplink study: the flood must"
echo "    inflate the victim p99 and selective repeat must beat go-back-N)"
cargo run -q --offline --release -p ibsim-bench --bin congestion -- --quick

echo "==> ci: all green"
