//! Reproduce packet damming (§V), detect it from the packet capture with
//! the library's analyzer, and show the dummy-communication workaround
//! (§IX-A) removing the ~500 ms stall.
//!
//! ```text
//! cargo run --release --example damming_probe
//! ```

use ibsim::analysis::{lint_capture, LintConfig, RuleId};
use ibsim::event::SimTime;
use ibsim::odp::workaround::install_dummy_reads;
use ibsim::odp::{detect_damming, run_microbench, MicrobenchConfig};
use ibsim::telemetry::render_summary;
use ibsim::verbs::{
    Cluster, ClusterBuilder, DeviceProfile, MrBuilder, QpConfig, ReadWr, WcStatus, WrId,
};

fn main() {
    // 1. Two READs, 1 ms apart, both-side ODP: the paper's §V-A setup,
    //    with sim-time telemetry recording the fault lifecycles.
    let cfg = MicrobenchConfig {
        interval: SimTime::from_ms(1),
        capture: true,
        telemetry: true,
        ..Default::default()
    };
    let run = run_microbench(&cfg);
    println!(
        "two READs at 1 ms interval: execution time {} (timeouts: {})",
        run.execution_time, run.timeouts
    );

    // 2. The analyzer finds the stall from the capture alone — the
    //    detection capability §IX-A says real deployments lack.
    let incidents = detect_damming(run.cluster.capture(run.client), SimTime::from_ms(20));
    for inc in &incidents {
        println!(
            "DAMMING: {} psn{} stalled {} (first tx {}, recovered {} by {})",
            inc.qp, inc.psn, inc.stall, inc.first_tx, inc.recovered_at, inc.rescued_by
        );
    }
    assert!(!incidents.is_empty(), "the stall must be detected");

    // 3. The conformance linter agrees: every packet is individually
    //    protocol-legal (no conformance violations), yet the damming
    //    signature detector flags the flow.
    let report = lint_capture(run.cluster.capture(run.client), &LintConfig::default());
    for f in report.by_rule(RuleId::DammingSignature) {
        println!("LINTER {f}");
    }
    assert!(report.count(RuleId::DammingSignature) >= 1);
    assert_eq!(report.count(RuleId::FloodSignature), 0);
    assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 0);

    // 4. The telemetry layer tells the same story from the inside: the
    //    fault-lifecycle spans show where the time went (driver queue
    //    wait, resolution, page-status propagation, retransmit drain).
    println!(
        "\nsim-time telemetry:\n{}",
        render_summary(run.cluster.telemetry())
    );
    assert!(
        !run.cluster.telemetry().spans().is_empty(),
        "the damming run must record at least one fault span"
    );

    // 5. Workaround: a software timer posting dummy READs gives the
    //    responder a chance to emit NAK(PSN sequence error) early.
    let (mut eng, mut cl, hosts) = ClusterBuilder::new()
        .seed(7)
        .host(
            "client",
            DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr()),
        )
        .host(
            "server",
            DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr()),
        )
        .build();
    let (a, b) = (hosts[0], hosts[1]);
    let remote = cl.mr(b, MrBuilder::odp(8192));
    let local = cl.mr(a, MrBuilder::pinned(8192));
    let (qp, _) = cl.connect_pair(&mut eng, a, b, QpConfig::default());
    cl.post(
        &mut eng,
        a,
        qp,
        ReadWr::new(local.key, remote.key).len(100).id(0u64),
    );
    let (lk, rk) = (local.key, remote.key);
    eng.schedule_at(SimTime::from_ms(1), move |c: &mut Cluster, eng| {
        c.post(eng, a, qp, ReadWr::new((lk, 200), (rk, 200)).len(100).id(1));
    });
    install_dummy_reads(
        &mut eng,
        a,
        qp,
        1000,
        local.key,
        0,
        remote.key,
        0,
        SimTime::from_ms(2),
        8,
    );
    eng.run(&mut cl);
    let t2 = cl
        .poll_cq(a)
        .into_iter()
        .filter(|c| c.wr_id == WrId(1) && c.status == WcStatus::Success)
        .map(|c| c.at)
        .next()
        .expect("second READ completes");
    println!("with the dummy-READ timer the second READ completes at {t2}");
    assert!(t2 < SimTime::from_ms(20));
}
