//! A Spark-style shuffle job on the SparkUCX-like engine: compare the
//! same workload with ODP disabled and enabled, like Fig. 13's columns.
//!
//! ```text
//! cargo run --release --example shuffle_wordcount
//! ```

use ibsim::event::SimTime;
use ibsim::shuffle::{run_shuffle, ShuffleConfig};

fn main() {
    // A wordcount-ish shuffle: 24 map tasks hash words into 24 reduce
    // partitions; blocks are small, so many of them share pages — the
    // flood-prone layout.
    let base = ShuffleConfig {
        workers: 2,
        map_tasks: 24,
        reduce_tasks: 24,
        block_bytes: 256,
        endpoints_per_pair: 128,
        fetch_parallelism: 12,
        fetch_stagger: SimTime::from_us(5),
        setup_compute: SimTime::from_ms(20),
        seed: 3,
        ..Default::default()
    };

    let pinned = run_shuffle(&ShuffleConfig {
        odp: false,
        ..base.clone()
    });
    let odp = run_shuffle(&ShuffleConfig { odp: true, ..base });

    println!("workload: 24x24 blocks of 256 B over {} QPs", pinned.qps);
    println!(
        "ODP disabled: {} ({} fetches, {} packets)",
        pinned.duration, pinned.fetches, pinned.packets
    );
    println!(
        "ODP enabled:  {} ({} fetches, {} packets, {} failed)",
        odp.duration, odp.fetches, odp.packets, odp.failed_fetches
    );
    println!(
        "enable/disable ratio: {:.2} — packet ratio {:.1}x",
        odp.duration.as_secs_f64() / pinned.duration.as_secs_f64(),
        odp.packets as f64 / pinned.packets as f64
    );
    assert!(pinned.data_ok && odp.data_ok);
    assert!(odp.duration >= pinned.duration);
}
