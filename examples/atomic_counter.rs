//! A lock-free distributed counter and a spinlock built on the ATOMIC
//! verbs (fetch-and-add / compare-and-swap), exercising the same ODP path
//! as every other one-sided operation.
//!
//! ```text
//! cargo run --release --example atomic_counter
//! ```

use ibsim::verbs::{
    ClusterBuilder, CompareSwapWr, DeviceProfile, FetchAddWr, MrBuilder, QpConfig, WcStatus,
};

fn main() {
    let device = DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr());
    let (mut eng, mut cl, hosts) = ClusterBuilder::new()
        .seed(23)
        .host("server", device.clone())
        .host("client1", device.clone())
        .host("client2", device)
        .build();
    let (server, c1, c2) = (hosts[0], hosts[1], hosts[2]);

    // The shared counter lives in an ODP region on the server: the very
    // first atomic page-faults, the rest run at wire speed.
    let shared = cl.mr(server, MrBuilder::odp(4096));
    let l1 = cl.mr(c1, MrBuilder::pinned(4096));
    let l2 = cl.mr(c2, MrBuilder::pinned(4096));
    let (q1, _) = cl.connect_pair(&mut eng, c1, server, QpConfig::default());
    let (q2, _) = cl.connect_pair(&mut eng, c2, server, QpConfig::default());

    // 32 increments from each client, racing.
    for i in 0..32u64 {
        cl.post(
            &mut eng,
            c1,
            q1,
            FetchAddWr::new((l1.key, i * 8), shared.key).add(1).id(i),
        );
        cl.post(
            &mut eng,
            c2,
            q2,
            FetchAddWr::new((l2.key, i * 8), shared.key).add(1).id(i),
        );
    }
    eng.run(&mut cl);
    let (d1, d2) = (cl.poll_cq(c1), cl.poll_cq(c2));
    assert!(d1.iter().chain(&d2).all(|c| c.status == WcStatus::Success));
    let total = u64::from_le_bytes(cl.mem_read(server, shared.base, 8).try_into().expect("8B"));
    println!("64 racing fetch-adds from 2 clients -> counter = {total}");
    assert_eq!(total, 64);

    // A CAS spinlock: client1 takes it, client2's attempt fails, then
    // succeeds after release.
    let lock_off = 8u64;
    cl.post(
        &mut eng,
        c1,
        q1,
        CompareSwapWr::new((l1.key, 512), (shared.key, lock_off))
            .compare(0)
            .swap(1)
            .id(100),
    );
    eng.run(&mut cl);
    assert_eq!(cl.poll_cq(c1).len(), 1);
    let seen1 = u64::from_le_bytes(cl.mem_read(c1, l1.base + 512, 8).try_into().expect("8B"));
    println!("client1 CAS(0 -> 1): saw {seen1} (acquired)");
    assert_eq!(seen1, 0);

    cl.post(
        &mut eng,
        c2,
        q2,
        CompareSwapWr::new((l2.key, 512), (shared.key, lock_off))
            .compare(0)
            .swap(1)
            .id(100),
    );
    eng.run(&mut cl);
    cl.poll_cq(c2);
    let seen2 = u64::from_le_bytes(cl.mem_read(c2, l2.base + 512, 8).try_into().expect("8B"));
    println!("client2 CAS(0 -> 1): saw {seen2} (lock held, not acquired)");
    assert_eq!(seen2, 1);

    // client1 releases (CAS 1 -> 0), client2 retries and wins.
    cl.post(
        &mut eng,
        c1,
        q1,
        CompareSwapWr::new((l1.key, 520), (shared.key, lock_off))
            .compare(1)
            .swap(0)
            .id(101),
    );
    eng.run(&mut cl);
    cl.poll_cq(c1);
    cl.post(
        &mut eng,
        c2,
        q2,
        CompareSwapWr::new((l2.key, 520), (shared.key, lock_off))
            .compare(0)
            .swap(1)
            .id(101),
    );
    eng.run(&mut cl);
    cl.poll_cq(c2);
    let seen3 = u64::from_le_bytes(cl.mem_read(c2, l2.base + 520, 8).try_into().expect("8B"));
    println!("client2 CAS(0 -> 1) after release: saw {seen3} (acquired)");
    assert_eq!(seen3, 0);
    println!("simulated time: {}", eng.now());
}
