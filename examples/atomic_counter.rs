//! A lock-free distributed counter and a spinlock built on the ATOMIC
//! verbs (fetch-and-add / compare-and-swap), exercising the same ODP path
//! as every other one-sided operation.
//!
//! ```text
//! cargo run --release --example atomic_counter
//! ```

use ibsim::event::Engine;
use ibsim::verbs::{Cluster, DeviceProfile, MrMode, QpConfig, WcStatus, WrId};

fn main() {
    let mut eng = Engine::new();
    let mut cl = Cluster::new(23);
    let device = DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr());
    let server = cl.add_host("server", device.clone());
    let c1 = cl.add_host("client1", device.clone());
    let c2 = cl.add_host("client2", device);

    // The shared counter lives in an ODP region on the server: the very
    // first atomic page-faults, the rest run at wire speed.
    let shared = cl.alloc_mr(server, 4096, MrMode::Odp);
    let l1 = cl.alloc_mr(c1, 4096, MrMode::Pinned);
    let l2 = cl.alloc_mr(c2, 4096, MrMode::Pinned);
    let (q1, _) = cl.connect_pair(&mut eng, c1, server, QpConfig::default());
    let (q2, _) = cl.connect_pair(&mut eng, c2, server, QpConfig::default());

    // 32 increments from each client, racing.
    for i in 0..32u64 {
        cl.post_fetch_add(&mut eng, c1, q1, WrId(i), l1.key, i * 8, shared.key, 0, 1);
        cl.post_fetch_add(&mut eng, c2, q2, WrId(i), l2.key, i * 8, shared.key, 0, 1);
    }
    eng.run(&mut cl);
    let (d1, d2) = (cl.poll_cq(c1), cl.poll_cq(c2));
    assert!(d1.iter().chain(&d2).all(|c| c.status == WcStatus::Success));
    let total = u64::from_le_bytes(cl.mem_read(server, shared.base, 8).try_into().expect("8B"));
    println!("64 racing fetch-adds from 2 clients -> counter = {total}");
    assert_eq!(total, 64);

    // A CAS spinlock: client1 takes it, client2's attempt fails, then
    // succeeds after release.
    let lock_off = 8u64;
    cl.post_compare_swap(
        &mut eng,
        c1,
        q1,
        WrId(100),
        l1.key,
        512,
        shared.key,
        lock_off,
        0,
        1,
    );
    eng.run(&mut cl);
    assert_eq!(cl.poll_cq(c1).len(), 1);
    let seen1 = u64::from_le_bytes(cl.mem_read(c1, l1.base + 512, 8).try_into().expect("8B"));
    println!("client1 CAS(0 -> 1): saw {seen1} (acquired)");
    assert_eq!(seen1, 0);

    cl.post_compare_swap(
        &mut eng,
        c2,
        q2,
        WrId(100),
        l2.key,
        512,
        shared.key,
        lock_off,
        0,
        1,
    );
    eng.run(&mut cl);
    cl.poll_cq(c2);
    let seen2 = u64::from_le_bytes(cl.mem_read(c2, l2.base + 512, 8).try_into().expect("8B"));
    println!("client2 CAS(0 -> 1): saw {seen2} (lock held, not acquired)");
    assert_eq!(seen2, 1);

    // client1 releases (CAS 1 -> 0), client2 retries and wins.
    cl.post_compare_swap(
        &mut eng,
        c1,
        q1,
        WrId(101),
        l1.key,
        520,
        shared.key,
        lock_off,
        1,
        0,
    );
    eng.run(&mut cl);
    cl.poll_cq(c1);
    cl.post_compare_swap(
        &mut eng,
        c2,
        q2,
        WrId(101),
        l2.key,
        520,
        shared.key,
        lock_off,
        0,
        1,
    );
    eng.run(&mut cl);
    cl.poll_cq(c2);
    let seen3 = u64::from_le_bytes(cl.mem_read(c2, l2.base + 520, 8).try_into().expect("8B"));
    println!("client2 CAS(0 -> 1) after release: saw {seen3} (acquired)");
    assert_eq!(seen3, 0);
    println!("simulated time: {}", eng.now());
}
