//! Quickstart: simulate two InfiniBand hosts, run one RDMA READ against
//! an ODP-registered buffer, and print the packet trace `ibdump` style.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ibsim::verbs::{ClusterBuilder, DeviceProfile, MrBuilder, QpConfig, ReadWr};

fn main() {
    // A deterministic two-host cluster with ConnectX-4 FDR NICs (the
    // paper's KNL testbed), capture on.
    let (mut eng, mut cluster, hosts) = ClusterBuilder::new()
        .seed(42)
        .host(
            "client",
            DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr()),
        )
        .host(
            "server",
            DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr()),
        )
        .capture(true)
        .build();
    let (client, server) = (hosts[0], hosts[1]);

    // The server exposes an On-Demand-Paging region; the client reads
    // into a pinned buffer. The first READ will page-fault on the server.
    let remote = cluster.mr(server, MrBuilder::odp(4096));
    let local = cluster.mr(client, MrBuilder::pinned(4096));
    cluster.mem_write(server, remote.base, b"hello from on-demand paging");

    let (qp, _) = cluster.connect_pair(&mut eng, client, server, QpConfig::default());
    cluster.post(
        &mut eng,
        client,
        qp,
        ReadWr::new(local.key, remote.key).len(28).id(1),
    );
    eng.run(&mut cluster);

    let completions = cluster.poll_cq(client);
    println!(
        "completion: {:?} at {}",
        completions[0].status, completions[0].at
    );
    println!(
        "data: {:?}",
        String::from_utf8_lossy(&cluster.mem_read(client, local.base, 28))
    );
    println!("\nclient-side packet capture:");
    print!("{}", cluster.capture(client).timeline());
    println!(
        "\nNote the RNR NAK and the ~4.5 ms wait before the retransmitted\n\
         request succeeds — the server-side ODP workflow of the paper's Fig. 1."
    );
}
