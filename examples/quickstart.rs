//! Quickstart: simulate two InfiniBand hosts, run one RDMA READ against
//! an ODP-registered buffer, and print the packet trace `ibdump` style.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ibsim::event::Engine;
use ibsim::verbs::{Cluster, DeviceProfile, MrMode, QpConfig, WrId};

fn main() {
    // A deterministic two-host cluster with ConnectX-4 FDR NICs (the
    // paper's KNL testbed).
    let mut eng = Engine::new();
    let mut cluster = Cluster::new(42);
    let client = cluster.add_host(
        "client",
        DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr()),
    );
    let server = cluster.add_host(
        "server",
        DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr()),
    );

    // The server exposes an On-Demand-Paging region; the client reads
    // into a pinned buffer. The first READ will page-fault on the server.
    let remote = cluster.alloc_mr(server, 4096, MrMode::Odp);
    let local = cluster.alloc_mr(client, 4096, MrMode::Pinned);
    cluster.mem_write(server, remote.base, b"hello from on-demand paging");

    cluster.capture_enable(client);
    let (qp, _) = cluster.connect_pair(&mut eng, client, server, QpConfig::default());
    cluster.post_read(
        &mut eng,
        client,
        qp,
        WrId(1),
        local.key,
        0,
        remote.key,
        0,
        28,
    );
    eng.run(&mut cluster);

    let completions = cluster.poll_cq(client);
    println!(
        "completion: {:?} at {}",
        completions[0].status, completions[0].at
    );
    println!(
        "data: {:?}",
        String::from_utf8_lossy(&cluster.mem_read(client, local.base, 28))
    );
    println!("\nclient-side packet capture:");
    print!("{}", cluster.capture(client).timeline());
    println!(
        "\nNote the RNR NAK and the ~4.5 ms wait before the retransmitted\n\
         request succeeds — the server-side ODP workflow of the paper's Fig. 1."
    );
}
