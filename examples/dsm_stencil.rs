//! A 1-D heat-diffusion stencil over the ArgoDSM-like shared memory:
//! each node owns a slice of the rod, iterates the 3-point stencil on it,
//! and reads halo cells from its neighbors' partitions through the DSM
//! page cache, with a barrier and cache self-invalidation between steps.
//!
//! ```text
//! cargo run --release --example dsm_stencil
//! cargo run --release --example dsm_stencil -- --no-odp
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use ibsim::dsm::{Dsm, DsmConfig};
use ibsim::event::{Engine, SimTime};
use ibsim::verbs::Cluster;

const NODES: usize = 3;
const CELLS_PER_NODE: usize = 64;
const CELLS: usize = NODES * CELLS_PER_NODE;
const STEPS: usize = 5;

fn addr(cell: usize) -> u64 {
    (cell * 8) as u64
}

/// Runs one stencil step on `node`, then joins the barrier.
fn step(
    dsm: Dsm,
    node: usize,
    eng: &mut ibsim::verbs::Sim,
    cl: &mut Cluster,
    done: Rc<RefCell<StepSync>>,
) {
    let lo = node * CELLS_PER_NODE;
    let hi = lo + CELLS_PER_NODE;
    // Read the halo + own slice (own cells are local; halos may fetch a
    // remote page into the cache).
    let reads: Vec<usize> = (lo.saturating_sub(1)..(hi + 1).min(CELLS)).collect();
    let values = Rc::new(RefCell::new(vec![0f64; reads.len()]));
    let remaining = Rc::new(RefCell::new(reads.len()));
    for (slot, &cell) in reads.iter().enumerate() {
        let values = values.clone();
        let remaining = remaining.clone();
        let dsm2 = dsm.clone();
        let done = done.clone();
        let reads_lo = reads[0];
        dsm.read(eng, cl, node, addr(cell), 8, move |eng, cl, bytes| {
            values.borrow_mut()[slot] =
                f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            let left = {
                let mut r = remaining.borrow_mut();
                *r -= 1;
                *r
            };
            if left == 0 {
                // All inputs in: compute and write back own cells.
                let vals = values.borrow().clone();
                let get = |cell: usize| vals[cell - reads_lo];
                let mut writes = Vec::new();
                for c in lo..hi {
                    let l = if c == 0 { get(c) } else { get(c - 1) };
                    let r = if c == CELLS - 1 { get(c) } else { get(c + 1) };
                    let v = 0.25 * l + 0.5 * get(c) + 0.25 * r;
                    writes.push((c, v));
                }
                write_all(dsm2, node, eng, cl, writes, done);
            }
        });
    }
}

fn write_all(
    dsm: Dsm,
    node: usize,
    eng: &mut ibsim::verbs::Sim,
    cl: &mut Cluster,
    writes: Vec<(usize, f64)>,
    done: Rc<RefCell<StepSync>>,
) {
    let remaining = Rc::new(RefCell::new(writes.len()));
    for (c, v) in writes {
        let remaining = remaining.clone();
        let dsm2 = dsm.clone();
        let done = done.clone();
        dsm.write(
            eng,
            cl,
            node,
            addr(c),
            v.to_bits().to_le_bytes().to_vec(),
            move |eng, cl| {
                let left = {
                    let mut r = remaining.borrow_mut();
                    *r -= 1;
                    *r
                };
                if left == 0 {
                    StepSync::arrive(&done, &dsm2, node, eng, cl);
                }
            },
        );
    }
}

/// Coordinates the per-step barrier and launches the next step.
struct StepSync {
    dsm: Dsm,
    arrived: usize,
    step: usize,
}

impl StepSync {
    fn arrive(
        me: &Rc<RefCell<StepSync>>,
        dsm: &Dsm,
        node: usize,
        eng: &mut ibsim::verbs::Sim,
        cl: &mut Cluster,
    ) {
        // Self-invalidate this node's halo cache before the barrier, like
        // a release.
        dsm.release_cache(node);
        let launch = {
            let mut s = me.borrow_mut();
            s.arrived += 1;
            if s.arrived == NODES {
                s.arrived = 0;
                s.step += 1;
                s.step < STEPS
            } else {
                false
            }
        };
        if launch {
            let me2 = me.clone();
            let d = me.borrow().dsm.clone();
            d.barrier(eng, cl, move |eng, cl| {
                let d = me2.borrow().dsm.clone();
                for n in 0..NODES {
                    step(d.clone(), n, eng, cl, me2.clone());
                }
            });
        }
    }
}

fn main() {
    let odp = !std::env::args().any(|a| a == "--no-odp");
    let mut eng = Engine::new();
    let mut cl = Cluster::new(31);
    let cfg = DsmConfig {
        nodes: NODES,
        memory: (CELLS * 8).max(64 * 4096) as u64,
        odp,
        compute_base: SimTime::from_us(10),
        compute_jitter: SimTime::from_us(5),
        ..Default::default()
    };
    let dsm = Dsm::build(&mut eng, &mut cl, cfg);

    // Initial condition: a hot spike in the middle of the rod.
    for c in 0..CELLS {
        let v = if c == CELLS / 2 { 100.0f64 } else { 0.0 };
        dsm.write(
            &mut eng,
            &mut cl,
            0,
            addr(c),
            v.to_bits().to_le_bytes().to_vec(),
            |_, _| {},
        );
    }
    eng.run(&mut cl);

    let sync = Rc::new(RefCell::new(StepSync {
        dsm: dsm.clone(),
        arrived: 0,
        step: 0,
    }));
    for n in 0..NODES {
        step(dsm.clone(), n, &mut eng, &mut cl, sync.clone());
    }
    eng.run(&mut cl);

    // Check conservation and diffusion.
    let total = Rc::new(RefCell::new(0.0f64));
    let peak = Rc::new(RefCell::new(0.0f64));
    for c in 0..CELLS {
        let total = total.clone();
        let peak = peak.clone();
        dsm.read(&mut eng, &mut cl, 0, addr(c), 8, move |_, _, bytes| {
            let v = f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8B")));
            *total.borrow_mut() += v;
            let mut p = peak.borrow_mut();
            if v > *p {
                *p = v;
            }
        });
    }
    eng.run(&mut cl);

    println!(
        "after {STEPS} stencil steps on {NODES} nodes (odp={odp}): total heat = {:.2}, peak = {:.2}",
        total.borrow(),
        peak.borrow()
    );
    println!("dsm stats: {:?}", dsm.stats());
    println!("simulated time: {}", eng.now());
    assert!((*total.borrow() - 100.0).abs() < 1e-6, "heat is conserved");
    assert!(*peak.borrow() < 100.0, "the spike diffused");
}
