//! Reproduce packet flood (§VI): many QPs issue READs that fault on the
//! same client-side page; per-QP page-status updates lag, duplicate
//! responses get discarded, and packets multiply. The analyzer spots the
//! storms, and the fresh-QP re-issue workaround (§IX-A) sidesteps them.
//!
//! ```text
//! cargo run --release --example flood_probe
//! ```

use ibsim::analysis::{lint_capture, LintConfig, RuleId};
use ibsim::event::SimTime;
use ibsim::odp::workaround::reissue_read;
use ibsim::odp::{detect_flood, run_microbench, summarize, MicrobenchConfig, OdpMode};
use ibsim::telemetry::render_summary;
use ibsim::verbs::{ClusterBuilder, DeviceProfile, MrBuilder, QpConfig, ReadWr, WrId};

fn main() {
    // 1. The Fig. 11a setup: 128 QPs, one 32-byte READ each, all landing
    //    on the same local ODP page, with telemetry recording the fault
    //    lifecycle (raise → queue wait → resolve → per-QP propagation).
    let cfg = MicrobenchConfig {
        size: 32,
        num_ops: 128,
        num_qps: 128,
        odp: OdpMode::ClientSide,
        cack: 18,
        capture: true,
        telemetry: true,
        ..Default::default()
    };
    let run = run_microbench(&cfg);
    println!(
        "128 QPs x one 32 B READ: execution time {}, {} responses discarded",
        run.execution_time, run.responses_discarded
    );
    println!("traffic: {}", summarize(run.cluster.capture(run.client)));

    let storms = detect_flood(run.cluster.capture(run.client), 3);
    println!("flood storms detected: {}", storms.len());
    if let Some(worst) = storms.iter().max_by_key(|s| s.transmissions) {
        println!(
            "worst storm: {} psn{} transmitted {} times over {}",
            worst.qp, worst.psn, worst.transmissions, worst.span
        );
    }
    assert!(!storms.is_empty());

    // 2. The conformance linter sees the same storms as signature
    //    findings — blind 0.5 ms retransmits with responses discarded —
    //    while the per-packet RC rules all hold.
    let report = lint_capture(run.cluster.capture(run.client), &LintConfig::default());
    println!(
        "linter: {} flood signature(s), {} conformance violation(s)",
        report.count(RuleId::FloodSignature),
        report.violations() - report.count(RuleId::FloodSignature)
    );
    assert!(report.count(RuleId::FloodSignature) >= 1);
    assert_eq!(report.count(RuleId::DammingSignature), 0);

    // 3. Telemetry: the span report must show the single shared fault
    //    with its 127 stale-QP propagations. An empty span store means
    //    the observability layer silently lost the lifecycle — fail
    //    loudly so CI catches it.
    println!(
        "\nsim-time telemetry:\n{}",
        render_summary(run.cluster.telemetry())
    );
    let spans = run.cluster.telemetry().spans();
    if spans.is_empty() {
        eprintln!("error: flood run recorded zero fault spans");
        std::process::exit(1);
    }

    // 4. Workaround: re-issue the stuck READ on a fresh QP whose page
    //    status is clean.
    let (mut eng, mut cl, hosts) = ClusterBuilder::new()
        .seed(5)
        .host(
            "client",
            DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr()),
        )
        .host(
            "server",
            DeviceProfile::connectx4(ibsim::fabric::LinkSpec::fdr()),
        )
        .build();
    let (a, b) = (hosts[0], hosts[1]);
    let remote = cl.mr(b, MrBuilder::pinned(4096));
    let local = cl.mr(a, MrBuilder::odp(4096));
    let qp_cfg = QpConfig {
        cack: 18,
        ..QpConfig::default()
    };
    let qps: Vec<_> = (0..96)
        .map(|_| cl.connect_pair(&mut eng, a, b, qp_cfg.clone()).0)
        .collect();
    let spare = cl.connect_pair(&mut eng, a, b, qp_cfg).0;
    for (i, q) in qps.iter().enumerate() {
        cl.post(
            &mut eng,
            a,
            *q,
            ReadWr::new((local.key, (i * 32) as u64), remote.key)
                .len(32)
                .id(i as u64),
        );
    }
    reissue_read(
        &mut eng,
        a,
        qps[0],
        WrId(0),
        spare,
        WrId(999),
        local.key,
        0,
        remote.key,
        0,
        32,
        SimTime::from_ms(2),
    );
    eng.run(&mut cl);
    let cq = cl.poll_cq(a);
    let original = cq.iter().find(|c| c.wr_id == WrId(0)).expect("original").at;
    let reissued = cq
        .iter()
        .find(|c| c.wr_id == WrId(999))
        .expect("reissue")
        .at;
    println!("flooded original READ completed at {original}; fresh-QP re-issue at {reissued}");
    assert!(reissued < original);
}
