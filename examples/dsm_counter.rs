//! A distributed shared-memory application: three nodes increment a
//! shared counter under the global lock, with reads served through the
//! DSM page cache. Run it with ODP on (default) or off to see the
//! fault overhead.
//!
//! ```text
//! cargo run --release --example dsm_counter
//! cargo run --release --example dsm_counter -- --no-odp
//! ```

use ibsim::dsm::{Dsm, DsmConfig};
use ibsim::event::{Engine, SimTime};
use ibsim::verbs::Cluster;

fn increment_loop(dsm: Dsm, node: usize, remaining: u32) {
    // Each iteration: acquire → read counter → write counter+1 → release.
    // All chained through completion callbacks.
    let dsm2 = dsm.clone();
    let run = move |eng: &mut ibsim::verbs::Sim, cl: &mut Cluster| {
        let d = dsm2.clone();
        dsm2.acquire(eng, cl, node, move |eng, cl| {
            let d2 = d.clone();
            d.read(eng, cl, node, 0, 8, move |eng, cl, bytes| {
                let mut v = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
                v += 1;
                let d3 = d2.clone();
                d2.write(
                    eng,
                    cl,
                    node,
                    0,
                    v.to_le_bytes().to_vec(),
                    move |eng, cl| {
                        d3.release(eng, cl, node);
                        if remaining > 1 {
                            increment_loop(d3.clone(), node, remaining - 1);
                            // The next iteration schedules itself via acquire,
                            // which is already posted above.
                            let _ = (eng, cl);
                        }
                    },
                );
            });
        });
    };
    // Defer via a helper so recursion does not borrow anything live.
    PENDING.with(|p| p.borrow_mut().push(Box::new(run)));
}

type Job = Box<dyn FnOnce(&mut ibsim::verbs::Sim, &mut Cluster)>;

thread_local! {
    static PENDING: std::cell::RefCell<Vec<Job>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn drain_pending(eng: &mut ibsim::verbs::Sim, cl: &mut Cluster) {
    loop {
        let jobs: Vec<_> = PENDING.with(|p| p.borrow_mut().drain(..).collect());
        if jobs.is_empty() {
            return;
        }
        for job in jobs {
            job(eng, cl);
        }
        eng.run(cl);
    }
}

fn main() {
    let odp = !std::env::args().any(|a| a == "--no-odp");
    let mut eng = Engine::new();
    let mut cl = Cluster::new(11);
    let cfg = DsmConfig {
        nodes: 3,
        memory: 64 * 4096,
        odp,
        compute_base: SimTime::from_us(10),
        compute_jitter: SimTime::from_us(5),
        ..Default::default()
    };
    let dsm = Dsm::build(&mut eng, &mut cl, cfg);
    dsm.start_lock_service(&mut eng, &mut cl);

    // Initialize the counter at global address 0 (homed on node 0).
    dsm.write(
        &mut eng,
        &mut cl,
        0,
        0,
        0u64.to_le_bytes().to_vec(),
        |_, _| {},
    );
    eng.run(&mut cl);

    const PER_NODE: u32 = 10;
    for node in 1..3 {
        increment_loop(dsm.clone(), node, PER_NODE);
    }
    drain_pending(&mut eng, &mut cl);

    let done = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let d = done.clone();
    dsm.read(&mut eng, &mut cl, 0, 0, 8, move |_, _, bytes| {
        d.set(u64::from_le_bytes(bytes.try_into().expect("8 bytes")));
    });
    eng.run(&mut cl);

    println!(
        "counter after {} lock-protected increments from 2 nodes: {} (odp={odp})",
        2 * PER_NODE,
        done.get()
    );
    println!("dsm stats: {:?}", dsm.stats());
    println!("simulated time: {}", eng.now());
    assert_eq!(done.get(), 2 * PER_NODE as u64);
}
