//! End-to-end smoke tests: run every experiment binary at reduced scale
//! and assert the key output each figure reproduction must contain.

use std::process::Command;

fn run(bin: &str, quick: bool) -> String {
    let mut cmd = Command::new(bin);
    if quick {
        cmd.arg("--quick");
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn table1_lists_all_systems() {
    let out = run(env!("CARGO_BIN_EXE_table1"), false);
    for name in [
        "Private servers A",
        "KNL (Private servers B)",
        "Reedbush-H",
        "Reedbush-L",
        "ABCI",
        "ITO",
        "Azure VM HCr Series",
        "Azure VM HBv2 Series",
    ] {
        assert!(out.contains(name), "missing {name}");
    }
    assert!(out.contains("MT_2170111021"), "KNL PSID");
    assert!(out.contains("Xeon Phi CPU 7250"), "Table II CPU");
}

#[test]
fn fig1_shows_both_workflows() {
    let out = run(env!("CARGO_BIN_EXE_fig1"), false);
    assert!(out.contains("RNR_NAK"));
    assert!(out.contains("== Post 1st request =="));
    assert!(out.contains("RNR NAK delay (about 4.4"));
    assert!(out.contains("[retransmission]"));
}

#[test]
fn fig2_reports_floors() {
    let out = run(env!("CARGO_BIN_EXE_fig2"), true);
    assert!(out.contains("Azure VM HCr"), "CX-5 column present");
    // The CX-4 floor (~0.502 s) and CX-5 floor (~0.030 s).
    assert!(out.contains("0.5020"), "{out}");
    assert!(out.contains("0.0300"), "{out}");
}

#[test]
fn fig4_shows_plateau_and_recovery() {
    let out = run(env!("CARGO_BIN_EXE_fig4"), true);
    let plateau = out
        .lines()
        .filter(|l| l.starts_with("1.500") || l.starts_with("3.000"))
        .all(|l| l.ends_with("0.5075") || l.contains(",0.5"));
    assert!(plateau, "{out}");
    assert!(out.lines().any(|l| l.starts_with("6.000,0.0")), "{out}");
}

#[test]
fn fig5_shows_timeout_workflow() {
    let out = run(env!("CARGO_BIN_EXE_fig5"), false);
    assert!(out.contains("== Timeout (about 50"), "{out}");
    assert!(out.contains("== Post 2nd request =="), "{out}");
}

#[test]
fn fig6_windows_follow_rnr_delay() {
    let out = run(env!("CARGO_BIN_EXE_fig6"), true);
    assert!(out.contains("0.01 [ms]"));
    assert!(out.contains("1.28 [ms]"));
    assert!(out.contains("10.24 [ms]"));
}

#[test]
fn fig7_has_three_series() {
    let out = run(env!("CARGO_BIN_EXE_fig7"), true);
    assert!(out.contains("2 operations"));
    assert!(out.contains("4 operations"));
}

#[test]
fn fig8_shows_nak_rescue() {
    let out = run(env!("CARGO_BIN_EXE_fig8"), false);
    assert!(out.contains("NAK_SEQ_ERR"), "{out}");
    assert!(out.contains("[lost to the damming flaw]"), "{out}");
}

#[test]
fn fig11_layout_and_tail() {
    let out = run(env!("CARGO_BIN_EXE_fig11"), true);
    assert!(out.contains("4 pages"), "{out}");
    assert!(out.contains("last completion"), "{out}");
}

#[test]
fn fig12_histograms_with_means() {
    let out = run(env!("CARGO_BIN_EXE_fig12"), true);
    assert!(out.contains("KNL w/o ODP"), "{out}");
    assert!(out.contains("Reedbush-H w ODP"), "{out}");
    assert!(out.contains("bin_start_s,count"), "{out}");
}

#[test]
fn table13_reports_all_examples() {
    let out = run(env!("CARGO_BIN_EXE_table13"), true);
    assert!(out.contains("SparkTC"));
    assert!(out.contains("mllib.RecommendationExample"));
    assert!(out.contains("mllib.RankingMetricsExample"));
    assert!(out.contains("Enable/Disable"));
}

#[test]
fn ibperf_reports_latency_and_bandwidth() {
    let out = run(env!("CARGO_BIN_EXE_ibperf"), false);
    assert!(out.contains("read_lat pinned"));
    assert!(out.contains("odp+prefetch"));
    assert!(out.contains("size_bytes,read_MiBps"));
}
