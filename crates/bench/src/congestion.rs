//! The shared-uplink congestion study: a §VI flood storm and an
//! innocent victim flow contending for the same fat-tree uplink.
//!
//! The paper measures the packet flood's damage to the *faulting*
//! connections; this bench measures its collateral damage. On a
//! two-leaf fat-tree, a storm pair (QPs replaying the §VI flood —
//! READs landing in one cold client-side ODP page, so every response is
//! dropped, every requester times out, and the recovery backend decides
//! how much gets retransmitted) and a victim pair (one QP of small,
//! paced, pinned-memory READs) both route over the single leaf→spine→
//! leaf path. Every retransmitted storm packet re-serializes on the
//! shared uplink ahead of the victim's traffic, so the victim's
//! post-to-completion p99 is a direct congestion gauge:
//!
//! * go-back-N replays the whole outstanding window per timeout — the
//!   flood multiplies itself onto the uplink and the victim's tail
//!   latency inflates accordingly;
//! * IRN-style selective repeat replays only what was actually lost —
//!   measurably less damaging to the bystander at identical offered
//!   load and identical fault schedule.
//!
//! The `congestion` bin asserts both inequalities; `perfsuite` records
//! the three p99s in `BENCH_<pr>.json` so the trajectory pins them.

use std::time::Instant;

use ibsim_event::SimTime;
use ibsim_fabric::{Fabric, LinkSpec, TopologyKind};
use ibsim_telemetry::{Histogram, Labels};
use ibsim_verbs::{Cluster, DeviceProfile, MrMode, QpConfig, ReadWr, RecoveryKind, Sim};

/// Storm QPs (full scale; `--quick` runs a quarter).
const STORM_QPS: usize = 32;
/// READs posted per storm QP at t = 0.
const STORM_READS: usize = 8;
/// Bytes per storm READ: large responses so retransmitted windows cost
/// real serialization time on the shared uplink.
const STORM_LEN: u32 = 2048;
/// Paced victim READs.
const VICTIM_READS: usize = 100;
/// Victim post pacing, nanoseconds.
const VICTIM_INTERVAL_NS: u64 = 150_000;
/// First victim post. The initial storm burst is identical under every
/// backend (recovery has not engaged yet), so the victim starts sampling
/// after that burst has drained: everything it measures from then on is
/// the backend's own retransmit traffic.
const VICTIM_START_NS: u64 = 1_500_000;

/// The oversubscribed inter-switch spec: edge ports run full-rate FDR,
/// but the leaf→spine uplinks serialize at 2 Gb/s — the classic
/// oversubscription shape that turns a retransmit storm into queueing
/// delay for everyone sharing the uplink.
fn uplink_spec() -> LinkSpec {
    LinkSpec {
        latency: SimTime::from_ns(300),
        bandwidth_gbps: 2,
    }
}

/// Measured outcome of one congestion run.
#[derive(Debug, Clone, Copy)]
pub struct CongestionRun {
    /// Victim post-to-completion p99, in nanoseconds (log2-bucket lower
    /// bound, from the victim host's `cq.wr_latency_ns` histogram).
    pub victim_p99_ns: u64,
    /// Victim mean completion latency, nanoseconds.
    pub victim_mean_ns: u64,
    /// Victim completions drained (must equal the posted count — the
    /// pitfalls degrade performance, never correctness).
    pub victim_completions: usize,
    /// Cluster-wide retransmitted request packets (storm recovery
    /// traffic; the victim never faults or times out in practice).
    pub retransmits: u64,
    /// Peak queueing delay observed on any inter-switch link, ns.
    pub uplink_peak_backlog_ns: u64,
    /// ECN marks accumulated across inter-switch links.
    pub ecn_marks: u64,
    /// Simulated end-to-end time.
    pub exec: SimTime,
    /// Host wall-clock seconds.
    pub wall_secs: f64,
}

/// p99 from a log2 histogram: the lower bound of the bucket containing
/// the 99th-percentile sample. Bucket resolution is a factor of two,
/// which is ample for the order-of-magnitude gaps this study asserts.
fn p99_ns(h: &Histogram) -> u64 {
    let total = h.count();
    if total == 0 {
        return 0;
    }
    let target = total - total / 100;
    let mut cum = 0u64;
    for (lo, n) in h.nonzero_buckets() {
        cum += n;
        if cum >= target {
            return lo;
        }
    }
    h.max()
}

/// Runs the study's cluster once. `storm` is `None` for the unloaded
/// baseline (storm hosts exist but post nothing, so topology, LIDs and
/// routes are identical) or `Some(backend)` to run the flood on that
/// recovery backend. The victim QP is created first and always runs
/// go-back-N: only the storm's backend varies between runs.
pub fn run_congestion(storm: Option<RecoveryKind>, quick: bool) -> CongestionRun {
    let started = Instant::now();
    let storm_qps = if quick { STORM_QPS / 4 } else { STORM_QPS };
    let device = DeviceProfile::connectx4(LinkSpec::fdr());

    let mut eng = Sim::new();
    let mut cl = Cluster::new(4242);
    // Replace the fabric before any host attaches: inter-switch hops
    // serialize on the fabric's default spec, so this is where the
    // uplink oversubscription lives.
    cl.fabric = Fabric::new(uplink_spec());
    // Two leaves, one spine: hosts attach to leaves round-robin by add
    // order, so the storm pair (hosts 0, 1) and the victim pair (hosts
    // 2, 3) both cross the unique leaf0→spine→leaf1 path.
    cl.fabric.set_topology(TopologyKind::FatTree { k: 2 });
    // Mark ECN aggressively so the run also exercises the marking and
    // echo path end to end; marking is observational (it changes no
    // packet timing), so it cannot perturb the latency comparison.
    cl.fabric.set_congestion(Some(SimTime::from_ns(500)), None);
    cl.telemetry_enable();

    let storm_client = cl.add_host("storm-client", device.clone());
    let storm_server = cl.add_host("storm-server", device.clone());
    let victim_client = cl.add_host("victim-client", device.clone());
    let victim_server = cl.add_host("victim-server", device);

    // Victim: one pinned-memory QP, default (go-back-N) recovery.
    let victim_src = cl.alloc_mr(victim_server, 4096, MrMode::Pinned);
    let victim_dst = cl.alloc_mr(victim_client, 4096, MrMode::Pinned);
    let victim_qp = cl
        .connect_pair(&mut eng, victim_client, victim_server, QpConfig::default())
        .0;
    for k in 0..VICTIM_READS {
        let at = SimTime::from_ns(VICTIM_START_NS + k as u64 * VICTIM_INTERVAL_NS);
        let (dst, src) = (victim_dst, victim_src);
        eng.schedule_at(at, move |c: &mut Cluster, eng| {
            c.post(
                eng,
                victim_client,
                victim_qp,
                ReadWr::new((dst.key, (k % 32) as u64 * 64), src.key)
                    .len(64)
                    .id(k as u64),
            );
        });
    }

    // Storm: the §VI flood. Every READ lands in one cold client-side
    // ODP page, so the responses race a single fault resolution; C_ack
    // of 6 puts the timeout (~262 µs) inside the resolution window, so
    // the requesters fire while the page is still missing.
    if let Some(kind) = storm {
        cl.set_default_recovery(kind);
        let span = STORM_QPS * STORM_READS * STORM_LEN as usize;
        let remote = cl.alloc_mr(storm_server, span as u64, MrMode::Pinned);
        let local = cl.alloc_mr(storm_client, span as u64, MrMode::Odp);
        let cfg = QpConfig {
            cack: 6,
            ..QpConfig::default()
        };
        for q in 0..storm_qps {
            let qp = cl
                .connect_pair(&mut eng, storm_client, storm_server, cfg.clone())
                .0;
            for i in 0..STORM_READS {
                let off = ((q * STORM_READS + i) * STORM_LEN as usize) as u64;
                cl.post(
                    &mut eng,
                    storm_client,
                    qp,
                    ReadWr::new((local.key, off), remote.key)
                        .len(STORM_LEN)
                        .id(i as u64),
                );
            }
        }
    }

    eng.run(&mut cl);
    cl.sync_telemetry(&eng);

    let victim_completions = cl.poll_cq(victim_client).len();
    let (p99, mean) = cl
        .telemetry()
        .registry()
        .histogram("cq.wr_latency_ns", Labels::host(victim_client.0 as u64))
        .map_or((0, 0), |h| (p99_ns(h), h.mean()));
    let mut peak = 0u64;
    let mut marks = 0u64;
    for (_, _, ls) in cl.fabric.inter_links() {
        peak = peak.max(ls.peak_backlog_ns);
        marks += ls.ecn_marks;
    }
    CongestionRun {
        victim_p99_ns: p99,
        victim_mean_ns: mean,
        victim_completions,
        retransmits: cl.stats.retransmit_packets,
        uplink_peak_backlog_ns: peak,
        ecn_marks: marks,
        exec: eng.now(),
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// The three-way study: unloaded baseline, go-back-N storm, selective-
/// repeat storm — identical topology, victim and fault schedule.
#[derive(Debug, Clone, Copy)]
pub struct CongestionStudy {
    /// Victim alone on the fabric.
    pub baseline: CongestionRun,
    /// Storm on go-back-N (the hardware the paper measured).
    pub gbn: CongestionRun,
    /// Storm on IRN-style selective repeat.
    pub irn: CongestionRun,
}

/// Runs the full study.
pub fn congestion_study(quick: bool) -> CongestionStudy {
    CongestionStudy {
        baseline: run_congestion(None, quick),
        gbn: run_congestion(Some(RecoveryKind::GoBackN), quick),
        irn: run_congestion(Some(RecoveryKind::SelectiveRepeat), quick),
    }
}

impl CongestionStudy {
    /// The study's two load-bearing inequalities, as `(claim, holds)`
    /// pairs: the flood must inflate the victim's p99, and selective
    /// repeat must be measurably less damaging than go-back-N. The bin
    /// asserts these; CI runs it in `--quick` mode.
    pub fn verdicts(&self) -> [(&'static str, bool); 3] {
        [
            (
                "go-back-N storm inflates the victim p99 over baseline",
                self.gbn.victim_p99_ns > self.baseline.victim_p99_ns,
            ),
            (
                "selective repeat is less damaging than go-back-N",
                self.irn.victim_p99_ns < self.gbn.victim_p99_ns,
            ),
            (
                "every victim READ still completes under both storms",
                self.baseline.victim_completions == VICTIM_READS
                    && self.gbn.victim_completions == VICTIM_READS
                    && self.irn.victim_completions == VICTIM_READS,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_inequalities_hold() {
        let study = congestion_study(true);
        for (claim, holds) in study.verdicts() {
            assert!(holds, "{claim}: {study:?}");
        }
        assert!(
            study.gbn.retransmits > study.irn.retransmits,
            "go-back-N must retransmit more than selective repeat: {study:?}"
        );
        assert_eq!(study.baseline.retransmits, 0, "unloaded baseline is clean");
        assert!(study.gbn.ecn_marks > 0, "the storm must trip ECN marking");
    }
}
