//! The shared §VI flood rung: the workload behind both the `qpsweep`
//! scaling gate and the `perfsuite` trajectory artifact.
//!
//! Each rung shards its QPs across independent client/server host pairs
//! of [`SHARD_QPS`] QPs each — one §VI flood per shard (all READs
//! landing on one cold client-side ODP page) — inside a *single*
//! engine, so one shared event heap carries thousands of concurrently
//! armed keyed timers (ACK timeouts, RNR waits, 0.5 ms stall ticks).
//! Keeping the workload in one place guarantees the perf numbers in
//! `BENCH_<pr>.json` measure exactly what the qpsweep gate enforces.
//!
//! [`run_flood_rung_sharded`] runs the identical workload on the
//! conservative-lookahead PDES executor. The host pairs are independent
//! (no cross-pair QPs), so a pair-aligned owner map has no cross-shard
//! links at all and the epoch width falls back to the ODP fault-draw
//! floor — the shards genuinely run concurrently, and the rung must
//! still reproduce the sequential completion counts, span counts and
//! simulated end time exactly.

use std::time::Instant;

use ibsim_event::{QueueStats, SimTime};
use ibsim_fabric::LinkSpec;
use ibsim_verbs::{
    merge_shard_telemetry, run_sharded, Cluster, DeviceProfile, HostId, MrMode, QpConfig, ReadWr,
    ShardPlan, Sim, Telemetry,
};

/// QPs per client/server host pair — the paper's §VI flood scale.
pub const SHARD_QPS: usize = 64;

/// Measured outcome of one flood rung.
#[derive(Debug, Clone)]
pub struct FloodRung {
    /// Total QPs in the rung (a multiple of [`SHARD_QPS`]).
    pub qps: usize,
    /// Simulated completion time of the whole rung.
    pub exec: SimTime,
    /// Host wall-clock seconds the rung took, setup included.
    pub wall_secs: f64,
    /// Completions drained across every client CQ (one per QP when the
    /// flood fully drains).
    pub completions: usize,
    /// Engine queue statistics after the drain (merged across shards on
    /// the PDES executor, with `peak_depth` zeroed — per-shard peaks do
    /// not compose).
    pub stats: QueueStats,
    /// Telemetry fault spans recorded (one per shard: each shard has
    /// exactly one cold ODP page).
    pub spans: usize,
}

/// Builds one rung's cluster: `qps / SHARD_QPS` independent 64-QP
/// floods, every QP posting a single 32 B READ against its pair's cold
/// ODP page at t = 0. The rung seed is `qps`, so every invocation of a
/// given rung replays the identical simulation. `shard` selects the
/// replica to build for a PDES run; posts land only on the owning
/// shard.
fn build_flood_rung(qps: usize, shard: Option<(usize, &[usize])>) -> (Sim, Cluster) {
    let mut eng = Sim::new();
    let mut cl = Cluster::new(qps as u64);
    cl.telemetry_enable();
    let device = DeviceProfile::connectx4(LinkSpec::fdr());
    let qp_cfg = QpConfig {
        cack: 18,
        ..QpConfig::default()
    };

    for s in 0..qps / SHARD_QPS {
        cl.add_host(&format!("client{s}"), device.clone());
        cl.add_host(&format!("server{s}"), device.clone());
    }
    if let Some((id, owner)) = shard {
        cl.enable_sharding(id, owner.to_vec());
    }
    for s in 0..qps / SHARD_QPS {
        let (a, b) = (HostId(2 * s), HostId(2 * s + 1));
        // A pair neither of whose endpoints is owned never interacts
        // with this replica: its MR keys and QPNs are per-host counters,
        // so skipping its setup entirely cannot shift any owned host's
        // identifiers — it only removes dead build work.
        if !(cl.owns(a) || cl.owns(b)) {
            continue;
        }
        let remote = cl.alloc_mr(b, 4096, MrMode::Pinned);
        let local = cl.alloc_mr(a, 4096, MrMode::Odp);
        for i in 0..SHARD_QPS {
            let qp = cl.connect_pair(&mut eng, a, b, qp_cfg.clone()).0;
            if cl.owns(a) {
                cl.post(
                    &mut eng,
                    a,
                    qp,
                    ReadWr::new((local.key, (i * 32) as u64), remote.key)
                        .len(32)
                        .id(i as u64),
                );
            }
        }
    }
    (eng, cl)
}

/// The client host ids of a rung, in pair order.
fn rung_clients(qps: usize) -> Vec<HostId> {
    (0..qps / SHARD_QPS).map(|s| HostId(2 * s)).collect()
}

/// Runs one rung sequentially.
pub fn run_flood_rung(qps: usize) -> FloodRung {
    let started = Instant::now();
    let (mut eng, mut cl) = build_flood_rung(qps, None);
    eng.run(&mut cl);
    cl.sync_telemetry(&eng);
    let completions = rung_clients(qps).iter().map(|&a| cl.poll_cq(a).len()).sum();
    FloodRung {
        qps,
        exec: eng.now(),
        wall_secs: started.elapsed().as_secs_f64(),
        completions,
        stats: eng.queue_stats(),
        spans: cl.telemetry().spans().len(),
    }
}

/// Runs one rung on `shards` PDES shards with a pair-aligned block
/// owner map (client and server of a pair always co-located, so there
/// are no cross-shard links). Reproduces [`run_flood_rung`]'s simulated
/// outcome exactly; only `wall_secs` (and `stats.peak_depth`) may
/// differ.
pub fn run_flood_rung_sharded(qps: usize, shards: usize) -> FloodRung {
    let started = Instant::now();
    let pairs = qps / SHARD_QPS;
    let owner: Vec<usize> = (0..pairs * 2).map(|h| (h / 2) * shards / pairs).collect();
    let plan = ShardPlan::new(shards, owner);

    struct Out {
        completions: usize,
        telemetry: Telemetry,
        stats: QueueStats,
        globals: (u64, u64),
        end: SimTime,
    }
    let outs: Vec<Out> = run_sharded(
        &plan,
        None,
        |id| build_flood_rung(qps, Some((id, &plan.owner))),
        |_, eng, mut cl, canonical_end| {
            cl.sync_telemetry_at(&eng, canonical_end);
            let mut completions = 0;
            for a in rung_clients(qps) {
                if cl.owns(a) {
                    completions += cl.poll_cq(a).len();
                }
            }
            Out {
                completions,
                telemetry: std::mem::take(cl.telemetry_mut()),
                stats: eng.queue_stats(),
                globals: cl.shard_global_counters(),
                end: canonical_end,
            }
        },
    );

    let globals = outs[0].globals;
    let end = outs[0].end;
    let completions = outs.iter().map(|o| o.completions).sum();
    let qss: Vec<QueueStats> = outs.iter().map(|o| o.stats).collect();
    let hubs: Vec<Telemetry> = outs.into_iter().map(|o| o.telemetry).collect();
    let (telemetry, stats) = merge_shard_telemetry(&hubs, &qss, globals.0, globals.1);
    FloodRung {
        qps,
        exec: end,
        wall_secs: started.elapsed().as_secs_f64(),
        completions,
        stats,
        spans: telemetry.spans().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_rung_reproduces_the_sequential_outcome() {
        let seq = run_flood_rung(2 * SHARD_QPS);
        for shards in [1usize, 2] {
            let par = run_flood_rung_sharded(2 * SHARD_QPS, shards);
            assert_eq!(seq.exec, par.exec, "{shards} shards: end time diverged");
            assert_eq!(seq.completions, par.completions, "{shards} shards");
            assert_eq!(seq.spans, par.spans, "{shards} shards");
            assert_eq!(
                seq.stats.executed, par.stats.executed,
                "{shards} shards: executed-event count diverged"
            );
        }
    }
}
