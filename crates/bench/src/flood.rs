//! The shared §VI flood rung: the workload behind both the `qpsweep`
//! scaling gate and the `perfsuite` trajectory artifact.
//!
//! Each rung shards its QPs across independent client/server host pairs
//! of [`SHARD_QPS`] QPs each — one §VI flood per shard (all READs
//! landing on one cold client-side ODP page) — inside a *single*
//! engine, so one shared event heap carries thousands of concurrently
//! armed keyed timers (ACK timeouts, RNR waits, 0.5 ms stall ticks).
//! Keeping the workload in one place guarantees the perf numbers in
//! `BENCH_<pr>.json` measure exactly what the qpsweep gate enforces.

use std::time::Instant;

use ibsim_event::{QueueStats, SimTime};
use ibsim_fabric::LinkSpec;
use ibsim_verbs::{Cluster, DeviceProfile, MrMode, QpConfig, ReadWr, Sim};

/// QPs per client/server host pair — the paper's §VI flood scale.
pub const SHARD_QPS: usize = 64;

/// Measured outcome of one flood rung.
#[derive(Debug, Clone)]
pub struct FloodRung {
    /// Total QPs in the rung (a multiple of [`SHARD_QPS`]).
    pub qps: usize,
    /// Simulated completion time of the whole rung.
    pub exec: SimTime,
    /// Host wall-clock seconds the rung took, setup included.
    pub wall_secs: f64,
    /// Completions drained across every client CQ (one per QP when the
    /// flood fully drains).
    pub completions: usize,
    /// Engine queue statistics after the drain.
    pub stats: QueueStats,
    /// Telemetry fault spans recorded (one per shard: each shard has
    /// exactly one cold ODP page).
    pub spans: usize,
}

/// Runs one rung: `qps / SHARD_QPS` independent 64-QP floods in one
/// engine, every QP posting a single 32 B READ against the shard's cold
/// ODP page at t = 0. The rung seed is `qps`, so every invocation of a
/// given rung replays the identical simulation.
pub fn run_flood_rung(qps: usize) -> FloodRung {
    let started = Instant::now();
    let mut eng = Sim::new();
    let mut cl = Cluster::new(qps as u64);
    cl.telemetry_enable();
    let device = DeviceProfile::connectx4(LinkSpec::fdr());
    let qp_cfg = QpConfig {
        cack: 18,
        ..QpConfig::default()
    };

    let mut clients = Vec::new();
    for s in 0..qps / SHARD_QPS {
        let a = cl.add_host(&format!("client{s}"), device.clone());
        let b = cl.add_host(&format!("server{s}"), device.clone());
        let remote = cl.alloc_mr(b, 4096, MrMode::Pinned);
        let local = cl.alloc_mr(a, 4096, MrMode::Odp);
        for i in 0..SHARD_QPS {
            let qp = cl.connect_pair(&mut eng, a, b, qp_cfg.clone()).0;
            cl.post(
                &mut eng,
                a,
                qp,
                ReadWr::new((local.key, (i * 32) as u64), remote.key)
                    .len(32)
                    .id(i as u64),
            );
        }
        clients.push(a);
    }

    eng.run(&mut cl);
    cl.sync_telemetry(&eng);
    let completions = clients.iter().map(|&a| cl.poll_cq(a).len()).sum();
    FloodRung {
        qps,
        exec: eng.now(),
        wall_secs: started.elapsed().as_secs_f64(),
        completions,
        stats: eng.queue_stats(),
        spans: cl.telemetry().spans().len(),
    }
}
