//! # ibsim-bench
//!
//! The experiment harness regenerating every table and figure of
//! *Pitfalls of InfiniBand with On-Demand Paging* (ISPASS 2021).
//!
//! One binary per experiment (run with `--release`; most accept
//! `--quick` for a reduced-scale pass):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I + Table II (system catalog) |
//! | `fig1` | Fig. 1 single-READ ODP workflows |
//! | `fig2` | Fig. 2 `T_o` vs `C_ack` curves |
//! | `fig4` | Fig. 4 two-READ execution time vs interval |
//! | `fig5` | Fig. 5 two-READ damming workflow |
//! | `fig6` | Fig. 6a/6b timeout probability vs interval |
//! | `fig7` | Fig. 7 timeout probability vs op count |
//! | `fig8` | Fig. 8 three-READ NAK-rescue workflow |
//! | `fig9` | Fig. 9a/9b execution time & packets vs #QPs |
//! | `fig11` | Fig. 10 layout + Fig. 11 completions per page |
//! | `fig12` | Fig. 12 ArgoDSM init/finalize histograms |
//! | `table13` | Fig. 13 SparkUCX table |
//! | `all` | everything above, in sequence |
//! | `perfsuite` | perf trajectory artifact (`BENCH_<pr>.json`) |
//!
//! This library hosts the shared formatting and statistics helpers.

#![warn(missing_docs)]

pub mod congestion;
pub mod flood;
pub mod json;

use ibsim_event::SimTime;

/// Returns true if `--quick` was passed: run a reduced-scale variant.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Sample mean in seconds.
pub fn mean_secs(samples: &[SimTime]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|t| t.as_secs_f64()).sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (n−1) in seconds.
pub fn std_secs(samples: &[SimTime]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean_secs(samples);
    let var = samples
        .iter()
        .map(|t| {
            let d = t.as_secs_f64() - m;
            d * d
        })
        .sum::<f64>()
        / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Renders a compact fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{c:>w$}  ", w = w));
    }
    out.trim_end().to_owned()
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a time as seconds with 3 decimals.
pub fn secs(t: SimTime) -> String {
    format!("{:.3}", t.as_secs_f64())
}

/// Formats a time as milliseconds with 2 decimals.
pub fn millis(t: SimTime) -> String {
    format!("{:.2}", t.as_ms_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        let s = [SimTime::from_ms(10), SimTime::from_ms(20)];
        assert!((mean_secs(&s) - 0.015).abs() < 1e-12);
        assert!(std_secs(&s) > 0.0);
        assert_eq!(std_secs(&s[..1]), 0.0);
        assert_eq!(mean_secs(&[]), 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(SimTime::from_ms(1500)), "1.500");
        assert_eq!(millis(SimTime::from_us(1280)), "1.28");
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
