//! Regenerates Fig. 13 (the SparkUCX table): execution time of three
//! Spark examples with ODP disabled/enabled on four cluster
//! configurations. Absolute times are scaled ~100x down (one shuffle
//! round instead of a whole Spark job); compare the ratios and QP counts.

use ibsim_bench::{header, mean_secs, quick_mode, row, std_secs};
use ibsim_event::SimTime;
use ibsim_shuffle::presets::{fig13_cells, SparkExample};
use ibsim_shuffle::run_shuffle;

fn main() {
    let trials = if quick_mode() { 1 } else { 3 };
    for example in SparkExample::ALL {
        header(example.name());
        let widths = [16, 6, 12, 12, 16, 12];
        println!(
            "{}",
            row(
                &[
                    "Cluster".into(),
                    "QPs".into(),
                    "Disable [s]".into(),
                    "Enable [s]".into(),
                    "Enable/Disable".into(),
                    "paper ratio".into(),
                ],
                &widths
            )
        );
        for cell in fig13_cells().iter().filter(|c| c.example == example) {
            let mut disabled = Vec::new();
            let mut enabled = Vec::new();
            let mut failed = 0;
            let mut qps = 0;
            for t in 0..trials {
                let rep = run_shuffle(&cell.config(false, 100 + t));
                qps = rep.qps;
                disabled.push(rep.duration);
                let rep = run_shuffle(&cell.config(true, 200 + t));
                // Fig. 13 omits samples that failed with RETRY_EXC_ERR.
                if rep.failed_fetches == 0 {
                    enabled.push(rep.duration);
                } else {
                    failed += 1;
                    enabled.push(rep.duration);
                }
            }
            let dm = mean_secs(&disabled);
            let em = mean_secs(&enabled);
            println!(
                "{}",
                row(
                    &[
                        cell.cluster.name().into(),
                        qps.to_string(),
                        format!("{dm:.3}±{:.3}", std_secs(&disabled)),
                        format!("{em:.3}±{:.3}", std_secs(&enabled)),
                        format!("{:.2}", em / dm),
                        format!("{:.2}", cell.paper_ratio()),
                    ],
                    &widths
                )
            );
            if failed > 0 {
                println!("   ({failed} enabled trials had RETRY_EXC_ERR fetches)");
            }
            let _ = SimTime::ZERO;
        }
    }
    println!(
        "\nPaper reference ratios: SparkTC 1.56/6.46/1.01/1.42;\n\
         Recommendation 1.51/3.59/1.07/1.18; RankingMetrics 1.30/2.38/1.37/2.37\n\
         for KNL(2)/Reedbush-H(2)/ABCI(2)/ABCI(4). Degradation is timing-\n\
         dependent (packet flood + occasional damming timeouts)."
    );
}
