//! Regenerates Table I (InfiniBand systems and RNIC details) and Table II
//! (host environments) from the device catalog, including the simulator's
//! derived timeout parameters.

use ibsim_bench::{header, row};
use ibsim_odp::SystemProfile;

fn main() {
    header("Table I: InfiniBand systems and details on their RNICs");
    let widths = [22, 16, 24, 12, 12];
    println!(
        "{}",
        row(
            &[
                "System name".into(),
                "PSID".into(),
                "Model name".into(),
                "Driver".into(),
                "Firmware".into(),
            ],
            &widths
        )
    );
    for s in SystemProfile::all() {
        println!(
            "{}",
            row(
                &[
                    s.name.into(),
                    s.psid.into(),
                    s.model_name.into(),
                    s.driver_version.into(),
                    s.firmware_version.into(),
                ],
                &widths
            )
        );
    }

    header("Table II: experimental environment");
    let widths2 = [22, 34, 8, 22];
    println!(
        "{}",
        row(
            &[
                "System name".into(),
                "CPU".into(),
                "Cores".into(),
                "Memory".into(),
            ],
            &widths2
        )
    );
    for s in SystemProfile::all() {
        if s.cpu.is_empty() {
            continue;
        }
        println!(
            "{}",
            row(
                &[
                    s.name.into(),
                    s.cpu.into(),
                    s.logical_cores.to_string(),
                    s.memory.into(),
                ],
                &widths2
            )
        );
    }

    header("Derived simulator parameters (per device model)");
    println!(
        "{}",
        row(
            &[
                "System name".into(),
                "min C_ack".into(),
                "T_o floor".into(),
                "damming".into(),
            ],
            &[22, 10, 12, 8]
        )
    );
    for s in SystemProfile::all() {
        println!(
            "{}",
            row(
                &[
                    s.name.into(),
                    s.device.min_cack.to_string(),
                    format!(
                        "{}",
                        s.device
                            .t_o(1)
                            .expect("invariant: every Table I device defines t_o(1)")
                    ),
                    s.device.damming.to_string(),
                ],
                &[22, 10, 12, 8]
            )
        );
    }
}
