//! Recovery-backend ablation: the §V damming and §VI flood
//! micro-benchmarks re-run under each loss-recovery backend.
//!
//! Go-back-N is the hardware the paper measured, so its runs double as
//! golden gates: the client packet timelines must hash to the pinned
//! FNV values, proving the `RecoveryPolicy` extraction left the modeled
//! ConnectX-4 behavior bit-identical. Selective repeat (IRN) and
//! on-demand pinning (NP-RDMA) are the counterfactuals: the run asserts
//! the structural claims (IRN retransmits strictly less under the
//! flood; pinning never opens the fault window) and prints the ablation
//! table README quotes.
//!
//! ```text
//! cargo run --release -p ibsim-bench --bin recovery
//! ```

use ibsim_bench::{header, row, secs};
use ibsim_event::SimTime;
use ibsim_fabric::LinkSpec;
use ibsim_odp::{fnv1a_str, run_microbench, MicrobenchConfig, MicrobenchRun, OdpMode};
use ibsim_verbs::{DeviceProfile, RecoveryKind};

/// Every backend, in ablation order (the paper's hardware first).
const KINDS: [RecoveryKind; 3] = [
    RecoveryKind::GoBackN,
    RecoveryKind::SelectiveRepeat,
    RecoveryKind::OnDemandPin,
];

/// Pinned FNV-1a hash of the go-back-N §V damming client timeline.
const GBN_DAMMING_GOLDEN: u64 = 0x4807_1338_d6e8_def4;
/// Pinned FNV-1a hash of the go-back-N §VI flood client timeline.
const GBN_FLOOD_GOLDEN: u64 = 0x6ee9_7c4d_3a1f_eb25;

/// The §V two-READ packet-damming micro-benchmark (server-side ODP,
/// 1 ms posting interval) under one backend.
fn damming(kind: RecoveryKind) -> MicrobenchRun {
    run_microbench(&MicrobenchConfig {
        device: DeviceProfile::connectx4(LinkSpec::fdr()),
        interval: SimTime::from_ms(1),
        odp: OdpMode::ServerSide,
        capture: true,
        recovery: kind,
        ..Default::default()
    })
}

/// The §VI 128-QP packet-flood micro-benchmark (client-side ODP,
/// `C_ack = 18`) under one backend.
fn flood(kind: RecoveryKind) -> MicrobenchRun {
    run_microbench(&MicrobenchConfig {
        device: DeviceProfile::connectx4(LinkSpec::fdr()),
        size: 32,
        num_ops: 512,
        num_qps: 128,
        odp: OdpMode::ClientSide,
        cack: 18,
        capture: true,
        recovery: kind,
        ..Default::default()
    })
}

fn table(title: &str, runs: &[(RecoveryKind, MicrobenchRun)]) {
    header(title);
    let widths = [16, 14, 10, 8, 11, 8, 8];
    println!(
        "{}",
        row(
            &[
                "backend".into(),
                "exec time".into(),
                "timeouts".into(),
                "retx".into(),
                "discarded".into(),
                "faults".into(),
                "pinned".into(),
            ],
            &widths
        )
    );
    for (kind, run) in runs {
        println!(
            "{}",
            row(
                &[
                    kind.to_string(),
                    secs(run.execution_time),
                    run.timeouts.to_string(),
                    run.retransmissions.to_string(),
                    run.responses_discarded.to_string(),
                    run.faults.to_string(),
                    run.pages_pinned.to_string(),
                ],
                &widths
            )
        );
    }
}

fn main() {
    let damming_runs: Vec<_> = KINDS.into_iter().map(|k| (k, damming(k))).collect();
    let flood_runs: Vec<_> = KINDS.into_iter().map(|k| (k, flood(k))).collect();
    for (_, run) in damming_runs.iter().chain(&flood_runs) {
        assert_eq!(run.errors, 0, "every op must complete");
        assert!(run.data_ok, "every READ must return the right bytes");
    }

    table(
        "Recovery ablation 1: §V packet damming (two READs, 1 ms apart, server ODP)",
        &damming_runs,
    );
    table(
        "Recovery ablation 2: §VI packet flood (128 QPs x 512 READs, client ODP)",
        &flood_runs,
    );

    // --- Golden gates: go-back-N is bit-identical to the pre-trait model.
    let gbn_damming = fnv1a_str(&damming_runs[0].1.client_timeline());
    let gbn_flood = fnv1a_str(&flood_runs[0].1.client_timeline());
    assert_eq!(
        gbn_damming, GBN_DAMMING_GOLDEN,
        "go-back-N damming timeline drifted (hash {gbn_damming:#018x})"
    );
    assert_eq!(
        gbn_flood, GBN_FLOOD_GOLDEN,
        "go-back-N flood timeline drifted (hash {gbn_flood:#018x})"
    );

    // --- Structural claims per backend (runs follow `KINDS` order).
    let [gbn_d, irn_d, pin_d] = [&damming_runs[0].1, &damming_runs[1].1, &damming_runs[2].1];
    let [gbn_f, irn_f, pin_f] = [&flood_runs[0].1, &flood_runs[1].1, &flood_runs[2].1];

    // Only pinning pins; everything else leaves ODP demand-paged.
    for run in [gbn_d, irn_d, gbn_f, irn_f] {
        assert_eq!(run.pages_pinned, 0, "only on-demand pinning may pin");
    }
    assert!(pin_d.pages_pinned > 0 && pin_f.pages_pinned > 0);

    // IRN removes the flood's retransmit amplification outright.
    assert!(
        irn_f.retransmissions < gbn_f.retransmissions,
        "selective repeat must retransmit strictly less than go-back-N \
         under the flood ({} vs {})",
        irn_f.retransmissions,
        gbn_f.retransmissions
    );

    // Pinning closes the fault window before it opens: no faults, no
    // timeouts, and the damming incident disappears entirely.
    for run in [pin_d, pin_f] {
        assert_eq!(run.faults, 0, "pinning must not fault");
        assert_eq!(run.timeouts, 0, "pinning must not time out");
        assert_eq!(run.responses_discarded, 0);
    }
    assert!(
        pin_d.execution_time < gbn_d.execution_time,
        "pinning must beat go-back-N through the damming window"
    );

    println!();
    println!("golden gbn damming hash {gbn_damming:#018x}, flood hash {gbn_flood:#018x}");
    println!("recovery ablation: all gates passed");
}
