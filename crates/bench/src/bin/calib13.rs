//! Calibration sweep for the Fig. 13 presets: for every cell, try a grid
//! of `fetch_stagger` × `fetch_parallelism` values and print the measured
//! enable/disable ratio next to the paper's, so preset constants can be
//! chosen empirically.
//!
//! ```text
//! cargo run --release -p ibsim-bench --bin calib13
//! ```

use ibsim_bench::mean_secs;
use ibsim_event::SimTime;
use ibsim_shuffle::presets::fig13_cells;
use ibsim_shuffle::run_shuffle;

fn main() {
    let staggers_us = [5u64, 20, 60, 150, 400, 900, 2000];
    let pars = [2usize, 6, 12];
    for cell in fig13_cells() {
        println!(
            "\n## {} / {} (paper ratio {:.2})",
            cell.cluster.name(),
            cell.example.name(),
            cell.paper_ratio()
        );
        let mut base_cfg = cell.config(false, 0);
        base_cfg.seed = 100;
        let disabled = run_shuffle(&base_cfg).duration.as_secs_f64();
        for &par in &pars {
            for &st in &staggers_us {
                let mut samples = Vec::new();
                for t in 0..3u64 {
                    let mut cfg = cell.config(true, 200 + t);
                    cfg.fetch_stagger = SimTime::from_us(st);
                    cfg.fetch_parallelism = par;
                    samples.push(run_shuffle(&cfg).duration);
                }
                let ratio = mean_secs(&samples) / disabled;
                println!("  par={par:<2} stagger={st:>5}us  ratio={ratio:.2}");
            }
        }
    }
}
