//! Regenerates Fig. 10 (the buffer/QP layout) and Fig. 11: number of
//! completed operations per page over time, with 128 QPs, 32-byte
//! messages and client-side ODP, for 128 and 512 operations.

use ibsim_bench::{header, quick_mode};
use ibsim_odp::{fig11_curves, MicrobenchConfig};

fn main() {
    let qps = if quick_mode() { 64 } else { 128 };
    header("Fig. 10: memory layout (32-byte slots, one QP per op, round-robin)");
    let cfg = MicrobenchConfig {
        size: 32,
        num_ops: 512,
        num_qps: qps,
        ..Default::default()
    };
    println!(
        "512 ops x 32 B -> {} pages; ops i uses QP i % {} at byte offset 32*i",
        cfg.pages_involved(),
        qps
    );

    for &ops in &[qps, 4 * qps] {
        header(&format!(
            "Fig. 11: {ops} operations, {qps} QPs, client-side ODP"
        ));
        println!("page,op_index_within_page,completion_ms");
        let curves = fig11_curves(ops, qps);
        for c in &curves {
            for (i, t) in c.completions.iter().enumerate() {
                println!("{},{},{:.3}", c.page, i, t.as_ms_f64());
            }
        }
        let last = curves
            .iter()
            .flat_map(|c| c.completions.iter())
            .max()
            .copied();
        if let Some(last) = last {
            println!("(last completion at {last})");
        }
    }
    println!(
        "\nPaper reference: with 128 ops the page fault resolves around 1 ms\n\
         but ~30 stragglers wait until ~6 ms for their per-QP page-status\n\
         update; with 512 ops (4 pages) the tail stretches to hundreds of\n\
         milliseconds."
    );
}
