//! Ablation studies for the modeled design choices.
//!
//! Part 1 — the memory-management trade-off the paper's introduction
//! frames (registration cost vs pinned memory vs ODP):
//! register-per-transfer, pin-down cache \[16\], ODP, and pin-everything.
//!
//! Part 2 — device-quirk knockouts: which modeled mechanism produces
//! which observed result. Turning one knob at a time shows packet damming
//! hinges on the recovery-retransmission flaw, the Fig. 6 window on the
//! RNR stretch, and the flood tail on the resume capacity and interrupt
//! starvation.
//!
//! ```text
//! cargo run --release -p ibsim-bench --bin ablation
//! ```

use ibsim_bench::{header, row, secs};
use ibsim_event::{Engine, SimTime};
use ibsim_fabric::LinkSpec;
use ibsim_odp::regcache::{deregistration_cost, registration_cost, PinDownCache};
use ibsim_odp::{run_microbench, MicrobenchConfig, OdpMode};
use ibsim_verbs::{Cluster, DeviceProfile, MrMode, QpConfig, ReadWr, Sim, WrId};

/// Sequentially READs `transfers` times, one of `buffers` 16 KiB client
/// buffers per transfer (round-robin), under one strategy; returns
/// (mean per-transfer latency, peak pinned bytes on the client).
fn memory_strategy_run(strategy: &str, transfers: usize, buffers: usize) -> (SimTime, u64) {
    const LEN: u64 = 16 * 4096;
    let mut eng: Sim = Engine::new();
    let mut cl = Cluster::new(9);
    let device = DeviceProfile::connectx6(); // isolate from damming
    let a = cl.add_host("client", device.clone());
    let b = cl.add_host("server", device);
    let remote = cl.alloc_mr(b, LEN, MrMode::Pinned);
    let (qp, _) = cl.connect_pair(&mut eng, a, b, QpConfig::default());

    let bases: Vec<u64> = (0..buffers).map(|_| cl.alloc_buffer(a, LEN)).collect();
    let mut cache = PinDownCache::new(a, u64::MAX >> 1);
    let mut pinned_keys = Vec::new();
    let mut total = SimTime::ZERO;
    let mut peak_pinned = 0u64;

    // Pre-pin for the "pinned" strategy; pre-register ODP regions once.
    let odp_keys: Vec<_> = if strategy == "odp" {
        bases
            .iter()
            .map(|&bse| cl.reg_mr(a, bse, LEN, MrMode::Odp).key)
            .collect()
    } else {
        Vec::new()
    };
    if strategy == "pinned" {
        for &bse in &bases {
            pinned_keys.push(cl.reg_mr(a, bse, LEN, MrMode::Pinned).key);
        }
        peak_pinned = buffers as u64 * LEN;
    }

    for i in 0..transfers {
        let buf = i % buffers;
        let start = eng.now();
        let (key, ready) = match strategy {
            "register-each" => {
                let cost = registration_cost(LEN);
                let key = cl.reg_mr(a, bases[buf], LEN, MrMode::Pinned).key;
                peak_pinned = peak_pinned.max(LEN);
                (key, eng.now() + cost)
            }
            "pin-down-cache" => {
                let (key, ready) = cache.acquire(&mut eng, &mut cl, bases[buf], LEN);
                peak_pinned = peak_pinned.max(cache.stats().peak_pinned_bytes);
                (key, ready)
            }
            "odp" => (odp_keys[buf], eng.now()),
            "pinned" => (pinned_keys[buf], eng.now()),
            other => panic!("unknown strategy {other}"),
        };
        let wr = WrId(i as u64);
        eng.schedule_at(ready.max(eng.now()), move |c: &mut Cluster, eng| {
            c.post(eng, a, qp, ReadWr::new(key, remote.key).len(4096).id(wr));
        });
        eng.run(&mut cl);
        let cq = cl.poll_cq(a);
        assert_eq!(cq.len(), 1, "{strategy}: transfer completes");
        assert!(cq[0].status.is_success());
        let mut elapsed = cq[0].at - start;
        if strategy == "register-each" {
            // The buffer is deregistered after use.
            elapsed += deregistration_cost(LEN);
        }
        total += elapsed;
    }
    (total / transfers as u64, peak_pinned)
}

fn part1() {
    header("Ablation 1: memory-management strategies (64 transfers over 8 x 64 KiB buffers)");
    let widths = [16, 22, 18];
    println!(
        "{}",
        row(
            &[
                "strategy".into(),
                "mean latency/transfer".into(),
                "peak pinned [KiB]".into()
            ],
            &widths
        )
    );
    for strategy in ["register-each", "pin-down-cache", "odp", "pinned"] {
        let (mean, pinned) = memory_strategy_run(strategy, 64, 8);
        println!(
            "{}",
            row(
                &[
                    strategy.into(),
                    format!("{mean}"),
                    (pinned / 1024).to_string()
                ],
                &widths
            )
        );
    }
    println!(
        "(the intro's trade-off: registering every time pays ~60 µs per\n\
         transfer; the pin-down cache converges to pinned speed at pinned\n\
         memory cost; ODP pays page faults on first touch only, with no\n\
         pinned memory — until the pitfalls strike.)"
    );
}

fn part2() {
    header("Ablation 2: quirk knockouts");
    let damming_case = |device: DeviceProfile| {
        let run = run_microbench(&MicrobenchConfig {
            device,
            interval: SimTime::from_ms(1),
            ..Default::default()
        });
        (run.execution_time, run.timeouts)
    };
    let cx4 = DeviceProfile::connectx4(LinkSpec::fdr());
    let (t_on, to_on) = damming_case(cx4.clone());
    let healthy = DeviceProfile {
        damming: false,
        ..cx4.clone()
    };
    let (t_off, to_off) = damming_case(healthy);
    println!(
        "damming flag ON : two-READ benchmark {} ({} timeouts)",
        secs(t_on),
        to_on
    );
    println!(
        "damming flag OFF: two-READ benchmark {} ({} timeouts)",
        secs(t_off),
        to_off
    );

    // RNR stretch governs the Fig. 6a window width.
    for stretch_pm in [1000u64, 3500] {
        let device = DeviceProfile {
            rnr_stretch_pm: stretch_pm,
            ..cx4.clone()
        };
        let run = run_microbench(&MicrobenchConfig {
            device,
            interval: SimTime::from_ms(2),
            odp: OdpMode::ServerSide,
            ..Default::default()
        });
        println!(
            "rnr_stretch {:>4} permille: 2 ms interval -> {} ({} timeouts; window = stretch x 1.28 ms)",
            stretch_pm,
            secs(run.execution_time),
            run.timeouts
        );
    }

    // Resume capacity governs the flood onset.
    for slots in [4u32, 10, 64, 1024] {
        let device = DeviceProfile {
            resume_slots: slots,
            ..cx4.clone()
        };
        let run = run_microbench(&MicrobenchConfig {
            device,
            size: 32,
            num_ops: 128,
            num_qps: 128,
            odp: OdpMode::ClientSide,
            cack: 18,
            ..Default::default()
        });
        println!(
            "resume_slots {slots:>4}: 128-QP flood case finishes in {} ({} discarded responses)",
            run.execution_time, run.responses_discarded
        );
    }

    // Interrupt starvation governs the Fig. 11b tail.
    for burst in [1u32, 64, 512] {
        let device = DeviceProfile {
            irq_burst: burst,
            ..cx4.clone()
        };
        let run = run_microbench(&MicrobenchConfig {
            device,
            size: 32,
            num_ops: 512,
            num_qps: 128,
            odp: OdpMode::ClientSide,
            cack: 18,
            ..Default::default()
        });
        println!(
            "irq_burst {burst:>4}: 512-op flood case finishes in {}",
            run.execution_time
        );
    }
}

fn main() {
    part1();
    part2();
}
