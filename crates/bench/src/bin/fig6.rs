//! Regenerates Fig. 6: probability of timeout (10 trials) vs the interval
//! of two READs, for server-side (a) and client-side (b) ODP, varying the
//! minimal RNR NAK delay.

use ibsim_bench::{header, quick_mode};
use ibsim_event::SimTime;
use ibsim_odp::{fig6_series, OdpMode};

fn main() {
    let trials = if quick_mode() { 3 } else { 10 };
    let step_us = if quick_mode() { 750 } else { 250 };
    let intervals: Vec<SimTime> = (0..=(6_000 / step_us))
        .map(|i| SimTime::from_us(i * step_us))
        .collect();

    header("Fig. 6a: server-side ODP, P(timeout) vs interval");
    let delays = [
        SimTime::from_us(10),
        SimTime::from_ms_f64(1.28),
        SimTime::from_ms_f64(10.24),
    ];
    print_series(
        &intervals,
        fig6_series(OdpMode::ServerSide, &delays, &intervals, trials),
    );

    header("Fig. 6b: client-side ODP, P(timeout) vs interval");
    let delays_b = [SimTime::from_ms_f64(1.28)];
    print_series(
        &intervals,
        fig6_series(OdpMode::ClientSide, &delays_b, &intervals, trials),
    );

    println!(
        "\nPaper reference: 6a's window tracks the actual RNR wait (~4.5 ms\n\
         at 1.28 ms delay); 6b's window is ~0.5 ms, the client-side\n\
         retransmission interval."
    );
}

fn print_series(intervals: &[SimTime], series: Vec<ibsim_odp::TimeoutSeries>) {
    print!("interval_ms");
    for s in &series {
        print!(",{}", s.label);
    }
    println!();
    for (i, iv) in intervals.iter().enumerate() {
        print!("{:.3}", iv.as_ms_f64());
        for s in &series {
            print!(",{:.0}", s.points[i].1 * 100.0);
        }
        println!();
    }
}
