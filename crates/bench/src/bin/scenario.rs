//! The scenario conformance runner: CI's entry point into the
//! `ibsim-scenario` fuzzing harness.
//!
//! ```text
//! cargo run --release --bin scenario                      # corpus only
//! cargo run --release --bin scenario -- --workers 4 --fuzz 256 --minimize-demo
//! cargo run --release --bin scenario -- --shards 4        # PDES conformance
//! cargo run --release --bin scenario -- --only fattree,ring   # corpus subset
//! ```
//!
//! Stages (each optional flag adds one):
//!
//! 1. **Corpus**: runs the paper-derived corpus through the differential
//!    oracle with 1 worker and with `--workers` workers, and fails on
//!    any oracle violation *or* any per-scenario trace-hash divergence
//!    between the two runs (thread-count independence is an enforced
//!    invariant, not a hope). `--shards N` additionally moves the second
//!    run onto N PDES shards, so the same diff enforces shard-count
//!    conformance against the sequential baseline.
//! 2. **Fuzz** (`--fuzz N`): generates N seeded random scenarios and
//!    runs them through the oracle the same dual-run way.
//! 3. **Minimizer demo** (`--minimize-demo`): plants a known divergence
//!    into the reference model (`Injection::WriteCorruption`), shrinks
//!    the failing mixed-verbs corpus scenario, and fails unless the
//!    reproducer still fails and has at most 3 work requests.
//!
//! Exits non-zero on any failure, printing the offending reports first.

use ibsim_bench::{header, quick_mode, row};
use ibsim_scenario::{
    check_run_with, paper_corpus, random_scenario, run_corpus, run_scenario, shrink, CorpusOutcome,
    Injection, Scenario,
};

fn main() {
    let workers = arg_value("--workers").unwrap_or(4).max(1);
    let shards = arg_value("--shards").unwrap_or(1).max(1);
    let fuzz = arg_value("--fuzz").unwrap_or(0);
    let fuzz = if quick_mode() { fuzz.min(32) } else { fuzz };
    let minimize_demo = std::env::args().any(|a| a == "--minimize-demo");
    let only = arg_str("--only");
    let mut failed = false;

    // `--only a,b` keeps corpus entries whose name contains any of the
    // comma-separated substrings — the CI topology stage uses it to run
    // just the routed-fabric entries at several shard counts.
    let corpus: Vec<Scenario> = paper_corpus()
        .into_iter()
        .filter(|sc| match &only {
            None => true,
            Some(pats) => pats.split(',').any(|p| sc.name.contains(p)),
        })
        .collect();
    if corpus.is_empty() {
        println!("[scenario] --only matched no corpus entries");
        std::process::exit(1);
    }
    failed |= !run_stage("paper corpus", &corpus, workers, shards);

    if fuzz > 0 {
        let scenarios: Vec<Scenario> = (0..fuzz as u64).map(random_scenario).collect();
        failed |= !run_stage(&format!("fuzz x{fuzz}"), &scenarios, workers, shards);
    }

    if minimize_demo {
        failed |= !minimizer_demo();
    }

    if failed {
        std::process::exit(1);
    }
    println!("\n[scenario] all stages passed");
}

/// Parses `--flag N` from the command line.
fn arg_value(flag: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1)?.parse().ok()
}

/// Parses `--flag value` from the command line as a string.
fn arg_str(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1).cloned()
}

/// Runs one batch twice — a sequential-engine baseline with 1 worker,
/// then `workers` workers on `shards` PDES shards — prints the result
/// table, and returns false on oracle violations or divergence. With
/// `--shards 1` this is the classic thread-count-independence check;
/// with `--shards N` the same diff additionally enforces shard-count
/// conformance: every trace hash must survive the move to the sharded
/// executor byte for byte.
fn run_stage(label: &str, scenarios: &[Scenario], workers: usize, shards: usize) -> bool {
    header(&format!("scenario conformance: {label} (shards {shards})"));
    let baseline: Vec<Scenario> = scenarios
        .iter()
        .map(|sc| {
            let mut sc = sc.clone();
            sc.shards = 1;
            sc
        })
        .collect();
    let sharded: Vec<Scenario> = scenarios
        .iter()
        .map(|sc| {
            let mut sc = sc.clone();
            sc.shards = shards;
            sc
        })
        .collect();
    let serial = run_corpus(&baseline, 1);
    let parallel = run_corpus(&sharded, workers);
    let mut ok = true;
    let mut any_diverged = false;

    let widths = [24, 18, 12, 9];
    println!(
        "{}",
        row(
            &[
                "scenario".into(),
                "trace hash".into(),
                "sim end".into(),
                "oracle".into(),
            ],
            &widths
        )
    );
    for (s, p) in serial.iter().zip(&parallel) {
        let diverged = s.hash != p.hash || s != p;
        let status = if s.violations > 0 {
            "FAIL"
        } else if diverged {
            "DIVERGED"
        } else {
            "ok"
        };
        println!(
            "{}",
            row(
                &[
                    s.name.clone(),
                    format!("{:#018x}", s.hash),
                    format!("{:.2} ms", s.end_ns as f64 / 1e6),
                    status.into(),
                ],
                &widths
            )
        );
        if s.violations > 0 {
            println!("{}", indent(&s.report));
            ok = false;
        }
        if diverged {
            println!(
                "    workers=1/shards=1 hash {:#018x} != workers={workers}/shards={shards} \
                 hash {:#018x}",
                s.hash, p.hash
            );
            ok = false;
            any_diverged = true;
        }
    }
    let total: usize = serial.iter().map(|o: &CorpusOutcome| o.violations).sum();
    println!(
        "[scenario] {label}: {} scenario(s), {total} violation(s), \
         workers 1 vs {workers} / shards 1 vs {shards}: {}",
        serial.len(),
        if any_diverged {
            "MISMATCH"
        } else {
            "identical"
        }
    );
    ok
}

/// Plants `Injection::WriteCorruption`, shrinks the failing scenario,
/// and checks the reproducer is minimal (≤ 3 work requests).
fn minimizer_demo() -> bool {
    header("scenario minimizer demo");
    let corpus = paper_corpus();
    let Some(noisy) = corpus.into_iter().find(|s| s.name == "mixed-verbs") else {
        println!("[scenario] FAILED: mixed-verbs scenario missing from corpus");
        return false;
    };
    let still_fails = |sc: &Scenario| {
        let run = run_scenario(sc);
        !check_run_with(sc, &run, Some(Injection::WriteCorruption)).is_clean()
    };
    if !still_fails(&noisy) {
        println!("[scenario] FAILED: planted corruption did not fail the oracle");
        return false;
    }
    let (min, stats) = shrink(&noisy, still_fails);
    println!(
        "shrunk {} wrs -> {}, {} faults -> {}, {} loss phases -> {}, {} QPs -> {} \
         in {} predicate runs",
        stats.wrs.0,
        stats.wrs.1,
        stats.faults.0,
        stats.faults.1,
        stats.loss.0,
        stats.loss.1,
        stats.qps.0,
        stats.qps.1,
        stats.tests
    );
    println!(
        "minimal reproducer spec:\n{}",
        indent(&min.to_spec_string())
    );
    if !still_fails(&min) {
        println!("[scenario] FAILED: minimized scenario no longer fails");
        return false;
    }
    if min.wrs.len() > 3 {
        println!(
            "[scenario] FAILED: reproducer kept {} work requests (want <= 3)",
            min.wrs.len()
        );
        return false;
    }
    println!("[scenario] minimizer demo passed");
    true
}

/// Indents every line of a block by four spaces.
fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
