//! The perf trajectory suite: a fixed, seeded workload matrix whose
//! wall-clock results are pinned in `BENCH_<pr>.json` so every later PR
//! has a baseline to beat (ROADMAP "Raw speed").
//!
//! ```text
//! cargo run --release -p ibsim-bench --bin perfsuite             # full, writes BENCH_10.json
//! cargo run --release -p ibsim-bench --bin perfsuite -- --quick  # smoke, writes target/BENCH_quick.json
//! cargo run --release -p ibsim-bench --bin perfsuite -- --out path.json
//! ```
//!
//! Six metric families, every workload seeded and deterministic (only
//! the wall-clock readings vary run to run):
//!
//! 1. **engine**: raw event churn through one `Engine` — 64 synthetic
//!    flows, each tick re-scheduling itself, re-arming a keyed timer
//!    (replace churn) and cancelling a decoy event (physical-removal
//!    churn). Reports events/sec.
//! 2. **fabric**: packets/sec through `Fabric::transit` — 8 hosts, a
//!    cycling src/dst pattern, 256 B frames, advancing simulated time so
//!    per-port serialization stays in steady state.
//! 3. **scenario_corpus**: single-worker wall time of the paper-derived
//!    differential-oracle corpus, plus a combined trace-hash so the
//!    artifact also witnesses determinism.
//! 4. **qpsweep**: the §VI flood rungs 64 → 4096 QPs (quick: 64 → 256)
//!    via the same [`ibsim_bench::flood`] workload the `qpsweep` CI gate
//!    runs, reporting per-QP wall time per rung.
//! 5. **pdes**: the largest flood rung again, on the conservative-
//!    lookahead sharded executor at 1 shard and at 4 shards (best of
//!    three runs each). Both sharded runs must reproduce the sequential
//!    rung's simulated outcome exactly; the artifact records all three
//!    wall times and the 4-shard-over-1-shard speedup, gated > 1× in
//!    full mode when the host has ≥ 2 cores (a single-core host
//!    serializes both runs onto one CPU, making the margin pure
//!    scheduler noise — the gate degrades to a report there). The
//!    1-shard run is the baseline because it carries the full
//!    epoch/replica machinery on the full workload; conformance against
//!    the sequential rung is enforced unconditionally.
//! 6. **congestion**: the routed-fabric shared-uplink study
//!    ([`ibsim_bench::congestion`]) — victim p99 under no storm, a
//!    go-back-N storm, and a selective-repeat storm on a fat-tree k=2.
//!    The artifact pins all three p99s; the study's inequalities (the
//!    flood inflates the victim p99, selective repeat is less damaging
//!    than go-back-N) are gated here as well as in the `congestion` bin.
//!
//! The suite validates its own output — schema fields present, non-zero
//! throughput everywhere, zero oracle violations, zero dead pops, full
//! completion counts — and exits non-zero on any miss, so CI can run
//! `perfsuite --quick` as a smoke stage with no wall-time gate.

use std::process::ExitCode;
use std::time::Instant;

use ibsim_bench::congestion::congestion_study;
use ibsim_bench::flood::{run_flood_rung, run_flood_rung_sharded, FloodRung, SHARD_QPS};
use ibsim_bench::json::JsonValue;
use ibsim_bench::{header, quick_mode, row};
use ibsim_event::{Engine, SimTime, TimerKey};
use ibsim_fabric::{Delivery, Fabric, LinkSpec};
use ibsim_scenario::{paper_corpus, run_corpus};

/// The PR number this artifact pins; also names the default output file.
const PR: u64 = 10;

/// Shard count of the pdes family's sharded rung.
const PDES_SHARDS: usize = 4;

/// Synthetic world for the engine-churn workload: a shared tick budget.
struct ChurnWorld {
    budget: u64,
}

/// One churn tick: consume budget, re-arm this flow's keyed timer
/// (replacing the previous arm), schedule-and-cancel a decoy, and
/// re-schedule the tick. Mirrors the schedule/replace/cancel mix a
/// protocol QP puts on the engine, without any transport logic.
fn churn_tick(eng: &mut Engine<ChurnWorld>, flow: u64) {
    eng.schedule_in(SimTime::from_ns(100 + flow), move |w, eng| {
        if w.budget == 0 {
            return;
        }
        w.budget -= 1;
        eng.schedule_keyed_in(TimerKey(flow, 0), SimTime::from_us(100), |_, _| {});
        let decoy = eng.schedule_in(SimTime::from_us(50), |_, _| {});
        eng.cancel(decoy);
        churn_tick(eng, flow);
    });
}

/// Family 1: events/sec through the engine. Returns (executed, wall s).
fn engine_churn(ticks: u64) -> (u64, f64) {
    let started = Instant::now();
    let mut eng: Engine<ChurnWorld> = Engine::new();
    let mut world = ChurnWorld { budget: ticks };
    for flow in 0..64 {
        churn_tick(&mut eng, flow);
    }
    eng.run(&mut world);
    (eng.executed_events(), started.elapsed().as_secs_f64())
}

/// Family 2: packets/sec through the fabric. Returns (delivered, wall s).
fn fabric_packets(frames: u64) -> (u64, f64) {
    let started = Instant::now();
    let mut fabric = Fabric::new(LinkSpec::fdr());
    let hosts: Vec<_> = (0..8).map(|i| fabric.add_host(&format!("h{i}"))).collect();
    let mut delivered = 0u64;
    for i in 0..frames {
        let src = hosts[(i % 8) as usize];
        let dst = hosts[((i + 3) % 8) as usize];
        // 50 ns per frame keeps each port's serialization queue in
        // steady state (a 256 B FDR frame serializes in ~38 ns and each
        // port sources every 8th frame).
        match fabric.transit(SimTime::from_ns(i * 50), src, dst, 256) {
            Delivery::Deliver { .. } => delivered += 1,
            Delivery::Dropped(_) => {}
        }
    }
    (delivered, started.elapsed().as_secs_f64())
}

/// Combined FNV-1a over the corpus trace hashes, in input order.
fn combine_hashes(hashes: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for h in hashes {
        for b in h.to_le_bytes() {
            acc ^= b as u64;
            acc = acc.wrapping_mul(0x100_0000_01b3);
        }
    }
    acc
}

fn arg_out() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--out" {
            return args.next();
        }
    }
    None
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let out_path = arg_out().unwrap_or_else(|| {
        if quick {
            "target/BENCH_quick.json".to_owned()
        } else {
            format!("BENCH_{PR}.json")
        }
    });
    let mut failed = false;
    fn fail(msg: String) {
        eprintln!("FAIL: {msg}");
    }

    header("perfsuite: pinned perf trajectory");

    // 1. Engine event churn.
    let ticks = if quick { 50_000 } else { 500_000 };
    let (engine_events, engine_wall) = engine_churn(ticks);
    let engine_rate = engine_events as f64 / engine_wall.max(1e-9);
    println!(
        "engine:   {engine_events} events in {:.1} ms ({:.2} Mev/s)",
        engine_wall * 1e3,
        engine_rate / 1e6
    );

    // 2. Fabric packet transit.
    let frames = if quick { 200_000 } else { 2_000_000 };
    let (fabric_delivered, fabric_wall) = fabric_packets(frames);
    let fabric_rate = fabric_delivered as f64 / fabric_wall.max(1e-9);
    println!(
        "fabric:   {fabric_delivered} packets in {:.1} ms ({:.2} Mpkt/s)",
        fabric_wall * 1e3,
        fabric_rate / 1e6
    );
    if fabric_delivered != frames {
        fail(format!(
            "fabric dropped {} of {frames} frames on a loss-free crossbar",
            frames - fabric_delivered
        ));
        failed = true;
    }

    // 3. Scenario corpus (single worker; the scenario CI stage owns the
    // multi-worker hash-identity gate).
    let corpus = paper_corpus();
    let started = Instant::now();
    let outcomes = run_corpus(&corpus, 1);
    let corpus_wall = started.elapsed().as_secs_f64();
    let violations: usize = outcomes.iter().map(|o| o.violations).sum();
    let corpus_hash = combine_hashes(outcomes.iter().map(|o| o.hash));
    println!(
        "corpus:   {} scenarios in {:.1} ms, {} violation(s), hash {corpus_hash:#018x}",
        outcomes.len(),
        corpus_wall * 1e3,
        violations
    );
    if violations != 0 {
        fail(format!(
            "{violations} oracle violation(s) in the paper corpus"
        ));
        failed = true;
    }

    // 4. qpsweep flood rungs.
    let sweep: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024, 2048, 4096]
    };
    let widths = [5, 10, 9, 10, 9];
    println!(
        "{}",
        row(
            &["QPs", "events", "wall", "perQP", "deadpop"].map(str::to_owned),
            &widths
        )
    );
    let mut rungs: Vec<FloodRung> = Vec::new();
    for &qps in sweep {
        let r = run_flood_rung(qps);
        println!(
            "{}",
            row(
                &[
                    format!("{}", r.qps),
                    format!("{}", r.stats.executed),
                    format!("{:.0}ms", r.wall_secs * 1e3),
                    format!("{:.0}us", r.wall_secs / r.qps as f64 * 1e6),
                    format!("{}", r.stats.dead_pops),
                ],
                &widths
            )
        );
        if r.completions != r.qps {
            fail(format!(
                "{} QPs but {} completions — the flood did not drain",
                r.qps, r.completions
            ));
            failed = true;
        }
        if r.spans != r.qps / SHARD_QPS {
            fail(format!(
                "expected {} fault spans at {} QPs, saw {}",
                r.qps / SHARD_QPS,
                r.qps,
                r.spans
            ));
            failed = true;
        }
        if r.stats.dead_pops != 0 {
            fail(format!("{} dead pops at {} QPs", r.stats.dead_pops, r.qps));
            failed = true;
        }
        rungs.push(r);
    }

    // 5. The pdes family: the largest rung again on the sharded
    // executor, 1 shard vs PDES_SHARDS shards, best of three runs each
    // (single-run wall noise on a loaded host is larger than the margin
    // under test). The 1-shard run is the speedup baseline; the
    // sequential rung from the sweep anchors conformance.
    let seq = rungs
        .last()
        .expect("invariant: sweep is never empty")
        .clone();
    let best_of = |shards: usize| {
        let mut best: Option<FloodRung> = None;
        for _ in 0..3 {
            let r = run_flood_rung_sharded(seq.qps, shards);
            if best.as_ref().is_none_or(|b| r.wall_secs < b.wall_secs) {
                best = Some(r);
            }
        }
        best.expect("invariant: three runs always produce a best")
    };
    let single = best_of(1);
    let par = best_of(PDES_SHARDS);
    let speedup = single.wall_secs / par.wall_secs.max(1e-9);
    println!(
        "pdes:     {} QPs: {:.0} ms on {PDES_SHARDS} shards vs {:.0} ms single-shard \
         ({speedup:.2}x), {:.0} ms sequential",
        par.qps,
        par.wall_secs * 1e3,
        single.wall_secs * 1e3,
        seq.wall_secs * 1e3,
    );
    let mut conformant = true;
    for (label, r) in [("single-shard", &single), ("sharded", &par)] {
        if r.exec != seq.exec
            || r.completions != seq.completions
            || r.spans != seq.spans
            || r.stats.executed != seq.stats.executed
        {
            conformant = false;
            fail(format!(
                "{label} rung diverged from sequential at {} QPs: exec {:?} vs {:?}, \
                 completions {} vs {}, spans {} vs {}, executed {} vs {}",
                seq.qps,
                r.exec,
                seq.exec,
                r.completions,
                seq.completions,
                r.spans,
                seq.spans,
                r.stats.executed,
                seq.stats.executed
            ));
            failed = true;
        }
    }
    // The speedup gate needs real parallelism to be meaningful: on a
    // single-core host both runs serialize onto one CPU and the margin
    // under test is smaller than scheduler jitter, so asserting on it
    // would gate on noise. Conformance is enforced unconditionally.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if !quick && speedup <= 1.0 {
        if cores >= 2 {
            fail(format!(
                "sharded {}-QP rung on {PDES_SHARDS} shards is not faster than the \
                 single-shard run ({speedup:.2}x)",
                seq.qps
            ));
            failed = true;
        } else {
            println!(
                "pdes:     speedup gate skipped: {cores} host core(s) — no real \
                 parallelism to measure (conformance still enforced)"
            );
        }
    }

    // 6. The congestion family: the shared-uplink study, gated on its
    // own inequalities so the trajectory cannot silently pin a broken
    // comparison.
    let study = congestion_study(quick);
    println!(
        "congest:  victim p99 {} ns baseline, {} ns gbn storm, {} ns irn storm \
         ({} / {} retransmits)",
        study.baseline.victim_p99_ns,
        study.gbn.victim_p99_ns,
        study.irn.victim_p99_ns,
        study.gbn.retransmits,
        study.irn.retransmits,
    );
    for (claim, holds) in study.verdicts() {
        if !holds {
            fail(format!("congestion study: {claim} — does not hold"));
            failed = true;
        }
    }

    // Emit the artifact. Schema changes require a version bump here and
    // in DESIGN 8.8.
    let doc = JsonValue::obj()
        .field("schema", "ibsim-perfsuite/v1")
        .field("pr", PR)
        .field("quick", quick)
        .field(
            "engine",
            JsonValue::obj()
                .field("events", engine_events)
                .field("wall_ms", engine_wall * 1e3)
                .field("events_per_sec", engine_rate),
        )
        .field(
            "fabric",
            JsonValue::obj()
                .field("packets", fabric_delivered)
                .field("wall_ms", fabric_wall * 1e3)
                .field("packets_per_sec", fabric_rate),
        )
        .field(
            "scenario_corpus",
            JsonValue::obj()
                .field("scenarios", outcomes.len())
                .field("violations", violations)
                .field("wall_ms", corpus_wall * 1e3)
                .field("corpus_hash", format!("{corpus_hash:#018x}")),
        )
        .field(
            "qpsweep",
            JsonValue::arr(rungs.iter().map(|r| {
                JsonValue::obj()
                    .field("qps", r.qps)
                    .field("events", r.stats.executed)
                    .field("wall_ms", r.wall_secs * 1e3)
                    .field("per_qp_us", r.wall_secs / r.qps as f64 * 1e6)
                    .field("dead_pops", r.stats.dead_pops)
            })),
        )
        .field(
            "pdes",
            JsonValue::obj()
                .field("qps", par.qps)
                .field("shards", PDES_SHARDS)
                .field("host_cores", cores)
                .field("seq_wall_ms", seq.wall_secs * 1e3)
                .field("single_shard_wall_ms", single.wall_secs * 1e3)
                .field("sharded_wall_ms", par.wall_secs * 1e3)
                .field("speedup", speedup)
                .field("conformant", conformant),
        )
        .field(
            "congestion",
            JsonValue::obj()
                .field("baseline_victim_p99_ns", study.baseline.victim_p99_ns)
                .field("gbn_victim_p99_ns", study.gbn.victim_p99_ns)
                .field("irn_victim_p99_ns", study.irn.victim_p99_ns)
                .field("gbn_retransmits", study.gbn.retransmits)
                .field("irn_retransmits", study.irn.retransmits)
                .field("gbn_ecn_marks", study.gbn.ecn_marks)
                .field(
                    "wall_ms",
                    (study.baseline.wall_secs + study.gbn.wall_secs + study.irn.wall_secs) * 1e3,
                ),
        );
    let text = doc.pretty();

    // Non-zero-throughput gate (the CI smoke contract): every family
    // must have done real work in measurable time.
    for (name, rate) in [("engine", engine_rate), ("fabric", fabric_rate)] {
        if !(rate.is_finite() && rate > 0.0) {
            fail(format!("{name} throughput is not positive: {rate}"));
            failed = true;
        }
    }
    if outcomes.is_empty() || rungs.is_empty() {
        fail("empty corpus or empty sweep".to_owned());
        failed = true;
    }

    if let Err(e) = std::fs::write(&out_path, &text) {
        fail(format!("cannot write {out_path}: {e}"));
        failed = true;
    } else {
        println!("\nwrote {out_path}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
