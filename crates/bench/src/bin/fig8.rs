//! Regenerates Fig. 8: three READs where the third request triggers
//! NAK(PSN sequence error) and rescues the dammed second READ without a
//! timeout.

use ibsim_bench::header;
use ibsim_odp::fig8_workflow;

fn main() {
    header("Fig. 8: client-side ODP, three READs");
    println!("{}", fig8_workflow());
    println!(
        "\nPaper reference: after the NAK with the PSN sequence error, the\n\
         client immediately retransmits the 2nd and 3rd requests; the\n\
         timeout never happens."
    );
}
