//! `perftest`-style micro-benchmarks on the simulator: latency and
//! bandwidth for READ/WRITE/SEND, pinned vs ODP vs prefetched ODP.
//!
//! ```text
//! cargo run --release -p ibsim-bench --bin ibperf
//! ```

use ibsim_bench::{header, row};
use ibsim_perftest::{read_bw, read_lat, send_lat, write_bw, PerfConfig};

fn main() {
    header("ib_read_lat / ib_send_lat (4 KiB, 1000 iterations)");
    let widths = [18, 44];
    for (name, odp, prefetch) in [
        ("pinned", false, false),
        ("odp", true, false),
        ("odp+prefetch", true, true),
    ] {
        let cfg = PerfConfig {
            size: 4096,
            odp,
            prefetch,
            ..PerfConfig::default()
        };
        let r = read_lat(&cfg);
        println!(
            "{}",
            row(&[format!("read_lat {name}"), r.to_string()], &widths)
        );
        let s = send_lat(&cfg);
        println!(
            "{}",
            row(&[format!("send_lat {name}"), s.to_string()], &widths)
        );
    }

    header("ib_read_bw / ib_write_bw (pinned)");
    println!("size_bytes,read_MiBps,read_Mpps,write_MiBps,write_Mpps");
    for size in [64u32, 1024, 4096, 65536, 1 << 20] {
        let cfg = PerfConfig {
            size,
            iterations: 256,
            ..PerfConfig::default()
        };
        let r = read_bw(&cfg);
        let w = write_bw(&cfg);
        println!(
            "{size},{:.1},{:.4},{:.1},{:.4}",
            r.mib_per_sec(),
            r.mpps(),
            w.mib_per_sec(),
            w.mpps()
        );
    }
    println!(
        "\n(the ODP rows show what perftest alone could not: the fault tail\n\
         on first touch, hidden entirely by prefetch — and none of the\n\
         §V/§VI pitfalls, which need the ibsim-bench fig* binaries.)"
    );
}
