//! Regenerates Fig. 12: execution-time distribution of the ArgoDSM-style
//! init+finalize benchmark (10 MB), 100 trials, ODP disabled/enabled, on
//! KNL-like and Reedbush-H-like systems.

use ibsim_bench::{header, mean_secs, quick_mode};
use ibsim_dsm::{init_finalize_histogram, DsmConfig};
use ibsim_event::SimTime;

fn run_system(name: &str, compute: SimTime, lock_gap_max: SimTime, trials: u64) {
    for odp in [false, true] {
        let cfg = DsmConfig {
            odp,
            compute_base: compute,
            compute_jitter: compute.mul_f64(0.05),
            lock_gap_max,
            ..Default::default()
        };
        let samples = init_finalize_histogram(&cfg, trials);
        let label = if odp { "w ODP" } else { "w/o ODP" };
        println!("-- {name} {label} (avg: {:.2} [s]) --", mean_secs(&samples));
        // 0.25 s histogram bins, like the paper's figure.
        let mut bins = std::collections::BTreeMap::new();
        for s in &samples {
            let bin = (s.as_secs_f64() / 0.25).floor() as u64;
            *bins.entry(bin).or_insert(0u64) += 1;
        }
        println!("bin_start_s,count");
        for (bin, count) in bins {
            println!("{:.2},{count}", bin as f64 * 0.25);
        }
    }
}

fn main() {
    let trials = if quick_mode() { 10 } else { 100 };
    header("Fig. 12a: KNL (2 nodes), argo::init(10MB) + argo::finalize()");
    run_system("KNL", SimTime::from_ms(2200), SimTime::from_ms(11), trials);
    header("Fig. 12b: Reedbush-H (2 nodes)");
    run_system(
        "Reedbush-H",
        SimTime::from_ms(460),
        SimTime::from_ms(16),
        trials,
    );
    println!(
        "\nPaper reference: KNL w/o 2.28 s vs w 3.12 s; Reedbush-H w/o 0.50 s\n\
         vs w 0.92 s. With ODP the samples split into two groups; the slower\n\
         group sits one transport timeout (~2 s at C_ack=18) above the fast\n\
         one — packet damming on the init-time global-lock READ+SEND."
    );
}
