//! Regenerates Fig. 5: the two-READ packet-damming workflow, showing the
//! second READ's request lost and recovered only by the ~500 ms timeout.

use ibsim_bench::header;
use ibsim_odp::{fig5_workflow, OdpMode};

fn main() {
    header("Fig. 5 (left): server-side ODP, two READs, interval 1 ms");
    println!("{}", fig5_workflow(OdpMode::ServerSide));
    header("Fig. 5 (right): client-side ODP, two READs, interval 0.3 ms");
    println!("{}", fig5_workflow(OdpMode::ClientSide));
    println!(
        "\nPaper reference: the response of the second READ disappears and\n\
         the client waits for the ~500 ms transport timeout (ConnectX-4)."
    );
}
