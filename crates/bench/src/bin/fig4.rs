//! Regenerates Fig. 4: average execution time of the two-READ
//! micro-benchmark over 10 trials, varying the interval between the two
//! communications (both-side ODP, minimal RNR NAK delay 1.28 ms).

use ibsim_bench::{header, quick_mode};
use ibsim_event::SimTime;
use ibsim_odp::fig4_series;

fn main() {
    let trials = if quick_mode() { 3 } else { 10 };
    let step_us = if quick_mode() { 500 } else { 250 };
    let intervals: Vec<SimTime> = (0..=(6_000 / step_us))
        .map(|i| SimTime::from_us(i * step_us))
        .collect();
    header("Fig. 4: mean execution time [s] vs interval [ms] (two READs, both-side ODP)");
    println!("interval_ms,mean_execution_s");
    for p in fig4_series(&intervals, trials) {
        println!(
            "{:.3},{:.4}",
            p.interval.as_ms_f64(),
            p.mean_execution.as_secs_f64()
        );
    }
    println!(
        "\nPaper reference: several hundred milliseconds for intervals of\n\
         ~0.1–4.5 ms, dropping to the common page-fault overhead outside\n\
         the window."
    );
}
