//! Runs every experiment binary in sequence (pass `--quick` through for
//! the reduced-scale variants). Useful for regenerating the full
//! `EXPERIMENTS.md` evidence in one go.

use std::process::Command;

fn main() {
    let quick = ibsim_bench::quick_mode();
    let bins = [
        "table1", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig11", "fig12",
        "table13", "ablation", "ibperf",
    ];
    let exe = std::env::current_exe().expect("invariant: a running binary knows its own path");
    let dir = exe
        .parent()
        .expect("invariant: a binary path has a parent directory");
    for bin in bins {
        println!("\n############ {bin} ############");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
