//! QP-count scaling sweep for the §VI packet flood: 64 → 4096 QPs.
//!
//! Each rung of the sweep shards its QPs across independent client/server
//! host pairs of 64 QPs each — one §VI flood per shard (all READs landing
//! on one cold client-side ODP page) — inside a *single* engine, so one
//! shared event heap carries thousands of concurrently armed keyed timers
//! (ACK timeouts, RNR waits, 0.5 ms stall ticks). This is the workload
//! that melted the old tombstone queue: every retransmit cancels and
//! re-arms, and cancelled entries used to pile up until the heap was
//! mostly corpses. The rung itself lives in [`ibsim_bench::flood`], shared
//! with the `perfsuite` trajectory artifact so the gate and the pinned
//! numbers can never measure different workloads.
//!
//! ```text
//! cargo run --release -p ibsim-bench --bin qpsweep [-- --quick]
//! ```
//!
//! Gates (exit nonzero on violation):
//! * dead-event pops must stay below 5 % of executed events at every
//!   rung (with physical removal they are structurally zero);
//! * per-QP wall time at every rung must stay within 2× of the 64-QP
//!   rung (full sweep only — quick mode prints the ratio but timing
//!   noise at tiny scales is not a meaningful gate);
//! * the largest rung re-run on the 4-shard PDES executor must
//!   reproduce the sequential rung's simulated outcome exactly —
//!   completions, fault spans, executed events and end time.

use std::process::ExitCode;

use ibsim_bench::flood::{run_flood_rung, run_flood_rung_sharded, FloodRung, SHARD_QPS};
use ibsim_bench::{header, quick_mode, row};

/// Dead pops may not exceed this fraction of executed events.
const DEAD_POP_BUDGET: f64 = 0.05;

/// Per-QP wall time may not exceed this multiple of the 64-QP rung's.
const WALL_RATIO_BUDGET: f64 = 2.0;

fn main() -> ExitCode {
    let quick = quick_mode();
    let sweep: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024, 2048, 4096]
    };

    header("QP-count scaling sweep: §VI flood, 64-QP shards, one event heap");
    let widths = [5, 9, 9, 10, 9, 9, 9, 10, 8, 7];
    println!(
        "{}",
        row(
            &[
                "QPs", "exec", "wall", "events", "ev/QP", "deadpop", "peak", "replaced", "wall/QP",
                "spans",
            ]
            .map(str::to_owned),
            &widths,
        )
    );

    let mut failed = false;
    let mut base_per_qp = f64::NAN;
    let mut largest: Option<FloodRung> = None;
    for &qps in sweep {
        let r = run_flood_rung(qps);
        let s = &r.stats;
        // Guard against timer jitter on a sub-millisecond baseline: a
        // 64-QP rung runs in a few ms, so a 10 µs floor never binds but
        // keeps the ratio finite on a degenerate clock.
        let per_qp = (r.wall_secs / r.qps as f64).max(10e-6);
        if base_per_qp.is_nan() {
            base_per_qp = per_qp;
        }
        println!(
            "{}",
            row(
                &[
                    format!("{}", r.qps),
                    format!("{:.2}ms", r.exec.as_secs_f64() * 1e3),
                    format!("{:.0}ms", r.wall_secs * 1e3),
                    format!("{}", s.executed),
                    format!("{:.0}", s.executed as f64 / r.qps as f64),
                    format!("{}", s.dead_pops),
                    format!("{}", s.peak_depth),
                    format!("{}", s.replaced),
                    format!("{:.2}x", per_qp / base_per_qp),
                    format!("{}", r.spans),
                ],
                &widths,
            )
        );

        // One cold ODP page per shard → exactly one fault span each.
        if r.spans != r.qps / SHARD_QPS {
            eprintln!(
                "FAIL: expected {} fault spans (one per shard) at {} QPs, saw {}",
                r.qps / SHARD_QPS,
                r.qps,
                r.spans
            );
            failed = true;
        }
        if r.completions != r.qps {
            eprintln!(
                "FAIL: {} QPs but only {} completions — the flood did not drain",
                r.qps, r.completions
            );
            failed = true;
        }
        if (s.dead_pops as f64) > DEAD_POP_BUDGET * s.executed as f64 {
            eprintln!(
                "FAIL: {} dead-event pops exceed {:.0}% of {} executed events at {} QPs",
                s.dead_pops,
                DEAD_POP_BUDGET * 100.0,
                s.executed,
                r.qps
            );
            failed = true;
        }
        if !quick && per_qp > WALL_RATIO_BUDGET * base_per_qp {
            eprintln!(
                "FAIL: per-QP wall time at {} QPs is {:.2}x the 64-QP rung (budget {:.1}x)",
                r.qps,
                per_qp / base_per_qp,
                WALL_RATIO_BUDGET
            );
            failed = true;
        }
        if s.live != 0 || s.keyed_live != 0 || s.dead_pending != 0 {
            eprintln!(
                "FAIL: residue after drain at {} QPs: {} live, {} keyed, {} dead",
                r.qps, s.live, s.keyed_live, s.dead_pending
            );
            failed = true;
        }
        largest = Some(r);
    }

    // Sharded smoke: the largest rung again on the 4-shard PDES
    // executor. The rung's host pairs are link-disjoint, so the shards
    // run genuinely concurrently — and must still land on the identical
    // simulated outcome.
    if let Some(seq) = largest {
        let par = run_flood_rung_sharded(seq.qps, 4);
        println!(
            "\npdes smoke: {} QPs on 4 shards: {:.0}ms vs {:.0}ms sequential ({:.2}x), \
             {} completions, {} spans",
            par.qps,
            par.wall_secs * 1e3,
            seq.wall_secs * 1e3,
            seq.wall_secs / par.wall_secs.max(1e-9),
            par.completions,
            par.spans,
        );
        if par.exec != seq.exec
            || par.completions != seq.completions
            || par.spans != seq.spans
            || par.stats.executed != seq.stats.executed
        {
            eprintln!(
                "FAIL: 4-shard rung diverged from sequential at {} QPs: exec {:?} vs {:?}, \
                 completions {} vs {}, spans {} vs {}, executed {} vs {}",
                seq.qps,
                par.exec,
                seq.exec,
                par.completions,
                seq.completions,
                par.spans,
                seq.spans,
                par.stats.executed,
                seq.stats.executed
            );
            failed = true;
        }
    }

    println!(
        "\nEach rung is an independent simulation; `exec` is simulated time\n\
         (near-constant: shards run concurrently), `wall/QP` is measured\n\
         wall time per QP relative to the 64-QP rung. `deadpop` counts\n\
         cancelled entries reaching the heap top — physical removal keeps\n\
         it at zero; the gate fails above {:.0}% of executed events.",
        DEAD_POP_BUDGET * 100.0
    );

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
