//! Regenerates Fig. 7: probability of timeout vs interval for 2, 3 and 4
//! READ operations (both-side ODP, minimal RNR NAK delay 1.28 ms) — more
//! operations *narrow* the window because later requests rescue the
//! dammed one via NAK(PSN sequence error).

use ibsim_bench::{header, quick_mode};
use ibsim_event::SimTime;
use ibsim_odp::fig7_series;

fn main() {
    let trials = if quick_mode() { 3 } else { 10 };
    let step_us = if quick_mode() { 750 } else { 250 };
    let intervals: Vec<SimTime> = (0..=(6_000 / step_us))
        .map(|i| SimTime::from_us(i * step_us))
        .collect();
    header("Fig. 7: both-side ODP, P(timeout) vs interval, 2-4 operations");
    let series = fig7_series(&[2, 3, 4], &intervals, trials);
    print!("interval_ms");
    for s in &series {
        print!(",{}", s.label);
    }
    println!();
    for (i, iv) in intervals.iter().enumerate() {
        print!("{:.3}", iv.as_ms_f64());
        for s in &series {
            print!(",{:.0}", s.points[i].1 * 100.0);
        }
        println!();
    }
    println!(
        "\nPaper reference: the timeout range narrows as operations are\n\
         added — with n ops it persists only while all n-1 follow-ups fit\n\
         inside the first READ's pending period."
    );
}
