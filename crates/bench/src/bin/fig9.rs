//! Regenerates Fig. 9: effect of the number of QPs on the micro-benchmark
//! (8192 READs of 100 bytes, 200 pages, C_ack = 18): execution time (9a)
//! and number of packets (9b) for every ODP mode.

use ibsim_bench::{header, quick_mode};
use ibsim_odp::fig9_points;

fn main() {
    let (qp_counts, num_ops): (Vec<usize>, usize) = if quick_mode() {
        (vec![1, 10, 50, 100], 1024)
    } else {
        (vec![1, 2, 5, 10, 25, 50, 75, 100, 150, 200], 8192)
    };
    header(&format!(
        "Fig. 9: {num_ops} READs x 100 B over varying #QPs (columns per ODP mode)"
    ));
    println!("-- Fig. 9a execution time [s] / 9b packets, streamed per point --");
    println!("qps,mode,execution_s,packets,errors");
    let mut errs = 0;
    for &q in &qp_counts {
        let pts = fig9_points(&[q], num_ops, 100);
        for p in &pts {
            println!(
                "{},{},{:.4},{},{}",
                p.qps,
                p.mode.label(),
                p.execution.as_secs_f64(),
                p.packets,
                p.errors
            );
        }
        errs += pts.iter().map(|p| p.errors).sum::<usize>();
    }
    println!("(operations failed with RETRY_EXC_ERR across all runs: {errs})");
    println!(
        "\nPaper reference: beyond ~10 QPs the client-/both-side ODP curves\n\
         degrade drastically (up to ~3000x no-ODP) and their packet counts\n\
         grow hundreds-fold; server-side degrades less (damming timeouts)."
    );
}
