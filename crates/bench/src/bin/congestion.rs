//! The shared-uplink congestion study (routed-fabric tentpole): a §VI
//! flood storm and an innocent victim flow contending for the same
//! fat-tree uplink, once per recovery backend.
//!
//! Prints the three-way comparison and asserts the study's load-bearing
//! inequalities: the go-back-N flood must inflate the victim's p99 over
//! the unloaded baseline, and IRN-style selective repeat must be
//! measurably less damaging than go-back-N at identical offered load.
//!
//! `--quick` runs the reduced-scale variant CI smokes.

use ibsim_bench::congestion::{congestion_study, CongestionRun};
use ibsim_bench::{header, quick_mode, row};

fn print_run(name: &str, r: &CongestionRun, widths: &[usize]) {
    println!(
        "{}",
        row(
            &[
                name.to_owned(),
                r.victim_p99_ns.to_string(),
                r.victim_mean_ns.to_string(),
                r.victim_completions.to_string(),
                r.retransmits.to_string(),
                r.uplink_peak_backlog_ns.to_string(),
                r.ecn_marks.to_string(),
                format!("{:.3}", r.exec.as_secs_f64() * 1e3),
                format!("{:.2}", r.wall_secs),
            ],
            widths,
        )
    );
}

fn main() {
    let quick = quick_mode();
    header(&format!(
        "Shared-uplink congestion study (fat-tree k=2{})",
        if quick { ", --quick" } else { "" }
    ));

    let study = congestion_study(quick);

    let widths = [10, 12, 12, 6, 11, 13, 9, 9, 6];
    println!(
        "{}",
        row(
            &[
                "run".into(),
                "p99_ns".into(),
                "mean_ns".into(),
                "cqes".into(),
                "retransmits".into(),
                "peak_blog_ns".into(),
                "ecn_marks".into(),
                "exec_ms".into(),
                "wall_s".into(),
            ],
            &widths,
        )
    );
    print_run("baseline", &study.baseline, &widths);
    print_run("gbn", &study.gbn, &widths);
    print_run("irn", &study.irn, &widths);

    println!();
    let mut ok = true;
    for (claim, holds) in study.verdicts() {
        println!("  [{}] {claim}", if holds { "PASS" } else { "FAIL" });
        ok &= holds;
    }
    assert!(ok, "congestion study inequality violated: {study:?}");
    println!(
        "\nvictim p99 inflation: gbn {:.1}x, irn {:.1}x over baseline",
        study.gbn.victim_p99_ns as f64 / study.baseline.victim_p99_ns.max(1) as f64,
        study.irn.victim_p99_ns as f64 / study.baseline.victim_p99_ns.max(1) as f64,
    );
}
