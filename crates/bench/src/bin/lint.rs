//! The repository lint harness: one command that runs every static
//! check CI enforces.
//!
//! ```text
//! cargo run --release --bin lint            # everything
//! cargo run --release --bin lint -- --src   # custom source lint only
//! ```
//!
//! Stages:
//!
//! 1. `cargo fmt --all -- --check`
//! 2. `cargo clippy --workspace --all-targets -- -D warnings`
//! 3. A custom source lint over every crate's `src/` tree:
//!    * no `unwrap` calls outside `#[cfg(test)]` modules — simulation code
//!      must degrade into counters, not panics;
//!    * no wall-clock reads (`Instant::now` / `SystemTime::now`) in
//!      simulator crates — determinism depends on all time coming from
//!      the event engine. The `bench` crate is exempt from this rule
//!      only: its harness legitimately measures host time.
//!
//! Exits non-zero if any stage fails, printing every violation first.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The forbidden-call needle, split so this file does not flag itself.
const UNWRAP: &str = concat!("unw", "rap()");

/// Crates whose `src/` trees the source lint walks, with the wall-clock
/// rule flag (false = exempt).
const SRC_ROOTS: &[(&str, bool)] = &[
    ("crates/analysis", true),
    ("crates/core", true),
    ("crates/dsm", true),
    ("crates/event", true),
    ("crates/fabric", true),
    ("crates/odp", true),
    ("crates/perftest", true),
    ("crates/scenario", true),
    ("crates/shuffle", true),
    ("crates/telemetry", true),
    ("crates/ucp", true),
    ("crates/verbs", true),
    ("crates/bench", false),
    ("src", true),
];

fn main() {
    let root = workspace_root();
    let src_only = std::env::args().any(|a| a == "--src");
    let mut failed = false;

    if !src_only {
        failed |= !run_stage(
            &root,
            "cargo fmt --all -- --check",
            &["fmt", "--all", "--", "--check"],
        );
        failed |= !run_stage(
            &root,
            "cargo clippy --workspace --all-targets -- -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--offline",
                "--",
                "-D",
                "warnings",
            ],
        );
    }

    let violations = source_lint(&root);
    if violations.is_empty() {
        println!("[lint] source lint: ok");
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("[lint] source lint: {} violation(s)", violations.len());
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!("[lint] all checks passed");
}

/// The workspace root: this binary is always run through cargo, which
/// sets the manifest dir of the bench crate; the root is two levels up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn run_stage(root: &Path, label: &str, args: &[&str]) -> bool {
    println!("[lint] {label}");
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(s) if s.success() => true,
        Ok(s) => {
            println!("[lint] FAILED ({s}): {label}");
            false
        }
        Err(e) => {
            println!("[lint] FAILED (could not spawn cargo: {e}): {label}");
            false
        }
    }
}

/// Walks every configured `src/` tree and returns the violations found.
fn source_lint(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    for &(crate_dir, wall_clock_rule) in SRC_ROOTS {
        let src = if crate_dir == "src" {
            root.join("src")
        } else {
            root.join(crate_dir).join("src")
        };
        let mut files = Vec::new();
        collect_rs(&src, &mut files);
        files.sort();
        for file in files {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            lint_file(&rel, &text, wall_clock_rule, &mut violations);
        }
    }
    violations
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints one file. Lines inside a trailing `#[cfg(test)] mod …` block
/// are skipped: tests may unwrap freely. The cutoff requires the
/// attribute to sit directly above a `mod` item so that `#[cfg(test)]`
/// on imports (as in `core/src/systems.rs`) does not end linting early.
fn lint_file(rel: &str, text: &str, wall_clock_rule: bool, out: &mut Vec<String>) {
    let lines: Vec<&str> = text.lines().collect();
    let mut cutoff = lines.len();
    for i in 0..lines.len().saturating_sub(1) {
        if lines[i].trim() == "#[cfg(test)]" && lines[i + 1].trim_start().starts_with("mod ") {
            cutoff = i;
            break;
        }
    }
    for (i, line) in lines[..cutoff].iter().enumerate() {
        if line.contains(UNWRAP) {
            out.push(format!(
                "{rel}:{}: {UNWRAP} in simulator code (count a failure or return an error)",
                i + 1
            ));
        }
        if wall_clock_rule && (line.contains("Instant::now") || line.contains("SystemTime::now")) {
            out.push(format!(
                "{rel}:{}: wall-clock read in simulator code (all time must come from the \
                 event engine)",
                i + 1
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::lint_file;

    #[test]
    fn flags_unwrap_and_wall_clock() {
        let mut out = Vec::new();
        lint_file(
            "x.rs",
            "let a = b.unwrap();\nlet t = std::time::Instant::now();\n",
            true,
            &mut out,
        );
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let mut out = Vec::new();
        lint_file(
            "x.rs",
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
            true,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cfg_test_on_imports_does_not_end_linting() {
        let mut out = Vec::new();
        lint_file(
            "x.rs",
            "#[cfg(test)]\nuse foo::bar;\nfn bad() { x.unwrap(); }\n",
            true,
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn wall_clock_exemption() {
        let mut out = Vec::new();
        lint_file(
            "x.rs",
            "let t = std::time::Instant::now();\n",
            false,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
