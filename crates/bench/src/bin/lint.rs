//! The repository lint harness: one command that runs every static
//! check CI enforces.
//!
//! ```text
//! cargo run --release --bin lint            # everything
//! cargo run --release --bin lint -- --src   # custom source lint only
//! ```
//!
//! Stages:
//!
//! 1. `cargo fmt --all -- --check`
//! 2. `cargo clippy --workspace --all-targets -- -D warnings`
//! 3. The `ibsim-lint` token-level determinism analyzer over every
//!    crate's `src/` tree (no-unwrap, no-wall-clock,
//!    no-std-hash-collections, no-float-in-sim-path,
//!    no-wildcard-match-on-protocol-enums), in `--deny-unused-allows`
//!    mode. This stage is a thin delegation to the `ibsim-lint`
//!    library — see `crates/lint` for the lexer, the rule catalog, and
//!    the per-crate scoping policy.
//!
//! Exits non-zero if any stage fails, printing every violation first.

use std::path::{Path, PathBuf};
use std::process::Command;

fn main() {
    let root = workspace_root();
    let src_only = std::env::args().any(|a| a == "--src");
    let mut failed = false;

    if !src_only {
        failed |= !run_stage(
            &root,
            "cargo fmt --all -- --check",
            &["fmt", "--all", "--", "--check"],
        );
        failed |= !run_stage(
            &root,
            "cargo clippy --workspace --all-targets -- -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--offline",
                "--",
                "-D",
                "warnings",
            ],
        );
    }

    match ibsim_lint::lint_workspace(&root) {
        Ok(report) if report.is_clean() => {
            println!(
                "[lint] ibsim-lint: ok ({} file(s) scanned)",
                report.files_scanned
            );
        }
        Ok(report) => {
            print!("{}", ibsim_lint::render_human(&report));
            failed = true;
        }
        Err(e) => {
            println!("[lint] FAILED (ibsim-lint could not walk the workspace: {e})");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("[lint] all checks passed");
}

/// The workspace root: this binary is always run through cargo, which
/// sets the manifest dir of the bench crate; the root is two levels up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn run_stage(root: &Path, label: &str, args: &[&str]) -> bool {
    println!("[lint] {label}");
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(s) if s.success() => true,
        Ok(s) => {
            println!("[lint] FAILED ({s}): {label}");
            false
        }
        Err(e) => {
            println!("[lint] FAILED (could not spawn cargo: {e}): {label}");
            false
        }
    }
}
