//! Regenerates Fig. 1: the packet-level workflow of a single READ under
//! server-side and client-side ODP, as `ibdump` would show it at the
//! client (KNL profile, minimal RNR NAK delay 1.28 ms).

use ibsim_bench::header;
use ibsim_odp::{fig1_workflow, OdpMode};

fn main() {
    header("Fig. 1 (left): server-side ODP, single READ");
    println!("{}", fig1_workflow(OdpMode::ServerSide));
    header("Fig. 1 (right): client-side ODP, single READ");
    println!("{}", fig1_workflow(OdpMode::ClientSide));
    println!(
        "\nPaper reference: the server-side RNR NAK delay is ~4.5 ms for the\n\
         1.28 ms advertised minimum; the client-side retransmission period\n\
         is ~0.5 ms regardless of fault resolution."
    );
}
