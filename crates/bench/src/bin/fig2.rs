//! Regenerates Fig. 2: actual time-to-timeout `T_o` measured by varying
//! `C_ack` on all eight systems of Table I, with the paper's wrong-LID
//! methodology (`C_retry = 7`, `T_o = t/8`).

use ibsim_bench::{header, quick_mode, row};
use ibsim_odp::{fig2_curve, SystemProfile};

fn main() {
    let cacks: Vec<u8> = if quick_mode() {
        vec![1, 8, 12, 16, 18]
    } else {
        (1..=21).collect()
    };
    header("Fig. 2: T_o [s] vs C_ack (rows: C_ack, columns: system)");
    let systems = SystemProfile::all();
    let curves: Vec<_> = systems
        .iter()
        .map(|s| fig2_curve(s, cacks.iter().copied()))
        .collect();

    // CSV header.
    print!("cack");
    for s in &systems {
        print!(",{}", s.name.replace(',', ";"));
    }
    println!(",T_tr_theoretical,4T_tr_theoretical");
    for (i, &cack) in cacks.iter().enumerate() {
        print!("{cack}");
        for c in &curves {
            print!(",{:.4}", c[i].t_o.as_secs_f64());
        }
        let t_tr = ibsim_verbs::t_tr(cack)
            .expect("invariant: sweep range keeps cack >= 1")
            .as_secs_f64();
        println!(",{t_tr:.6},{:.6}", 4.0 * t_tr);
    }

    header("Estimated lower limits (minimum acceptable C_ack)");
    println!(
        "{}",
        row(
            &["System".into(), "floor T_o".into(), "est. c0".into()],
            &[24, 12, 8]
        )
    );
    for (s, c) in systems.iter().zip(&curves) {
        println!(
            "{}",
            row(
                &[
                    s.name.into(),
                    format!("{}", c[0].t_o),
                    s.device.min_cack.to_string(),
                ],
                &[24, 12, 8]
            )
        );
    }
    println!(
        "\nPaper reference: lower limits ~30 ms for ConnectX-5 (c0=12) and\n\
         ~500 ms for the others (c0=16); all non-HCr systems lie on almost\n\
         the same line."
    );
}
