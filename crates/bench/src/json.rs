//! A minimal hand-rolled JSON emitter for the `BENCH_<pr>.json` perf
//! trajectory artifact.
//!
//! The workspace is offline and dependency-free, so rather than pull in
//! a serializer for one flat artifact, [`JsonValue`] covers exactly the
//! shapes `perfsuite` emits: objects with ordered keys, arrays, strings,
//! integers and finite floats. Output is deterministic — keys render in
//! insertion order and floats with a fixed number of decimals — so two
//! runs of the same build differ only where the measurements differ.

use std::fmt;

/// A JSON value. Construct with the `From` impls and [`JsonValue::obj`] /
/// [`JsonValue::arr`], render with `Display`.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A string (escaped on render).
    Str(String),
    /// An integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A finite float, rendered with three decimals.
    Num(f64),
    /// An ordered list of values.
    Arr(Vec<JsonValue>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object builder.
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Arr(items.into_iter().collect())
    }

    /// Appends `key: value` to an object (panics on non-objects: the
    /// builder is only ever chained off [`JsonValue::obj`]).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders with two-space indentation and a trailing newline, the
    /// layout `BENCH_<pr>.json` is committed in.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            JsonValue::Num(v) => {
                assert!(v.is_finite(), "non-finite float in JSON artifact: {v}");
                out.push_str(&format!("{v:.3}"));
            }
            JsonValue::Arr(items) if items.is_empty() => out.push_str("[]"),
            JsonValue::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            JsonValue::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            JsonValue::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push('"');
                    out.push_str(k);
                    out.push_str("\": ");
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_artifact_shape() {
        let doc = JsonValue::obj()
            .field("schema", "ibsim-perfsuite/v1")
            .field("events", 1234u64)
            .field("wall_ms", 1.5f64)
            .field(
                "rungs",
                JsonValue::arr([JsonValue::obj().field("qps", 64usize)]),
            );
        let text = doc.pretty();
        assert_eq!(
            text,
            "{\n  \"schema\": \"ibsim-perfsuite/v1\",\n  \"events\": 1234,\n  \
             \"wall_ms\": 1.500,\n  \"rungs\": [\n    {\n      \"qps\": 64\n    }\n  ]\n}\n"
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = JsonValue::obj().field("msg", "a\"b\\c\nd");
        assert!(doc.pretty().contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    #[should_panic(expected = "non-finite float")]
    fn non_finite_floats_are_rejected() {
        let _ = JsonValue::obj().field("x", f64::NAN).pretty();
    }
}
