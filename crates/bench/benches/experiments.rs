//! Criterion benches: reduced-scale versions of each paper experiment,
//! so `cargo bench --workspace` exercises every reproduction path and
//! tracks the simulator's own performance.
//!
//! The full paper-scale rows/series come from the `ibsim-bench` binaries
//! (`cargo run --release -p ibsim-bench --bin all`).

use criterion::{criterion_group, criterion_main, Criterion};
use ibsim_event::SimTime;
use ibsim_odp::{
    fig11_curves, fig2_curve, fig9_points, run_microbench, timeout_probability,
    MicrobenchConfig, OdpMode, SystemProfile,
};

fn bench_fig2(c: &mut Criterion) {
    let knl = SystemProfile::knl();
    c.bench_function("fig2_knl_to_at_cack1", |b| {
        b.iter(|| fig2_curve(&knl, [1u8].into_iter()))
    });
}

fn bench_fig4_damming(c: &mut Criterion) {
    c.bench_function("fig4_two_reads_1ms_interval", |b| {
        b.iter(|| {
            let run = run_microbench(&MicrobenchConfig {
                interval: SimTime::from_ms(1),
                ..Default::default()
            });
            assert!(run.timed_out());
            run.execution_time
        })
    });
    c.bench_function("fig4_two_reads_6ms_interval", |b| {
        b.iter(|| {
            let run = run_microbench(&MicrobenchConfig {
                interval: SimTime::from_ms(6),
                ..Default::default()
            });
            assert!(!run.timed_out());
            run.execution_time
        })
    });
}

fn bench_fig6_probability(c: &mut Criterion) {
    c.bench_function("fig6_probability_point", |b| {
        b.iter(|| {
            timeout_probability(
                &MicrobenchConfig {
                    interval: SimTime::from_ms(2),
                    odp: OdpMode::ServerSide,
                    ..Default::default()
                },
                3,
            )
        })
    });
}

fn bench_fig9_flood(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_flood");
    g.sample_size(10);
    g.bench_function("qps64_ops256_client_odp", |b| {
        b.iter(|| fig9_points(&[64], 256, 32))
    });
    g.bench_function("qps4_ops256_client_odp", |b| {
        b.iter(|| fig9_points(&[4], 256, 32))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("completions_per_page_128ops_64qps", |b| {
        b.iter(|| fig11_curves(128, 64))
    });
    g.finish();
}

fn bench_fig12_dsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_dsm");
    g.sample_size(10);
    g.bench_function("init_finalize_no_odp", |b| {
        b.iter(|| {
            ibsim_dsm::init_finalize_once(ibsim_dsm::DsmConfig {
                odp: false,
                compute_base: SimTime::from_ms(50),
                compute_jitter: SimTime::from_ms(5),
                ..Default::default()
            })
        })
    });
    g.bench_function("init_finalize_odp", |b| {
        b.iter(|| {
            ibsim_dsm::init_finalize_once(ibsim_dsm::DsmConfig {
                odp: true,
                compute_base: SimTime::from_ms(50),
                compute_jitter: SimTime::from_ms(5),
                ..Default::default()
            })
        })
    });
    g.finish();
}

fn bench_table13_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("table13_shuffle");
    g.sample_size(10);
    let small = ibsim_shuffle::ShuffleConfig {
        map_tasks: 8,
        reduce_tasks: 8,
        block_bytes: 1024,
        endpoints_per_pair: 8,
        setup_compute: SimTime::from_ms(1),
        ..Default::default()
    };
    g.bench_function("shuffle_odp", |b| {
        let cfg = ibsim_shuffle::ShuffleConfig {
            odp: true,
            ..small.clone()
        };
        b.iter(|| ibsim_shuffle::run_shuffle(&cfg))
    });
    g.bench_function("shuffle_pinned", |b| {
        let cfg = ibsim_shuffle::ShuffleConfig {
            odp: false,
            ..small.clone()
        };
        b.iter(|| ibsim_shuffle::run_shuffle(&cfg))
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_fig2,
    bench_fig4_damming,
    bench_fig6_probability,
    bench_fig9_flood,
    bench_fig11,
    bench_fig12_dsm,
    bench_table13_shuffle
);
criterion_main!(experiments);
