//! Smoke-bench harness: reduced-scale versions of each paper experiment,
//! so `cargo bench --workspace` exercises every reproduction path and
//! reports coarse wall-clock timings.
//!
//! This is a plain `harness = false` binary (no external bench framework,
//! so the workspace builds offline). Timings here are indicative only;
//! the full paper-scale rows/series come from the `ibsim-bench` binaries
//! (`cargo run --release -p ibsim-bench --bin all`).
//!
//! Wall-clock use is confined to this harness: the simulator crates
//! themselves are forbidden from touching `std::time::Instant` (enforced
//! by the `lint` bin's source lint).

use ibsim_event::SimTime;
use ibsim_odp::{
    fig11_curves, fig2_curve, fig9_points, run_microbench, timeout_probability, MicrobenchConfig,
    OdpMode, SystemProfile,
};

/// Runs `f` a few times and prints mean wall-clock per iteration.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f()); // warm-up
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = start.elapsed() / iters;
    println!("{name:<44} {per:>12.2?}/iter  (x{iters})");
}

fn main() {
    let knl = SystemProfile::knl();
    bench("fig2_knl_to_at_cack1", 10, || {
        fig2_curve(&knl, [1u8].into_iter())
    });

    bench("fig4_two_reads_1ms_interval", 20, || {
        let run = run_microbench(&MicrobenchConfig {
            interval: SimTime::from_ms(1),
            ..Default::default()
        });
        assert!(run.timed_out());
        run.execution_time
    });
    bench("fig4_two_reads_6ms_interval", 20, || {
        let run = run_microbench(&MicrobenchConfig {
            interval: SimTime::from_ms(6),
            ..Default::default()
        });
        assert!(!run.timed_out());
        run.execution_time
    });

    bench("fig6_probability_point", 5, || {
        timeout_probability(
            &MicrobenchConfig {
                interval: SimTime::from_ms(2),
                odp: OdpMode::ServerSide,
                ..Default::default()
            },
            3,
        )
    });

    bench("fig9_qps64_ops256_client_odp", 3, || {
        fig9_points(&[64], 256, 32)
    });
    bench("fig9_qps4_ops256_client_odp", 3, || {
        fig9_points(&[4], 256, 32)
    });

    bench("fig11_completions_per_page_128ops_64qps", 3, || {
        fig11_curves(128, 64)
    });

    bench("fig12_dsm_init_finalize_no_odp", 3, || {
        ibsim_dsm::init_finalize_once(ibsim_dsm::DsmConfig {
            odp: false,
            compute_base: SimTime::from_ms(50),
            compute_jitter: SimTime::from_ms(5),
            ..Default::default()
        })
    });
    bench("fig12_dsm_init_finalize_odp", 3, || {
        ibsim_dsm::init_finalize_once(ibsim_dsm::DsmConfig {
            odp: true,
            compute_base: SimTime::from_ms(50),
            compute_jitter: SimTime::from_ms(5),
            ..Default::default()
        })
    });

    let small = ibsim_shuffle::ShuffleConfig {
        map_tasks: 8,
        reduce_tasks: 8,
        block_bytes: 1024,
        endpoints_per_pair: 8,
        setup_compute: SimTime::from_ms(1),
        ..Default::default()
    };
    bench("table13_shuffle_odp", 3, || {
        ibsim_shuffle::run_shuffle(&ibsim_shuffle::ShuffleConfig {
            odp: true,
            ..small.clone()
        })
    });
    bench("table13_shuffle_pinned", 3, || {
        ibsim_shuffle::run_shuffle(&ibsim_shuffle::ShuffleConfig {
            odp: false,
            ..small.clone()
        })
    });
}
