//! The seeded random scenario generator for fuzzing.
//!
//! [`random_scenario`] maps a single `u64` seed to a bounded, always
//! [valid](crate::spec::Scenario::validate) scenario: small QP counts,
//! in-window aligned offsets, mild loss. The bounds are not cosmetic —
//! the differential oracle demands that every work request *succeed*, so
//! drop probabilities are capped low enough that exhausting the
//! transport retry budget (eight consecutive losses of one request) has
//! negligible probability even across thousands of fuzz seeds.

use ibsim_fabric::Xorshift64Star;
use ibsim_verbs::RecoveryKind;

use crate::spec::{DeviceKind, FaultEvent, LossPhase, LossSpec, Scenario, Side, WrSpec};

/// Generates the scenario for one fuzz seed. Deterministic: the same
/// seed always yields the same scenario (the generator never consults
/// anything but its own PRNG).
pub fn random_scenario(seed: u64) -> Scenario {
    // Decorrelate from the simulator, which seeds its own PRNG with the
    // scenario seed: the generator stream must not mirror run randomness.
    let mut rng = Xorshift64Star::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5CE9_A21F);
    let mut sc = Scenario::base(&format!("fuzz-{seed}"));
    sc.seed = seed;
    sc.device = if rng.next_below(4) == 0 {
        DeviceKind::ConnectX6
    } else {
        DeviceKind::ConnectX4
    };
    sc.qps = 1 + rng.next_below(6) as usize;
    sc.slot = 8 * (4 + rng.next_below(29)); // 32..=256, 8-aligned
    sc.client_odp = rng.next_below(2) == 1;
    sc.server_odp = rng.next_below(2) == 1;
    sc.prefetch = (sc.client_odp || sc.server_odp) && rng.next_below(3) == 0;
    sc.cack = [1u8, 14, 18][rng.next_below(3) as usize];
    if rng.next_below(4) == 0 {
        sc.min_rnr_delay_ns = 10_000;
    }
    sc.post_interval_ns = 500 + rng.next_below(4_500);
    // Fuzz the recovery backend: half the seeds stay on the paper's
    // go-back-N hardware, the rest split between the two ablations.
    sc.recovery = match rng.next_below(4) {
        0 => RecoveryKind::SelectiveRepeat,
        1 => RecoveryKind::OnDemandPin,
        _ => RecoveryKind::GoBackN,
    };

    // The pairwise race predicate for rejection sampling matches the
    // backend's validate() rule: selective repeat executes out of order
    // and acks non-cumulatively, so everything overlapping except
    // READ/READ is racy there (see `Scenario::validate`).
    let recovery = sc.recovery;
    let racy = move |a: WrSpec, b: WrSpec| {
        if recovery == RecoveryKind::SelectiveRepeat {
            let both_reads = matches!(a, WrSpec::Read { .. }) && matches!(b, WrSpec::Read { .. });
            a.overlaps(b) && !both_reads
        } else {
            a.races_with_later(b) || b.races_with_later(a)
        }
    };
    for qp in 0..sc.qps {
        let n = 1 + rng.next_below(5);
        let mut mine: Vec<WrSpec> = Vec::new();
        for _ in 0..n {
            // Rejection-sample until the candidate cannot race any other
            // request on this QP in *either* posting order (the global
            // shuffle below may put it before or after its peers) — the
            // oracle's soundness precondition. The first request always
            // lands, so every QP keeps at least one.
            for _ in 0..16 {
                let wr = random_wr(&mut rng, sc.slot);
                if mine.iter().all(|&prev| !racy(prev, wr)) {
                    mine.push(wr);
                    break;
                }
            }
        }
        sc.wrs.extend(mine.into_iter().map(|wr| (qp, wr)));
    }
    // Interleave across QPs deterministically so posting order is not
    // grouped by QP: sort by a per-entry pseudo-key derived from the
    // PRNG, stably.
    let keys: Vec<u64> = (0..sc.wrs.len()).map(|_| rng.next_u64()).collect();
    let mut order: Vec<usize> = (0..sc.wrs.len()).collect();
    order.sort_by_key(|&i| keys[i]);
    sc.wrs = order.into_iter().map(|i| sc.wrs[i]).collect();

    let post_end = sc.wrs.len() as u64 * sc.post_interval_ns;
    let pages = sc.region_len().div_ceil(ibsim_verbs::PAGE_SIZE) as usize;
    for _ in 0..rng.next_below(4) {
        sc.faults.push(FaultEvent {
            at_ns: rng.next_below(post_end + 200_000),
            side: if rng.next_below(2) == 0 {
                Side::Client
            } else {
                Side::Server
            },
            page: rng.next_below(pages as u64) as usize,
            count: 1 + rng.next_below(pages as u64) as usize,
        });
    }

    for _ in 0..rng.next_below(3) {
        let at_ns = rng.next_below(post_end.max(1));
        let model = match rng.next_below(4) {
            0 => LossSpec::None,
            1 => LossSpec::Uniform {
                // ≤ 3 %: eight consecutive losses of one request is then
                // ≤ 0.03⁸ ≈ 7e-13 — unreachable in any fuzz campaign.
                prob_milli: 1 + rng.next_below(30) as u32,
                seed: rng.next_u64(),
            },
            2 => LossSpec::Burst {
                enter_milli: 1 + rng.next_below(20) as u32, // rare bursts
                exit_milli: (500 + rng.next_below(500)) as u32, // short bursts
                drop_milli: (50 + rng.next_below(250)) as u32, // ≤ 30 % in-burst
                seed: rng.next_u64(),
            },
            _ => LossSpec::Nth(
                (0..1 + rng.next_below(3))
                    .map(|_| rng.next_below(64))
                    .collect(),
            ),
        };
        sc.loss.push(LossPhase { at_ns, model });
    }
    // Always end loss-free so the drain phase cannot keep dropping the
    // final retransmissions.
    if !sc.loss.is_empty() {
        sc.loss.push(LossPhase {
            at_ns: post_end + 300_000,
            model: LossSpec::None,
        });
    }

    // Drawn last so enabling the facet left every pre-existing seed's
    // scenario (and its oracle verdict) untouched. The sharded executor
    // must reproduce the sequential trace bit for bit, so a random shard
    // count perturbs nothing but which engine runs the spec.
    sc.shards = [1usize, 2, 4, 8][rng.next_below(4) as usize];

    // Newest facet draws after `shards` (same preservation argument).
    // Routing is deterministic and the reference executor runs the same
    // fabric, so the differential oracle holds on every topology; the
    // draw just moves traffic onto multi-hop paths for some seeds.
    sc.topology = ibsim_fabric::TopologyKind::ALL_SAMPLES[rng.next_below(4) as usize];

    debug_assert!(sc.validate().is_ok(), "generator produced invalid scenario");
    sc
}

/// One random in-window work request. Atomic offsets are 8-aligned;
/// data offsets are byte-granular with length at least 1.
fn random_wr(rng: &mut Xorshift64Star, slot: u64) -> WrSpec {
    match rng.next_below(5) {
        0 | 1 => {
            // Reads and writes carry the bulk of fuzz coverage.
            let off = rng.next_below(slot - 1);
            let len = (1 + rng.next_below((slot - off).min(96))) as u32;
            if rng.next_below(2) == 0 {
                WrSpec::Read { off, len }
            } else {
                WrSpec::Write { off, len }
            }
        }
        2 => {
            let off = rng.next_below(slot - 1);
            let len = (1 + rng.next_below((slot - off).min(64))) as u32;
            WrSpec::Send { off, len }
        }
        3 => WrSpec::FetchAdd {
            off: 8 * rng.next_below(slot / 8),
            add: rng.next_u64(),
        },
        _ => WrSpec::CompareSwap {
            off: 8 * rng.next_below(slot / 8),
            compare: rng.next_u64(),
            swap: rng.next_u64(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scenarios_are_valid_and_deterministic() {
        for seed in 0..200 {
            let a = random_scenario(seed);
            let b = random_scenario(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!a.wrs.is_empty());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_scenario(1), random_scenario(2));
    }

    #[test]
    fn fuzz_covers_every_recovery_backend() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200 {
            seen.insert(random_scenario(seed).recovery);
        }
        for kind in RecoveryKind::ALL {
            assert!(seen.contains(&kind), "{kind} never generated");
        }
    }

    #[test]
    fn generated_scenarios_round_trip() {
        for seed in 0..50 {
            let sc = random_scenario(seed);
            let back = crate::spec::Scenario::parse(&sc.to_spec_string())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(sc, back);
        }
    }
}
