//! The multi-threaded corpus runner.
//!
//! [`run_corpus`] distributes scenarios over a worker pool with a shared
//! atomic cursor. Every run is fully self-contained — each worker builds
//! its own engine and cluster per scenario, and a scenario's entire
//! randomness derives from its own seed — so the per-scenario results,
//! including the FNV trace hashes, are byte-identical for *any* worker
//! count. CI exploits that: the `scenario` stage runs the corpus with 1
//! and 4 workers and fails on any hash divergence, turning thread-count
//! independence into an enforced invariant rather than a hope.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::exec::run_scenario;
use crate::oracle::check_run;
use crate::spec::Scenario;

/// The outcome of one scenario within a corpus run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusOutcome {
    /// Position of the scenario in the input slice.
    pub index: usize,
    /// Scenario name.
    pub name: String,
    /// The run's FNV trace hash (see
    /// [`ScenarioRun::trace_hash`](crate::ScenarioRun)).
    pub hash: u64,
    /// Number of oracle violations (0 = clean).
    pub violations: usize,
    /// The rendered oracle report for failing scenarios, empty when
    /// clean (keeps bulk results small).
    pub report: String,
    /// Simulated end time of the run, in nanoseconds.
    pub end_ns: u64,
}

/// Runs every scenario through the executor and oracle on `workers`
/// threads (clamped to at least 1). Results come back in input order
/// regardless of scheduling.
pub fn run_corpus(scenarios: &[Scenario], workers: usize) -> Vec<CorpusOutcome> {
    let workers = workers.max(1).min(scenarios.len().max(1));
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<CorpusOutcome>>> = Mutex::new(vec![None; scenarios.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= scenarios.len() {
                    return;
                }
                let sc = &scenarios[index];
                let run = run_scenario(sc);
                let verdict = check_run(sc, &run);
                let outcome = CorpusOutcome {
                    index,
                    name: sc.name.clone(),
                    hash: run.trace_hash,
                    violations: verdict.violations.len(),
                    report: if verdict.is_clean() {
                        String::new()
                    } else {
                        verdict.to_string()
                    },
                    end_ns: run.end_ns,
                };
                if let Ok(mut slots) = results.lock() {
                    slots[index] = Some(outcome);
                }
            });
        }
    });

    match results.into_inner() {
        Ok(slots) => slots.into_iter().flatten().collect(),
        Err(poisoned) => poisoned.into_inner().into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WrSpec;

    fn tiny_corpus() -> Vec<Scenario> {
        (0..6)
            .map(|i| {
                let mut sc = Scenario::base(&format!("tiny-{i}"));
                sc.seed = 100 + i;
                sc.slot = 64;
                sc.wrs = vec![
                    (0, WrSpec::Write { off: 0, len: 16 }),
                    (0, WrSpec::Read { off: 0, len: 16 }),
                ];
                sc
            })
            .collect()
    }

    #[test]
    fn worker_count_does_not_change_hashes() {
        let corpus = tiny_corpus();
        let one = run_corpus(&corpus, 1);
        let four = run_corpus(&corpus, 4);
        assert_eq!(one.len(), corpus.len());
        assert_eq!(one, four, "results must be identical for any worker count");
        for o in &one {
            assert_eq!(o.violations, 0, "{}", o.report);
        }
    }

    #[test]
    fn results_come_back_in_input_order() {
        let corpus = tiny_corpus();
        let out = run_corpus(&corpus, 3);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(o.name, corpus[i].name);
        }
    }

    #[test]
    fn zero_workers_is_clamped() {
        let corpus = tiny_corpus();
        assert_eq!(run_corpus(&corpus, 0).len(), corpus.len());
    }
}
