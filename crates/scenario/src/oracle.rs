//! The differential RC oracle.
//!
//! [`check_run`] compares a [`ScenarioRun`] against the [`Expectation`]
//! computed from the scenario alone and asserts the properties a correct
//! RC implementation may never break, no matter what faults or loss the
//! schedule injected:
//!
//! 1. **Exactly-once completion** — every posted work request produced
//!    exactly one successful completion, in posting order per QP, with
//!    the right opcode and byte count; every SEND produced exactly one
//!    RECV completion on the responder. Duplicated or lost completions
//!    are precisely what a broken retransmission path produces.
//! 2. **Final memory-state equality** — both hosts' regions equal the
//!    reference model's sequential execution, byte for byte. Sound
//!    because QP windows are disjoint and RC responders replay (never
//!    re-execute) duplicate atomics.
//! 3. **Protocol conformance** — the `ibsim-analysis` trace linter and
//!    packet-conservation checks report no conformance violations (PSN
//!    monotonicity/contiguity, justified NAKs and retransmits, matched
//!    ACKs/responses, Tx/Rx conservation). The §V/§VI pitfall
//!    *signatures* are excluded: finding damming in a damming scenario
//!    is the expected result, not a bug.
//! 4. **Runtime invariants** — zero counted invariant violations
//!    (meaningful under `--features checks`).
//! 5. **Telemetry stage-sum conservation** — every closed fault span's
//!    stage durations sum exactly to its end-to-end latency.
//! 6. **Liveness** — the run drained before its deadline.

use std::fmt;

use ibsim_verbs::Completion;

use crate::exec::ScenarioRun;
use crate::reference::{Expectation, ExpectedComp, Injection};
use crate::spec::Scenario;

/// One oracle failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleViolation {
    /// The run hit its drain deadline with live events still queued.
    Stalled,
    /// A completion stream diverged from the reference model.
    CompletionMismatch {
        /// `"client"` or `"server"`.
        side: &'static str,
        /// QP index within the scenario.
        qp: usize,
        /// What diverged.
        detail: String,
    },
    /// A completion arrived on a QP number the scenario never created.
    StrayCompletions(
        /// How many.
        usize,
    ),
    /// A memory image diverged from the reference model.
    MemoryMismatch {
        /// `"client"` or `"server"`.
        side: &'static str,
        /// First diverging byte offset.
        offset: usize,
        /// Simulated value.
        got: u8,
        /// Reference value.
        want: u8,
    },
    /// The trace linter reported a protocol-conformance violation.
    Conformance(
        /// The rendered finding.
        String,
    ),
    /// Runtime invariant counters were nonzero.
    Invariants(
        /// Total violations counted.
        u64,
    ),
    /// Closed telemetry spans broke the stage-sum law.
    StageSum(
        /// How many spans.
        usize,
    ),
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleViolation::Stalled => write!(f, "run stalled: drain deadline hit"),
            OracleViolation::CompletionMismatch { side, qp, detail } => {
                write!(f, "{side} completions diverged on QP {qp}: {detail}")
            }
            OracleViolation::StrayCompletions(n) => {
                write!(f, "{n} completion(s) on unknown QPs")
            }
            OracleViolation::MemoryMismatch {
                side,
                offset,
                got,
                want,
            } => write!(
                f,
                "{side} memory diverged at byte {offset}: got {got:#04x}, want {want:#04x}"
            ),
            OracleViolation::Conformance(finding) => write!(f, "conformance: {finding}"),
            OracleViolation::Invariants(n) => {
                write!(f, "{n} runtime invariant violation(s)")
            }
            OracleViolation::StageSum(n) => {
                write!(f, "{n} span(s) broke stage-sum conservation")
            }
        }
    }
}

/// The outcome of checking one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Every violation found, in check order.
    pub violations: Vec<OracleViolation>,
}

impl OracleReport {
    /// True when the run passed every check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "oracle clean");
        }
        writeln!(f, "{} oracle violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Checks a run against the reference model. See the module docs for the
/// property list.
pub fn check_run(sc: &Scenario, run: &ScenarioRun) -> OracleReport {
    check_run_with(sc, run, None)
}

/// [`check_run`] with an optional planted [`Injection`] — used by the
/// minimizer demonstration and its tests to manufacture failures whose
/// minimal reproducer is known.
pub fn check_run_with(sc: &Scenario, run: &ScenarioRun, inject: Option<Injection>) -> OracleReport {
    let expect = Expectation::compute(sc, inject);
    let mut report = OracleReport::default();

    if run.stalled {
        report.violations.push(OracleViolation::Stalled);
    }
    if run.stray_comps > 0 {
        report
            .violations
            .push(OracleViolation::StrayCompletions(run.stray_comps));
    }

    for qp in 0..sc.qps {
        check_stream(
            &mut report,
            "client",
            qp,
            &run.client_comps[qp],
            &expect.client_comps[qp],
        );
        check_stream(
            &mut report,
            "server",
            qp,
            &run.server_comps[qp],
            &expect.server_comps[qp],
        );
    }

    check_memory(&mut report, "client", &run.client_mem, &expect.client_mem);
    check_memory(&mut report, "server", &run.server_mem, &expect.server_mem);

    for finding in run.lint.conformance_violations() {
        report
            .violations
            .push(OracleViolation::Conformance(finding.to_string()));
    }
    if run.invariant_violations > 0 {
        report
            .violations
            .push(OracleViolation::Invariants(run.invariant_violations));
    }
    if run.stage_sum_violations > 0 {
        report
            .violations
            .push(OracleViolation::StageSum(run.stage_sum_violations));
    }
    report
}

/// Compares one QP's completion stream with the expected sequence:
/// same length (exactly-once), same ids in the same order (per-QP RC
/// ordering), all successful, right opcodes and byte counts.
fn check_stream(
    report: &mut OracleReport,
    side: &'static str,
    qp: usize,
    got: &[Completion],
    want: &[ExpectedComp],
) {
    let mismatch = |detail: String| OracleViolation::CompletionMismatch { side, qp, detail };
    if got.len() != want.len() {
        report.violations.push(mismatch(format!(
            "expected {} completion(s), got {}",
            want.len(),
            got.len()
        )));
        return;
    }
    for (c, &(id, op, bytes)) in got.iter().zip(want) {
        if !c.status.is_success() {
            report.violations.push(mismatch(format!(
                "wr {} completed with {}",
                c.wr_id.0, c.status
            )));
        }
        if c.wr_id.0 != id {
            report
                .violations
                .push(mismatch(format!("expected wr id {id}, got {}", c.wr_id.0)));
        }
        if c.opcode != op {
            report.violations.push(mismatch(format!(
                "wr {id}: expected {op}, got {}",
                c.opcode
            )));
        }
        // RECV completions report the received payload length (equal to
        // the send length for our matched posts); requester completions
        // echo the request length.
        if c.bytes != bytes {
            report.violations.push(mismatch(format!(
                "wr {id}: expected {bytes} byte(s), got {}",
                c.bytes
            )));
        }
    }
}

/// Byte-compares a final memory image with the reference, reporting the
/// first divergence only (one bad store usually smears a whole range).
fn check_memory(report: &mut OracleReport, side: &'static str, got: &[u8], want: &[u8]) {
    if let Some(offset) = (0..got.len().min(want.len())).find(|&i| got[i] != want[i]) {
        report.violations.push(OracleViolation::MemoryMismatch {
            side,
            offset,
            got: got[offset],
            want: want[offset],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_scenario;
    use crate::spec::{LossPhase, LossSpec, Scenario, WrSpec};

    fn mixed_scenario() -> Scenario {
        let mut sc = Scenario::base("oracle-mixed");
        sc.qps = 2;
        sc.slot = 64;
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 16 }),
            (0, WrSpec::Read { off: 0, len: 16 }),
            (1, WrSpec::Send { off: 8, len: 8 }),
            (1, WrSpec::FetchAdd { off: 32, add: 3 }),
            (
                0,
                WrSpec::CompareSwap {
                    off: 48,
                    compare: 0,
                    swap: 1,
                },
            ),
        ];
        sc
    }

    #[test]
    fn clean_run_passes_every_check() {
        let sc = mixed_scenario();
        let run = run_scenario(&sc);
        let report = check_run(&sc, &run);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn lossy_run_still_passes() {
        // Loss exercises retransmission; the oracle's point is that the
        // *observable* contract survives it.
        let mut sc = mixed_scenario();
        sc.loss = vec![
            LossPhase {
                at_ns: 0,
                model: LossSpec::Uniform {
                    prob_milli: 20,
                    seed: 3,
                },
            },
            LossPhase {
                at_ns: 200_000,
                model: LossSpec::None,
            },
        ];
        let run = run_scenario(&sc);
        let report = check_run(&sc, &run);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn injection_fails_exactly_when_qp0_writes_exist() {
        let sc = mixed_scenario();
        let run = run_scenario(&sc);
        let bent = check_run_with(&sc, &run, Some(Injection::WriteCorruption));
        assert!(
            bent.violations
                .iter()
                .any(|v| matches!(v, OracleViolation::MemoryMismatch { side: "server", .. })),
            "{bent}"
        );

        // Without any WRITE on QP 0 the injection is inert.
        let mut sc2 = mixed_scenario();
        sc2.wrs
            .retain(|&(q, w)| !(q == 0 && matches!(w, WrSpec::Write { .. })));
        let run2 = run_scenario(&sc2);
        assert!(check_run_with(&sc2, &run2, Some(Injection::WriteCorruption)).is_clean());
    }

    #[test]
    fn report_renders_readably() {
        let mut report = OracleReport::default();
        assert_eq!(report.to_string(), "oracle clean");
        report.violations.push(OracleViolation::Stalled);
        report.violations.push(OracleViolation::MemoryMismatch {
            side: "client",
            offset: 7,
            got: 1,
            want: 2,
        });
        let text = report.to_string();
        assert!(text.contains("2 oracle violation(s)"));
        assert!(text.contains("byte 7"));
    }
}
