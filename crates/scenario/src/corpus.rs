//! The paper-derived scenario corpus.
//!
//! Each entry replays one of the study's experimental situations — the
//! §V damming probe, the §VI flood probe, the QP-count sweep, the §IX-A
//! workaround ablations — or a stress shape the paper motivates (burst
//! loss, mid-run evictions, mixed verbs). Every corpus scenario must
//! pass the differential oracle: the pitfalls degrade *performance*, not
//! correctness, so conformance holds even while damming or flooding.

use crate::spec::{DeviceKind, FaultEvent, LossPhase, LossSpec, Scenario, Side, WrSpec};

/// Builds the full corpus, in a fixed order (index 0 is the damming
/// probe, as the crate-level example relies on).
pub fn paper_corpus() -> Vec<Scenario> {
    let mut corpus = Vec::new();

    // §V damming probe: one QP, both regions ODP and initially unmapped,
    // paced READs — the first access on each side faults, and a request
    // racing the recovery window gets dammed (ghosted).
    let mut sc = Scenario::base("damming");
    sc.seed = 11;
    sc.slot = 256;
    sc.client_odp = true;
    sc.server_odp = true;
    sc.post_interval_ns = 1_000_000; // the paper's 1 ms interval
    sc.wrs = vec![
        (0, WrSpec::Read { off: 0, len: 100 }),
        (0, WrSpec::Read { off: 128, len: 100 }),
    ];
    corpus.push(sc);

    // §VI flood shard: many client-ODP QPs faulting the same first page
    // burst-read at C_ack = 18 (the flood probe's timeout setting).
    let mut sc = Scenario::base("flood-64");
    sc.seed = 12;
    sc.qps = 64;
    sc.slot = 32;
    sc.client_odp = true;
    sc.cack = 18;
    sc.post_interval_ns = 1_000;
    sc.wrs = (0..2)
        .flat_map(|_| (0..64).map(|q| (q, WrSpec::Read { off: 0, len: 32 })))
        .collect();
    corpus.push(sc);

    // QP-sweep shards: the scaling axis of the flood experiment.
    for qps in [8usize, 32] {
        let mut sc = Scenario::base(&format!("qpsweep-{qps}"));
        sc.seed = 13 + qps as u64;
        sc.qps = qps;
        sc.slot = 64;
        sc.client_odp = true;
        sc.cack = 18;
        sc.post_interval_ns = 2_000;
        sc.wrs = (0..qps)
            .map(|q| (q, WrSpec::Read { off: 0, len: 48 }))
            .collect();
        corpus.push(sc);
    }

    // §IX-A workaround ablation: prefetch (ibv_advise_mr). The regions
    // start fully mapped, then a mid-run eviction re-faults one page —
    // prefetch helps until the kernel reclaims.
    let mut sc = Scenario::base("workaround-prefetch");
    sc.seed = 21;
    sc.slot = 256;
    sc.client_odp = true;
    sc.server_odp = true;
    sc.prefetch = true;
    sc.post_interval_ns = 1_000_000;
    sc.wrs = vec![
        (0, WrSpec::Read { off: 0, len: 100 }),
        (0, WrSpec::Read { off: 0, len: 100 }),
        (0, WrSpec::Read { off: 0, len: 100 }),
    ];
    sc.faults = vec![FaultEvent {
        at_ns: 1_500_000,
        side: Side::Server,
        page: 0,
        count: 1,
    }];
    corpus.push(sc);

    // §IX-A workaround ablation: a small minimum RNR NAK delay bounds
    // the responder-fault stall (SENDs against an unmapped ODP sink).
    let mut sc = Scenario::base("workaround-rnr-min");
    sc.seed = 22;
    sc.slot = 128;
    sc.server_odp = true;
    sc.min_rnr_delay_ns = 10_000; // 10 µs instead of the 1.28 ms default
    sc.post_interval_ns = 50_000;
    sc.wrs = vec![
        (0, WrSpec::Send { off: 0, len: 64 }),
        (0, WrSpec::Send { off: 64, len: 64 }),
    ];
    corpus.push(sc);

    // §IX-A workaround ablation: widening the post interval past the
    // fault-resolution time sidesteps damming entirely.
    let mut sc = Scenario::base("workaround-wide-interval");
    sc.seed = 23;
    sc.slot = 256;
    sc.client_odp = true;
    sc.server_odp = true;
    sc.post_interval_ns = 6_000_000; // 6 ms ≫ fault resolution
    sc.wrs = vec![
        (0, WrSpec::Read { off: 0, len: 100 }),
        (0, WrSpec::Read { off: 128, len: 100 }),
    ];
    corpus.push(sc);

    // Uniform fabric loss over mixed pinned-memory traffic: pure
    // transport-recovery stress with no ODP in the mix.
    let mut sc = Scenario::base("loss-uniform");
    sc.seed = 31;
    sc.qps = 4;
    sc.slot = 64;
    sc.post_interval_ns = 3_000;
    sc.wrs = (0..4)
        .flat_map(|q| {
            [
                (q, WrSpec::Write { off: 0, len: 32 }),
                (q, WrSpec::Read { off: 0, len: 32 }),
            ]
        })
        .collect();
    sc.loss = vec![
        LossPhase {
            at_ns: 0,
            model: LossSpec::Uniform {
                prob_milli: 20,
                seed: 5,
            },
        },
        LossPhase {
            at_ns: 500_000,
            model: LossSpec::None,
        },
    ];
    corpus.push(sc);

    // Gilbert–Elliott burst loss: clustered drops hammer go-back-N much
    // harder than independent coin flips at the same average rate.
    let mut sc = Scenario::base("loss-burst");
    sc.seed = 32;
    sc.qps = 2;
    sc.slot = 64;
    sc.post_interval_ns = 3_000;
    sc.wrs = vec![
        (0, WrSpec::Write { off: 0, len: 48 }),
        (1, WrSpec::Read { off: 0, len: 48 }),
        (0, WrSpec::Read { off: 0, len: 48 }),
        // Disjoint from QP 1's outstanding READ: sourcing bytes a READ
        // may still land into is an unsequenced race validate() rejects.
        (1, WrSpec::Write { off: 48, len: 16 }),
    ];
    sc.loss = vec![
        LossPhase {
            at_ns: 0,
            model: LossSpec::Burst {
                enter_milli: 30,
                exit_milli: 500,
                drop_milli: 300,
                seed: 9,
            },
        },
        LossPhase {
            at_ns: 400_000,
            model: LossSpec::None,
        },
    ];
    corpus.push(sc);

    // Every verb in one run, client-side ODP: the §VII verb-coverage
    // axis (the paper tests READ/WRITE/SEND behaviour under ODP).
    let mut sc = Scenario::base("mixed-verbs");
    sc.seed = 33;
    sc.qps = 4;
    sc.slot = 64;
    sc.client_odp = true;
    sc.post_interval_ns = 5_000;
    sc.wrs = vec![
        (0, WrSpec::Read { off: 0, len: 40 }),
        (1, WrSpec::Write { off: 0, len: 40 }),
        (2, WrSpec::Send { off: 0, len: 40 }),
        (3, WrSpec::FetchAdd { off: 0, add: 17 }),
        (
            3,
            WrSpec::CompareSwap {
                off: 8,
                compare: 0,
                swap: 7,
            },
        ),
        (0, WrSpec::Write { off: 40, len: 16 }),
        (1, WrSpec::Read { off: 40, len: 16 }),
    ];
    corpus.push(sc);

    // NIC translation-cache evictions mid-run: prefetched pages are
    // invalidated one by one while traffic flows, re-faulting each.
    let mut sc = Scenario::base("evict-mid-run");
    sc.seed = 34;
    sc.qps = 2;
    sc.slot = 4096; // one page per QP window
    sc.client_odp = true;
    sc.prefetch = true;
    sc.post_interval_ns = 200_000;
    sc.wrs = (0..6)
        .map(|k| (k % 2, WrSpec::Read { off: 0, len: 256 }))
        .collect();
    sc.faults = vec![
        FaultEvent {
            at_ns: 300_000,
            side: Side::Client,
            page: 0,
            count: 1,
        },
        FaultEvent {
            at_ns: 700_000,
            side: Side::Client,
            page: 1,
            count: 1,
        },
    ];
    corpus.push(sc);

    // Atomic hammering on a server-ODP region: replay-cache territory —
    // retransmitted atomics must never re-execute.
    let mut sc = Scenario::base("atomics-hammer");
    sc.seed = 35;
    sc.qps = 2;
    sc.slot = 64;
    sc.server_odp = true;
    sc.post_interval_ns = 2_000;
    sc.wrs = (0..8)
        .map(|k| {
            let qp = (k % 2) as usize;
            if k % 4 < 2 {
                (qp, WrSpec::FetchAdd { off: 0, add: k + 1 })
            } else {
                (
                    qp,
                    WrSpec::CompareSwap {
                        off: 8,
                        compare: 0,
                        swap: k,
                    },
                )
            }
        })
        .collect();
    corpus.push(sc);

    // Exact-index loss on SEND traffic against a faulting responder:
    // deterministic single-packet drops compose with RNR recovery.
    let mut sc = Scenario::base("send-nth-loss");
    sc.seed = 36;
    sc.qps = 2;
    sc.slot = 64;
    sc.server_odp = true;
    sc.device = DeviceKind::ConnectX6;
    sc.post_interval_ns = 20_000;
    sc.wrs = vec![
        (0, WrSpec::Send { off: 0, len: 32 }),
        (1, WrSpec::Send { off: 0, len: 32 }),
        (0, WrSpec::Send { off: 32, len: 32 }),
        (1, WrSpec::Send { off: 32, len: 32 }),
    ];
    sc.loss = vec![LossPhase {
        at_ns: 0,
        model: LossSpec::Nth(vec![2, 5]),
    }];
    corpus.push(sc);

    // Routed-fabric coverage: the damming shape replayed across a
    // two-leaf fat-tree, so every request crosses a store-and-forward
    // leaf→spine→leaf path while ODP faults stall the endpoints. The
    // oracle is topology-blind (routing only moves time, never bytes),
    // which is exactly the property this entry locks in.
    let mut sc = Scenario::base("fattree-damming");
    sc.seed = 41;
    sc.slot = 256;
    sc.client_odp = true;
    sc.server_odp = true;
    sc.post_interval_ns = 1_000_000;
    sc.topology = ibsim_fabric::TopologyKind::FatTree { k: 2 };
    sc.wrs = vec![
        (0, WrSpec::Read { off: 0, len: 100 }),
        (0, WrSpec::Read { off: 128, len: 100 }),
    ];
    corpus.push(sc);

    // Ring topology under burst loss: the longest built-in path (two
    // hosts sit one hop apart on a three-switch cycle) composed with
    // go-back-N recovery — retransmissions re-serialize over every
    // inter-switch hop they originally crossed.
    let mut sc = Scenario::base("ring-burst-loss");
    sc.seed = 42;
    sc.qps = 2;
    sc.slot = 64;
    sc.post_interval_ns = 3_000;
    sc.topology = ibsim_fabric::TopologyKind::Ring { switches: 3 };
    sc.wrs = vec![
        (0, WrSpec::Write { off: 0, len: 48 }),
        (1, WrSpec::Read { off: 0, len: 48 }),
        (0, WrSpec::Read { off: 0, len: 48 }),
    ];
    sc.loss = vec![
        LossPhase {
            at_ns: 0,
            model: LossSpec::Burst {
                enter_milli: 30,
                exit_milli: 500,
                drop_milli: 300,
                seed: 9,
            },
        },
        LossPhase {
            at_ns: 400_000,
            model: LossSpec::None,
        },
    ];
    corpus.push(sc);

    for sc in &corpus {
        debug_assert!(sc.validate().is_ok(), "corpus scenario {} invalid", sc.name);
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_valid_and_named_uniquely() {
        let corpus = paper_corpus();
        assert!(corpus.len() >= 12, "corpus shrank to {}", corpus.len());
        let mut names: Vec<&str> = corpus.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len(), "duplicate scenario names");
        for sc in &corpus {
            sc.validate().unwrap_or_else(|e| panic!("{}: {e}", sc.name));
        }
        assert_eq!(corpus[0].name, "damming");
    }

    #[test]
    fn corpus_round_trips_through_the_spec_format() {
        for sc in paper_corpus() {
            let text = sc.to_spec_string();
            let back = Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", sc.name));
            assert_eq!(sc, back, "{} did not round-trip", sc.name);
        }
    }
}
