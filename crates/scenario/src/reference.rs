//! The reference model: what a correct RC implementation must produce.
//!
//! An [`Expectation`] is computed from a [`Scenario`] alone, with no
//! knowledge of timing, faults or loss: RC guarantees that every work
//! request eventually completes exactly once, in posting order per QP,
//! with the same effect on memory as executing the requests one by one —
//! no matter how many retransmissions, NAKs or ODP stalls happened on
//! the way. Because every QP owns a disjoint window of both regions (see
//! [`crate::spec`]), sequential per-QP application is exact even though
//! QPs interleave arbitrarily on the wire.
//!
//! The soundness of the exactly-once expectation under retransmission
//! rests on two responder properties the simulator implements (and real
//! NICs must): duplicate non-atomic requests are idempotent re-executions
//! of the same bytes, and duplicate atomics are answered from the
//! responder's replay cache, never re-executed.
//!
//! Sequential memory semantics need one precondition on top: no
//! same-QP *unsequenced buffer races*. A WRITE/SEND gathers its payload
//! from client memory at transmit time, which races the landing of an
//! earlier outstanding READ/atomic response in overlapping client bytes;
//! a duplicate READ is replayed from current server memory, which races
//! later same-QP mutations of overlapping server bytes when the original
//! response is lost. Both are legal RC behaviour (buffer reuse before
//! completion is a user-side race), so the reference model simply
//! refuses such workloads: [`Scenario::validate`] rejects them via
//! [`WrSpec::races_with_later`], and the fuzz generator never emits
//! them.

use ibsim_verbs::WcOpcode;

use crate::spec::{Scenario, WrSpec};

/// Receive work-request ids are the global WR index plus this offset, so
/// requester and responder completions never collide in one id space.
pub(crate) const RECV_ID_BASE: u64 = 1 << 32;

/// Deterministic initial byte of the client region at absolute offset `i`.
pub(crate) fn client_init_byte(i: u64) -> u8 {
    (i as u8) ^ 0xA5
}

/// Deterministic initial byte of the server region at absolute offset `i`.
pub(crate) fn server_init_byte(i: u64) -> u8 {
    (i as u8).wrapping_mul(31).wrapping_add(7)
}

/// A deliberate divergence planted into the reference model, used to
/// demonstrate (and test) the failing-seed minimizer: the simulator is
/// correct, the expectation is wrong, so the oracle fails for exactly the
/// scenarios containing the triggering construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Expect every WRITE payload byte on QP 0 to arrive incremented by
    /// one. Any scenario keeping at least one WRITE on QP 0 still fails,
    /// so the minimizer must converge to a single-WRITE reproducer.
    WriteCorruption,
}

/// One expected requester-side completion: `(wr id, opcode, bytes)`.
pub type ExpectedComp = (u64, WcOpcode, u32);

/// The predicted observable outcome of a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// Final client region contents.
    pub client_mem: Vec<u8>,
    /// Final server region contents.
    pub server_mem: Vec<u8>,
    /// Per-QP requester completions, in completion order.
    pub client_comps: Vec<Vec<ExpectedComp>>,
    /// Per-QP responder RECV completions, in completion order.
    pub server_comps: Vec<Vec<ExpectedComp>>,
}

impl Expectation {
    /// Computes the expectation by sequentially applying each QP's work
    /// requests to the initial memory images.
    pub fn compute(sc: &Scenario, inject: Option<Injection>) -> Expectation {
        let len = sc.region_len() as usize;
        let mut client: Vec<u8> = (0..len as u64).map(client_init_byte).collect();
        let mut server: Vec<u8> = (0..len as u64).map(server_init_byte).collect();
        let mut client_comps = vec![Vec::new(); sc.qps];
        let mut server_comps = vec![Vec::new(); sc.qps];

        for (k, &(qp, wr)) in sc.wrs.iter().enumerate() {
            let base = qp as u64 * sc.slot;
            let id = k as u64;
            match wr {
                WrSpec::Read { off, len } => {
                    let (a, n) = ((base + off) as usize, len as usize);
                    let src: Vec<u8> = server[a..a + n].to_vec();
                    client[a..a + n].copy_from_slice(&src);
                    client_comps[qp].push((id, WcOpcode::Read, len));
                }
                WrSpec::Write { off, len } => {
                    let (a, n) = ((base + off) as usize, len as usize);
                    let mut payload: Vec<u8> = client[a..a + n].to_vec();
                    if inject == Some(Injection::WriteCorruption) && qp == 0 {
                        for b in &mut payload {
                            *b = b.wrapping_add(1);
                        }
                    }
                    server[a..a + n].copy_from_slice(&payload);
                    client_comps[qp].push((id, WcOpcode::Write, len));
                }
                WrSpec::Send { off, len } => {
                    let (a, n) = ((base + off) as usize, len as usize);
                    let payload: Vec<u8> = client[a..a + n].to_vec();
                    server[a..a + n].copy_from_slice(&payload);
                    client_comps[qp].push((id, WcOpcode::Send, len));
                    server_comps[qp].push((RECV_ID_BASE + id, WcOpcode::Recv, len));
                }
                WrSpec::FetchAdd { off, add } => {
                    let a = (base + off) as usize;
                    let orig = read_u64(&server, a);
                    write_u64(&mut server, a, orig.wrapping_add(add));
                    write_u64(&mut client, a, orig);
                    client_comps[qp].push((id, WcOpcode::FetchAdd, 8));
                }
                WrSpec::CompareSwap { off, compare, swap } => {
                    let a = (base + off) as usize;
                    let orig = read_u64(&server, a);
                    if orig == compare {
                        write_u64(&mut server, a, swap);
                    }
                    write_u64(&mut client, a, orig);
                    client_comps[qp].push((id, WcOpcode::CompareSwap, 8));
                }
            }
        }
        Expectation {
            client_mem: client,
            server_mem: server,
            client_comps,
            server_comps,
        }
    }
}

/// Little-endian u64 load at byte offset `a` (how the simulated NIC and
/// real InfiniBand atomics lay out the 8-byte operand).
fn read_u64(mem: &[u8], a: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&mem[a..a + 8]);
    u64::from_le_bytes(bytes)
}

/// Little-endian u64 store at byte offset `a`.
fn write_u64(mem: &mut [u8], a: usize, v: u64) {
    mem[a..a + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scenario;

    #[test]
    fn sequential_semantics_on_one_qp() {
        let mut sc = Scenario::base("ref");
        sc.slot = 64;
        sc.wrs = vec![
            // Write client[0..8] into server, then read it back: client
            // keeps its own bytes, server now matches them.
            (0, WrSpec::Write { off: 0, len: 8 }),
            (0, WrSpec::Read { off: 0, len: 8 }),
            // Fetch-add on word 8: original lands in client word 8.
            (0, WrSpec::FetchAdd { off: 8, add: 5 }),
        ];
        let e = Expectation::compute(&sc, None);
        let client0: Vec<u8> = (0..8).map(client_init_byte).collect();
        assert_eq!(&e.server_mem[0..8], &client0[..]);
        assert_eq!(&e.client_mem[0..8], &client0[..]);
        let server_word0: Vec<u8> = (8..16).map(server_init_byte).collect();
        assert_eq!(&e.client_mem[8..16], &server_word0[..]);
        let orig = u64::from_le_bytes(server_word0.try_into().expect("8 bytes"));
        assert_eq!(read_u64(&e.server_mem, 8), orig.wrapping_add(5));
        assert_eq!(
            e.client_comps[0],
            vec![
                (0, WcOpcode::Write, 8),
                (1, WcOpcode::Read, 8),
                (2, WcOpcode::FetchAdd, 8),
            ]
        );
    }

    #[test]
    fn compare_swap_only_swaps_on_match() {
        let mut sc = Scenario::base("cas");
        sc.slot = 32;
        let orig = {
            let bytes: Vec<u8> = (0..8).map(server_init_byte).collect();
            u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
        };
        sc.wrs = vec![
            (
                0,
                WrSpec::CompareSwap {
                    off: 0,
                    compare: 1,
                    swap: 42,
                },
            ),
            (
                0,
                WrSpec::CompareSwap {
                    off: 0,
                    compare: orig,
                    swap: 42,
                },
            ),
        ];
        let e = Expectation::compute(&sc, None);
        // First CAS misses (orig != 1), second matches.
        assert_eq!(read_u64(&e.server_mem, 0), 42);
        assert_eq!(read_u64(&e.client_mem, 0), orig);
    }

    #[test]
    fn injection_perturbs_only_qp0_writes() {
        let mut sc = Scenario::base("inj");
        sc.qps = 2;
        sc.slot = 32;
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 4 }),
            (1, WrSpec::Write { off: 0, len: 4 }),
        ];
        let plain = Expectation::compute(&sc, None);
        let bent = Expectation::compute(&sc, Some(Injection::WriteCorruption));
        assert_ne!(plain.server_mem[0..4], bent.server_mem[0..4]);
        assert_eq!(plain.server_mem[32..36], bent.server_mem[32..36]);
    }

    #[test]
    fn sends_produce_recv_completions() {
        let mut sc = Scenario::base("send");
        sc.slot = 16;
        sc.wrs = vec![(0, WrSpec::Send { off: 0, len: 6 })];
        let e = Expectation::compute(&sc, None);
        assert_eq!(e.server_comps[0], vec![(RECV_ID_BASE, WcOpcode::Recv, 6)]);
        assert_eq!(&e.server_mem[0..6], &e.client_mem[0..6]);
    }
}
