//! The failing-seed minimizer.
//!
//! Given a failing scenario and a predicate that re-runs it (returning
//! `true` while the failure persists), [`shrink`] performs delta
//! debugging over the three schedule lists — work requests, fault
//! events, loss phases — removing the largest chunks that preserve the
//! failure, halving the chunk size until single-element removal is
//! stable, then dropping QPs left without work. The result is a minimal
//! reproducer suitable for checking in as a spec file.

use crate::spec::Scenario;

/// Counters describing one minimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Predicate evaluations (scenario re-runs) performed.
    pub tests: usize,
    /// Work requests in the input / output scenario.
    pub wrs: (usize, usize),
    /// Fault events in the input / output scenario.
    pub faults: (usize, usize),
    /// Loss phases in the input / output scenario.
    pub loss: (usize, usize),
    /// QPs in the input / output scenario.
    pub qps: (usize, usize),
}

/// Minimizes `sc` while `still_fails` holds. The input must itself fail
/// (`still_fails(&sc) == true`); otherwise the input is returned as-is.
///
/// The predicate is handed complete, valid scenarios only: list
/// removals cannot break window bounds, and QP compaction renumbers
/// work requests before dropping the count.
pub fn shrink<F>(sc: &Scenario, still_fails: F) -> (Scenario, ShrinkStats)
where
    F: Fn(&Scenario) -> bool,
{
    let mut stats = ShrinkStats {
        wrs: (sc.wrs.len(), sc.wrs.len()),
        faults: (sc.faults.len(), sc.faults.len()),
        loss: (sc.loss.len(), sc.loss.len()),
        qps: (sc.qps, sc.qps),
        ..ShrinkStats::default()
    };
    let mut cur = sc.clone();
    stats.tests += 1;
    if !still_fails(&cur) {
        return (cur, stats);
    }

    // Whole-list removal first: the cheapest big win.
    for list in [ListId::Loss, ListId::Faults] {
        if list_len(&cur, list) == 0 {
            continue;
        }
        let mut cand = cur.clone();
        clear_list(&mut cand, list);
        stats.tests += 1;
        if still_fails(&cand) {
            cur = cand;
        }
    }

    // ddmin-style chunk removal per list, largest chunks first.
    for list in [ListId::Wrs, ListId::Faults, ListId::Loss] {
        loop {
            let before = list_len(&cur, list);
            ddmin_pass(&mut cur, list, &still_fails, &mut stats);
            if list_len(&cur, list) == before {
                break;
            }
        }
    }

    compact_qps(&mut cur, &still_fails, &mut stats);

    stats.wrs.1 = cur.wrs.len();
    stats.faults.1 = cur.faults.len();
    stats.loss.1 = cur.loss.len();
    stats.qps.1 = cur.qps;
    (cur, stats)
}

/// Which shrinkable list a pass operates on. The three lists have
/// different element types, so passes go through an erased
/// remove-by-index-set representation instead of generics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ListId {
    Wrs,
    Faults,
    Loss,
}

fn list_len(sc: &Scenario, list: ListId) -> usize {
    match list {
        ListId::Wrs => sc.wrs.len(),
        ListId::Faults => sc.faults.len(),
        ListId::Loss => sc.loss.len(),
    }
}

/// Replaces `list` with the elements whose indices survive in `keep`
/// (given as the retained index list, in order).
fn retain_indices(sc: &mut Scenario, list: ListId, keep: &[usize]) {
    match list {
        ListId::Wrs => sc.wrs = keep.iter().map(|&i| sc.wrs[i]).collect(),
        ListId::Faults => sc.faults = keep.iter().map(|&i| sc.faults[i]).collect(),
        ListId::Loss => sc.loss = keep.iter().map(|&i| sc.loss[i].clone()).collect(),
    }
}

fn clear_list(sc: &mut Scenario, list: ListId) {
    match list {
        ListId::Wrs => sc.wrs.clear(),
        ListId::Faults => sc.faults.clear(),
        ListId::Loss => sc.loss.clear(),
    }
}

/// One full ddmin sweep over a list: for chunk sizes n/2, n/4, …, 1 try
/// removing each aligned chunk; restart the size ladder after any
/// successful removal (handled by the caller's loop).
fn ddmin_pass<F>(cur: &mut Scenario, list: ListId, still_fails: &F, stats: &mut ShrinkStats)
where
    F: Fn(&Scenario) -> bool,
{
    let mut chunk = (list_len(cur, list) / 2).max(1);
    loop {
        if list_len(cur, list) == 0 {
            return;
        }
        let mut start = 0;
        while start < list_len(cur, list) {
            let len = list_len(cur, list);
            let end = (start + chunk).min(len);
            let keep: Vec<usize> = (0..len).filter(|&i| i < start || i >= end).collect();
            let mut cand = cur.clone();
            retain_indices(&mut cand, list, &keep);
            stats.tests += 1;
            if still_fails(&cand) {
                *cur = cand; // chunk removed; same start now covers new elements
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            return;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Renumbers work-request QP indices densely over the QPs still used and
/// drops the rest, if the failure survives the compaction.
fn compact_qps<F>(cur: &mut Scenario, still_fails: &F, stats: &mut ShrinkStats)
where
    F: Fn(&Scenario) -> bool,
{
    let mut used: Vec<usize> = cur.wrs.iter().map(|&(q, _)| q).collect();
    used.sort_unstable();
    used.dedup();
    if used.len() == cur.qps || used.is_empty() {
        return;
    }
    let mut cand = cur.clone();
    for (new, &old) in used.iter().enumerate() {
        for wr in &mut cand.wrs {
            if wr.0 == old {
                wr.0 = new;
            }
        }
    }
    cand.qps = used.len();
    // Fault pages may now exceed the shrunken region; clamp them out.
    let pages = cand.region_len().div_ceil(ibsim_verbs::PAGE_SIZE) as usize;
    cand.faults.retain(|f| f.page < pages);
    stats.tests += 1;
    if still_fails(&cand) {
        *cur = cand;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultEvent, LossPhase, LossSpec, Scenario, Side, WrSpec};

    /// A pure-structural predicate (no simulation): fails while the
    /// scenario contains a WRITE on QP 0.
    fn has_qp0_write(sc: &Scenario) -> bool {
        sc.wrs
            .iter()
            .any(|&(q, w)| q == 0 && matches!(w, WrSpec::Write { .. }))
    }

    fn noisy_scenario() -> Scenario {
        let mut sc = Scenario::base("noisy");
        sc.qps = 4;
        sc.slot = 64;
        sc.wrs = vec![
            (1, WrSpec::Read { off: 0, len: 8 }),
            (0, WrSpec::Write { off: 0, len: 8 }),
            (2, WrSpec::Send { off: 0, len: 8 }),
            (0, WrSpec::Read { off: 8, len: 8 }),
            (3, WrSpec::FetchAdd { off: 0, add: 1 }),
            (0, WrSpec::Write { off: 16, len: 8 }),
            (1, WrSpec::Write { off: 0, len: 8 }),
        ];
        sc.faults = vec![FaultEvent {
            at_ns: 5,
            side: Side::Client,
            page: 0,
            count: 1,
        }];
        sc.loss = vec![LossPhase {
            at_ns: 0,
            model: LossSpec::Nth(vec![1]),
        }];
        sc
    }

    #[test]
    fn shrinks_to_a_single_triggering_wr() {
        let sc = noisy_scenario();
        let (min, stats) = shrink(&sc, has_qp0_write);
        assert!(has_qp0_write(&min), "shrinking lost the failure");
        assert_eq!(min.wrs.len(), 1, "{:?}", min.wrs);
        assert!(min.faults.is_empty());
        assert!(min.loss.is_empty());
        assert_eq!(min.qps, 1, "unused QPs must be compacted away");
        assert!(min.validate().is_ok());
        assert!(stats.tests > 1);
        assert_eq!(stats.wrs, (7, 1));
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let sc = noisy_scenario();
        let (out, stats) = shrink(&sc, |_| false);
        assert_eq!(out, sc);
        assert_eq!(stats.tests, 1);
    }

    #[test]
    fn conjunction_failures_keep_both_elements() {
        // Failure requires a WRITE on QP 0 *and* at least one fault
        // event: the minimizer must keep one of each.
        let sc = noisy_scenario();
        let pred = |s: &Scenario| has_qp0_write(s) && !s.faults.is_empty();
        let (min, _) = shrink(&sc, pred);
        assert!(pred(&min));
        assert_eq!(min.wrs.len(), 1);
        assert_eq!(min.faults.len(), 1);
    }
}
