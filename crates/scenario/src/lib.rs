//! # ibsim-scenario
//!
//! Seeded fault-schedule fuzzing with a differential RC oracle and a
//! parallel conformance runner.
//!
//! The paper's findings hinge on rare interleavings — a request racing a
//! QP's fault-recovery window (§V packet damming) or dozens of QPs
//! faulting on one page at once (§VI packet flood). Hand-written probe
//! configs exercise exactly two of those interleavings; this crate turns
//! the simulator into a conformance machine over a *space* of schedules:
//!
//! * [`Scenario`] — a serializable spec combining topology (QP count),
//!   a typed workload per QP, a deterministic fault schedule (ODP page
//!   invalidation bursts, NIC translation-cache evictions, fabric loss
//!   phases — rate and Gilbert–Elliott burst loss) and a seed;
//! * [`paper_corpus`] — scenarios derived from the paper's §V/§VI probes
//!   and the §IX-A workaround ablations, plus [`random_scenario`], a
//!   seeded generator for fuzzing;
//! * [`run_scenario`] + [`check_run`] — the differential oracle: every
//!   run is replayed against a tiny reference model of RC semantics
//!   ([`Expectation`]) and checked for exactly-once completion, per-QP
//!   PSN conformance (via `ibsim-analysis`), final memory-state
//!   equality, and telemetry stage-sum conservation;
//! * [`shrink`] — a failing-seed minimizer that deletes work requests,
//!   fault events and loss phases while a failure predicate holds,
//!   producing a minimal reproducer;
//! * [`run_corpus`] — a multi-threaded corpus runner whose per-scenario
//!   FNV trace hashes are byte-identical for any worker count, proving
//!   run-level determinism while cutting wall time.
//!
//! # Examples
//!
//! Run one paper-derived scenario through the oracle:
//!
//! ```
//! use ibsim_scenario::{check_run, paper_corpus, run_scenario};
//!
//! let corpus = paper_corpus();
//! let damming = &corpus[0];
//! let run = run_scenario(damming);
//! let report = check_run(damming, &run);
//! assert!(report.is_clean(), "{report}");
//! ```

#![warn(missing_docs)]

mod corpus;
mod exec;
mod generator;
mod oracle;
mod parallel;
mod reference;
mod shrink;
mod spec;

pub use corpus::paper_corpus;
pub use exec::{fnv1a, run_scenario, run_scenario_sharded, run_scenario_sharded_with, ScenarioRun};
pub use generator::random_scenario;
pub use ibsim_verbs::ShardPlan;
pub use oracle::{check_run, check_run_with, OracleReport, OracleViolation};
pub use parallel::{run_corpus, CorpusOutcome};
pub use reference::{Expectation, Injection};
pub use shrink::{shrink, ShrinkStats};
pub use spec::{DeviceKind, FaultEvent, LossPhase, LossSpec, Scenario, Side, WrSpec};
