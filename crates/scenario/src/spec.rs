//! The serializable scenario specification.
//!
//! A [`Scenario`] is everything one conformance run needs, as plain
//! data: one client and one server host, `qps` RC queue pairs between
//! them, a typed work-request list, a deterministic fault schedule and a
//! seed. The spec serializes to a line-oriented text format
//! ([`Scenario::to_spec_string`] / [`Scenario::parse`]) so failing
//! fuzz seeds can be checked in as reproducers and diffed by humans —
//! no external serialization dependency required.
//!
//! ## Memory layout
//!
//! Each QP owns a disjoint `slot`-byte window of both the client and the
//! server region: QP `i` owns bytes `[i*slot, (i+1)*slot)`. All work
//! request offsets are relative to the owning QP's window. Disjoint
//! windows make the reference model exact: RC guarantees in-order
//! execution *within* a QP, and no two QPs can touch the same byte, so
//! the final memory image is independent of cross-QP interleaving — the
//! property the differential oracle checks.

use std::fmt;

use ibsim_verbs::RecoveryKind;

/// Which NIC model both hosts use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// ConnectX-4 on an FDR link (the paper's KNL cluster).
    ConnectX4,
    /// ConnectX-6 (the paper's newer comparison system).
    ConnectX6,
}

impl DeviceKind {
    fn token(self) -> &'static str {
        match self {
            DeviceKind::ConnectX4 => "cx4",
            DeviceKind::ConnectX6 => "cx6",
        }
    }

    fn from_token(s: &str) -> Result<Self, String> {
        match s {
            "cx4" => Ok(DeviceKind::ConnectX4),
            "cx6" => Ok(DeviceKind::ConnectX6),
            other => Err(format!("unknown device {other:?}")),
        }
    }
}

/// Which host a fault event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The requester host.
    Client,
    /// The responder host.
    Server,
}

impl Side {
    fn token(self) -> &'static str {
        match self {
            Side::Client => "client",
            Side::Server => "server",
        }
    }

    fn from_token(s: &str) -> Result<Self, String> {
        match s {
            "client" => Ok(Side::Client),
            "server" => Ok(Side::Server),
            other => Err(format!("unknown side {other:?}")),
        }
    }
}

/// One typed work request, offsets relative to the posting QP's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrSpec {
    /// RDMA READ of `len` bytes: server window `off` → client window `off`.
    Read {
        /// Byte offset within the QP window (both sides).
        off: u64,
        /// Transfer length in bytes.
        len: u32,
    },
    /// RDMA WRITE of `len` bytes: client window `off` → server window `off`.
    Write {
        /// Byte offset within the QP window (both sides).
        off: u64,
        /// Transfer length in bytes.
        len: u32,
    },
    /// Two-sided SEND of `len` bytes from client window `off`; the
    /// executor posts the matching receive at server window `off`.
    Send {
        /// Byte offset within the QP window (both sides).
        off: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// 8-byte fetch-and-add on the server word at `off` (8-aligned);
    /// the original value lands at client window `off`.
    FetchAdd {
        /// Byte offset of the 8-byte word within the QP window.
        off: u64,
        /// The addend.
        add: u64,
    },
    /// 8-byte compare-and-swap on the server word at `off` (8-aligned);
    /// the original value lands at client window `off`.
    CompareSwap {
        /// Byte offset of the 8-byte word within the QP window.
        off: u64,
        /// Expected current value.
        compare: u64,
        /// Replacement value if it matches.
        swap: u64,
    },
}

impl WrSpec {
    /// Bytes this request occupies in the QP window (both sides).
    pub fn footprint(self) -> (u64, u64) {
        match self {
            WrSpec::Read { off, len } | WrSpec::Write { off, len } | WrSpec::Send { off, len } => {
                (off, len as u64)
            }
            WrSpec::FetchAdd { off, .. } | WrSpec::CompareSwap { off, .. } => (off, 8),
        }
    }

    /// True if the two footprints share at least one byte.
    pub fn overlaps(self, other: WrSpec) -> bool {
        let (a_off, a_len) = self.footprint();
        let (b_off, b_len) = other.footprint();
        !(a_off + a_len <= b_off || b_off + b_len <= a_off)
    }

    /// True if posting `later` after `self` on the *same QP* with
    /// overlapping footprints is an unsequenced buffer race — the
    /// differential oracle's soundness precondition
    /// ([`Scenario::validate`] rejects such workloads).
    ///
    /// Two mechanisms make these pairs unpredictable, and both are
    /// faithful RC semantics rather than simulator artefacts:
    ///
    /// * **Gather at transmit.** A WRITE/SEND DMA-reads its payload from
    ///   client memory when each packet goes on the wire, while an
    ///   earlier outstanding READ or atomic lands its response bytes in
    ///   the client window only when the response arrives. If the source
    ///   and landing ranges overlap, the payload snapshot races the
    ///   landing — real ibverbs makes the same non-guarantee (reusing a
    ///   buffer before its completion polls is a user bug).
    /// * **Duplicate-READ re-execution.** A responder replays a
    ///   duplicate READ request from *current* memory (IBA allows this).
    ///   If the original response is lost and a later request already
    ///   mutated overlapping server bytes, the replay returns
    ///   post-mutation data instead of what the sequential order saw.
    ///
    /// Overlaps between two WRITE/SENDs, two READs, or two atomics are
    /// always fine: responder execution is PSN-ordered, duplicate
    /// WRITE/SENDs are re-ACKed without re-applying data, and duplicate
    /// atomics are replayed from the responder's replay cache.
    ///
    /// This rule set is the go-back-N one. Selective repeat executes
    /// overlapping requests out of order and acks non-cumulatively, so
    /// [`Scenario::validate`] tightens the precondition there to "any
    /// overlap except READ/READ" using [`WrSpec::overlaps`] directly.
    pub fn races_with_later(self, later: WrSpec) -> bool {
        if !self.overlaps(later) {
            return false; // disjoint footprints never race
        }
        let later_mutates = !matches!(later, WrSpec::Read { .. });
        match self {
            // Earlier READ: its client landing races a later payload
            // gather, and its duplicate replay races any later
            // server-side mutation.
            WrSpec::Read { .. } => later_mutates,
            // Earlier atomic: its client landing races a later payload
            // gather; server-side duplicates are replay-cached.
            WrSpec::FetchAdd { .. } | WrSpec::CompareSwap { .. } => {
                matches!(later, WrSpec::Write { .. } | WrSpec::Send { .. })
            }
            // Earlier WRITE/SEND: any response that could land in the
            // overlap carries a higher PSN and therefore cumulatively
            // acknowledges this request first — it can no longer be
            // re-gathered once the overlap changes.
            WrSpec::Write { .. } | WrSpec::Send { .. } => false,
        }
    }
}

/// One entry of the fault schedule: invalidate `count` pages of one
/// side's region starting at `page`, at simulated time `at_ns`.
///
/// `count == 1` models a NIC translation-cache eviction of a single
/// page; larger counts model an ODP fault burst (the kernel reclaiming
/// a range, as `madvise(MADV_DONTNEED)` or memory pressure would).
/// Events targeting a pinned region are skipped by the executor: pinned
/// pages can never be reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated time the invalidation lands, in nanoseconds.
    pub at_ns: u64,
    /// Which host's region is hit.
    pub side: Side,
    /// First page index invalidated.
    pub page: usize,
    /// Number of consecutive pages invalidated.
    pub count: usize,
}

/// The fabric loss model installed from one point in time onward.
#[derive(Debug, Clone, PartialEq)]
pub enum LossSpec {
    /// No injected loss.
    None,
    /// Independent per-frame loss with probability `prob_milli / 1000`.
    /// The rate is carried in integer milli-units so the spec format
    /// round-trips exactly.
    Uniform {
        /// Drop probability in thousandths (47 = 4.7 %).
        prob_milli: u32,
        /// PRNG seed for the per-frame coin flips.
        seed: u64,
    },
    /// Gilbert–Elliott burst loss (see `ibsim_fabric::LossModel::Burst`).
    Burst {
        /// Probability of entering a burst, in thousandths.
        enter_milli: u32,
        /// Probability of leaving a burst, in thousandths.
        exit_milli: u32,
        /// Drop probability while inside a burst, in thousandths. Fuzzed
        /// scenarios keep this well below 1000 so eight consecutive
        /// losses of one request (transport retry exhaustion) stays
        /// astronomically unlikely and the oracle can demand success.
        drop_milli: u32,
        /// PRNG seed for transitions and drop coins.
        seed: u64,
    },
    /// Drop exactly the frames with these 0-based submission indices.
    Nth(
        /// Frame indices to drop, counted from the phase's installation.
        Vec<u64>,
    ),
}

/// One phase of the loss schedule: at `at_ns`, install `model`.
#[derive(Debug, Clone, PartialEq)]
pub struct LossPhase {
    /// Simulated time the model is installed, in nanoseconds.
    pub at_ns: u64,
    /// The loss model active from then on (until the next phase).
    pub model: LossSpec,
}

/// A complete, self-contained conformance scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name (shown in runner tables; no whitespace).
    pub name: String,
    /// Seed driving every random draw inside the simulator.
    pub seed: u64,
    /// NIC model on both hosts.
    pub device: DeviceKind,
    /// Number of RC QP pairs between the client and the server.
    pub qps: usize,
    /// Bytes of client and server region owned by each QP.
    pub slot: u64,
    /// Register the client region with On-Demand Paging.
    pub client_odp: bool,
    /// Register the server region with On-Demand Paging.
    pub server_odp: bool,
    /// Prefetch (pre-map) ODP regions after registration — the §IX-A
    /// `ibv_advise_mr` workaround ablation.
    pub prefetch: bool,
    /// Local ACK Timeout field `C_ack` on every QP.
    pub cack: u8,
    /// Transport retry budget `C_retry` on every QP.
    pub retry_count: u8,
    /// Minimal RNR NAK delay advertised by every QP, in nanoseconds.
    pub min_rnr_delay_ns: u64,
    /// Gap between consecutive posts of the workload loop, in
    /// nanoseconds (the Fig. 3 `usleep(interval)`).
    pub post_interval_ns: u64,
    /// Loss-recovery backend on every QP. Defaults to go-back-N (the
    /// hardware the paper measured); specs without a `recovery=` line
    /// parse to that default, so pre-facet reproducers stay valid.
    pub recovery: RecoveryKind,
    /// The workload: `(qp index, request)`, posted in list order with
    /// the global list position as the work-request id.
    pub wrs: Vec<(usize, WrSpec)>,
    /// The fault schedule (ODP invalidation bursts / cache evictions).
    pub faults: Vec<FaultEvent>,
    /// The loss schedule (fabric loss model changes over time).
    pub loss: Vec<LossPhase>,
    /// Number of PDES shards to execute on (1 = the sequential engine).
    /// Any value must reproduce the shard-count-1 trace byte for byte;
    /// the facet exists so the conformance battery and fuzzer can
    /// exercise the sharded executor through the same spec pipeline.
    pub shards: usize,
    /// Fabric topology routing the two hosts' traffic. Defaults to the
    /// single-switch crossbar (the hardware shape every golden trace is
    /// pinned against); specs without a `topology=` line parse to that
    /// default, so pre-facet reproducers stay valid.
    pub topology: ibsim_fabric::TopologyKind,
}

impl Scenario {
    /// A minimal baseline scenario: one QP, pinned memory, no faults, no
    /// loss — callers override fields from here.
    pub fn base(name: &str) -> Self {
        Scenario {
            name: name.to_owned(),
            seed: 1,
            device: DeviceKind::ConnectX4,
            qps: 1,
            slot: 256,
            client_odp: false,
            server_odp: false,
            prefetch: false,
            cack: 1,
            retry_count: 7,
            min_rnr_delay_ns: 1_280_000,
            post_interval_ns: 1_000,
            recovery: RecoveryKind::GoBackN,
            wrs: Vec::new(),
            faults: Vec::new(),
            loss: Vec::new(),
            shards: 1,
            topology: ibsim_fabric::TopologyKind::Crossbar,
        }
    }

    /// Total length in bytes of each host's region.
    pub fn region_len(&self) -> u64 {
        self.qps as u64 * self.slot
    }

    /// Validates internal consistency; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || self.name.contains(char::is_whitespace) {
            return Err(format!("bad name {:?}", self.name));
        }
        if self.qps == 0 {
            return Err("need at least one QP".into());
        }
        if self.slot == 0 {
            return Err("slot must be positive".into());
        }
        if self.shards == 0 || self.shards > 16 {
            return Err(format!("shards {} outside 1..=16", self.shards));
        }
        for (i, &(qp, wr)) in self.wrs.iter().enumerate() {
            if qp >= self.qps {
                return Err(format!("wr {i} targets QP {qp} of {}", self.qps));
            }
            let (off, len) = wr.footprint();
            if len == 0 {
                return Err(format!("wr {i} has zero length"));
            }
            if off + len > self.slot {
                return Err(format!(
                    "wr {i} spans [{off}, {}) outside slot {}",
                    off + len,
                    self.slot
                ));
            }
            if matches!(wr, WrSpec::FetchAdd { .. } | WrSpec::CompareSwap { .. }) && off % 8 != 0 {
                return Err(format!("atomic wr {i} offset {off} not 8-aligned"));
            }
        }
        // Oracle soundness precondition: no unsequenced buffer races
        // between same-QP requests (see `WrSpec::races_with_later`).
        //
        // Selective repeat weakens both ordering guarantees the go-back-N
        // rule leans on: the responder executes future READ/WRITEs out of
        // order, and acking is no longer cumulative (so an unacked
        // WRITE/SEND can be re-gathered after a later response landed in
        // its source bytes). Under that backend any overlapping same-QP
        // pair except READ/READ is an unsequenced race.
        for (j, &(qp_j, wr_j)) in self.wrs.iter().enumerate() {
            for &(qp_i, wr_i) in &self.wrs[..j] {
                if qp_i != qp_j {
                    continue;
                }
                let racy = if self.recovery == RecoveryKind::SelectiveRepeat {
                    let both_reads =
                        matches!(wr_i, WrSpec::Read { .. }) && matches!(wr_j, WrSpec::Read { .. });
                    wr_i.overlaps(wr_j) && !both_reads
                } else {
                    wr_i.races_with_later(wr_j)
                };
                if racy {
                    return Err(format!(
                        "wr {j} ({wr_j:?}) overlaps the landing range of an earlier \
                         outstanding {wr_i:?} on QP {qp_j}: unsequenced buffer race \
                         under {} recovery (the reference model assumes sequential \
                         buffer evolution)",
                        self.recovery
                    ));
                }
            }
        }
        let pages = self.region_len().div_ceil(ibsim_verbs::PAGE_SIZE) as usize;
        for (i, f) in self.faults.iter().enumerate() {
            if f.count == 0 {
                return Err(format!("fault {i} invalidates zero pages"));
            }
            if f.page >= pages {
                return Err(format!("fault {i} starts at page {} of {pages}", f.page));
            }
        }
        for (i, p) in self.loss.iter().enumerate() {
            if let LossSpec::Uniform { prob_milli, .. } = p.model {
                if prob_milli > 1000 {
                    return Err(format!("loss phase {i} probability {prob_milli} > 1000"));
                }
            }
            if let LossSpec::Burst {
                enter_milli,
                exit_milli,
                drop_milli,
                ..
            } = p.model
            {
                if enter_milli > 1000 || exit_milli > 1000 || drop_milli > 1000 {
                    return Err(format!("loss phase {i} burst params out of range"));
                }
            }
        }
        Ok(())
    }

    /// Renders the scenario in the line-oriented spec format parsed by
    /// [`Scenario::parse`]. Round-trips exactly.
    pub fn to_spec_string(&self) -> String {
        let mut s = String::new();
        s.push_str("ibsim-scenario v1\n");
        s.push_str(&format!("name={}\n", self.name));
        s.push_str(&format!("seed={}\n", self.seed));
        s.push_str(&format!("device={}\n", self.device.token()));
        s.push_str(&format!("qps={}\n", self.qps));
        s.push_str(&format!("slot={}\n", self.slot));
        s.push_str(&format!(
            "odp={}{}\n",
            if self.client_odp { "c" } else { "-" },
            if self.server_odp { "s" } else { "-" }
        ));
        s.push_str(&format!("prefetch={}\n", u8::from(self.prefetch)));
        s.push_str(&format!("cack={}\n", self.cack));
        s.push_str(&format!("retry={}\n", self.retry_count));
        s.push_str(&format!("rnr_ns={}\n", self.min_rnr_delay_ns));
        s.push_str(&format!("interval_ns={}\n", self.post_interval_ns));
        s.push_str(&format!("recovery={}\n", self.recovery));
        // `topology=` and `shards=` are emitted only when non-default,
        // in this canonical order, so every pre-facet spec string — and
        // its pinned corpus hash — stays byte-identical (a test pins
        // the facet order itself).
        if self.topology != ibsim_fabric::TopologyKind::Crossbar {
            s.push_str(&format!("topology={}\n", self.topology));
        }
        if self.shards != 1 {
            s.push_str(&format!("shards={}\n", self.shards));
        }
        for &(qp, wr) in &self.wrs {
            match wr {
                WrSpec::Read { off, len } => s.push_str(&format!("wr={qp} read {off} {len}\n")),
                WrSpec::Write { off, len } => s.push_str(&format!("wr={qp} write {off} {len}\n")),
                WrSpec::Send { off, len } => s.push_str(&format!("wr={qp} send {off} {len}\n")),
                WrSpec::FetchAdd { off, add } => s.push_str(&format!("wr={qp} fadd {off} {add}\n")),
                WrSpec::CompareSwap { off, compare, swap } => {
                    s.push_str(&format!("wr={qp} cas {off} {compare} {swap}\n"))
                }
            }
        }
        for f in &self.faults {
            s.push_str(&format!(
                "fault={} {} {} {}\n",
                f.at_ns,
                f.side.token(),
                f.page,
                f.count
            ));
        }
        for p in &self.loss {
            match &p.model {
                LossSpec::None => s.push_str(&format!("loss={} none\n", p.at_ns)),
                LossSpec::Uniform { prob_milli, seed } => {
                    s.push_str(&format!("loss={} uniform {prob_milli} {seed}\n", p.at_ns))
                }
                LossSpec::Burst {
                    enter_milli,
                    exit_milli,
                    drop_milli,
                    seed,
                } => s.push_str(&format!(
                    "loss={} burst {enter_milli} {exit_milli} {drop_milli} {seed}\n",
                    p.at_ns
                )),
                LossSpec::Nth(indices) => {
                    let list: Vec<String> = indices.iter().map(u64::to_string).collect();
                    s.push_str(&format!("loss={} nth {}\n", p.at_ns, list.join(",")));
                }
            }
        }
        s
    }

    /// Parses the spec format produced by [`Scenario::to_spec_string`].
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut lines = text.lines().filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        });
        let header = lines.next().ok_or("empty spec")?;
        if header.trim() != "ibsim-scenario v1" {
            return Err(format!("bad header {header:?}"));
        }
        let mut sc = Scenario::base("unnamed");
        for line in lines {
            let line = line.trim();
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("bad line {line:?}"))?;
            match key {
                "name" => sc.name = value.to_owned(),
                "seed" => sc.seed = parse_num(value)?,
                "device" => sc.device = DeviceKind::from_token(value)?,
                "qps" => sc.qps = parse_num::<u64>(value)? as usize,
                "slot" => sc.slot = parse_num(value)?,
                "odp" => {
                    let mut chars = value.chars();
                    sc.client_odp = chars.next() == Some('c');
                    sc.server_odp = chars.next() == Some('s');
                }
                "prefetch" => sc.prefetch = value == "1",
                "cack" => sc.cack = parse_num::<u64>(value)? as u8,
                "retry" => sc.retry_count = parse_num::<u64>(value)? as u8,
                "rnr_ns" => sc.min_rnr_delay_ns = parse_num(value)?,
                "interval_ns" => sc.post_interval_ns = parse_num(value)?,
                "recovery" => sc.recovery = value.parse()?,
                "topology" => sc.topology = value.parse()?,
                "shards" => sc.shards = parse_num::<u64>(value)? as usize,
                "wr" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() < 3 {
                        return Err(format!("short wr line {line:?}"));
                    }
                    let qp = parse_num::<u64>(parts[0])? as usize;
                    let wr = match parts[1] {
                        "read" => WrSpec::Read {
                            off: parse_num(parts[2])?,
                            len: arg(&parts, 3)?,
                        },
                        "write" => WrSpec::Write {
                            off: parse_num(parts[2])?,
                            len: arg(&parts, 3)?,
                        },
                        "send" => WrSpec::Send {
                            off: parse_num(parts[2])?,
                            len: arg(&parts, 3)?,
                        },
                        "fadd" => WrSpec::FetchAdd {
                            off: parse_num(parts[2])?,
                            add: arg(&parts, 3)?,
                        },
                        "cas" => WrSpec::CompareSwap {
                            off: parse_num(parts[2])?,
                            compare: arg(&parts, 3)?,
                            swap: arg(&parts, 4)?,
                        },
                        other => return Err(format!("unknown wr kind {other:?}")),
                    };
                    sc.wrs.push((qp, wr));
                }
                "fault" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() != 4 {
                        return Err(format!("bad fault line {line:?}"));
                    }
                    sc.faults.push(FaultEvent {
                        at_ns: parse_num(parts[0])?,
                        side: Side::from_token(parts[1])?,
                        page: parse_num::<u64>(parts[2])? as usize,
                        count: parse_num::<u64>(parts[3])? as usize,
                    });
                }
                "loss" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() < 2 {
                        return Err(format!("short loss line {line:?}"));
                    }
                    let at_ns = parse_num(parts[0])?;
                    let model = match parts[1] {
                        "none" => LossSpec::None,
                        "uniform" => LossSpec::Uniform {
                            prob_milli: arg(&parts, 2)?,
                            seed: arg(&parts, 3)?,
                        },
                        "burst" => LossSpec::Burst {
                            enter_milli: arg(&parts, 2)?,
                            exit_milli: arg(&parts, 3)?,
                            drop_milli: arg(&parts, 4)?,
                            seed: arg(&parts, 5)?,
                        },
                        "nth" => {
                            let list = parts.get(2).copied().unwrap_or_default();
                            let indices: Result<Vec<u64>, String> = list
                                .split(',')
                                .filter(|s| !s.is_empty())
                                .map(parse_num)
                                .collect();
                            LossSpec::Nth(indices?)
                        }
                        other => return Err(format!("unknown loss model {other:?}")),
                    };
                    sc.loss.push(LossPhase { at_ns, model });
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        sc.validate()?;
        Ok(sc)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (seed {}, {} QPs, {} wrs, {} faults, {} loss phases)",
            self.name,
            self.seed,
            self.qps,
            self.wrs.len(),
            self.faults.len(),
            self.loss.len()
        )
    }
}

/// Parses one integer field with a contextual error.
fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

/// Fetches and parses positional argument `i` of a spec line.
fn arg<T: std::str::FromStr>(parts: &[&str], i: usize) -> Result<T, String> {
    let s = parts.get(i).ok_or_else(|| format!("missing arg {i}"))?;
    parse_num(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        let mut sc = Scenario::base("sample");
        sc.seed = 99;
        sc.device = DeviceKind::ConnectX6;
        sc.qps = 3;
        sc.slot = 512;
        sc.client_odp = true;
        sc.prefetch = true;
        sc.cack = 18;
        sc.post_interval_ns = 5_000;
        sc.wrs = vec![
            (0, WrSpec::Read { off: 0, len: 100 }),
            (1, WrSpec::Write { off: 64, len: 32 }),
            (1, WrSpec::Send { off: 128, len: 8 }),
            (2, WrSpec::FetchAdd { off: 8, add: 7 }),
            (
                2,
                WrSpec::CompareSwap {
                    off: 16,
                    compare: 1,
                    swap: 2,
                },
            ),
        ];
        sc.faults = vec![FaultEvent {
            at_ns: 10_000,
            side: Side::Client,
            page: 0,
            count: 1,
        }];
        sc.loss = vec![
            LossPhase {
                at_ns: 0,
                model: LossSpec::Uniform {
                    prob_milli: 20,
                    seed: 5,
                },
            },
            LossPhase {
                at_ns: 50_000,
                model: LossSpec::Burst {
                    enter_milli: 10,
                    exit_milli: 200,
                    drop_milli: 1000,
                    seed: 6,
                },
            },
            LossPhase {
                at_ns: 80_000,
                model: LossSpec::Nth(vec![3, 9]),
            },
            LossPhase {
                at_ns: 100_000,
                model: LossSpec::None,
            },
        ];
        sc
    }

    #[test]
    fn spec_round_trips_exactly() {
        let sc = sample();
        sc.validate().expect("sample is valid");
        let text = sc.to_spec_string();
        let back = Scenario::parse(&text).expect("parse back");
        assert_eq!(sc, back);
        // And the re-rendered text is byte-identical.
        assert_eq!(text, back.to_spec_string());
    }

    #[test]
    fn recovery_facet_round_trips_every_backend() {
        for kind in RecoveryKind::ALL {
            let mut sc = sample();
            sc.recovery = kind;
            sc.validate().expect("sample is valid under every backend");
            let text = sc.to_spec_string();
            assert!(
                text.contains(&format!("recovery={kind}\n")),
                "facet always emitted"
            );
            let back = Scenario::parse(&text).expect("parse back");
            assert_eq!(sc, back);
            assert_eq!(text, back.to_spec_string());
        }
        // Pre-facet specs (no recovery line) parse to go-back-N.
        let legacy = "ibsim-scenario v1\nname=old\n";
        let sc = Scenario::parse(legacy).expect("parse legacy spec");
        assert_eq!(sc.recovery, RecoveryKind::GoBackN);
        // Unknown tokens are rejected with the kind parser's message.
        let bad = "ibsim-scenario v1\nname=x\nrecovery=tcp\n";
        let err = Scenario::parse(bad).expect_err("unknown backend");
        assert!(err.contains("unknown recovery kind"), "{err}");
    }

    #[test]
    fn topology_facet_round_trips_every_kind() {
        for kind in ibsim_fabric::TopologyKind::ALL_SAMPLES {
            let mut sc = sample();
            sc.topology = kind;
            let text = sc.to_spec_string();
            let back = Scenario::parse(&text).expect("parse back");
            assert_eq!(sc, back);
            assert_eq!(text, back.to_spec_string());
        }
        // Pre-facet specs (no topology line) parse to the crossbar.
        let legacy = "ibsim-scenario v1\nname=old\n";
        let sc = Scenario::parse(legacy).expect("parse legacy spec");
        assert_eq!(sc.topology, ibsim_fabric::TopologyKind::Crossbar);
        let bad = "ibsim-scenario v1\nname=x\ntopology=torus3\n";
        let err = Scenario::parse(bad).expect_err("unknown topology");
        assert!(err.contains("unknown topology kind"), "{err}");
    }

    /// Pins the canonical facet order (`recovery=` → `topology=` →
    /// `shards=`) and the emit-only-when-non-default rule. Corpus hashes
    /// are FNV over the spec string, so the facet block's byte layout is
    /// load-bearing: reordering it (or emitting defaults) would silently
    /// re-pin every corpus entry.
    #[test]
    fn facet_block_order_is_canonical() {
        let mut sc = sample();
        sc.recovery = RecoveryKind::SelectiveRepeat;
        sc.topology = ibsim_fabric::TopologyKind::FatTree { k: 4 };
        sc.shards = 4;
        let text = sc.to_spec_string();
        assert!(
            text.contains("recovery=irn\ntopology=fattree4\nshards=4\n"),
            "facets must be adjacent lines in canonical order:\n{text}"
        );
        // Defaults vanish individually, never reordering the others.
        sc.topology = ibsim_fabric::TopologyKind::Crossbar;
        let text = sc.to_spec_string();
        assert!(!text.contains("topology="), "default topology is elided");
        assert!(
            text.contains("recovery=irn\nshards=4\n"),
            "remaining facets stay adjacent:\n{text}"
        );
        sc.shards = 1;
        let text = sc.to_spec_string();
        assert!(!text.contains("shards="), "default shards is elided");
        let back = Scenario::parse(&text).expect("parse back");
        assert_eq!(text, back.to_spec_string());
    }

    #[test]
    fn selective_repeat_tightens_the_race_precondition() {
        // WRITE-WRITE overlap: PSN-ordered (safe) under go-back-N,
        // reorderable under out-of-order execution.
        let mut sc = Scenario::base("ww-overlap");
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Write { off: 16, len: 32 }),
        ];
        sc.validate().expect("write-write overlap fine under gbn");
        sc.recovery = RecoveryKind::SelectiveRepeat;
        let err = sc.validate().expect_err("rejected under irn");
        assert!(err.contains("unsequenced buffer race"), "{err}");

        // WRITE-then-READ overlap: cumulative acking makes it safe under
        // go-back-N; non-cumulative acking plus out-of-order READ service
        // does not.
        let mut sc = Scenario::base("wr-overlap");
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Read { off: 0, len: 32 }),
        ];
        sc.validate().expect("write-read overlap fine under gbn");
        sc.recovery = RecoveryKind::SelectiveRepeat;
        assert!(sc.validate().is_err(), "rejected under irn");

        // READ-READ overlap and disjoint mutators stay valid everywhere.
        let mut sc = Scenario::base("irn-safe");
        sc.recovery = RecoveryKind::SelectiveRepeat;
        sc.wrs = vec![
            (0, WrSpec::Read { off: 0, len: 32 }),
            (0, WrSpec::Read { off: 16, len: 32 }),
            (0, WrSpec::Write { off: 64, len: 32 }),
            (0, WrSpec::Send { off: 128, len: 16 }),
        ];
        sc.validate().expect("read-read overlap fine under irn");
        // On-demand pinning keeps go-back-N ordering, so the go-back-N
        // rule applies unchanged.
        let mut sc = Scenario::base("pin-keeps-gbn-rule");
        sc.recovery = RecoveryKind::OnDemandPin;
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Write { off: 16, len: 32 }),
        ];
        sc.validate().expect("write-write overlap fine under pin");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Scenario::parse("").is_err());
        assert!(Scenario::parse("nonsense v9\n").is_err());
        let ok = "ibsim-scenario v1\nname=x\n";
        assert!(Scenario::parse(ok).is_ok());
        assert!(Scenario::parse("ibsim-scenario v1\nwat=1\n").is_err());
        assert!(Scenario::parse("ibsim-scenario v1\nwr=0 levitate 1 2\n").is_err());
    }

    #[test]
    fn validate_catches_bad_specs() {
        let mut sc = sample();
        sc.wrs.push((9, WrSpec::Read { off: 0, len: 1 }));
        assert!(sc.validate().is_err());

        let mut sc = sample();
        sc.wrs.push((0, WrSpec::Read { off: 500, len: 100 }));
        assert!(sc.validate().is_err(), "wr outside slot");

        let mut sc = sample();
        sc.wrs.push((0, WrSpec::FetchAdd { off: 4, add: 1 }));
        assert!(sc.validate().is_err(), "unaligned atomic");

        let mut sc = sample();
        sc.faults.push(FaultEvent {
            at_ns: 0,
            side: Side::Server,
            page: 999,
            count: 1,
        });
        assert!(sc.validate().is_err(), "fault page out of range");

        let mut sc = sample();
        sc.loss.push(LossPhase {
            at_ns: 0,
            model: LossSpec::Uniform {
                prob_milli: 2000,
                seed: 0,
            },
        });
        assert!(sc.validate().is_err(), "probability over 1.0");
    }

    #[test]
    fn validate_rejects_unsequenced_buffer_races() {
        // Later WRITE sourcing bytes an outstanding READ lands into.
        let mut sc = Scenario::base("race-read-write");
        sc.wrs = vec![
            (0, WrSpec::Read { off: 0, len: 32 }),
            (0, WrSpec::Write { off: 16, len: 8 }),
        ];
        let err = sc.validate().expect_err("read/write race must be rejected");
        assert!(err.contains("unsequenced buffer race"), "{err}");

        // Later SEND sourcing an atomic's landing qword.
        let mut sc = Scenario::base("race-atomic-send");
        sc.wrs = vec![
            (0, WrSpec::FetchAdd { off: 64, add: 1 }),
            (0, WrSpec::Send { off: 60, len: 16 }),
        ];
        assert!(sc.validate().is_err(), "atomic/send race must be rejected");

        // Later atomic hitting an outstanding READ's server range
        // (duplicate-READ replay hazard under response loss).
        let mut sc = Scenario::base("race-read-atomic");
        sc.wrs = vec![
            (0, WrSpec::Read { off: 0, len: 32 }),
            (0, WrSpec::FetchAdd { off: 8, add: 1 }),
        ];
        assert!(sc.validate().is_err(), "read/atomic race must be rejected");

        // Safe shapes: different QPs, disjoint ranges, WRITE-then-READ
        // (the response that lands in the overlap cumulatively acks the
        // WRITE first), and overlapping same-kind pairs.
        let mut sc = Scenario::base("race-free");
        sc.qps = 2;
        sc.wrs = vec![
            (0, WrSpec::Read { off: 0, len: 32 }),
            (1, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Write { off: 32, len: 8 }),
            (1, WrSpec::Read { off: 0, len: 32 }),
            (0, WrSpec::Read { off: 0, len: 32 }),
            (0, WrSpec::FetchAdd { off: 40, add: 1 }),
            (
                0,
                WrSpec::CompareSwap {
                    off: 40,
                    compare: 0,
                    swap: 1,
                },
            ),
        ];
        sc.validate().expect("race-free workload must validate");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "ibsim-scenario v1\n\n# a comment\nname=c\n# another\nqps=2\n";
        let sc = Scenario::parse(text).expect("parse");
        assert_eq!(sc.name, "c");
        assert_eq!(sc.qps, 2);
    }
}
