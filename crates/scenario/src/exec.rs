//! The scenario executor: spins up a two-host cluster, installs the
//! fault and loss schedules as engine events, posts the workload, runs
//! the simulation to completion and collects every observable artifact
//! the oracle checks — completions, memory images, the merged lint
//! report, runtime invariant counts, fault spans and a trace hash.
//!
//! Every scenario can run on either engine: [`run_scenario`] executes
//! sequentially when [`Scenario::shards`] is 1 and dispatches to the
//! conservative-lookahead PDES executor ([`run_scenario_sharded`])
//! otherwise. The sharded path is required to reproduce the sequential
//! [`ScenarioRun`] — including `trace_hash` — byte for byte; the
//! conformance battery and the seeded shard-assignment fuzzer enforce
//! that for every corpus entry and random partition.

use ibsim_analysis::{
    check_conservation, lint_capture, InvariantSnapshot, LintConfig, LintReport, RecoveryRules,
};
use ibsim_event::{QueueStats, SimTime};
use ibsim_fabric::{Capture, LinkSpec, LossModel};
use ibsim_telemetry::{FaultSpan, Telemetry};
use ibsim_verbs::{
    merge_shard_telemetry, run_sharded, Cluster, ClusterBuilder, CompareSwapWr, Completion,
    DeviceProfile, FetchAddWr, HostId, MrBuilder, MrDesc, MrMode, Packet, QpConfig, Qpn, ReadWr,
    RecvWr, SendWr, ShardPlan, Sim, WrId, WriteWr, PAGE_SIZE,
};

use crate::reference::{client_init_byte, server_init_byte, RECV_ID_BASE};
use crate::spec::{DeviceKind, LossSpec, Scenario, Side, WrSpec};

/// Extra simulated time granted past the last post before a run is
/// declared stalled. Generous: the paper's worst damming stalls are
/// hundreds of milliseconds, and simulated seconds are cheap (the event
/// engine only pays for events that exist).
const DRAIN_BUDGET: SimTime = SimTime::from_secs(30);

/// FNV-1a over raw bytes: the dependency-free stable hash used for all
/// trace-identity checks in this repository. Re-exported from
/// [`ibsim_odp::hash`] so every crate hashes with the same pinned
/// implementation.
///
/// # Examples
///
/// ```
/// assert_eq!(ibsim_scenario::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(ibsim_scenario::fnv1a(b"a"), ibsim_scenario::fnv1a(b"b"));
/// ```
pub use ibsim_odp::hash::fnv1a;

/// Everything one scenario run produced that the oracle (or a human)
/// might want to inspect.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Requester-side completions, grouped by QP index in poll order.
    pub client_comps: Vec<Vec<Completion>>,
    /// Responder-side completions, grouped by QP index in poll order.
    pub server_comps: Vec<Vec<Completion>>,
    /// Completions whose QP number matched no scenario QP (always a bug).
    pub stray_comps: usize,
    /// Final client region contents.
    pub client_mem: Vec<u8>,
    /// Final server region contents.
    pub server_mem: Vec<u8>,
    /// Merged protocol lint: client capture + server capture + pairwise
    /// packet conservation.
    pub lint: LintReport,
    /// Total runtime invariant violations counted across the cluster and
    /// engine (nonzero only when built with `--features checks`).
    pub invariant_violations: u64,
    /// Closed fault-lifecycle spans recorded by telemetry. Sequential
    /// runs report them in close order; sharded runs in the canonical
    /// `(completed, raised, host, mr, page)` order. Only order differs —
    /// the oracle's stage-sum law is order-insensitive.
    pub spans: Vec<FaultSpan>,
    /// Telemetry closed spans whose stage durations do not sum to their
    /// end-to-end latency (see `Telemetry::stage_sum_violations`).
    pub stage_sum_violations: usize,
    /// The run hit its drain deadline with events still pending.
    pub stalled: bool,
    /// Simulated completion time of the run, in nanoseconds.
    pub end_ns: u64,
    /// FNV-1a hash over both packet timelines, the completion log and
    /// the final memory images — the run's identity for determinism
    /// comparisons across worker counts.
    pub trace_hash: u64,
    /// The textual part of the hash preimage (both packet timelines and
    /// the completion log), kept so a divergence or lint finding can be
    /// read instead of re-instrumented.
    pub timeline: String,
}

/// Simulated drain deadline of a scenario: last post plus the budget.
/// Both executors run exactly to this instant, so `end_ns` is identical
/// whatever the shard count.
fn scenario_deadline(sc: &Scenario) -> SimTime {
    SimTime::from_ns(sc.wrs.len() as u64 * sc.post_interval_ns) + DRAIN_BUDGET
}

/// Handles into a built scenario world that collection needs after the
/// run: host ids, region descriptors and the QP number maps.
struct World {
    client: HostId,
    server: HostId,
    cmr: MrDesc,
    smr: MrDesc,
    client_qpns: Vec<Qpn>,
    server_qpns: Vec<Qpn>,
    hosts: Vec<HostId>,
}

/// Builds the two-host cluster, registers regions, connects QPs and
/// schedules the workload, fault and loss timelines.
///
/// `shard` is `None` for a sequential run; `Some((id, owner))` builds
/// shard `id`'s replica of a sharded run. Replicas are construction-time
/// identical (registration, memory init and QP connection schedule no
/// events), but each replica only schedules events it will execute:
/// workload posts on the client's owner, fault invalidations on the
/// faulted host's owner, and loss-model swaps on every replica through
/// [`Cluster::schedule_global`] (the fabric is replicated state).
fn build_scenario_world(sc: &Scenario, shard: Option<(usize, &[usize])>) -> (Sim, Cluster, World) {
    let profile = match sc.device {
        DeviceKind::ConnectX4 => DeviceProfile::connectx4(LinkSpec::fdr()),
        DeviceKind::ConnectX6 => DeviceProfile::connectx6(),
    };
    let (mut eng, mut cl, hosts) = ClusterBuilder::new()
        .seed(sc.seed)
        .host("client", profile.clone())
        .host("server", profile)
        .capture(true)
        .telemetry(true)
        .topology(sc.topology)
        .build();
    let (client, server) = (hosts[0], hosts[1]);
    if let Some((id, owner)) = shard {
        cl.enable_sharding(id, owner.to_vec());
    }

    let len = sc.region_len();
    let mode = |odp: bool| if odp { MrMode::Odp } else { MrMode::Pinned };
    let mk = |mb: MrBuilder| if sc.prefetch { mb.prefetch() } else { mb };
    let cmr = cl.mr(client, mk(MrBuilder::new(len, mode(sc.client_odp))));
    let smr = cl.mr(server, mk(MrBuilder::new(len, mode(sc.server_odp))));

    let client_init: Vec<u8> = (0..len).map(client_init_byte).collect();
    let server_init: Vec<u8> = (0..len).map(server_init_byte).collect();
    cl.mem_write(client, cmr.base, &client_init);
    cl.mem_write(server, smr.base, &server_init);

    let cfg = QpConfig {
        cack: sc.cack,
        retry_count: sc.retry_count,
        min_rnr_delay: SimTime::from_ns(sc.min_rnr_delay_ns),
        recovery: sc.recovery,
        ..QpConfig::default()
    };
    let mut client_qpns = Vec::with_capacity(sc.qps);
    let mut server_qpns = Vec::with_capacity(sc.qps);
    for _ in 0..sc.qps {
        let (qc, qs) = cl.connect_pair(&mut eng, client, server, cfg.clone());
        client_qpns.push(qc);
        server_qpns.push(qs);
    }

    // Receives are posted up front, at the same window offset as the
    // matching SEND: RC pairs sends with posted receives FIFO per QP, and
    // posting order follows the workload list, so the k-th SEND on a QP
    // consumes the k-th receive posted on it. Posting is pure queue
    // state, so every replica posts them (replica symmetry is free).
    for (k, &(qp, wr)) in sc.wrs.iter().enumerate() {
        if let WrSpec::Send { off, len } = wr {
            cl.post_recv(
                server,
                server_qpns[qp],
                RecvWr {
                    id: WrId(RECV_ID_BASE + k as u64),
                    mr: smr.key,
                    offset: qp as u64 * sc.slot + off,
                    max_len: len,
                },
            );
        }
    }

    // The workload loop: the k-th request is posted at k * interval (the
    // Fig. 3 `usleep` pacing), with the global list index as its id.
    // Posts execute on the client, so only the client's owner schedules
    // them.
    if cl.owns(client) {
        for (k, &(qp, wr)) in sc.wrs.iter().enumerate() {
            let at = SimTime::from_ns(k as u64 * sc.post_interval_ns);
            let qpn = client_qpns[qp];
            let base = qp as u64 * sc.slot;
            let id = k as u64;
            eng.schedule_at(at, move |c: &mut Cluster, eng| match wr {
                WrSpec::Read { off, len } => c.post(
                    eng,
                    client,
                    qpn,
                    ReadWr::new(cmr.at(base + off), smr.at(base + off))
                        .len(len)
                        .id(id),
                ),
                WrSpec::Write { off, len } => c.post(
                    eng,
                    client,
                    qpn,
                    WriteWr::new(cmr.at(base + off), smr.at(base + off))
                        .len(len)
                        .id(id),
                ),
                WrSpec::Send { off, len } => c.post(
                    eng,
                    client,
                    qpn,
                    SendWr::new(cmr.at(base + off)).len(len).id(id),
                ),
                WrSpec::FetchAdd { off, add } => c.post(
                    eng,
                    client,
                    qpn,
                    FetchAddWr::new(cmr.at(base + off), smr.at(base + off))
                        .add(add)
                        .id(id),
                ),
                WrSpec::CompareSwap { off, compare, swap } => c.post(
                    eng,
                    client,
                    qpn,
                    CompareSwapWr::new(cmr.at(base + off), smr.at(base + off))
                        .compare(compare)
                        .swap(swap)
                        .id(id),
                ),
            });
        }
    }

    // The fault schedule. Invalidations only make sense on ODP regions:
    // pinned pages can never be reclaimed, so events against a pinned
    // side are skipped rather than simulating an impossible kernel.
    // Each invalidation mutates one host, so only that host's owner
    // schedules it.
    let pages = len.div_ceil(PAGE_SIZE) as usize;
    for f in &sc.faults {
        let (host, key, odp) = match f.side {
            Side::Client => (client, cmr.key, sc.client_odp),
            Side::Server => (server, smr.key, sc.server_odp),
        };
        if !odp || !cl.owns(host) {
            continue;
        }
        let (first, count) = (f.page, f.count.min(pages.saturating_sub(f.page)));
        eng.schedule_at(SimTime::from_ns(f.at_ns), move |c: &mut Cluster, _| {
            for p in first..first + count {
                c.invalidate_page(host, key, p);
            }
        });
    }

    // The loss schedule: each phase swaps the fabric's loss model. The
    // fabric is replicated per shard, so the swap is a global event —
    // every replica executes it and the merged queue statistics discount
    // the replication.
    for phase in &sc.loss {
        let model = phase.model.clone();
        cl.schedule_global(
            &mut eng,
            SimTime::from_ns(phase.at_ns),
            move |c: &mut Cluster, _| {
                c.fabric.set_loss(loss_model(&model));
            },
        );
    }

    let world = World {
        client,
        server,
        cmr,
        smr,
        client_qpns,
        server_qpns,
        hosts,
    };
    (eng, cl, world)
}

/// One host's post-run artifacts: grouped completions, the textual
/// completion log, final memory image and the packet capture.
struct HostCollect {
    comps: Vec<Vec<Completion>>,
    comp_log: String,
    stray: usize,
    mem: Vec<u8>,
    capture: Capture<Packet>,
}

/// Drains one host's completion queue and snapshots its region and
/// capture. Only meaningful on the replica that owns the host.
fn collect_host(
    cl: &mut Cluster,
    sc: &Scenario,
    tag: &str,
    host: HostId,
    qpns: &[Qpn],
    mr: &MrDesc,
) -> HostCollect {
    let mut comps = vec![Vec::new(); sc.qps];
    let mut stray = 0usize;
    let mut comp_log = String::new();
    for comp in cl.poll_cq(host) {
        comp_log.push_str(&format!(
            "{tag} qp={} id={} st={} op={} b={} t={}\n",
            comp.qpn.0,
            comp.wr_id.0,
            comp.status,
            comp.opcode,
            comp.bytes,
            comp.at.as_ns()
        ));
        match qpns.iter().position(|&q| q == comp.qpn) {
            Some(i) => comps[i].push(comp),
            None => stray += 1,
        }
    }
    let mem = cl.mem_read(host, mr.base, sc.region_len() as usize);
    HostCollect {
        comps,
        comp_log,
        stray,
        mem,
        capture: cl.capture(host).clone(),
    }
}

/// Assembles the final [`ScenarioRun`] from both hosts' artifacts: the
/// merged lint report, the concatenated timeline and the trace hash.
/// Shared verbatim by the sequential and sharded executors, which is
/// what makes "same `HostCollect`s in, same hash out" a structural
/// guarantee.
#[allow(clippy::too_many_arguments)]
fn assemble_run(
    sc: &Scenario,
    ccol: HostCollect,
    scol: HostCollect,
    spans: Vec<FaultSpan>,
    stage_sum_violations: usize,
    invariant_violations: u64,
    stalled: bool,
    end_ns: u64,
) -> ScenarioRun {
    // The justification rules come from the backend under test: batch
    // inheritance is a go-back-N rollback property (see RecoveryRules).
    let lint_cfg = LintConfig {
        rules: RecoveryRules::for_kind(sc.recovery),
        ..LintConfig::default()
    };
    let mut lint = lint_capture(&ccol.capture, &lint_cfg);
    lint.merge(lint_capture(&scol.capture, &lint_cfg));
    lint.merge(check_conservation(&ccol.capture, &scol.capture));

    let mut timeline = String::new();
    timeline.push_str(&ccol.capture.timeline());
    timeline.push('\n');
    timeline.push_str(&scol.capture.timeline());
    timeline.push('\n');
    timeline.push_str(&ccol.comp_log);
    timeline.push_str(&scol.comp_log);
    let mut ident = timeline.clone().into_bytes();
    ident.extend_from_slice(&ccol.mem);
    ident.extend_from_slice(&scol.mem);

    ScenarioRun {
        client_comps: ccol.comps,
        server_comps: scol.comps,
        stray_comps: ccol.stray + scol.stray,
        client_mem: ccol.mem,
        server_mem: scol.mem,
        lint,
        invariant_violations,
        spans,
        stage_sum_violations,
        stalled,
        end_ns,
        trace_hash: fnv1a(&ident),
        timeline,
    }
}

/// Runs one scenario to completion. Deterministic: the same scenario
/// always produces the same [`ScenarioRun`], including its `trace_hash`
/// — whatever [`Scenario::shards`] says, because the sharded executor
/// reproduces the sequential trace bit for bit.
///
/// The scenario should satisfy [`Scenario::validate`]; out-of-range
/// offsets would make the run itself meaningless.
pub fn run_scenario(sc: &Scenario) -> ScenarioRun {
    if sc.shards > 1 {
        return run_scenario_sharded(sc, sc.shards);
    }
    let deadline = scenario_deadline(sc);
    let (mut eng, mut cl, w) = build_scenario_world(sc, None);
    eng.run_until(&mut cl, deadline);
    let stalled = eng.queue_stats().live > 0;
    let end_ns = eng.now().as_ns();

    let ccol = collect_host(&mut cl, sc, "C", w.client, &w.client_qpns, &w.cmr);
    let scol = collect_host(&mut cl, sc, "S", w.server, &w.server_qpns, &w.smr);

    cl.sync_telemetry(&eng);
    let snapshot = InvariantSnapshot::collect(&cl, &w.hosts, &eng);
    let spans: Vec<FaultSpan> = cl.telemetry().spans().to_vec();
    let stage_sum_violations = cl.telemetry().stage_sum_violations();

    assemble_run(
        sc,
        ccol,
        scol,
        spans,
        stage_sum_violations,
        snapshot.total(),
        stalled,
        end_ns,
    )
}

/// Runs a scenario on `shards` PDES shards with the default host
/// placement: client on shard 0, server on shard `1 % shards`. When any
/// loss phase is order-dependent (its model consumes a PRNG or counter
/// per inspected packet) both hosts are co-located on shard 0 instead —
/// cross-shard traffic would consult replicated loss state in a
/// shard-local order and diverge from the sequential drop pattern.
pub fn run_scenario_sharded(sc: &Scenario, shards: usize) -> ScenarioRun {
    run_scenario_sharded_with(sc, ShardPlan::new(shards, vec![0, 1 % shards]))
}

/// Runs a scenario under an explicit [`ShardPlan`] — the entry point for
/// the shard-assignment fuzzer, which exercises arbitrary host→shard
/// partitions. Plans that split the hosts are collapsed onto the
/// client's shard when the loss schedule is order-dependent (see
/// [`run_scenario_sharded`]).
pub fn run_scenario_sharded_with(sc: &Scenario, mut plan: ShardPlan) -> ScenarioRun {
    let order_dependent_loss = sc
        .loss
        .iter()
        .any(|p| loss_model(&p.model).is_order_dependent());
    if order_dependent_loss {
        plan.owner = vec![plan.owner[0]; plan.owner.len()];
    }
    let deadline = scenario_deadline(sc);
    let outs: Vec<ShardOut> = run_sharded(
        &plan,
        Some(deadline),
        |id| {
            let (eng, cl, _) = build_scenario_world(sc, Some((id, &plan.owner)));
            (eng, cl)
        },
        |_, eng, mut cl, canonical_end| {
            // Rebuild the collection handles: replicas are identical, so
            // region descriptors and QP maps are reproducible from the
            // spec alone.
            let (_, _, w) = build_scenario_world(sc, None);
            let client = if cl.owns(w.client) {
                Some(collect_host(
                    &mut cl,
                    sc,
                    "C",
                    w.client,
                    &w.client_qpns,
                    &w.cmr,
                ))
            } else {
                None
            };
            let server = if cl.owns(w.server) {
                Some(collect_host(
                    &mut cl,
                    sc,
                    "S",
                    w.server,
                    &w.server_qpns,
                    &w.smr,
                ))
            } else {
                None
            };
            cl.sync_telemetry_at(&eng, canonical_end);
            let snapshot = InvariantSnapshot::collect(&cl, &w.hosts, &eng);
            ShardOut {
                client,
                server,
                invariants: snapshot.total(),
                telemetry: std::mem::take(cl.telemetry_mut()),
                queue_stats: eng.queue_stats(),
                globals: cl.shard_global_counters(),
            }
        },
    );

    let globals = outs[0].globals;
    let mut client = None;
    let mut server = None;
    let mut invariants = 0u64;
    let mut hubs = Vec::new();
    let mut qss = Vec::new();
    for o in outs {
        client = client.or(o.client);
        server = server.or(o.server);
        invariants += o.invariants;
        hubs.push(o.telemetry);
        qss.push(o.queue_stats);
    }
    let (telemetry, merged_qs) = merge_shard_telemetry(&hubs, &qss, globals.0, globals.1);
    let (Some(ccol), Some(scol)) = (client, server) else {
        unreachable!("every host has exactly one owning shard")
    };
    assemble_run(
        sc,
        ccol,
        scol,
        telemetry.spans().to_vec(),
        telemetry.stage_sum_violations(),
        invariants,
        merged_qs.live > 0,
        deadline.as_ns(),
    )
}

/// One shard's contribution to a sharded [`ScenarioRun`]: the artifacts
/// of the hosts it owns plus its telemetry hub and queue statistics for
/// the deterministic merge.
struct ShardOut {
    client: Option<HostCollect>,
    server: Option<HostCollect>,
    invariants: u64,
    telemetry: Telemetry,
    queue_stats: QueueStats,
    globals: (u64, u64),
}

/// Instantiates the fabric loss model a [`LossSpec`] describes.
fn loss_model(spec: &LossSpec) -> LossModel {
    match spec {
        LossSpec::None => LossModel::None,
        LossSpec::Uniform { prob_milli, seed } => {
            LossModel::uniform(*prob_milli as f64 / 1000.0, *seed)
        }
        LossSpec::Burst {
            enter_milli,
            exit_milli,
            drop_milli,
            seed,
        } => LossModel::burst_with(
            *enter_milli as f64 / 1000.0,
            *exit_milli as f64 / 1000.0,
            *drop_milli as f64 / 1000.0,
            *seed,
        ),
        LossSpec::Nth(indices) => LossModel::nth(indices.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultEvent, LossPhase, Scenario};

    #[test]
    fn identical_scenarios_hash_identically() {
        let mut sc = Scenario::base("det");
        sc.slot = 64;
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Read { off: 0, len: 32 }),
        ];
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert!(!a.stalled);
        assert_eq!(a.stray_comps, 0);
        assert_eq!(a.client_comps[0].len(), 2);
    }

    #[test]
    fn seed_changes_the_run_when_randomness_is_drawn() {
        // ODP fault latencies are drawn from the cluster RNG, so two
        // seeds must diverge once a fault occurs.
        let mut sc = Scenario::base("seeded");
        sc.client_odp = true;
        sc.slot = 64;
        sc.wrs = vec![(0, WrSpec::Read { off: 0, len: 32 })];
        let a = run_scenario(&sc);
        sc.seed = 2;
        let b = run_scenario(&sc);
        assert_ne!(a.trace_hash, b.trace_hash);
    }

    #[test]
    fn faults_on_pinned_regions_are_skipped() {
        let mut sc = Scenario::base("pinned-fault");
        sc.slot = 64;
        sc.wrs = vec![(0, WrSpec::Read { off: 0, len: 32 })];
        sc.faults = vec![FaultEvent {
            at_ns: 10,
            side: Side::Client,
            page: 0,
            count: 1,
        }];
        let run = run_scenario(&sc);
        assert!(run.spans.is_empty(), "pinned region must never fault");
        assert!(!run.stalled);
    }

    #[test]
    fn loss_phase_perturbs_the_trace() {
        let mut sc = Scenario::base("lossy");
        sc.slot = 64;
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Write { off: 32, len: 32 }),
        ];
        let clean = run_scenario(&sc);
        sc.loss = vec![LossPhase {
            at_ns: 0,
            model: LossSpec::Nth(vec![0]),
        }];
        let lossy = run_scenario(&sc);
        assert_ne!(clean.trace_hash, lossy.trace_hash);
        // The dropped first frame must be retransmitted and both writes
        // must still complete.
        assert_eq!(lossy.client_comps[0].len(), 2);
    }

    #[test]
    fn shards_facet_dispatches_and_reproduces_the_sequential_hash() {
        let mut sc = Scenario::base("dispatch");
        sc.client_odp = true;
        sc.slot = 64;
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Read { off: 0, len: 32 }),
        ];
        let seq = run_scenario(&sc);
        sc.shards = 4;
        let sharded = run_scenario(&sc);
        assert_eq!(seq.trace_hash, sharded.trace_hash);
        assert_eq!(seq.timeline, sharded.timeline);
        assert_eq!(seq.end_ns, sharded.end_ns);
        assert_eq!(seq.spans.len(), sharded.spans.len());
        assert_eq!(seq.lint.findings.len(), sharded.lint.findings.len());
    }

    #[test]
    fn order_dependent_loss_collapses_split_plans() {
        // A uniform-loss scenario across a split plan must co-locate the
        // hosts (cross-shard traffic would consult replicated PRNG state
        // out of order) and still reproduce the sequential trace.
        let mut sc = Scenario::base("lossy-sharded");
        sc.slot = 64;
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Write { off: 32, len: 32 }),
        ];
        sc.loss = vec![
            LossPhase {
                at_ns: 0,
                model: LossSpec::Uniform {
                    prob_milli: 200,
                    seed: 7,
                },
            },
            LossPhase {
                at_ns: 1_000_000,
                model: LossSpec::None,
            },
        ];
        let seq = run_scenario(&sc);
        let sharded = run_scenario_sharded_with(&sc, ShardPlan::new(4, vec![0, 3]));
        assert_eq!(seq.trace_hash, sharded.trace_hash);
    }
}
