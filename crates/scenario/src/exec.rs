//! The scenario executor: spins up a two-host cluster, installs the
//! fault and loss schedules as engine events, posts the workload, runs
//! the simulation to completion and collects every observable artifact
//! the oracle checks — completions, memory images, the merged lint
//! report, runtime invariant counts, fault spans and a trace hash.

use ibsim_analysis::{
    check_conservation, lint_capture, InvariantSnapshot, LintConfig, LintReport, RecoveryRules,
};
use ibsim_event::SimTime;
use ibsim_fabric::{LinkSpec, LossModel};
use ibsim_telemetry::FaultSpan;
use ibsim_verbs::{
    Cluster, ClusterBuilder, CompareSwapWr, Completion, DeviceProfile, FetchAddWr, MrBuilder,
    MrMode, QpConfig, ReadWr, RecvWr, SendWr, WrId, WriteWr, PAGE_SIZE,
};

use crate::reference::{client_init_byte, server_init_byte, RECV_ID_BASE};
use crate::spec::{DeviceKind, LossSpec, Scenario, Side, WrSpec};

/// Extra simulated time granted past the last post before a run is
/// declared stalled. Generous: the paper's worst damming stalls are
/// hundreds of milliseconds, and simulated seconds are cheap (the event
/// engine only pays for events that exist).
const DRAIN_BUDGET: SimTime = SimTime::from_secs(30);

/// FNV-1a over raw bytes: the dependency-free stable hash used for all
/// trace-identity checks in this repository. Re-exported from
/// [`ibsim_odp::hash`] so every crate hashes with the same pinned
/// implementation.
///
/// # Examples
///
/// ```
/// assert_eq!(ibsim_scenario::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(ibsim_scenario::fnv1a(b"a"), ibsim_scenario::fnv1a(b"b"));
/// ```
pub use ibsim_odp::hash::fnv1a;

/// Everything one scenario run produced that the oracle (or a human)
/// might want to inspect.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Requester-side completions, grouped by QP index in poll order.
    pub client_comps: Vec<Vec<Completion>>,
    /// Responder-side completions, grouped by QP index in poll order.
    pub server_comps: Vec<Vec<Completion>>,
    /// Completions whose QP number matched no scenario QP (always a bug).
    pub stray_comps: usize,
    /// Final client region contents.
    pub client_mem: Vec<u8>,
    /// Final server region contents.
    pub server_mem: Vec<u8>,
    /// Merged protocol lint: client capture + server capture + pairwise
    /// packet conservation.
    pub lint: LintReport,
    /// Total runtime invariant violations counted across the cluster and
    /// engine (nonzero only when built with `--features checks`).
    pub invariant_violations: u64,
    /// Closed fault-lifecycle spans recorded by telemetry.
    pub spans: Vec<FaultSpan>,
    /// Telemetry closed spans whose stage durations do not sum to their
    /// end-to-end latency (see `Telemetry::stage_sum_violations`).
    pub stage_sum_violations: usize,
    /// The run hit its drain deadline with events still pending.
    pub stalled: bool,
    /// Simulated completion time of the run, in nanoseconds.
    pub end_ns: u64,
    /// FNV-1a hash over both packet timelines, the completion log and
    /// the final memory images — the run's identity for determinism
    /// comparisons across worker counts.
    pub trace_hash: u64,
    /// The textual part of the hash preimage (both packet timelines and
    /// the completion log), kept so a divergence or lint finding can be
    /// read instead of re-instrumented.
    pub timeline: String,
}

/// Runs one scenario to completion. Deterministic: the same scenario
/// always produces the same [`ScenarioRun`], including its `trace_hash`.
///
/// The scenario should satisfy [`Scenario::validate`]; out-of-range
/// offsets would make the run itself meaningless.
pub fn run_scenario(sc: &Scenario) -> ScenarioRun {
    let profile = match sc.device {
        DeviceKind::ConnectX4 => DeviceProfile::connectx4(LinkSpec::fdr()),
        DeviceKind::ConnectX6 => DeviceProfile::connectx6(),
    };
    let (mut eng, mut cl, hosts) = ClusterBuilder::new()
        .seed(sc.seed)
        .host("client", profile.clone())
        .host("server", profile)
        .capture(true)
        .telemetry(true)
        .build();
    let (client, server) = (hosts[0], hosts[1]);

    let len = sc.region_len();
    let mode = |odp: bool| if odp { MrMode::Odp } else { MrMode::Pinned };
    let mk = |mb: MrBuilder| if sc.prefetch { mb.prefetch() } else { mb };
    let cmr = cl.mr(client, mk(MrBuilder::new(len, mode(sc.client_odp))));
    let smr = cl.mr(server, mk(MrBuilder::new(len, mode(sc.server_odp))));

    let client_init: Vec<u8> = (0..len).map(client_init_byte).collect();
    let server_init: Vec<u8> = (0..len).map(server_init_byte).collect();
    cl.mem_write(client, cmr.base, &client_init);
    cl.mem_write(server, smr.base, &server_init);

    let cfg = QpConfig {
        cack: sc.cack,
        retry_count: sc.retry_count,
        min_rnr_delay: SimTime::from_ns(sc.min_rnr_delay_ns),
        recovery: sc.recovery,
        ..QpConfig::default()
    };
    let mut client_qpns = Vec::with_capacity(sc.qps);
    let mut server_qpns = Vec::with_capacity(sc.qps);
    for _ in 0..sc.qps {
        let (qc, qs) = cl.connect_pair(&mut eng, client, server, cfg.clone());
        client_qpns.push(qc);
        server_qpns.push(qs);
    }

    // Receives are posted up front, at the same window offset as the
    // matching SEND: RC pairs sends with posted receives FIFO per QP, and
    // posting order follows the workload list, so the k-th SEND on a QP
    // consumes the k-th receive posted on it.
    for (k, &(qp, wr)) in sc.wrs.iter().enumerate() {
        if let WrSpec::Send { off, len } = wr {
            cl.post_recv(
                server,
                server_qpns[qp],
                RecvWr {
                    id: WrId(RECV_ID_BASE + k as u64),
                    mr: smr.key,
                    offset: qp as u64 * sc.slot + off,
                    max_len: len,
                },
            );
        }
    }

    // The workload loop: the k-th request is posted at k * interval (the
    // Fig. 3 `usleep` pacing), with the global list index as its id.
    for (k, &(qp, wr)) in sc.wrs.iter().enumerate() {
        let at = SimTime::from_ns(k as u64 * sc.post_interval_ns);
        let qpn = client_qpns[qp];
        let base = qp as u64 * sc.slot;
        let id = k as u64;
        eng.schedule_at(at, move |c: &mut Cluster, eng| match wr {
            WrSpec::Read { off, len } => c.post(
                eng,
                client,
                qpn,
                ReadWr::new(cmr.at(base + off), smr.at(base + off))
                    .len(len)
                    .id(id),
            ),
            WrSpec::Write { off, len } => c.post(
                eng,
                client,
                qpn,
                WriteWr::new(cmr.at(base + off), smr.at(base + off))
                    .len(len)
                    .id(id),
            ),
            WrSpec::Send { off, len } => c.post(
                eng,
                client,
                qpn,
                SendWr::new(cmr.at(base + off)).len(len).id(id),
            ),
            WrSpec::FetchAdd { off, add } => c.post(
                eng,
                client,
                qpn,
                FetchAddWr::new(cmr.at(base + off), smr.at(base + off))
                    .add(add)
                    .id(id),
            ),
            WrSpec::CompareSwap { off, compare, swap } => c.post(
                eng,
                client,
                qpn,
                CompareSwapWr::new(cmr.at(base + off), smr.at(base + off))
                    .compare(compare)
                    .swap(swap)
                    .id(id),
            ),
        });
    }

    // The fault schedule. Invalidations only make sense on ODP regions:
    // pinned pages can never be reclaimed, so events against a pinned
    // side are skipped rather than simulating an impossible kernel.
    let pages = len.div_ceil(PAGE_SIZE) as usize;
    for f in &sc.faults {
        let (host, key, odp) = match f.side {
            Side::Client => (client, cmr.key, sc.client_odp),
            Side::Server => (server, smr.key, sc.server_odp),
        };
        if !odp {
            continue;
        }
        let (first, count) = (f.page, f.count.min(pages.saturating_sub(f.page)));
        eng.schedule_at(SimTime::from_ns(f.at_ns), move |c: &mut Cluster, _| {
            for p in first..first + count {
                c.invalidate_page(host, key, p);
            }
        });
    }

    // The loss schedule: each phase swaps the fabric's loss model.
    for phase in &sc.loss {
        let model = phase.model.clone();
        eng.schedule_at(SimTime::from_ns(phase.at_ns), move |c: &mut Cluster, _| {
            c.fabric.set_loss(loss_model(&model));
        });
    }

    let deadline = SimTime::from_ns(sc.wrs.len() as u64 * sc.post_interval_ns) + DRAIN_BUDGET;
    eng.run_until(&mut cl, deadline);
    let stalled = eng.queue_stats().live > 0;
    let end_ns = eng.now().as_ns();

    // ---- Collection ---------------------------------------------------
    let mut client_comps = vec![Vec::new(); sc.qps];
    let mut server_comps = vec![Vec::new(); sc.qps];
    let mut stray_comps = 0usize;
    let mut comp_log = String::new();
    for (tag, host, qpns, grouped) in [
        ("C", client, &client_qpns, &mut client_comps),
        ("S", server, &server_qpns, &mut server_comps),
    ] {
        for comp in cl.poll_cq(host) {
            comp_log.push_str(&format!(
                "{tag} qp={} id={} st={} op={} b={} t={}\n",
                comp.qpn.0,
                comp.wr_id.0,
                comp.status,
                comp.opcode,
                comp.bytes,
                comp.at.as_ns()
            ));
            match qpns.iter().position(|&q| q == comp.qpn) {
                Some(i) => grouped[i].push(comp),
                None => stray_comps += 1,
            }
        }
    }

    let client_mem = cl.mem_read(client, cmr.base, len as usize);
    let server_mem = cl.mem_read(server, smr.base, len as usize);

    // The justification rules come from the backend under test: batch
    // inheritance is a go-back-N rollback property (see RecoveryRules).
    let lint_cfg = LintConfig {
        rules: RecoveryRules::for_kind(sc.recovery),
        ..LintConfig::default()
    };
    let mut lint = lint_capture(cl.capture(client), &lint_cfg);
    lint.merge(lint_capture(cl.capture(server), &lint_cfg));
    lint.merge(check_conservation(cl.capture(client), cl.capture(server)));

    cl.sync_telemetry(&eng);
    let snapshot = InvariantSnapshot::collect(&cl, &hosts, &eng);
    let spans: Vec<FaultSpan> = cl.telemetry().spans().to_vec();
    let stage_sum_violations = cl.telemetry().stage_sum_violations();

    let mut timeline = String::new();
    timeline.push_str(&cl.capture(client).timeline());
    timeline.push('\n');
    timeline.push_str(&cl.capture(server).timeline());
    timeline.push('\n');
    timeline.push_str(&comp_log);
    let mut ident = timeline.clone().into_bytes();
    ident.extend_from_slice(&client_mem);
    ident.extend_from_slice(&server_mem);

    ScenarioRun {
        client_comps,
        server_comps,
        stray_comps,
        client_mem,
        server_mem,
        lint,
        invariant_violations: snapshot.total(),
        spans,
        stage_sum_violations,
        stalled,
        end_ns,
        trace_hash: fnv1a(&ident),
        timeline,
    }
}

/// Instantiates the fabric loss model a [`LossSpec`] describes.
fn loss_model(spec: &LossSpec) -> LossModel {
    match spec {
        LossSpec::None => LossModel::None,
        LossSpec::Uniform { prob_milli, seed } => {
            LossModel::uniform(*prob_milli as f64 / 1000.0, *seed)
        }
        LossSpec::Burst {
            enter_milli,
            exit_milli,
            drop_milli,
            seed,
        } => LossModel::burst_with(
            *enter_milli as f64 / 1000.0,
            *exit_milli as f64 / 1000.0,
            *drop_milli as f64 / 1000.0,
            *seed,
        ),
        LossSpec::Nth(indices) => LossModel::nth(indices.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultEvent, LossPhase, Scenario};

    #[test]
    fn identical_scenarios_hash_identically() {
        let mut sc = Scenario::base("det");
        sc.slot = 64;
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Read { off: 0, len: 32 }),
        ];
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert!(!a.stalled);
        assert_eq!(a.stray_comps, 0);
        assert_eq!(a.client_comps[0].len(), 2);
    }

    #[test]
    fn seed_changes_the_run_when_randomness_is_drawn() {
        // ODP fault latencies are drawn from the cluster RNG, so two
        // seeds must diverge once a fault occurs.
        let mut sc = Scenario::base("seeded");
        sc.client_odp = true;
        sc.slot = 64;
        sc.wrs = vec![(0, WrSpec::Read { off: 0, len: 32 })];
        let a = run_scenario(&sc);
        sc.seed = 2;
        let b = run_scenario(&sc);
        assert_ne!(a.trace_hash, b.trace_hash);
    }

    #[test]
    fn faults_on_pinned_regions_are_skipped() {
        let mut sc = Scenario::base("pinned-fault");
        sc.slot = 64;
        sc.wrs = vec![(0, WrSpec::Read { off: 0, len: 32 })];
        sc.faults = vec![FaultEvent {
            at_ns: 10,
            side: Side::Client,
            page: 0,
            count: 1,
        }];
        let run = run_scenario(&sc);
        assert!(run.spans.is_empty(), "pinned region must never fault");
        assert!(!run.stalled);
    }

    #[test]
    fn loss_phase_perturbs_the_trace() {
        let mut sc = Scenario::base("lossy");
        sc.slot = 64;
        sc.wrs = vec![
            (0, WrSpec::Write { off: 0, len: 32 }),
            (0, WrSpec::Write { off: 32, len: 32 }),
        ];
        let clean = run_scenario(&sc);
        sc.loss = vec![LossPhase {
            at_ns: 0,
            model: LossSpec::Nth(vec![0]),
        }];
        let lossy = run_scenario(&sc);
        assert_ne!(clean.trace_hash, lossy.trace_hash);
        // The dropped first frame must be retransmitted and both writes
        // must still complete.
        assert_eq!(lossy.client_comps[0].len(), 2);
    }
}
