//! Seeded shard-assignment fuzz: the conservative-lookahead PDES
//! executor must reproduce the sequential trace for *any* host→shard
//! partition, not just the default placement. This sweep runs seeded
//! random scenarios once sequentially and once under a seed-derived
//! [`ShardPlan`] — cycling through all-hosts-on-one-shard, one host per
//! shard, reversed placement and arbitrary assignments — and requires
//! byte-identical trace hashes plus matching end times, span counts and
//! stage-sum verdicts from every pair.

use ibsim_scenario::{
    paper_corpus, random_scenario, run_scenario, run_scenario_sharded_with, Scenario, ShardPlan,
};

#[test]
fn paper_corpus_is_shard_count_invariant() {
    for sc in paper_corpus() {
        let seq = run_scenario(&sc);
        for shards in [2usize, 4, 8] {
            let mut sharded_sc = sc.clone();
            sharded_sc.shards = shards;
            let run = run_scenario(&sharded_sc);
            assert_eq!(
                seq.trace_hash, run.trace_hash,
                "{}: trace diverged at {shards} shards",
                sc.name
            );
            assert_eq!(
                seq.end_ns, run.end_ns,
                "{}: end time diverged at {shards} shards",
                sc.name
            );
            assert_eq!(
                seq.spans.len(),
                run.spans.len(),
                "{}: span count diverged at {shards} shards",
                sc.name
            );
        }
    }
}

/// The seed-derived partition under test: two hosts over 2, 4 or 8
/// shards, exercising the degenerate corners explicitly.
fn plan_for(seed: u64) -> ShardPlan {
    let shards = [2usize, 4, 8][(seed % 3) as usize];
    let owner = match seed % 4 {
        // Both hosts co-located (the sequential engine in disguise;
        // also the only legal split under order-dependent loss).
        0 => vec![0, 0],
        // One host per shard, client first: the canonical split.
        1 => vec![0, 1],
        // Reversed: the client on the last shard, so shard 0 is the
        // epoch leader without owning the posting host.
        2 => vec![shards - 1, 0],
        // Arbitrary: both indices drawn from the seed.
        _ => vec![seed as usize % shards, (seed as usize / 5) % shards],
    };
    ShardPlan::new(shards, owner)
}

#[test]
fn random_shard_assignments_reproduce_the_sequential_trace() {
    let mut sharded_faults = 0usize;
    for seed in 0..64u64 {
        let mut sc = random_scenario(seed);
        sc.shards = 1;
        let seq = run_scenario(&sc);
        let plan = plan_for(seed);
        let run = run_scenario_sharded_with(&sc, plan.clone());
        assert_eq!(
            seq.trace_hash, run.trace_hash,
            "seed {seed}: {} shards, owner {:?}: trace diverged from sequential",
            plan.shards, plan.owner
        );
        assert_eq!(seq.timeline, run.timeline, "seed {seed}: timeline diverged");
        assert_eq!(seq.end_ns, run.end_ns, "seed {seed}: end time diverged");
        assert_eq!(
            seq.stalled, run.stalled,
            "seed {seed}: stall verdict diverged"
        );
        assert_eq!(
            seq.spans.len(),
            run.spans.len(),
            "seed {seed}: span count diverged"
        );
        assert_eq!(
            seq.stage_sum_violations, run.stage_sum_violations,
            "seed {seed}: stage-sum verdict diverged"
        );
        assert_eq!(
            seq.lint.findings.len(),
            run.lint.findings.len(),
            "seed {seed}: lint findings diverged"
        );
        if plan.owner[0] != plan.owner[1] && !seq.spans.is_empty() {
            sharded_faults += seq.spans.len();
        }
    }
    // The sweep must not pass vacuously: at least some runs have to
    // resolve ODP faults across a genuinely split partition.
    assert!(
        sharded_faults > 0,
        "no fault spans ran under a split partition — the fuzz never \
         exercised cross-shard fault deferral"
    );
}

/// Route determinism across the executor matrix: the same workload on
/// every built-in topology must produce one trace regardless of shard
/// count. Each shard's replica builds its *own* fabric and computes
/// routes independently — any nondeterminism in route construction
/// (iteration order, tie-breaks) or in the per-hop serialization would
/// split the hashes apart here.
#[test]
fn every_topology_is_shard_count_invariant() {
    for kind in ibsim_fabric::TopologyKind::ALL_SAMPLES {
        // The damming shape: ODP faults on both ends plus paced READs,
        // so cross-shard lookahead, fault deferral and multi-hop transit
        // all engage at once.
        let mut sc = random_scenario(7);
        sc.shards = 1;
        sc.topology = kind;
        let seq = run_scenario(&sc);
        for shards in [2usize, 4, 8] {
            let mut sharded = sc.clone();
            sharded.shards = shards;
            let run = run_scenario(&sharded);
            assert_eq!(
                seq.trace_hash, run.trace_hash,
                "{kind}: trace diverged at {shards} shards"
            );
            assert_eq!(
                seq.timeline, run.timeline,
                "{kind}: timeline diverged at {shards} shards"
            );
            assert_eq!(
                seq.end_ns, run.end_ns,
                "{kind}: end time diverged at {shards} shards"
            );
        }
    }
}

#[test]
fn the_shards_facet_round_trips_and_dispatches_from_the_spec_pipeline() {
    // A spec-borne shard count must survive the parse round trip and
    // produce the same run as the explicitly sharded entry point.
    let mut sc = random_scenario(3);
    sc.shards = 4;
    let text = sc.to_spec_string();
    assert!(
        text.contains("shards=4"),
        "non-default shard count must serialize"
    );
    let back = Scenario::parse(&text).expect("spec round trip");
    assert_eq!(back.shards, 4);
    let a = run_scenario(&back);
    sc.shards = 1;
    let b = run_scenario(&sc);
    assert_eq!(a.trace_hash, b.trace_hash);
}

#[test]
fn default_shard_count_is_invisible_in_the_spec_format() {
    // Pre-facet spec strings — and every pinned corpus hash derived from
    // them — must stay byte-identical when shards is 1.
    let sc = Scenario::base("plain");
    assert!(!sc.to_spec_string().contains("shards"));
}
