//! The recovery-backend ablation matrix: every paper corpus scenario
//! that validates under a backend's race precondition must pass the
//! differential oracle under that backend.
//!
//! Go-back-N is the corpus's native backend (covered byte-for-byte by
//! `corpus_oracle.rs`); this matrix re-runs the corpus under selective
//! repeat and on-demand pinning. Selective repeat tightens the
//! unsequenced-race precondition (any same-QP overlap except READ/READ
//! is racy there), so corpus entries that stop validating under it are
//! skipped rather than run — the oracle's soundness precondition no
//! longer holds for them — and the test asserts the skip set stays
//! small enough that the matrix keeps real coverage.

use ibsim_scenario::{check_run, paper_corpus, run_scenario};
use ibsim_verbs::RecoveryKind;

#[test]
fn corpus_is_oracle_clean_under_every_backend() {
    let mut failing = Vec::new();
    for kind in [RecoveryKind::SelectiveRepeat, RecoveryKind::OnDemandPin] {
        let mut ran = 0usize;
        let mut skipped = 0usize;
        for mut sc in paper_corpus() {
            sc.recovery = kind;
            if sc.validate().is_err() {
                // The workload races under this backend's tighter
                // precondition; the oracle would be unsound.
                skipped += 1;
                continue;
            }
            ran += 1;
            let run = run_scenario(&sc);
            let report = check_run(&sc, &run);
            if !report.violations.is_empty() {
                failing.push(format!("{} under {kind}:\n{report}", sc.name));
            }
        }
        assert!(
            ran > skipped,
            "{kind}: only {ran} corpus scenarios ran ({skipped} skipped) — \
             the matrix lost its coverage"
        );
    }
    assert!(failing.is_empty(), "{}", failing.join("\n"));
}

#[test]
fn pinning_reports_pins_and_go_back_n_never_does() {
    // The ODP-heavy corpus entries must actually exercise the pin path
    // under on-demand pinning, and the go-back-N runs must never pin —
    // the zero-re-pinning guarantee the trait refactor preserves.
    let mut pin_spans = 0usize;
    for mut sc in paper_corpus() {
        let gbn = run_scenario(&sc);
        assert!(
            !gbn.stalled,
            "{}: go-back-N run hit the drain deadline",
            sc.name
        );
        sc.recovery = RecoveryKind::OnDemandPin;
        if sc.validate().is_err() {
            continue;
        }
        let pin = run_scenario(&sc);
        // Pinning closes the fault window before it opens: no fault
        // lifecycle spans means no RNR pendency and no damming.
        pin_spans += pin.spans.len();
        assert!(!pin.stalled, "{}: pin run hit the drain deadline", sc.name);
        assert!(
            pin.end_ns <= gbn.end_ns,
            "{}: pinning finished at {} ns, later than go-back-N at {} ns",
            sc.name,
            pin.end_ns,
            gbn.end_ns
        );
    }
    assert_eq!(pin_spans, 0, "on-demand pinning left fault spans open");
}
