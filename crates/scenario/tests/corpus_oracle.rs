//! End-to-end conformance: every paper-derived corpus scenario must
//! pass the differential oracle, and the parallel runner must produce
//! identical hashes for different worker counts on the real corpus.

use ibsim_scenario::{paper_corpus, run_corpus};

#[test]
fn corpus_is_oracle_clean() {
    let corpus = paper_corpus();
    let out = run_corpus(&corpus, 4);
    assert_eq!(out.len(), corpus.len());
    let failing: Vec<String> = out
        .iter()
        .filter(|o| o.violations > 0)
        .map(|o| format!("{}:\n{}", o.name, o.report))
        .collect();
    assert!(failing.is_empty(), "{}", failing.join("\n"));
}

#[test]
fn corpus_hashes_are_worker_count_independent() {
    let corpus = paper_corpus();
    let one = run_corpus(&corpus, 1);
    let four = run_corpus(&corpus, 4);
    assert_eq!(one, four);
}
