//! Seeded property test of the telemetry stage-sum conservation law.
//!
//! Every closed fault-lifecycle span must decompose exactly: the sum of
//! its stage durations equals its end-to-end latency. The law should
//! hold not just on the curated corpus but under *any* fault/loss
//! schedule, so this test sweeps seeded random scenarios — forcing ODP
//! on so spans actually open, and layering random loss phases on top —
//! and requires zero stage-sum violations from every run.

use ibsim_scenario::{random_scenario, run_scenario, LossPhase, LossSpec};

#[test]
fn stage_sums_are_conserved_under_random_loss_schedules() {
    let mut total_spans = 0usize;
    for seed in 0..24u64 {
        let mut sc = random_scenario(seed);
        // Force fault-producing shapes: client ODP guarantees first-access
        // faults, and a deterministic uniform-loss phase (when the
        // generator produced none) stresses recovery interleavings.
        sc.client_odp = true;
        sc.prefetch = false;
        if sc.loss.is_empty() {
            let post_end = sc.wrs.len() as u64 * sc.post_interval_ns;
            sc.loss = vec![
                LossPhase {
                    at_ns: 0,
                    model: LossSpec::Uniform {
                        prob_milli: 20,
                        seed: seed ^ 0xDEAD,
                    },
                },
                LossPhase {
                    at_ns: post_end + 300_000,
                    model: LossSpec::None,
                },
            ];
        }
        sc.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let run = run_scenario(&sc);
        assert!(!run.stalled, "seed {seed} stalled");
        assert_eq!(
            run.stage_sum_violations, 0,
            "seed {seed}: {} closed span(s) violate stage-sum conservation",
            run.stage_sum_violations
        );
        total_spans += run.spans.len();
    }
    // The law must not hold vacuously: the sweep has to produce spans.
    assert!(
        total_spans > 0,
        "no fault spans across the sweep — the property was never exercised"
    );
}
