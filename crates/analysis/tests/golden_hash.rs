//! Golden-trace byte-identity pins: the damming and flood probe captures
//! must not change when engine internals change. The expected hashes were
//! captured from the pre-indexed-heap engine; any drift means event
//! ordering (and therefore simulated behaviour) changed.

use ibsim_odp::{fnv1a_str as fnv1a, run_microbench, MicrobenchConfig, OdpMode};

#[test]
fn damming_probe_trace_hash_pinned() {
    let run = run_microbench(&MicrobenchConfig {
        interval: ibsim_event::SimTime::from_ms(1),
        capture: true,
        ..Default::default()
    });
    let tl = run.cluster.capture(run.client).timeline();
    assert_eq!(tl.len(), 919, "damming timeline length drifted");
    assert_eq!(
        fnv1a(&tl),
        0xeabf_f70d_d984_76b9,
        "damming probe trace is no longer byte-identical to the pinned capture"
    );
}

#[test]
fn flood_probe_trace_hash_pinned() {
    let run = run_microbench(&MicrobenchConfig {
        size: 32,
        num_ops: 128,
        num_qps: 128,
        odp: OdpMode::ClientSide,
        cack: 18,
        capture: true,
        ..Default::default()
    });
    let tl = run.cluster.capture(run.client).timeline();
    assert_eq!(tl.len(), 135_890, "flood timeline length drifted");
    assert_eq!(
        fnv1a(&tl),
        0xa115_5303_7a19_1337,
        "flood probe trace is no longer byte-identical to the pinned capture"
    );
}

// ---------------------------------------------------------------------
// Telemetry zero-perturbation: recording never schedules events, draws
// RNG, or alters control flow, so turning it on must reproduce the
// pinned traces byte for byte.
// ---------------------------------------------------------------------

#[test]
fn telemetry_does_not_perturb_damming_trace() {
    let run = run_microbench(&MicrobenchConfig {
        interval: ibsim_event::SimTime::from_ms(1),
        capture: true,
        telemetry: true,
        ..Default::default()
    });
    let tl = run.cluster.capture(run.client).timeline();
    assert_eq!(tl.len(), 919, "telemetry perturbed the damming timeline");
    assert_eq!(
        fnv1a(&tl),
        0xeabf_f70d_d984_76b9,
        "telemetry perturbed the damming trace hash"
    );
    assert!(
        !run.cluster.telemetry().spans().is_empty(),
        "the same run must still record fault spans"
    );
}

#[test]
fn telemetry_does_not_perturb_flood_trace() {
    let run = run_microbench(&MicrobenchConfig {
        size: 32,
        num_ops: 128,
        num_qps: 128,
        odp: OdpMode::ClientSide,
        cack: 18,
        capture: true,
        telemetry: true,
        ..Default::default()
    });
    let tl = run.cluster.capture(run.client).timeline();
    assert_eq!(tl.len(), 135_890, "telemetry perturbed the flood timeline");
    assert_eq!(
        fnv1a(&tl),
        0xa115_5303_7a19_1337,
        "telemetry perturbed the flood trace hash"
    );
    assert!(
        !run.cluster.telemetry().spans().is_empty(),
        "the same run must still record fault spans"
    );
}
