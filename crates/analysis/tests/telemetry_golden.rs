//! Golden-file determinism for the telemetry exporters: the JSONL export
//! of a seeded probe run must be byte-identical across runs, and every
//! recorded fault span must account for its full end-to-end latency.

use ibsim_event::SimTime;
use ibsim_odp::{run_microbench, MicrobenchConfig, MicrobenchRun, OdpMode};
use ibsim_telemetry::export_jsonl;

fn damming_cfg() -> MicrobenchConfig {
    MicrobenchConfig {
        interval: SimTime::from_ms(1),
        telemetry: true,
        ..Default::default()
    }
}

fn flood_cfg() -> MicrobenchConfig {
    MicrobenchConfig {
        size: 32,
        num_ops: 128,
        num_qps: 128,
        odp: OdpMode::ClientSide,
        cack: 18,
        telemetry: true,
        ..Default::default()
    }
}

fn assert_spans_account_for_latency(run: &MicrobenchRun) {
    let spans = run.cluster.telemetry().spans();
    assert!(!spans.is_empty(), "run must close at least one span");
    for s in spans {
        let stages = s.stages().expect("closed span has all stages");
        let stage_sum: SimTime = stages.iter().map(|(_, d)| *d).sum();
        assert_eq!(
            stage_sum,
            s.end_to_end().expect("closed span has end-to-end"),
            "stage durations must sum to the end-to-end fault latency \
             (host {} mr {} page {})",
            s.host,
            s.mr,
            s.page
        );
    }
}

#[test]
fn damming_jsonl_is_byte_identical_across_runs() {
    let a = export_jsonl(run_microbench(&damming_cfg()).cluster.telemetry());
    let b = export_jsonl(run_microbench(&damming_cfg()).cluster.telemetry());
    assert!(!a.is_empty());
    assert_eq!(a, b, "seeded damming telemetry export must be reproducible");
}

#[test]
fn flood_jsonl_is_byte_identical_across_runs() {
    let a = export_jsonl(run_microbench(&flood_cfg()).cluster.telemetry());
    let b = export_jsonl(run_microbench(&flood_cfg()).cluster.telemetry());
    assert!(!a.is_empty());
    assert_eq!(a, b, "seeded flood telemetry export must be reproducible");
}

#[test]
fn damming_spans_stage_durations_sum_to_end_to_end() {
    assert_spans_account_for_latency(&run_microbench(&damming_cfg()));
}

#[test]
fn flood_spans_stage_durations_sum_to_end_to_end() {
    assert_spans_account_for_latency(&run_microbench(&flood_cfg()));
}

#[test]
fn flood_span_sees_the_stale_qp_propagation() {
    let run = run_microbench(&flood_cfg());
    let spans = run.cluster.telemetry().spans();
    // Fig. 11a: one shared fault, the other QPs all go stale and must be
    // resumed one by one — the propagation stage dominates.
    let worst = spans
        .iter()
        .max_by_key(|s| s.stale_qps)
        .expect("at least one span");
    assert!(
        worst.stale_qps > 64,
        "most of the 128 QPs go stale on the shared page: {}",
        worst.stale_qps
    );
    let stages = worst.stages().expect("closed span has all stages");
    let propagation = stages
        .iter()
        .find(|(n, _)| *n == "propagation")
        .expect("propagation stage")
        .1;
    assert!(
        propagation > SimTime::from_ms(1),
        "per-QP status updates serialize in the driver: {propagation}"
    );
}
