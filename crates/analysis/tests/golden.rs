//! Golden-trace tests: the linter against real simulator captures.
//!
//! The configurations below mirror `examples/damming_probe.rs` and
//! `examples/flood_probe.rs` — the same runs a user would capture — and
//! pin down the acceptance contract: the damming trace trips exactly the
//! damming detector, the flood trace the flood detector, and a clean
//! pinned-memory ping-pong produces zero findings of any kind.

use ibsim_analysis::{check_conservation, lint_capture, LintConfig, RuleId};
use ibsim_event::Engine;
use ibsim_fabric::LinkSpec;
use ibsim_odp::{run_microbench, MicrobenchConfig, OdpMode};
use ibsim_verbs::{Cluster, DeviceProfile, MrMode, QpConfig, ReadWr, WriteWr};

#[test]
fn damming_probe_trace_triggers_damming_detector() {
    // examples/damming_probe.rs: two 1 MiB READs 1 ms apart on ODP memory
    // with a ConnectX-4-style damming device.
    let run = run_microbench(&MicrobenchConfig {
        interval: ibsim_event::SimTime::from_ms(1),
        capture: true,
        ..Default::default()
    });
    assert!(run.timed_out(), "damming run recovers via ACK timeout");
    let report = lint_capture(run.cluster.capture(run.client), &LintConfig::default());
    assert!(
        report.count(RuleId::DammingSignature) >= 1,
        "damming signature found: {report}"
    );
    // The §V pathology is damming, not flood; the detectors must not
    // cross-fire.
    assert_eq!(report.count(RuleId::FloodSignature), 0, "{report}");
    // Every packet in the trace is individually protocol-conformant:
    // the stall is legal go-back-N behaviour, which is exactly why the
    // paper needed packet captures to see it.
    assert_eq!(report.count(RuleId::PsnContiguity), 0, "{report}");
    assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 0, "{report}");
    assert_eq!(report.count(RuleId::UnmatchedResponse), 0, "{report}");
}

#[test]
fn flood_probe_trace_triggers_flood_detector() {
    // examples/flood_probe.rs: many QPs, small READs, client-side ODP,
    // C_ack = 18 so the transport timeout never interferes.
    let run = run_microbench(&MicrobenchConfig {
        size: 32,
        num_ops: 128,
        num_qps: 128,
        odp: OdpMode::ClientSide,
        cack: 18,
        capture: true,
        ..Default::default()
    });
    let report = lint_capture(run.cluster.capture(run.client), &LintConfig::default());
    assert!(
        report.count(RuleId::FloodSignature) >= 1,
        "flood signature found: {report}"
    );
    assert_eq!(report.count(RuleId::DammingSignature), 0, "{report}");
    let storm = report.by_rule(RuleId::FloodSignature).next().unwrap();
    assert!(
        storm.message.contains("discarded"),
        "storm message mentions the discarded responses: {}",
        storm.message
    );
}

#[test]
fn clean_ping_pong_trace_lints_clean() {
    let run = run_microbench(&MicrobenchConfig {
        odp: OdpMode::None,
        num_ops: 16,
        capture: true,
        ..Default::default()
    });
    assert!(!run.timed_out());
    let report = lint_capture(run.cluster.capture(run.client), &LintConfig::default());
    assert!(
        report.is_clean(),
        "clean run must produce 0 findings: {report}"
    );
}

#[test]
fn conservation_holds_between_healthy_hosts() {
    // A two-sided run with captures on both ends: mixed ops, no loss.
    let mut eng = Engine::new();
    let mut cl = Cluster::new(11);
    let a = cl.add_host("client", DeviceProfile::connectx4(LinkSpec::fdr()));
    let b = cl.add_host("server", DeviceProfile::connectx4(LinkSpec::fdr()));
    let remote = cl.alloc_mr(b, 1 << 16, MrMode::Pinned);
    let local = cl.alloc_mr(a, 1 << 16, MrMode::Pinned);
    cl.capture_enable(a);
    cl.capture_enable(b);
    let (qp, _) = cl.connect_pair(&mut eng, a, b, QpConfig::default());
    for i in 0..8u64 {
        if i % 2 == 0 {
            cl.post(
                &mut eng,
                a,
                qp,
                ReadWr::new((local.key, i * 4096), (remote.key, i * 4096))
                    .len(2048)
                    .id(i),
            );
        } else {
            cl.post(
                &mut eng,
                a,
                qp,
                WriteWr::new((local.key, i * 4096), (remote.key, i * 4096))
                    .len(2048)
                    .id(i),
            );
        }
    }
    eng.run(&mut cl);
    assert_eq!(cl.poll_cq(a).len(), 8);
    let report = check_conservation(cl.capture(a), cl.capture(b));
    assert!(report.is_clean(), "{report}");
    // Both single-ended lints are clean too.
    assert!(lint_capture(cl.capture(a), &LintConfig::default()).is_clean());
    assert!(lint_capture(cl.capture(b), &LintConfig::default()).is_clean());
}

#[test]
fn damming_ghosts_do_not_violate_conservation() {
    // Ghost frames are marked dropped at the Tx capture point, so even a
    // §V trace conserves packets between observation points.
    let mut eng = Engine::new();
    let mut cl = Cluster::new(7);
    let mut profile = DeviceProfile::connectx4(LinkSpec::fdr());
    profile.damming = true;
    let a = cl.add_host("client", profile.clone());
    let b = cl.add_host("server", profile);
    let remote = cl.alloc_mr(b, 1 << 21, MrMode::Odp);
    let local = cl.alloc_mr(a, 1 << 21, MrMode::Pinned);
    cl.capture_enable(a);
    cl.capture_enable(b);
    let (qp, _) = cl.connect_pair(&mut eng, a, b, QpConfig::default());
    cl.post(
        &mut eng,
        a,
        qp,
        ReadWr::new(local.key, remote.key).len(1 << 20).id(0u64),
    );
    eng.run_until(&mut cl, ibsim_event::SimTime::from_ms(1));
    cl.post(
        &mut eng,
        a,
        qp,
        ReadWr::new(local.key, remote.key).len(1 << 20).id(1),
    );
    eng.run(&mut cl);
    let report = check_conservation(cl.capture(a), cl.capture(b));
    assert!(report.is_clean(), "{report}");
}
