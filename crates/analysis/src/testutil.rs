//! Hand-built packet and capture constructors shared by the unit tests.
//!
//! The canonical fixture is a client (lid 1, qp 10) talking to a server
//! (lid 2, qp 20); requests flow 1→2 and acknowledgements 2→1.

use ibsim_event::SimTime;
use ibsim_fabric::{Capture, Direction, Lid};
use ibsim_verbs::{MrKey, NakKind, Packet, PacketKind, Psn, Qpn, SegPos};

/// A READ request from the client consuming `resp_packets` PSNs.
pub fn read_req(psn: u32, resp_packets: u32) -> Packet {
    Packet {
        src: Lid(1),
        dst: Lid(2),
        src_qp: Qpn(10),
        dst_qp: Qpn(20),
        psn: Psn::new(psn),
        kind: PacketKind::ReadRequest {
            rkey: MrKey(1),
            addr: 0,
            len: resp_packets * 256,
            resp_packets,
        },
        ghost: false,
        ecn: false,
        retransmit: false,
    }
}

/// A single-segment READ response from the server for request `req_psn`.
pub fn read_resp(req_psn: u32, psn: u32) -> Packet {
    Packet {
        src: Lid(2),
        dst: Lid(1),
        src_qp: Qpn(20),
        dst_qp: Qpn(10),
        psn: Psn::new(psn),
        kind: PacketKind::ReadResponse {
            seg: SegPos::Only,
            data: vec![0u8; 256],
            req_psn: Psn::new(req_psn),
            offset: 0,
        },
        ghost: false,
        ecn: false,
        retransmit: false,
    }
}

/// An ACK from the server covering `psn`.
pub fn ack(psn: u32) -> Packet {
    Packet {
        src: Lid(2),
        dst: Lid(1),
        src_qp: Qpn(20),
        dst_qp: Qpn(10),
        psn: Psn::new(psn),
        kind: PacketKind::Ack,
        ghost: false,
        ecn: false,
        retransmit: false,
    }
}

/// A sequence-error NAK from the server expecting `epsn`.
pub fn nak_seq(epsn: u32) -> Packet {
    Packet {
        src: Lid(2),
        dst: Lid(1),
        src_qp: Qpn(20),
        dst_qp: Qpn(10),
        psn: Psn::new(epsn),
        kind: PacketKind::Nak(NakKind::SequenceError {
            epsn: Psn::new(epsn),
        }),
        ghost: false,
        ecn: false,
        retransmit: false,
    }
}

/// An RNR NAK from the server.
pub fn nak_rnr() -> Packet {
    Packet {
        src: Lid(2),
        dst: Lid(1),
        src_qp: Qpn(20),
        dst_qp: Qpn(10),
        psn: Psn::new(0),
        kind: PacketKind::Nak(NakKind::Rnr {
            delay: SimTime::from_us(500),
        }),
        ghost: false,
        ecn: false,
        retransmit: false,
    }
}

fn record(cap: &mut Capture<Packet>, t_ns: u64, dir: Direction, dropped: bool, p: Packet) {
    let bytes = p.wire_bytes();
    let (src, dst) = (p.src, p.dst);
    cap.record(SimTime::from_ns(t_ns), dir, src, dst, bytes, dropped, p);
}

/// Records a delivered transmission at `t_ns` nanoseconds.
pub fn tx(cap: &mut Capture<Packet>, t_ns: u64, p: Packet) {
    record(cap, t_ns, Direction::Tx, false, p);
}

/// Records a transmission the fabric dropped.
pub fn tx_dropped(cap: &mut Capture<Packet>, t_ns: u64, p: Packet) {
    record(cap, t_ns, Direction::Tx, true, p);
}

/// Records a ghost transmission (damming quirk: seen at the sender's
/// capture point, never put on the wire).
pub fn tx_ghost(cap: &mut Capture<Packet>, t_ns: u64, mut p: Packet) {
    p.ghost = true;
    record(cap, t_ns, Direction::Tx, true, p);
}

/// Records a retransmission.
pub fn tx_retx(cap: &mut Capture<Packet>, t_ns: u64, mut p: Packet) {
    p.retransmit = true;
    record(cap, t_ns, Direction::Tx, false, p);
}

/// Records a reception.
pub fn rx(cap: &mut Capture<Packet>, t_ns: u64, p: Packet) {
    record(cap, t_ns, Direction::Rx, false, p);
}
