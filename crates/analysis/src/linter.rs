//! The RC protocol-conformance trace linter.
//!
//! [`lint_capture`] takes one host's `ibdump`-style capture and checks
//! the *requester-side* transport invariants packet by packet:
//!
//! * fresh request PSNs are monotone and contiguous per flow,
//! * every sequence-error NAK is preceded by an out-of-order cause
//!   (a silently lost or ghosted request) visible in the trace,
//! * every retransmission is justified by a NAK, an observed loss, or a
//!   plausible ACK timeout,
//! * every ACK and READ/ATOMIC response matches an outstanding request.
//!
//! It then runs the pitfall signature detectors from [`crate::signature`]
//! over the same capture, so one call yields both conformance violations
//! and §V/§VI pitfall findings.
//!
//! A *flow* is the ordered pair (local QP, remote QP). The linter views
//! the capture from the requester's seat: transmitted requests, received
//! acknowledgements. Responder-side traffic (received requests, sent
//! ACKs) is covered by running the linter on the peer's capture and by
//! [`crate::conservation`].

use std::collections::{BTreeMap, BTreeSet};

use ibsim_event::SimTime;
use ibsim_fabric::{Capture, Direction};
use ibsim_verbs::{NakKind, Packet, PacketKind, Psn, Qpn, RecoveryKind};

use crate::finding::{Finding, LintReport, RuleId, Severity};
use crate::signature;

/// The conformance rule set one recovery backend earns.
///
/// What counts as legal recovery behaviour is a property of the
/// loss-recovery policy driving the requester, not of RC itself, so the
/// linter takes its rule set from the backend under test instead of
/// hard-coding the paper's go-back-N hardware. Two rules differ:
///
/// * **Ghosts.** The damming ghost (a request swallowed inside the
///   engine's fault-recovery window, §V) is a go-back-N engine quirk.
///   Selective repeat and on-demand pinning never open that window, so
///   a ghost-flagged transmission under their rule sets is a violation.
/// * **Event-driven stall resume.** Selective repeat resumes a stalled
///   message when its fault resolves, which can legally retransmit
///   well under the ACK-timeout hint. The trace evidence is the
///   response that arrived since the last attempt yet left the message
///   unfinished — it must have been discarded at the ODP landing gate.
///   Go-back-N resumes on a blind ≥ 0.5 ms cadence that always clears
///   the timeout hint, so it needs (and earns) no such justification.
///
/// Same-instant batch inheritance stays on for every backend: all
/// three retransmit recovery batches at one instant (go-back-N rolls
/// back its window; selective repeat resends the refused message plus
/// the undelivered successors a fault pendency silently dropped), and
/// a batch tail first transmitted after the triggering NAK inherits
/// the head's justification either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRules {
    /// Backend label used in findings and reports.
    pub backend: &'static str,
    /// Whether damming ghost packets are an expected engine quirk.
    /// When false, any ghost-flagged transmission is a violation.
    pub ghosts_expected: bool,
    /// Whether a retransmission is additionally justified by a response
    /// for the same PSN arriving since the last attempt (event-driven
    /// resume after an ODP landing-gate discard).
    pub event_driven_resume: bool,
}

impl RecoveryRules {
    /// The paper's hardware: ghost quirks on damming devices, blind
    /// cadence-based stall resume.
    pub fn go_back_n() -> Self {
        RecoveryRules {
            backend: "gbn",
            ghosts_expected: true,
            event_driven_resume: false,
        }
    }

    /// IRN-style selective repeat: no ghost window, fault-resolution
    /// events resume stalled messages.
    pub fn selective_repeat() -> Self {
        RecoveryRules {
            backend: "irn",
            ghosts_expected: false,
            event_driven_resume: true,
        }
    }

    /// NP-RDMA on-demand pinning: pages pin on first touch, so neither
    /// the ghost window nor client-side stalls ever open.
    pub fn on_demand_pin() -> Self {
        RecoveryRules {
            backend: "pin",
            ghosts_expected: false,
            event_driven_resume: false,
        }
    }

    /// The rule set for a simulator recovery backend.
    pub fn for_kind(kind: RecoveryKind) -> Self {
        match kind {
            RecoveryKind::GoBackN => RecoveryRules::go_back_n(),
            RecoveryKind::SelectiveRepeat => RecoveryRules::selective_repeat(),
            RecoveryKind::OnDemandPin => RecoveryRules::on_demand_pin(),
        }
    }
}

impl Default for RecoveryRules {
    fn default() -> Self {
        RecoveryRules::go_back_n()
    }
}

/// Tunables for the linter and the signature detectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Shortest interval after which a spontaneous retransmission is
    /// accepted as a plausible transport (ACK) timeout. Should sit below
    /// the smallest `T_o` any profile in the trace can produce; the
    /// vendor floor `C_ack = 5` gives `T_o ≈ 245 µs`.
    pub ack_timeout_hint: SimTime,
    /// Minimum silent gap after an unexplained loss to call damming.
    /// The paper's stalls run to hundreds of milliseconds; 20 ms cleanly
    /// separates them from RNR waits (§V).
    pub damming_min_stall: SimTime,
    /// Minimum transmissions of one request to consider a flood storm
    /// (the paper saw "hundreds"; ≥5 is already anomalous, §VI).
    pub flood_min_transmissions: u64,
    /// Inclusive band of retransmit cadences treated as the blind ODP
    /// retry timer (~0.5 ms on ConnectX-4, Fig. 1 right).
    pub flood_cadence: (SimTime, SimTime),
    /// Justification rule set supplied by the recovery backend under
    /// test (see [`RecoveryRules`]). Defaults to go-back-N, the paper's
    /// hardware.
    pub rules: RecoveryRules,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            ack_timeout_hint: SimTime::from_us(100),
            damming_min_stall: SimTime::from_ms(20),
            flood_min_transmissions: 5,
            flood_cadence: (SimTime::from_us(100), SimTime::from_ms(2)),
            rules: RecoveryRules::go_back_n(),
        }
    }
}

/// Requester-side linter state for one flow (local QP, remote QP).
#[derive(Default)]
struct FlowState {
    /// Next expected fresh request PSN; `None` until the first request.
    expected: Option<Psn>,
    /// Every PSN value consumed by a fresh request (window membership).
    consumed: BTreeSet<u32>,
    /// PSNs of transmitted READ requests (fresh or retransmitted).
    read_psns: BTreeSet<u32>,
    /// PSNs of transmitted ATOMIC requests.
    atomic_psns: BTreeSet<u32>,
    /// Last transmission time per request PSN.
    last_tx: BTreeMap<u32, SimTime>,
    /// Time of the most recent NAK received on this flow.
    last_nak_rx: Option<SimTime>,
    /// Time of the most recent silently lost (dropped/ghost) request Tx.
    last_silent_loss: Option<SimTime>,
    /// PSN values of every NAK received on this flow. A NAK'd request
    /// was delivered but *refused* (RNR) or rejected out-of-order, so
    /// the responder still expects it — which justifies a later
    /// sequence-error NAK naming that PSN without any packet loss.
    nak_psns: BTreeSet<u32>,
    /// Time of the most recent *justified* retransmission on this flow.
    /// Recovery batches are emitted at one instant in ascending PSN
    /// order; trailing members inherit the head's justification even
    /// when their own first transmission postdates the triggering NAK.
    last_justified_retx: Option<SimTime>,
    /// Last time a response or acknowledgment was received per PSN.
    /// Under an event-driven-resume rule set, a response that arrived
    /// since a request's last attempt yet left it needing retransmission
    /// evidences an ODP landing-gate discard.
    last_response_rx: BTreeMap<u32, SimTime>,
}

/// How many consecutive PSNs a fresh request packet consumes.
fn psn_span(kind: &PacketKind) -> u32 {
    match kind {
        // A READ reserves one PSN per response segment.
        PacketKind::ReadRequest { resp_packets, .. } => (*resp_packets).max(1),
        // WRITE/SEND segments and ATOMICs each carry exactly one PSN.
        PacketKind::WriteRequest { .. }
        | PacketKind::Send { .. }
        | PacketKind::AtomicRequest { .. } => 1,
        // Responses and (N)ACKs consume no requester PSN space; callers
        // only pass requests here, and one is the safe identity.
        PacketKind::ReadResponse { .. }
        | PacketKind::AtomicResponse { .. }
        | PacketKind::Ack
        | PacketKind::Nak(_) => 1,
    }
}

/// Lints one capture against the requester-side RC conformance rules,
/// then appends the §V/§VI pitfall signature findings.
///
/// # Examples
///
/// A clean capture yields a clean report:
///
/// ```
/// use ibsim_analysis::{lint_capture, LintConfig};
/// use ibsim_fabric::Capture;
/// use ibsim_verbs::Packet;
///
/// let cap: Capture<Packet> = Capture::new();
/// let report = lint_capture(&cap, &LintConfig::default());
/// assert!(report.is_clean());
/// ```
pub fn lint_capture(cap: &Capture<Packet>, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    let mut flows: BTreeMap<(Qpn, Qpn), FlowState> = BTreeMap::new();

    for r in cap {
        let p = &r.payload;
        match r.direction {
            Direction::Tx if p.kind.is_request() => {
                let key = (p.src_qp, p.dst_qp);
                let flow = flows.entry(key).or_default();
                if p.retransmit {
                    check_retransmit(&mut report, flow, key, r.time, p, cfg);
                } else {
                    check_fresh_request(&mut report, flow, key, r.time, p);
                }
                match &p.kind {
                    PacketKind::ReadRequest { .. } => {
                        flow.read_psns.insert(p.psn.value());
                    }
                    PacketKind::AtomicRequest { .. } => {
                        flow.atomic_psns.insert(p.psn.value());
                    }
                    // WRITE/SEND draw no tracked responses; the rest are
                    // excluded by the `is_request()` guard on this arm.
                    PacketKind::WriteRequest { .. }
                    | PacketKind::Send { .. }
                    | PacketKind::ReadResponse { .. }
                    | PacketKind::AtomicResponse { .. }
                    | PacketKind::Ack
                    | PacketKind::Nak(_) => {}
                }
                if p.ghost && !cfg.rules.ghosts_expected {
                    // The damming ghost window is a go-back-N engine
                    // quirk; the backend under test claims it never
                    // opens.
                    report.findings.push(Finding {
                        rule: RuleId::UnexpectedGhost,
                        severity: Severity::Violation,
                        at: r.time,
                        flow: Some(key),
                        psn: Some(p.psn.value()),
                        message: format!(
                            "{} ghosted at transmission under the `{}` backend, \
                             which never opens the ghost window",
                            p.kind.opcode(),
                            cfg.rules.backend
                        ),
                    });
                }
                if r.dropped || p.ghost {
                    flow.last_silent_loss = Some(r.time);
                }
                flow.last_tx.insert(p.psn.value(), r.time);
            }
            Direction::Rx => {
                // Viewed from the requester: local QP is the destination.
                let key = (p.dst_qp, p.src_qp);
                let flow = flows.entry(key).or_default();
                check_response(&mut report, flow, key, r.time, p);
            }
            Direction::Tx => {} // responder-side Tx (ACKs, responses)
        }
    }

    report.merge(signature::detect_damming_signature(cap, cfg));
    report.merge(signature::detect_flood_signature(cap, cfg));
    report
}

/// PSN monotonicity + contiguity for fresh (first-transmission) requests.
fn check_fresh_request(
    report: &mut LintReport,
    flow: &mut FlowState,
    key: (Qpn, Qpn),
    at: SimTime,
    p: &Packet,
) {
    let span = psn_span(&p.kind);
    if let Some(expected) = flow.expected {
        if p.psn != expected {
            let (rule, message) = if p.psn.precedes(expected) {
                (
                    RuleId::PsnMonotonicity,
                    format!(
                        "fresh {} reuses {} inside the consumed window (expected {})",
                        p.kind.opcode(),
                        p.psn,
                        expected
                    ),
                )
            } else {
                (
                    RuleId::PsnContiguity,
                    format!(
                        "fresh {} skips from expected {} to {} leaving a {}-PSN hole",
                        p.kind.opcode(),
                        expected,
                        p.psn,
                        p.psn.distance_from(expected)
                    ),
                )
            };
            report.findings.push(Finding {
                rule,
                severity: Severity::Violation,
                at,
                flow: Some(key),
                psn: Some(p.psn.value()),
                message,
            });
        }
    }
    // Resynchronise on what was actually sent so one hole is one finding,
    // not a cascade.
    flow.expected = Some(p.psn.add(span));
    for i in 0..span {
        flow.consumed.insert(p.psn.add(i).value());
    }
}

/// Every retransmission must have a visible cause.
fn check_retransmit(
    report: &mut LintReport,
    flow: &mut FlowState,
    key: (Qpn, Qpn),
    at: SimTime,
    p: &Packet,
    cfg: &LintConfig,
) {
    let psn = p.psn.value();
    let Some(&prev) = flow.last_tx.get(&psn) else {
        report.findings.push(Finding {
            rule: RuleId::UnjustifiedRetransmit,
            severity: Severity::Violation,
            at,
            flow: Some(key),
            psn: Some(psn),
            message: format!(
                "{} marked as retransmission but {} was never transmitted",
                p.kind.opcode(),
                p.psn
            ),
        });
        return;
    };
    // Justifications, in the order a debugging human would check them:
    // a NAK since the last attempt, a loss observed since the last
    // attempt (go-back-N rolls back over healthy PSNs too, so any loss
    // on the flow counts), enough silence for an ACK timeout, or
    // membership in a justified go-back-N batch (same flow, same
    // instant, justified head — an RNR backoff can expire after a
    // younger request's first transmission, so the batch tail sees the
    // triggering NAK *before* its own `prev`).
    let nak_explains = flow.last_nak_rx.is_some_and(|t| t >= prev && t <= at);
    let loss_explains = flow.last_silent_loss.is_some_and(|t| t >= prev && t <= at);
    let timeout_plausible = at - prev >= cfg.ack_timeout_hint;
    let batch_explains = flow.last_justified_retx == Some(at);
    // Event-driven resume (selective repeat): a response for this very
    // PSN arrived since the last attempt, yet here is its
    // retransmission — the response must have been discarded at the
    // ODP landing gate, and the fault resolution resumed the request.
    let resume_explains = cfg.rules.event_driven_resume
        && flow
            .last_response_rx
            .get(&psn)
            .is_some_and(|&t| t >= prev && t <= at);
    if nak_explains || loss_explains || timeout_plausible || resume_explains {
        flow.last_justified_retx = Some(at);
    }
    if !nak_explains && !loss_explains && !timeout_plausible && !batch_explains && !resume_explains
    {
        report.findings.push(Finding {
            rule: RuleId::UnjustifiedRetransmit,
            severity: Severity::Violation,
            at,
            flow: Some(key),
            psn: Some(psn),
            message: format!(
                "{} retransmitted {} after the previous attempt with no NAK, \
                 no observed loss, and below the ACK-timeout hint ({})",
                p.kind.opcode(),
                at - prev,
                cfg.ack_timeout_hint
            ),
        });
    }
}

/// ACK / NAK / response matching on the receive side of a flow.
fn check_response(
    report: &mut LintReport,
    flow: &mut FlowState,
    key: (Qpn, Qpn),
    at: SimTime,
    p: &Packet,
) {
    match &p.kind {
        PacketKind::Ack if !flow.consumed.contains(&p.psn.value()) => {
            report.findings.push(Finding {
                rule: RuleId::UnmatchedAck,
                severity: Severity::Violation,
                at,
                flow: Some(key),
                psn: Some(p.psn.value()),
                message: format!("ACK for {} which no request consumed", p.psn),
            });
        }
        PacketKind::ReadResponse { req_psn, .. } if !flow.read_psns.contains(&req_psn.value()) => {
            report.findings.push(Finding {
                rule: RuleId::UnmatchedResponse,
                severity: Severity::Violation,
                at,
                flow: Some(key),
                psn: Some(req_psn.value()),
                message: format!("READ response for {req_psn} with no READ request"),
            });
        }
        PacketKind::AtomicResponse { req_psn, .. }
            if !flow.atomic_psns.contains(&req_psn.value()) =>
        {
            report.findings.push(Finding {
                rule: RuleId::UnmatchedResponse,
                severity: Severity::Violation,
                at,
                flow: Some(key),
                psn: Some(req_psn.value()),
                message: format!("ATOMIC response for {req_psn} with no ATOMIC request"),
            });
        }
        PacketKind::Nak(kind) => {
            if let NakKind::SequenceError { epsn } = kind {
                // The responder claims out-of-order arrival. In this
                // capture (which sees fabric drops and ghosts — strictly
                // more than real ibdump) that is only explicable if some
                // request was silently lost beforehand, or if the
                // expected PSN itself was previously NAK'd: an
                // RNR-refused request leaves the responder still
                // expecting it, so any younger request transmitted
                // during the backoff draws a sequence error with no
                // packet ever lost.
                let refused_explains = flow.nak_psns.contains(&epsn.value());
                if flow.last_silent_loss.is_none() && !refused_explains {
                    report.findings.push(Finding {
                        rule: RuleId::UnjustifiedSeqNak,
                        severity: Severity::Violation,
                        at,
                        flow: Some(key),
                        psn: Some(epsn.value()),
                        message: format!(
                            "sequence-error NAK (expecting {epsn}) with no preceding \
                             request loss on the flow"
                        ),
                    });
                }
            }
            flow.last_nak_rx = Some(at);
            flow.nak_psns.insert(p.psn.value());
        }
        // ACKs and responses whose guards above matched nothing are
        // conformant; inbound requests are the responder's business.
        PacketKind::Ack
        | PacketKind::ReadResponse { .. }
        | PacketKind::AtomicResponse { .. }
        | PacketKind::ReadRequest { .. }
        | PacketKind::WriteRequest { .. }
        | PacketKind::Send { .. }
        | PacketKind::AtomicRequest { .. } => {}
    }
    // Record the landing time of every acknowledgment and response
    // segment for the event-driven-resume justification: an arrived
    // response that still left the request pending was discarded at the
    // ODP landing gate.
    match &p.kind {
        PacketKind::Ack => {
            flow.last_response_rx.insert(p.psn.value(), at);
        }
        PacketKind::ReadResponse { .. } | PacketKind::AtomicResponse { .. } => {
            flow.last_response_rx.insert(p.psn.value(), at);
        }
        PacketKind::Nak(_)
        | PacketKind::ReadRequest { .. }
        | PacketKind::WriteRequest { .. }
        | PacketKind::Send { .. }
        | PacketKind::AtomicRequest { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        ack, nak_rnr, nak_seq, read_req, read_resp, rx, tx, tx_dropped, tx_ghost, tx_retx,
    };

    fn lint(cap: &Capture<Packet>) -> LintReport {
        lint_capture(cap, &LintConfig::default())
    }

    #[test]
    fn empty_capture_is_clean() {
        let cap: Capture<Packet> = Capture::new();
        assert!(lint(&cap).is_clean());
    }

    #[test]
    fn clean_read_exchange_is_clean() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        rx(&mut cap, 3_000, read_resp(0, 0));
        tx(&mut cap, 4_000, read_req(1, 1));
        rx(&mut cap, 6_000, read_resp(1, 1));
        let report = lint(&cap);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn psn_hole_is_contiguity_violation() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        tx(&mut cap, 2_000, read_req(5, 1)); // skips 1..=4
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::PsnContiguity), 1, "{report}");
        let f = report.by_rule(RuleId::PsnContiguity).next().unwrap();
        assert_eq!(f.psn, Some(5));
        assert!(f.message.contains("5-PSN hole") || f.message.contains("hole"));
    }

    #[test]
    fn psn_reuse_is_monotonicity_violation() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        tx(&mut cap, 2_000, read_req(1, 1));
        tx(&mut cap, 3_000, read_req(0, 1)); // fresh reuse of psn 0
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::PsnMonotonicity), 1, "{report}");
    }

    #[test]
    fn multi_packet_read_spans_are_contiguous() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 4)); // consumes 0..=3
        tx(&mut cap, 2_000, read_req(4, 1));
        assert!(lint(&cap).is_clean());
    }

    #[test]
    fn go_back_n_across_psn_wrap_is_clean() {
        // The fresh-request window walks across the 24-bit boundary
        // (…, 0xFF_FFFE, 0xFF_FFFF, 0, 1). The packet at the boundary is
        // dropped, the responder NAKs naming it, and go-back-N replays
        // the whole straddling window at one instant. None of that may
        // trip the monotonicity, contiguity or retransmit rules: the
        // wrap is ordinary PSN arithmetic, not a protocol event.
        let m = Psn::MODULUS;
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(m - 2, 1));
        tx_dropped(&mut cap, 2_000, read_req(m - 1, 1));
        tx(&mut cap, 3_000, read_req(0, 1)); // fresh wrap: no hole, no reuse
        tx(&mut cap, 4_000, read_req(1, 1));
        rx(&mut cap, 6_000, nak_seq(m - 1));
        tx_retx(&mut cap, 7_000, read_req(m - 1, 1));
        tx_retx(&mut cap, 7_000, read_req(0, 1));
        tx_retx(&mut cap, 7_000, read_req(1, 1));
        rx(&mut cap, 9_000, ack(1));
        let report = lint(&cap);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn multi_packet_read_span_across_psn_wrap_is_clean() {
        // One READ whose response segments reserve PSNs straddling the
        // boundary: 0xFF_FFFE, 0xFF_FFFF, 0, 1 — the next fresh request
        // must pick up at 2 without a contiguity finding.
        let m = Psn::MODULUS;
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(m - 2, 4));
        tx(&mut cap, 2_000, read_req(2, 1));
        assert!(lint(&cap).is_clean());
    }

    #[test]
    fn psn_hole_across_wrap_is_still_flagged() {
        // Wraparound must not excuse real holes: jumping 0xFF_FFFF → 3
        // skips 0..=2 and is a contiguity violation like any other.
        let m = Psn::MODULUS;
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(m - 1, 1));
        tx(&mut cap, 2_000, read_req(3, 1));
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::PsnContiguity), 1, "{report}");
        let f = report.by_rule(RuleId::PsnContiguity).next().unwrap();
        assert_eq!(f.psn, Some(3));
        // ...and stale pre-wrap PSNs reappearing as fresh requests are
        // monotonicity violations, not fresh window members.
        tx(&mut cap, 3_000, read_req(m - 1, 1));
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::PsnMonotonicity), 1, "{report}");
    }

    #[test]
    fn seq_nak_without_loss_is_flagged() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        rx(&mut cap, 2_000, nak_seq(1));
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedSeqNak), 1, "{report}");
    }

    #[test]
    fn seq_nak_after_drop_is_justified() {
        let mut cap = Capture::new();
        cap.enable();
        tx_dropped(&mut cap, 1_000, read_req(0, 1));
        tx(&mut cap, 2_000, read_req(1, 1));
        rx(&mut cap, 3_000, nak_seq(0));
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedSeqNak), 0, "{report}");
    }

    #[test]
    fn early_retransmit_without_cause_is_flagged() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        tx_retx(&mut cap, 11_000, read_req(0, 1)); // 10 µs later: too soon
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 1, "{report}");
    }

    #[test]
    fn timeout_paced_retransmit_is_justified() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        tx_retx(&mut cap, 1_000 + 300_000, read_req(0, 1)); // 300 µs later
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 0, "{report}");
    }

    #[test]
    fn nak_justifies_prompt_retransmit() {
        let mut cap = Capture::new();
        cap.enable();
        tx_dropped(&mut cap, 1_000, read_req(0, 1));
        tx(&mut cap, 2_000, read_req(1, 1));
        rx(&mut cap, 5_000, nak_seq(0));
        tx_retx(&mut cap, 6_000, read_req(0, 1));
        tx_retx(&mut cap, 7_000, read_req(1, 1));
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 0, "{report}");
    }

    #[test]
    fn seq_nak_after_rnr_refusal_is_justified() {
        // The RNR-refused request is still expected by the responder, so
        // a younger request transmitted during the backoff draws a
        // sequence error without any packet loss.
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        rx(&mut cap, 2_000, nak_rnr()); // refuses psn 0
        tx(&mut cap, 3_000, read_req(1, 1));
        rx(&mut cap, 4_000, nak_seq(0));
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedSeqNak), 0, "{report}");
    }

    #[test]
    fn go_back_n_batch_tail_inherits_head_justification() {
        // An RNR backoff expiring after a younger request's first
        // transmission retransmits the whole batch at one instant; the
        // tail's own [prev, at] window misses the NAK.
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        rx(&mut cap, 2_000, nak_rnr());
        tx(&mut cap, 3_000, read_req(1, 1));
        tx_retx(&mut cap, 40_000, read_req(0, 1)); // justified by the NAK
        tx_retx(&mut cap, 40_000, read_req(1, 1)); // same-instant batch tail
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 0, "{report}");
    }

    #[test]
    fn event_driven_resume_justifies_landing_discard_retransmit() {
        // A READ response arrives 30 µs after the request — but the
        // landing page is unmapped, the NIC discards it, and the fault
        // resolution resumes the request well under the timeout hint.
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        rx(&mut cap, 31_000, read_resp(0, 0));
        tx_retx(&mut cap, 38_000, read_req(0, 1));
        let irn = LintConfig {
            rules: RecoveryRules::selective_repeat(),
            ..LintConfig::default()
        };
        let report = lint_capture(&cap, &irn);
        assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 0, "{report}");
        // Go-back-N earns no such justification: its stall resume is a
        // blind cadence that always clears the timeout hint, so the
        // same capture is a violation under its rules.
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 1, "{report}");
    }

    #[test]
    fn resume_needs_a_response_since_the_last_attempt() {
        // The response predates the previous attempt: it cannot explain
        // the second retransmission even under event-driven resume.
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        rx(&mut cap, 31_000, read_resp(0, 0));
        tx_retx(&mut cap, 38_000, read_req(0, 1));
        tx_retx(&mut cap, 45_000, read_req(0, 1));
        let irn = LintConfig {
            rules: RecoveryRules::selective_repeat(),
            ..LintConfig::default()
        };
        let report = lint_capture(&cap, &irn);
        assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 1, "{report}");
    }

    #[test]
    fn batch_tail_inheritance_holds_for_every_backend() {
        // Selective repeat also batches: an RNR expiry resends the
        // refused message plus the pendency-dropped successors at one
        // instant, so the tail inherits the head's NAK justification
        // under every rule set.
        for rules in [
            RecoveryRules::go_back_n(),
            RecoveryRules::selective_repeat(),
            RecoveryRules::on_demand_pin(),
        ] {
            let mut cap = Capture::new();
            cap.enable();
            tx(&mut cap, 1_000, read_req(0, 1));
            rx(&mut cap, 2_000, nak_rnr());
            tx(&mut cap, 3_000, read_req(1, 1));
            tx_retx(&mut cap, 40_000, read_req(0, 1));
            tx_retx(&mut cap, 40_000, read_req(1, 1));
            let cfg = LintConfig {
                rules,
                ..LintConfig::default()
            };
            let report = lint_capture(&cap, &cfg);
            assert_eq!(
                report.count(RuleId::UnjustifiedRetransmit),
                0,
                "{}: {report}",
                rules.backend
            );
        }
    }

    #[test]
    fn ghosts_are_violations_under_non_quirk_backends() {
        let mut cap = Capture::new();
        cap.enable();
        tx_ghost(&mut cap, 1_000, read_req(0, 1));
        assert_eq!(lint(&cap).count(RuleId::UnexpectedGhost), 0);
        for rules in [
            RecoveryRules::selective_repeat(),
            RecoveryRules::on_demand_pin(),
        ] {
            let cfg = LintConfig {
                rules,
                ..LintConfig::default()
            };
            let report = lint_capture(&cap, &cfg);
            assert_eq!(
                report.count(RuleId::UnexpectedGhost),
                1,
                "{}",
                rules.backend
            );
        }
    }

    #[test]
    fn recovery_rules_follow_the_backend_kind() {
        assert_eq!(
            RecoveryRules::for_kind(RecoveryKind::GoBackN),
            RecoveryRules::go_back_n()
        );
        assert_eq!(
            RecoveryRules::for_kind(RecoveryKind::SelectiveRepeat),
            RecoveryRules::selective_repeat()
        );
        assert_eq!(
            RecoveryRules::for_kind(RecoveryKind::OnDemandPin),
            RecoveryRules::on_demand_pin()
        );
        assert!(RecoveryRules::go_back_n().ghosts_expected);
        assert!(!RecoveryRules::selective_repeat().ghosts_expected);
        assert!(RecoveryRules::selective_repeat().event_driven_resume);
        assert!(!RecoveryRules::on_demand_pin().event_driven_resume);
        assert_eq!(RecoveryRules::default(), RecoveryRules::go_back_n());
    }

    #[test]
    fn retransmit_at_a_different_instant_is_not_a_batch_tail() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        rx(&mut cap, 2_000, nak_rnr());
        tx(&mut cap, 3_000, read_req(1, 1));
        tx_retx(&mut cap, 40_000, read_req(0, 1));
        tx_retx(&mut cap, 45_000, read_req(1, 1)); // 5 µs later: no batch
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 1, "{report}");
    }

    #[test]
    fn retransmit_of_unseen_psn_is_flagged() {
        let mut cap = Capture::new();
        cap.enable();
        tx_retx(&mut cap, 1_000, read_req(9, 1));
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnjustifiedRetransmit), 1);
        assert!(report.findings[0].message.contains("never transmitted"));
    }

    #[test]
    fn unmatched_ack_and_response_are_flagged() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 1_000, read_req(0, 1));
        rx(&mut cap, 2_000, ack(17));
        rx(&mut cap, 3_000, read_resp(12, 0));
        let report = lint(&cap);
        assert_eq!(report.count(RuleId::UnmatchedAck), 1, "{report}");
        assert_eq!(report.count(RuleId::UnmatchedResponse), 1, "{report}");
    }
}
