//! The findings model: what the linter reports and how.
//!
//! Every rule violation, anomaly, or pitfall signature the analyses
//! produce is a [`Finding`]: a rule identifier, a severity, a position in
//! the trace (time / flow / PSN where applicable), and a human-readable
//! message. A [`LintReport`] aggregates the findings of one linter run
//! with query helpers, so tests and CI can assert on exact rule counts.

use std::fmt;

use ibsim_event::SimTime;
use ibsim_verbs::Qpn;

/// Identifies which conformance rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// A fresh (non-retransmitted) request PSN went backwards.
    PsnMonotonicity,
    /// A fresh request PSN skipped ahead, leaving a hole.
    PsnContiguity,
    /// A sequence-error NAK arrived with no preceding out-of-order cause
    /// (no silently lost or ghosted request) visible in the trace.
    UnjustifiedSeqNak,
    /// A retransmission with no visible justification: no NAK, no
    /// observed loss, and too soon for an ACK timeout.
    UnjustifiedRetransmit,
    /// An ACK acknowledged a PSN never consumed by a request.
    UnmatchedAck,
    /// A READ/ATOMIC response referenced a request PSN never transmitted.
    UnmatchedResponse,
    /// A frame transmitted (and not marked dropped) never reached the
    /// receiver's capture point.
    TxNotDelivered,
    /// A frame appeared at the receiver with no matching transmission.
    RxWithoutTx,
    /// §V packet-damming signature: silent loss followed by an
    /// ACK-timeout-bounded idle gap.
    DammingSignature,
    /// §VI packet-flood signature: repeated identical retransmissions at
    /// the blind ODP retry cadence with responses discarded.
    FloodSignature,
    /// A damming ghost packet under a recovery backend whose rule set
    /// says the ghost quirk cannot occur (selective repeat, on-demand
    /// pinning).
    UnexpectedGhost,
}

impl RuleId {
    /// Every rule the analyses implement, in reporting order.
    pub const ALL: [RuleId; 11] = [
        RuleId::PsnMonotonicity,
        RuleId::PsnContiguity,
        RuleId::UnjustifiedSeqNak,
        RuleId::UnjustifiedRetransmit,
        RuleId::UnmatchedAck,
        RuleId::UnmatchedResponse,
        RuleId::TxNotDelivered,
        RuleId::RxWithoutTx,
        RuleId::DammingSignature,
        RuleId::FloodSignature,
        RuleId::UnexpectedGhost,
    ];

    /// True for the §V/§VI pitfall *signature* rules. Signature findings
    /// mean the trace exhibits a known ODP pathology — expected (and
    /// wanted) when replaying the paper's probe scenarios — whereas every
    /// other rule flags an RC protocol-conformance violation that is
    /// never acceptable. The scenario oracle fails runs only on the
    /// latter.
    pub fn is_pitfall_signature(self) -> bool {
        matches!(self, RuleId::DammingSignature | RuleId::FloodSignature)
    }

    /// Short stable mnemonic (used in rendered reports and CI grep).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::PsnMonotonicity => "PSN_MONOTONICITY",
            RuleId::PsnContiguity => "PSN_CONTIGUITY",
            RuleId::UnjustifiedSeqNak => "UNJUSTIFIED_SEQ_NAK",
            RuleId::UnjustifiedRetransmit => "UNJUSTIFIED_RETX",
            RuleId::UnmatchedAck => "UNMATCHED_ACK",
            RuleId::UnmatchedResponse => "UNMATCHED_RESPONSE",
            RuleId::TxNotDelivered => "TX_NOT_DELIVERED",
            RuleId::RxWithoutTx => "RX_WITHOUT_TX",
            RuleId::DammingSignature => "DAMMING_SIGNATURE",
            RuleId::FloodSignature => "FLOOD_SIGNATURE",
            RuleId::UnexpectedGhost => "UNEXPECTED_GHOST",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Noteworthy but not necessarily wrong.
    Info,
    /// Suspicious; worth a look.
    Warning,
    /// A protocol-conformance violation or a confirmed pitfall signature.
    Violation,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Violation => write!(f, "violation"),
        }
    }
}

/// One reported anomaly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Severity class.
    pub severity: Severity,
    /// Trace time the finding anchors to.
    pub at: SimTime,
    /// The flow `(local QP, remote QP)` involved, if per-flow.
    pub flow: Option<(Qpn, Qpn)>,
    /// The PSN involved, if any.
    pub psn: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} at {}", self.severity, self.rule, self.at)?;
        if let Some((l, r)) = self.flow {
            write!(f, " flow {l}->{r}")?;
        }
        if let Some(p) = self.psn {
            write!(f, " psn {p}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of linting one capture (or capture pair).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Every finding, in trace order per rule pass.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// True when no rule fired at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings for one rule.
    pub fn count(&self, rule: RuleId) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Findings for one rule, in order.
    pub fn by_rule(&self, rule: RuleId) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Number of `Violation`-severity findings.
    pub fn violations(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Violation)
            .count()
    }

    /// `Violation`-severity findings from conformance rules only,
    /// excluding the §V/§VI pitfall signatures (which report expected
    /// pathologies, not protocol bugs; see
    /// [`RuleId::is_pitfall_signature`]).
    pub fn conformance_violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Violation && !f.rule.is_pitfall_signature())
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "lint clean: 0 findings");
        }
        writeln!(f, "{} finding(s):", self.findings.len())?;
        for rule in RuleId::ALL {
            let n = self.count(rule);
            if n > 0 {
                writeln!(f, "  {rule}: {n}")?;
            }
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, severity: Severity) -> Finding {
        Finding {
            rule,
            severity,
            at: SimTime::from_us(3),
            flow: Some((Qpn(1), Qpn(2))),
            psn: Some(7),
            message: "test".into(),
        }
    }

    #[test]
    fn report_counts_by_rule_and_severity() {
        let mut r = LintReport::default();
        assert!(r.is_clean());
        r.findings
            .push(finding(RuleId::UnmatchedAck, Severity::Violation));
        r.findings
            .push(finding(RuleId::UnmatchedAck, Severity::Warning));
        r.findings
            .push(finding(RuleId::FloodSignature, Severity::Violation));
        assert!(!r.is_clean());
        assert_eq!(r.count(RuleId::UnmatchedAck), 2);
        assert_eq!(r.count(RuleId::PsnContiguity), 0);
        assert_eq!(r.violations(), 2);
        assert_eq!(r.by_rule(RuleId::FloodSignature).count(), 1);
    }

    #[test]
    fn display_is_greppable() {
        let f = finding(RuleId::DammingSignature, Severity::Violation);
        let s = f.to_string();
        assert!(s.contains("DAMMING_SIGNATURE"));
        assert!(s.contains("violation"));
        assert!(s.contains("qp1->qp2"));
        assert!(s.contains("psn 7"));
        let mut r = LintReport::default();
        r.findings.push(f);
        assert!(r.to_string().contains("1 finding(s)"));
        assert!(LintReport::default().to_string().contains("lint clean"));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = LintReport::default();
        a.findings
            .push(finding(RuleId::UnmatchedAck, Severity::Violation));
        let mut b = LintReport::default();
        b.findings
            .push(finding(RuleId::RxWithoutTx, Severity::Violation));
        a.merge(b);
        assert_eq!(a.findings.len(), 2);
    }
}
