//! The runtime invariant registry.
//!
//! The trace linter works offline, after the fact. The invariants here
//! are checked *while the simulation runs*, inside `ibsim-verbs` and
//! `ibsim-event`, when those crates are built with their `checks`
//! feature (this crate's own `checks` feature forwards to them). The
//! registry gives each runtime check a stable identity and a single
//! place to collect the violation counters from.
//!
//! Checks never panic: violations are counted and surfaced — through
//! [`ibsim_verbs::QpStats::invariant_violations`], through
//! `Engine::monotonicity_violations`, and through `ibsim-odp`'s
//! `HostCounters` — so a broken invariant shows up in the same counter
//! reports the paper's methodology relies on.

use std::fmt;

use ibsim_event::Engine;
use ibsim_verbs::{Cluster, HostId};

/// Stable identity of one runtime invariant check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantId {
    /// Every QP state change must be legal per the RC state machine
    /// (`QpState::transition_allowed`); checked in `ibsim-verbs`.
    QpStateTransition,
    /// Every event popped by the engine must carry a timestamp at or
    /// after the current clock; checked in `ibsim-event`.
    EventTimeMonotonicity,
    /// The engine's indexed heap must never pop a cancelled (dead)
    /// entry; a nonzero count means timer churn is leaking tombstones
    /// back into the queue. Counted unconditionally in `ibsim-event`.
    DeadEventPops,
}

impl InvariantId {
    /// Every registered runtime invariant.
    pub const ALL: [InvariantId; 3] = [
        InvariantId::QpStateTransition,
        InvariantId::EventTimeMonotonicity,
        InvariantId::DeadEventPops,
    ];

    /// Short stable mnemonic.
    pub fn code(self) -> &'static str {
        match self {
            InvariantId::QpStateTransition => "QP_STATE_TRANSITION",
            InvariantId::EventTimeMonotonicity => "EVENT_TIME_MONOTONICITY",
            InvariantId::DeadEventPops => "DEAD_EVENT_POPS",
        }
    }

    /// One-line description of what the check enforces.
    pub fn description(self) -> &'static str {
        match self {
            InvariantId::QpStateTransition => {
                "QP state changes follow the RC lifecycle (Reset→Init→Rtr→Rts, \
                 any→Error, Error→Reset)"
            }
            InvariantId::EventTimeMonotonicity => {
                "event pops never move the simulated clock backwards"
            }
            InvariantId::DeadEventPops => {
                "the event queue never pops a cancelled entry (cancellation \
                 physically removes events instead of tombstoning them)"
            }
        }
    }
}

impl fmt::Display for InvariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Violation counters collected from a running (or finished) simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvariantSnapshot {
    /// Illegal QP state transitions, summed over the snapshot's hosts.
    pub qp_transition_violations: u64,
    /// Event pops that moved the clock backwards.
    pub event_monotonicity_violations: u64,
    /// Cancelled entries that reached the head of the event queue.
    pub dead_event_pops: u64,
}

impl InvariantSnapshot {
    /// Collects the counters for every host of a cluster plus its engine.
    ///
    /// Without the `checks` feature both counters are always zero (the
    /// checks compile away); the collection path itself is unconditional
    /// so callers need no feature gates.
    pub fn collect<W>(cl: &Cluster, hosts: &[HostId], engine: &Engine<W>) -> Self {
        let qp = hosts
            .iter()
            .map(|&h| cl.qp_stats_sum(h).invariant_violations)
            .sum();
        InvariantSnapshot {
            qp_transition_violations: qp,
            event_monotonicity_violations: engine.monotonicity_violations(),
            dead_event_pops: engine.dead_event_pops(),
        }
    }

    /// Total violations across all invariants.
    pub fn total(&self) -> u64 {
        self.qp_transition_violations + self.event_monotonicity_violations + self.dead_event_pops
    }

    /// True when every runtime invariant held.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// The counter for one registered invariant.
    pub fn count(&self, id: InvariantId) -> u64 {
        match id {
            InvariantId::QpStateTransition => self.qp_transition_violations,
            InvariantId::EventTimeMonotonicity => self.event_monotonicity_violations,
            InvariantId::DeadEventPops => self.dead_event_pops,
        }
    }
}

impl fmt::Display for InvariantSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "runtime invariants clean");
        }
        write!(f, "runtime invariant violations:")?;
        for id in InvariantId::ALL {
            if self.count(id) > 0 {
                write!(f, " {}={}", id, self.count(id))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibsim_event::Engine;
    use ibsim_fabric::LinkSpec;
    use ibsim_verbs::{Cluster, DeviceProfile, MrMode, QpConfig, ReadWr};

    #[test]
    fn registry_is_self_describing() {
        for id in InvariantId::ALL {
            assert!(!id.code().is_empty());
            assert!(!id.description().is_empty());
            assert_eq!(id.to_string(), id.code());
        }
    }

    #[test]
    fn healthy_run_snapshot_is_clean() {
        let mut eng = Engine::new();
        let mut cl = Cluster::new(1);
        let a = cl.add_host("client", DeviceProfile::connectx4(LinkSpec::fdr()));
        let b = cl.add_host("server", DeviceProfile::connectx4(LinkSpec::fdr()));
        let remote = cl.alloc_mr(b, 4096, MrMode::Pinned);
        let local = cl.alloc_mr(a, 4096, MrMode::Pinned);
        let (qp, _) = cl.connect_pair(&mut eng, a, b, QpConfig::default());
        cl.post(
            &mut eng,
            a,
            qp,
            ReadWr::new(local.key, remote.key).len(256).id(0u64),
        );
        eng.run(&mut cl);
        assert_eq!(cl.poll_cq(a).len(), 1);
        let snap = InvariantSnapshot::collect(&cl, &[a, b], &eng);
        assert!(snap.is_clean(), "{snap}");
        assert_eq!(snap.total(), 0);
        assert!(snap.to_string().contains("clean"));
    }

    #[test]
    fn snapshot_display_lists_nonzero_counters() {
        let snap = InvariantSnapshot {
            qp_transition_violations: 2,
            event_monotonicity_violations: 0,
            dead_event_pops: 0,
        };
        let s = snap.to_string();
        assert!(s.contains("QP_STATE_TRANSITION=2"), "{s}");
        assert!(!s.contains("EVENT_TIME_MONOTONICITY"), "{s}");
        assert_eq!(snap.count(InvariantId::QpStateTransition), 2);
        assert!(!snap.is_clean());
    }

    #[test]
    fn dead_event_pops_are_collected_from_the_engine() {
        // A churny run on the indexed heap must report zero dead pops
        // through the snapshot — the counter exists without `checks`.
        let mut eng = Engine::new();
        let mut cl = Cluster::new(5);
        let a = cl.add_host("client", DeviceProfile::connectx4(LinkSpec::fdr()));
        let b = cl.add_host("server", DeviceProfile::connectx4(LinkSpec::fdr()));
        let remote = cl.alloc_mr(b, 1 << 16, MrMode::Odp);
        let local = cl.alloc_mr(a, 1 << 16, MrMode::Pinned);
        let (qp, _) = cl.connect_pair(&mut eng, a, b, QpConfig::default());
        for i in 0..8u64 {
            cl.post(
                &mut eng,
                a,
                qp,
                ReadWr::new(local.key, (remote.key, i * 4096)).len(64).id(i),
            );
        }
        eng.run(&mut cl);
        let snap = InvariantSnapshot::collect(&cl, &[a, b], &eng);
        assert_eq!(snap.count(InvariantId::DeadEventPops), 0, "{snap}");
        assert!(snap.is_clean(), "{snap}");
    }
}
