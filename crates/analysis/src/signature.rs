//! Packet-level signature detectors for the paper's two pitfalls.
//!
//! These complement the conformance rules in [`crate::linter`]: a damming
//! or flood trace is often *protocol-legal* packet by packet (every
//! retransmission has a timeout behind it), yet the shape of the timeline
//! is pathological. The signatures below encode exactly what the paper's
//! authors saw in their `ibdump` captures:
//!
//! * **Damming (§V, Fig. 5/8):** a request silently lost (ghosted at the
//!   HCA or dropped in the fabric) followed by an idle gap bounded only
//!   by the ACK timeout — nothing on the flow explains the wait.
//! * **Flood (§VI, Fig. 1 right):** the same request retransmitted over
//!   and over at the blind ODP retry cadence (~0.5 ms) while the
//!   responses keep arriving and being discarded.

use std::collections::BTreeMap;

use ibsim_event::SimTime;
use ibsim_fabric::{Capture, Direction};
use ibsim_verbs::{Packet, PacketKind, Qpn};

use crate::finding::{Finding, LintReport, RuleId, Severity};
use crate::linter::LintConfig;

/// One transmission attempt of a request, as the detector tracks it.
struct Attempt {
    at: SimTime,
    silent_loss: bool,
    opcode: &'static str,
}

/// Scans a sender-side capture for the §V packet-damming signature:
/// a silently lost request (ghost or fabric drop) followed by an idle,
/// NAK-free gap of at least [`LintConfig::damming_min_stall`] before the
/// next attempt (or the end of the capture, if it never recovered).
pub fn detect_damming_signature(cap: &Capture<Packet>, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    let mut attempts: BTreeMap<(Qpn, Qpn, u32), Vec<Attempt>> = BTreeMap::new();
    let mut naks: BTreeMap<(Qpn, Qpn), Vec<SimTime>> = BTreeMap::new();
    let mut order: Vec<(Qpn, Qpn, u32)> = Vec::new();
    let mut horizon = SimTime::ZERO;

    for r in cap {
        let p = &r.payload;
        horizon = horizon.max(r.time);
        match r.direction {
            Direction::Tx if p.kind.is_request() => {
                let key = (p.src_qp, p.dst_qp, p.psn.value());
                let entry = attempts.entry(key).or_default();
                if entry.is_empty() {
                    order.push(key);
                }
                entry.push(Attempt {
                    at: r.time,
                    silent_loss: r.dropped || p.ghost,
                    opcode: p.kind.opcode(),
                });
            }
            Direction::Rx => {
                if matches!(p.kind, PacketKind::Nak(_)) {
                    naks.entry((p.dst_qp, p.src_qp)).or_default().push(r.time);
                }
            }
            Direction::Tx => {}
        }
    }

    for key in order {
        let (src_qp, dst_qp, psn) = key;
        let tries = &attempts[&key];
        let flow_naks = naks.get(&(src_qp, dst_qp));
        let nak_between =
            |a: SimTime, b: SimTime| flow_naks.is_some_and(|v| v.iter().any(|&t| t > a && t <= b));
        for (i, attempt) in tries.iter().enumerate() {
            if !attempt.silent_loss {
                continue;
            }
            let (end, recovered) = match tries.get(i + 1) {
                Some(next) => (next.at, true),
                None => (horizon, false),
            };
            let gap = end - attempt.at;
            if gap >= cfg.damming_min_stall && !nak_between(attempt.at, end) {
                let message = if recovered {
                    format!(
                        "{} silently lost at {} then dammed for {} until the \
                         ACK-timeout retransmission",
                        attempt.opcode, attempt.at, gap
                    )
                } else {
                    format!(
                        "{} silently lost at {} and never retransmitted within \
                         the capture ({} of silence)",
                        attempt.opcode, attempt.at, gap
                    )
                };
                report.findings.push(Finding {
                    rule: RuleId::DammingSignature,
                    severity: Severity::Violation,
                    at: attempt.at,
                    flow: Some((src_qp, dst_qp)),
                    psn: Some(psn),
                    message,
                });
            }
        }
    }
    report
}

/// Scans a sender-side capture for the §VI packet-flood signature: one
/// request transmitted at least [`LintConfig::flood_min_transmissions`]
/// times with a median inter-attempt gap inside the blind ODP retry
/// cadence band, typically with READ responses arriving and being
/// discarded all the while.
pub fn detect_flood_signature(cap: &Capture<Packet>, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    let mut attempts: BTreeMap<(Qpn, Qpn, u32), Vec<SimTime>> = BTreeMap::new();
    let mut responses: BTreeMap<(Qpn, Qpn, u32), u64> = BTreeMap::new();
    let mut order: Vec<(Qpn, Qpn, u32)> = Vec::new();

    for r in cap {
        let p = &r.payload;
        match r.direction {
            Direction::Tx if p.kind.is_request() => {
                let key = (p.src_qp, p.dst_qp, p.psn.value());
                let entry = attempts.entry(key).or_default();
                if entry.is_empty() {
                    order.push(key);
                }
                entry.push(r.time);
            }
            Direction::Rx => {
                if let PacketKind::ReadResponse { req_psn, .. } = &p.kind {
                    *responses
                        .entry((p.dst_qp, p.src_qp, req_psn.value()))
                        .or_default() += 1;
                }
            }
            Direction::Tx => {}
        }
    }

    let (lo, hi) = cfg.flood_cadence;
    for key in order {
        let times = &attempts[&key];
        let n = times.len() as u64;
        if n < cfg.flood_min_transmissions {
            continue;
        }
        let mut gaps: Vec<SimTime> = times.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        if median < lo || median > hi {
            continue;
        }
        let (src_qp, dst_qp, psn) = key;
        let resp = responses.get(&key).copied().unwrap_or(0);
        let span = *times
            .last()
            .expect("invariant: times non-empty, key has at least one event")
            - times[0];
        report.findings.push(Finding {
            rule: RuleId::FloodSignature,
            severity: Severity::Violation,
            at: times[0],
            flow: Some((src_qp, dst_qp)),
            psn: Some(psn),
            message: format!(
                "request transmitted {n} times over {span} at ~{median} cadence \
                 ({resp} response(s) received and discarded meanwhile)"
            ),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{nak_rnr, read_req, read_resp, rx, tx, tx_ghost, tx_retx};

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn ghost_then_long_silence_is_damming() {
        let mut cap = Capture::new();
        cap.enable();
        tx_ghost(&mut cap, 1_000_000, read_req(0, 1));
        // ~500 ms of nothing, then the timeout retransmission.
        tx_retx(&mut cap, 500_000_000, read_req(0, 1));
        let report = detect_damming_signature(&cap, &cfg());
        assert_eq!(report.count(RuleId::DammingSignature), 1, "{report}");
        let f = report.by_rule(RuleId::DammingSignature).next().unwrap();
        assert!(f.message.contains("dammed"), "{}", f.message);
    }

    #[test]
    fn unrecovered_ghost_is_damming_too() {
        let mut cap = Capture::new();
        cap.enable();
        tx_ghost(&mut cap, 1_000_000, read_req(0, 1));
        // Keep the capture horizon far past the loss via another flow's
        // healthy request.
        let mut other = read_req(0, 1);
        other.src_qp = ibsim_verbs::Qpn(99);
        tx(&mut cap, 300_000_000, other);
        let report = detect_damming_signature(&cap, &cfg());
        assert_eq!(report.count(RuleId::DammingSignature), 1, "{report}");
        assert!(report.findings[0].message.contains("never retransmitted"));
    }

    #[test]
    fn rnr_wait_is_not_damming() {
        let mut cap = Capture::new();
        cap.enable();
        tx_ghost(&mut cap, 1_000_000, read_req(0, 1));
        rx(&mut cap, 2_000_000, nak_rnr());
        tx_retx(&mut cap, 500_000_000, read_req(0, 1));
        let report = detect_damming_signature(&cap, &cfg());
        assert_eq!(report.count(RuleId::DammingSignature), 0, "{report}");
    }

    #[test]
    fn short_gap_is_not_damming() {
        let mut cap = Capture::new();
        cap.enable();
        tx_ghost(&mut cap, 1_000_000, read_req(0, 1));
        tx_retx(&mut cap, 2_000_000, read_req(0, 1)); // 1 ms: below threshold
        let report = detect_damming_signature(&cap, &cfg());
        assert!(report.is_clean());
    }

    #[test]
    fn blind_cadence_storm_is_flood() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 0, read_req(0, 1));
        for i in 1..8u64 {
            // 0.5 ms cadence with the response arriving (and discarded).
            rx(&mut cap, i * 500_000 - 100_000, read_resp(0, 0));
            tx_retx(&mut cap, i * 500_000, read_req(0, 1));
        }
        let report = detect_flood_signature(&cap, &cfg());
        assert_eq!(report.count(RuleId::FloodSignature), 1, "{report}");
        let f = &report.findings[0];
        assert!(f.message.contains("8 times"), "{}", f.message);
        assert!(f.message.contains("7 response(s)"), "{}", f.message);
    }

    #[test]
    fn few_retransmissions_are_not_flood() {
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 0, read_req(0, 1));
        for i in 1..4u64 {
            tx_retx(&mut cap, i * 500_000, read_req(0, 1));
        }
        assert!(detect_flood_signature(&cap, &cfg()).is_clean());
    }

    #[test]
    fn slow_timeout_retries_are_not_flood() {
        // Eight retries at 100 ms cadence: persistent loss, not the blind
        // ODP timer.
        let mut cap = Capture::new();
        cap.enable();
        tx(&mut cap, 0, read_req(0, 1));
        for i in 1..8u64 {
            tx_retx(&mut cap, i * 100_000_000, read_req(0, 1));
        }
        assert!(detect_flood_signature(&cap, &cfg()).is_clean());
    }
}
