//! # ibsim-analysis
//!
//! Protocol-conformance and pitfall analysis for `ibsim` packet traces.
//!
//! The paper's central methodological point (§IX-A) is that the ODP
//! pitfalls are *invisible* without raw packets: no error codes, no
//! failed verbs, just time disappearing. This crate turns the simulator's
//! `ibdump`-style captures into checked artifacts:
//!
//! * [`lint_capture`] — an RC **trace linter**: per-flow PSN monotonicity
//!   and contiguity, sequence-error-NAK justification, retransmission
//!   justification, ACK/response matching; plus the §V damming and §VI
//!   flood **signature detectors** ([`signature`]).
//! * [`check_conservation`] — **packet conservation** between the two
//!   ends of a link: nothing silently lost, nothing invented.
//! * [`InvariantSnapshot`] — the **runtime invariant registry**: QP
//!   state-machine legality and event-clock monotonicity, counted inside
//!   `ibsim-verbs` / `ibsim-event` when built with the `checks` feature
//!   and collected here.
//!
//! Findings come back as a structured [`LintReport`] whose rules carry
//! stable [`RuleId`] codes, so CI can assert "clean trace" exactly.
//!
//! # Examples
//!
//! ```
//! use ibsim_analysis::{lint_capture, LintConfig, RuleId};
//! use ibsim_fabric::Capture;
//! use ibsim_verbs::Packet;
//!
//! let cap: Capture<Packet> = Capture::new();
//! let report = lint_capture(&cap, &LintConfig::default());
//! assert!(report.is_clean());
//! assert_eq!(report.count(RuleId::FloodSignature), 0);
//! ```

#![warn(missing_docs)]

mod conservation;
mod finding;
mod invariants;
mod linter;
pub mod signature;
#[cfg(test)]
pub(crate) mod testutil;

pub use conservation::check_conservation;
pub use finding::{Finding, LintReport, RuleId, Severity};
pub use invariants::{InvariantId, InvariantSnapshot};
pub use linter::{lint_capture, LintConfig, RecoveryRules};
