//! Packet conservation between two capture points.
//!
//! With captures running on both ends of a link, every frame transmitted
//! by one host and not marked dropped must appear in the peer's receive
//! capture, and every received frame must have a matching transmission.
//! Violations mean the simulator (or a capture tool) lost or invented
//! packets between the two observation points — the transport layer can
//! never legitimately do either.

use std::collections::{BTreeMap, BTreeSet};

use ibsim_fabric::{Capture, Captured, Direction, Lid};
use ibsim_verbs::Packet;

use crate::finding::{Finding, LintReport, RuleId, Severity};

/// Identity of a frame for conservation matching. Timestamps are
/// deliberately excluded (propagation shifts them); everything else must
/// match exactly.
type FrameKey = (Lid, Lid, u32, u32, u32, &'static str, bool);

fn key(r: &Captured<Packet>) -> FrameKey {
    let p = &r.payload;
    (
        p.src,
        p.dst,
        p.src_qp.0,
        p.dst_qp.0,
        p.psn.value(),
        p.kind.opcode(),
        p.retransmit,
    )
}

/// LIDs a capture shows as local to its host: sources of its Tx frames
/// and destinations of its Rx frames.
fn local_lids(cap: &Capture<Packet>) -> BTreeSet<Lid> {
    cap.iter()
        .map(|r| match r.direction {
            Direction::Tx => r.payload.src,
            Direction::Rx => r.payload.dst,
        })
        .collect()
}

/// Checks conservation in one direction: `tx_cap`'s host to `rx_cap`'s.
fn one_direction(tx_cap: &Capture<Packet>, rx_cap: &Capture<Packet>) -> LintReport {
    let mut report = LintReport::default();
    let rx_lids = local_lids(rx_cap);
    let tx_lids = local_lids(tx_cap);
    if rx_lids.is_empty() {
        // The peer captured nothing at all; there is nothing to match
        // against, so stay silent rather than flag every frame.
        return report;
    }

    // Multiset of expected arrivals: transmitted toward the peer and not
    // dropped in the fabric (ghosts are recorded with `dropped` set).
    let mut expected: BTreeMap<FrameKey, (u64, ibsim_event::SimTime)> = BTreeMap::new();
    for r in tx_cap {
        if r.direction == Direction::Tx && !r.dropped && rx_lids.contains(&r.payload.dst) {
            let e = expected.entry(key(r)).or_insert((0, r.time));
            e.0 += 1;
        }
    }

    for r in rx_cap {
        if r.direction != Direction::Rx || !tx_lids.contains(&r.payload.src) {
            continue;
        }
        let k = key(r);
        match expected.get_mut(&k) {
            Some(e) if e.0 > 0 => e.0 -= 1,
            _ => report.findings.push(Finding {
                rule: RuleId::RxWithoutTx,
                severity: Severity::Violation,
                at: r.time,
                flow: Some((r.payload.dst_qp, r.payload.src_qp)),
                psn: Some(r.payload.psn.value()),
                message: format!(
                    "{} {} received from {} with no matching transmission",
                    r.payload.kind.opcode(),
                    r.payload.psn,
                    r.payload.src
                ),
            }),
        }
    }

    let mut lost: Vec<(FrameKey, (u64, ibsim_event::SimTime))> =
        expected.into_iter().filter(|(_, (n, _))| *n > 0).collect();
    lost.sort_unstable_by_key(|(_, (_, t))| *t);
    for ((src, dst, src_qp, dst_qp, psn, opcode, _), (n, first)) in lost {
        report.findings.push(Finding {
            rule: RuleId::TxNotDelivered,
            severity: Severity::Violation,
            at: first,
            flow: Some((ibsim_verbs::Qpn(src_qp), ibsim_verbs::Qpn(dst_qp))),
            psn: Some(psn),
            message: format!(
                "{n} transmission(s) of {opcode} psn{psn} {src} -> {dst} never \
                 reached the receiver's capture"
            ),
        });
    }
    report
}

/// Checks packet conservation in both directions between two hosts'
/// captures: `a`'s non-dropped transmissions toward `b` must all appear
/// in `b`'s receive records (and vice versa), and neither side may
/// receive a frame the other never sent.
///
/// Both captures must have been enabled for the whole run; a peer capture
/// with no records at all disables matching in that direction rather than
/// flagging every frame.
pub fn check_conservation(a: &Capture<Packet>, b: &Capture<Packet>) -> LintReport {
    let mut report = one_direction(a, b);
    report.merge(one_direction(b, a));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{read_req, read_resp, rx, tx, tx_dropped};

    #[test]
    fn matched_captures_are_clean() {
        let mut a = Capture::new();
        let mut b = Capture::new();
        a.enable();
        b.enable();
        tx(&mut a, 1_000, read_req(0, 1));
        rx(&mut b, 2_000, read_req(0, 1));
        // Response comes back the other way.
        tx(&mut b, 3_000, read_resp(0, 0));
        rx(&mut a, 4_000, read_resp(0, 0));
        let report = check_conservation(&a, &b);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn dropped_frames_are_exempt() {
        let mut a = Capture::new();
        let mut b = Capture::new();
        a.enable();
        b.enable();
        tx_dropped(&mut a, 1_000, read_req(0, 1));
        // Give b a record so its local LIDs are known.
        tx(&mut b, 3_000, read_resp(0, 0));
        rx(&mut a, 4_000, read_resp(0, 0));
        let report = check_conservation(&a, &b);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn lost_frame_is_flagged() {
        let mut a = Capture::new();
        let mut b = Capture::new();
        a.enable();
        b.enable();
        tx(&mut a, 1_000, read_req(0, 1)); // not dropped, never arrives
        tx(&mut b, 3_000, read_resp(0, 0));
        rx(&mut a, 4_000, read_resp(0, 0));
        let report = check_conservation(&a, &b);
        assert_eq!(report.count(RuleId::TxNotDelivered), 1, "{report}");
        assert!(report.findings[0].message.contains("never"));
    }

    #[test]
    fn invented_frame_is_flagged() {
        let mut a = Capture::new();
        let mut b = Capture::new();
        a.enable();
        b.enable();
        tx(&mut a, 1_000, read_req(0, 1));
        rx(&mut b, 2_000, read_req(0, 1));
        rx(&mut b, 5_000, read_req(3, 1)); // never transmitted by a
        let report = check_conservation(&a, &b);
        assert_eq!(report.count(RuleId::RxWithoutTx), 1, "{report}");
    }

    #[test]
    fn empty_peer_capture_stays_silent() {
        let mut a = Capture::new();
        a.enable();
        tx(&mut a, 1_000, read_req(0, 1));
        let b: Capture<Packet> = Capture::new();
        assert!(check_conservation(&a, &b).is_clean());
    }

    #[test]
    fn duplicate_deliveries_are_flagged() {
        let mut a = Capture::new();
        let mut b = Capture::new();
        a.enable();
        b.enable();
        tx(&mut a, 1_000, read_req(0, 1));
        rx(&mut b, 2_000, read_req(0, 1));
        rx(&mut b, 2_500, read_req(0, 1)); // delivered twice, sent once
        let report = check_conservation(&a, &b);
        assert_eq!(report.count(RuleId::RxWithoutTx), 1, "{report}");
    }
}
