//! `ibsim-lint` — the in-tree token-level determinism analyzer.
//!
//! Every gate this workspace lives by (damming/flood golden FNV hashes,
//! telemetry JSONL byte-identity, the scenario corpus's 1-vs-N-worker
//! hash identity) assumes the simulator is bit-deterministic. This
//! crate enforces the construction-time half of that property: a
//! dependency-free, comment- and string-literal-aware Rust lexer
//! ([`lexer`]) feeds a rule engine ([`rules`]) that walks every
//! simulator crate's source as a token stream and reports span-accurate
//! `file:line:col` diagnostics for the five determinism rules. See
//! [`rules::ALL_RULES`] for the catalog and [`config`] for the
//! per-crate scoping policy; [`suppress`] implements the
//! `// lint: allow(<rule>)` escape hatch with unused-suppression
//! detection.
//!
//! Like the rest of the workspace, this crate is hermetic: no external
//! dependencies, no proc macros, no network.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod suppress;

use std::path::{Path, PathBuf};

use rules::Policy;

/// One reportable finding, bound to a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Kebab-case rule ID (`"no-unwrap"`, …, or `"malformed-allow"`
    /// for a suppression naming no known rule).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// A `lint: allow` that silenced nothing.
#[derive(Debug, Clone)]
pub struct UnusedAllow {
    /// The rule the suppression names.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule violations and malformed suppressions, in file/span order.
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressions that silenced nothing.
    pub unused_allows: Vec<UnusedAllow>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the run found nothing to report at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.unused_allows.is_empty()
    }

    /// Whether the run should fail CI. Unused allows only fail in
    /// `deny_unused_allows` mode (they are always *printed*).
    pub fn failed(&self, deny_unused_allows: bool) -> bool {
        !self.diagnostics.is_empty() || (deny_unused_allows && !self.unused_allows.is_empty())
    }
}

/// Lints one source string under the given policy. `file` is used
/// verbatim in the returned spans.
pub fn lint_source(file: &str, src: &str, policy: &Policy) -> Report {
    let all = lexer::lex(src);
    let (mut allows, bad) = suppress::collect_allows(&all);
    let toks: Vec<_> = all.into_iter().filter(|t| !t.is_comment()).collect();
    let mask = rules::test_mod_mask(&toks);
    let raw = rules::run_rules(&toks, &mask, policy);
    let kept = suppress::apply_allows(raw, &mut allows);

    let mut diagnostics: Vec<Diagnostic> = kept
        .into_iter()
        .map(|d| Diagnostic {
            rule: d.rule.id().to_owned(),
            file: file.to_owned(),
            line: d.line,
            col: d.col,
            message: d.message,
        })
        .collect();
    diagnostics.extend(bad.into_iter().map(|b| Diagnostic {
        rule: "malformed-allow".to_owned(),
        file: file.to_owned(),
        line: b.line,
        col: b.col,
        message: format!("`lint: allow({})` names no known rule", b.name),
    }));
    diagnostics.sort_by_key(|a| (a.line, a.col));

    let unused_allows = allows
        .into_iter()
        .filter(|a| !a.used)
        .map(|a| UnusedAllow {
            rule: a.rule.id().to_owned(),
            file: file.to_owned(),
            line: a.line,
            col: a.col,
        })
        .collect();

    Report {
        diagnostics,
        unused_allows,
        files_scanned: 1,
    }
}

/// Lints one file on disk, deriving the policy from its
/// workspace-relative path (falling back to every rule for paths
/// outside the configured roots).
pub fn lint_path(root: &Path, path: &Path) -> std::io::Result<Report> {
    let rel = rel_name(root, path);
    let src = std::fs::read_to_string(path)?;
    let policy = config::policy_for(&rel).unwrap_or_else(Policy::all);
    Ok(lint_source(&rel, &src, &policy))
}

/// Lints every configured source root under `root`, in deterministic
/// file order.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rc in config::ROOTS {
        let src_dir = if rc.dir == "src" {
            root.join("src")
        } else {
            root.join(rc.dir).join("src")
        };
        let mut files = Vec::new();
        collect_rs(&src_dir, &mut files);
        files.sort();
        for file in files {
            let rel = rel_name(root, &file);
            let Some(policy) = config::policy_for(&rel) else {
                continue;
            };
            let src = std::fs::read_to_string(&file)?;
            let one = lint_source(&rel, &src, &policy);
            report.diagnostics.extend(one.diagnostics);
            report.unused_allows.extend(one.unused_allows);
            report.files_scanned += 1;
        }
    }
    Ok(report)
}

/// Renders a report the way humans read it: one `file:line:col` line
/// per finding, then a summary.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            d.file, d.line, d.col, d.rule, d.message
        ));
    }
    for u in &report.unused_allows {
        out.push_str(&format!(
            "{}:{}:{}: [unused-allow] `lint: allow({})` suppresses nothing on this or \
             the next line\n",
            u.file, u.line, u.col, u.rule
        ));
    }
    out.push_str(&format!(
        "[ibsim-lint] {} file(s) scanned, {} violation(s), {} unused allow(s)\n",
        report.files_scanned,
        report.diagnostics.len(),
        report.unused_allows.len()
    ));
    out
}

/// Renders a report as a single JSON object (hand-rolled; the
/// workspace has no serde and must stay dependency-free).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_str(&d.rule),
            json_str(&d.file),
            d.line,
            d.col,
            json_str(&d.message)
        ));
    }
    out.push_str("],\"unused_allows\":[");
    for (i, u) in report.unused_allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{}}}",
            json_str(&u.rule),
            json_str(&u.file),
            u.line,
            u.col
        ));
    }
    out.push_str(&format!("],\"files_scanned\":{}}}", report.files_scanned));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn rel_name(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_failure_modes() {
        let mut r = Report::default();
        assert!(r.is_clean() && !r.failed(true));
        r.unused_allows.push(UnusedAllow {
            rule: "no-unwrap".to_owned(),
            file: "x.rs".to_owned(),
            line: 1,
            col: 1,
        });
        assert!(!r.failed(false));
        assert!(r.failed(true));
        r.diagnostics.push(Diagnostic {
            rule: "no-unwrap".to_owned(),
            file: "x.rs".to_owned(),
            line: 2,
            col: 3,
            message: "m".to_owned(),
        });
        assert!(r.failed(false));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn render_human_pins_the_span_format() {
        let r = lint_source(
            "crates/verbs/src/x.rs",
            "fn f() { y.unwrap(); }\n",
            &rules::Policy::all(),
        );
        let text = render_human(&r);
        assert!(
            text.contains("crates/verbs/src/x.rs:1:12: [no-unwrap]"),
            "{text}"
        );
    }

    #[test]
    fn render_json_is_well_formed() {
        let r = lint_source("x.rs", "fn f() { y.unwrap(); }\n", &rules::Policy::all());
        let json = render_json(&r);
        assert!(
            json.starts_with("{\"diagnostics\":[{\"rule\":\"no-unwrap\""),
            "{json}"
        );
        assert!(json.ends_with("\"files_scanned\":1}"), "{json}");
    }
}
