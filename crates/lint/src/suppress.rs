//! `// lint: allow(<rule>)` suppression comments.
//!
//! A suppression comment silences one rule on the line it sits on and
//! on the line directly below it, so both trailing and preceding-line
//! placement work:
//!
//! ```text
//! let t = host_clock();          // lint: allow(no-wall-clock)
//!
//! // lint: allow(no-unwrap)
//! let v = table.get(&k).unw…();
//! ```
//!
//! Several rules may share one comment: `lint: allow(a, b)`. Every
//! suppression must actually silence something — unused allows are
//! reported, and `--deny-unused-allows` (the CI mode) makes them fail
//! the run, so stale suppressions cannot outlive the code they excuse.

use crate::lexer::Token;
use crate::rules::{RawDiagnostic, Rule};

/// One parsed suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The silenced rule.
    pub rule: Rule,
    /// 1-based line of the suppression comment.
    pub line: u32,
    /// 1-based column of the comment token.
    pub col: u32,
    /// Set once the suppression silences at least one diagnostic.
    pub used: bool,
}

/// A suppression that names no known rule — always an error, so a typo
/// cannot silently disable nothing.
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// The unrecognized rule name.
    pub name: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment token.
    pub col: u32,
}

/// Extracts every `lint: allow(…)` suppression from the full token
/// stream (comments included). The directive must be the *start* of
/// the comment body (`// lint: allow(x)`), so prose or doc examples
/// that merely mention the syntax mid-sentence are never parsed as
/// suppressions.
pub fn collect_allows(toks: &[Token<'_>]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        let body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            bad.push(BadAllow {
                name: args.trim().to_owned(),
                line: t.line,
                col: t.col,
            });
            continue;
        };
        for name in args[..close].split(',') {
            let name = name.trim();
            match Rule::from_id(name) {
                Some(rule) => allows.push(Allow {
                    rule,
                    line: t.line,
                    col: t.col,
                    used: false,
                }),
                None => bad.push(BadAllow {
                    name: name.to_owned(),
                    line: t.line,
                    col: t.col,
                }),
            }
        }
    }
    (allows, bad)
}

/// Filters `diags` through the suppressions, marking each allow that
/// fired. Returns the surviving diagnostics.
pub fn apply_allows(diags: Vec<RawDiagnostic>, allows: &mut [Allow]) -> Vec<RawDiagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            let mut suppressed = false;
            for a in allows.iter_mut() {
                if a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line) {
                    a.used = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{run_rules, test_mod_mask, Policy};

    fn lint(src: &str) -> (Vec<RawDiagnostic>, Vec<Allow>, Vec<BadAllow>) {
        let all = lex(src);
        let (mut allows, bad) = collect_allows(&all);
        let toks: Vec<_> = all.into_iter().filter(|t| !t.is_comment()).collect();
        let mask = test_mod_mask(&toks);
        let diags = run_rules(&toks, &mask, &Policy::all());
        let kept = apply_allows(diags, &mut allows);
        (kept, allows, bad)
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let (kept, allows, bad) = lint("fn f() { x.unwrap(); } // lint: allow(no-unwrap)\n");
        assert!(kept.is_empty(), "{kept:?}");
        assert!(allows[0].used);
        assert!(bad.is_empty());
    }

    #[test]
    fn preceding_line_allow_suppresses_next_line() {
        let (kept, allows, _) = lint("// lint: allow(no-unwrap)\nfn f() { x.unwrap(); }\n");
        assert!(kept.is_empty(), "{kept:?}");
        assert!(allows[0].used);
    }

    #[test]
    fn allow_does_not_reach_two_lines_down() {
        let (kept, allows, _) = lint("// lint: allow(no-unwrap)\n\nfn f() { x.unwrap(); }\n");
        assert_eq!(kept.len(), 1);
        assert!(!allows[0].used);
    }

    #[test]
    fn allow_is_rule_specific() {
        let (kept, allows, _) = lint("// lint: allow(no-wall-clock)\nfn f() { x.unwrap(); }\n");
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert!(!allows[0].used);
    }

    #[test]
    fn one_comment_may_allow_several_rules() {
        let (kept, allows, _) = lint(
            "// lint: allow(no-unwrap, no-std-hash-collections)\n\
             fn f(h: HashMap<u32, u32>) { h.get(&0).unwrap(); }\n",
        );
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(allows.len(), 2);
        assert!(allows.iter().all(|a| a.used));
    }

    #[test]
    fn unknown_rule_is_reported() {
        let (_, _, bad) = lint("// lint: allow(no-such-rule)\nfn f() {}\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "no-such-rule");
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let (kept, allows, bad) = lint("// plain comment about allow lists\nfn f() {}\n");
        assert!(kept.is_empty() && allows.is_empty() && bad.is_empty());
    }

    #[test]
    fn mid_comment_mentions_are_not_directives() {
        // Prose documenting the syntax (as this crate's own docs do)
        // must not parse as a suppression.
        let (kept, allows, bad) = lint(
            "//! The `// lint: allow(no-unwrap)` escape hatch.\n\
             fn f() { x.unwrap(); }\n",
        );
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert!(allows.is_empty() && bad.is_empty());
    }

    #[test]
    fn block_comment_directive_works() {
        let (kept, allows, bad) = lint("/* lint: allow(no-unwrap) */\nfn f() { x.unwrap(); }\n");
        assert!(kept.is_empty(), "{kept:?}");
        assert!(allows[0].used && bad.is_empty());
    }
}
