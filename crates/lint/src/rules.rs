//! The rule catalog and the per-file rule engine.
//!
//! Every rule walks the significant (non-comment) token stream produced
//! by [`crate::lexer`] and emits span-accurate diagnostics. Code inside
//! `#[cfg(test)] mod …` blocks is exempt from all rules, matching the
//! long-standing policy of the original grep-based lint: tests may
//! unwrap, hash, and float freely because nothing deterministic is
//! derived from them.

use crate::lexer::{Token, TokenKind};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.unwrap()` calls — and `.expect(…)` calls whose message does not
    /// document a checked invariant — in simulator code.
    NoUnwrap,
    /// `Instant::now` / `SystemTime::now` reads in simulator crates.
    NoWallClock,
    /// `HashMap` / `HashSet` in simulator crates.
    NoStdHashCollections,
    /// `f32` / `f64` types and float literals in sim-time code.
    NoFloatInSimPath,
    /// `_ =>` arms in matches over protocol enums.
    NoWildcardMatchOnProtocolEnums,
    /// `retransmit: true` struct-literal initializers outside the
    /// recovery backends and the responder's duplicate-replay path.
    NoDirectRetransmit,
}

/// Every rule, in reporting order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::NoUnwrap,
    Rule::NoWallClock,
    Rule::NoStdHashCollections,
    Rule::NoFloatInSimPath,
    Rule::NoWildcardMatchOnProtocolEnums,
    Rule::NoDirectRetransmit,
];

/// The enum types whose matches must stay wildcard-free: adding a
/// protocol variant (a new QP state, opcode, timer family, or fabric
/// topology) must break the build everywhere the variant matters, the
/// same exhaustiveness discipline the RC state-transition table
/// enforces dynamically.
pub const PROTOCOL_ENUMS: [&str; 5] = [
    "QpState",
    "PacketKind",
    "WrOp",
    "TimerFamily",
    "TopologyKind",
];

impl Rule {
    /// The stable kebab-case rule ID used in diagnostics and
    /// `lint: allow(…)` suppressions.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoStdHashCollections => "no-std-hash-collections",
            Rule::NoFloatInSimPath => "no-float-in-sim-path",
            Rule::NoWildcardMatchOnProtocolEnums => "no-wildcard-match-on-protocol-enums",
            Rule::NoDirectRetransmit => "no-direct-retransmit",
        }
    }

    /// Looks a rule up by its kebab-case ID.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == id)
    }

    /// One-line description of what the rule enforces and why.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::NoUnwrap => {
                "simulation code must degrade into counters or errors, not panics; \
                 a bare `.expect(…)` is an unwrap with a nicer epitaph — only a \
                 documented invariant check (message starting `invariant: `) may stay"
            }
            Rule::NoWallClock => {
                "all time must come from the event engine; wall-clock reads break determinism"
            }
            Rule::NoStdHashCollections => {
                "std hash-collection iteration order is seeded per process and silently \
                 breaks cross-worker hash identity; use BTreeMap/BTreeSet"
            }
            Rule::NoFloatInSimPath => {
                "float arithmetic drifts across platforms and accumulates; sim-time math \
                 must be integer (see SimTime::mul_permille), floats stay in reporting"
            }
            Rule::NoWildcardMatchOnProtocolEnums => {
                "a `_ =>` arm lets a new protocol variant slip through silently; spell \
                 every variant so additions force explicit handling"
            }
            Rule::NoDirectRetransmit => {
                "retransmissions must be planned by a RecoveryPolicy backend and executed \
                 through the requester's plan executor; a literal `retransmit: true` \
                 anywhere else forges recovery traffic the trace linter cannot justify"
            }
        }
    }
}

/// Which rules apply to one file. Produced by the workspace config in
/// [`crate::config`]; the engine itself is policy-agnostic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Policy {
    /// Enforce [`Rule::NoUnwrap`].
    pub no_unwrap: bool,
    /// Enforce [`Rule::NoWallClock`].
    pub no_wall_clock: bool,
    /// Enforce [`Rule::NoStdHashCollections`].
    pub no_std_hash_collections: bool,
    /// Enforce [`Rule::NoFloatInSimPath`].
    pub no_float_in_sim_path: bool,
    /// Enforce [`Rule::NoWildcardMatchOnProtocolEnums`].
    pub no_wildcard_match: bool,
    /// Enforce [`Rule::NoDirectRetransmit`].
    pub no_direct_retransmit: bool,
}

impl Policy {
    /// A policy with every rule enabled.
    pub fn all() -> Policy {
        Policy {
            no_unwrap: true,
            no_wall_clock: true,
            no_std_hash_collections: true,
            no_float_in_sim_path: true,
            no_wildcard_match: true,
            no_direct_retransmit: true,
        }
    }
}

/// One rule finding at an exact source position.
#[derive(Debug, Clone)]
pub struct RawDiagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Runs every enabled rule over the significant token stream `toks`
/// (comments already filtered out). `masked[i]` marks tokens inside
/// `#[cfg(test)] mod` blocks, which every rule skips.
pub fn run_rules(toks: &[Token<'_>], masked: &[bool], policy: &Policy) -> Vec<RawDiagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if masked[i] {
            continue;
        }
        if policy.no_unwrap {
            check_unwrap(toks, i, t, &mut out);
        }
        if policy.no_wall_clock {
            check_wall_clock(toks, i, t, &mut out);
        }
        if policy.no_std_hash_collections {
            check_hash_collections(t, &mut out);
        }
        if policy.no_float_in_sim_path {
            check_float(t, &mut out);
        }
        if policy.no_direct_retransmit {
            check_direct_retransmit(toks, i, t, &mut out);
        }
    }
    if policy.no_wildcard_match {
        scan_matches(toks, masked, 0, toks.len(), &mut out);
    }
    out.sort_by_key(|d| (d.line, d.col, d.rule));
    out
}

/// Computes the `#[cfg(test)] mod` mask: `true` for every significant
/// token inside such a block. Unlike the old line-based cutoff this
/// handles test modules anywhere in the file and never ends linting
/// early on `#[cfg(test)]`-gated imports.
pub fn test_mod_mask(toks: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if let Some(body_open) = cfg_test_mod_start(toks, i) {
            // Mask from the attribute through the matching close brace.
            let mut depth = 0usize;
            let mut j = body_open;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end = (j + 1).min(toks.len());
            for m in mask.iter_mut().take(end).skip(i) {
                *m = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `toks[i]` starts a `#[cfg(test)]`-attributed `mod` item, returns
/// the index of the module's opening `{`.
fn cfg_test_mod_start(toks: &[Token<'_>], i: usize) -> Option<usize> {
    // #[cfg(test)]
    if !(toks[i].is_punct('#')
        && toks.get(i + 1)?.is_punct('[')
        && toks.get(i + 2)?.is_ident("cfg")
        && toks.get(i + 3)?.is_punct('(')
        && toks.get(i + 4)?.is_ident("test")
        && toks.get(i + 5)?.is_punct(')')
        && toks.get(i + 6)?.is_punct(']'))
    {
        return None;
    }
    // Skip any further attributes between the cfg and the item.
    let mut j = i + 7;
    while toks.get(j)?.is_punct('#') && toks.get(j + 1)?.is_punct('[') {
        let mut depth = 0usize;
        let mut k = j + 1;
        while k < toks.len() {
            if toks[k].is_punct('[') {
                depth += 1;
            } else if toks[k].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        j = k + 1;
    }
    if !toks.get(j)?.is_ident("mod") {
        return None;
    }
    // mod <name> { … }   (a `mod name;` declaration has no body here)
    let mut k = j + 1;
    while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
        k += 1;
    }
    if toks.get(k)?.is_punct('{') {
        Some(k)
    } else {
        None
    }
}

/// True for a string literal whose content starts with `invariant: ` —
/// the marker that turns an `.expect(…)` into a *documented* invariant
/// check the no-unwrap rule accepts. Handles plain, byte and raw string
/// forms (`"…"`, `b"…"`, `r"…"`, `r#"…"#`).
fn is_invariant_message(t: &Token<'_>) -> bool {
    if t.kind != TokenKind::Str {
        return false;
    }
    let body = t
        .text
        .trim_start_matches(['b', 'r'])
        .trim_start_matches('#');
    body.strip_prefix('"')
        .is_some_and(|rest| rest.starts_with("invariant: "))
}

fn check_unwrap(toks: &[Token<'_>], i: usize, t: &Token<'_>, out: &mut Vec<RawDiagnostic>) {
    if t.is_ident("unwrap")
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
    {
        out.push(RawDiagnostic {
            rule: Rule::NoUnwrap,
            line: t.line,
            col: t.col,
            message: "`.unwrap()` in simulator code (count a failure or return an error)"
                .to_owned(),
        });
    }
    // `.expect(…)` is an unwrap in disguise unless its message documents
    // a checked invariant (a string literal starting `invariant: `).
    if t.is_ident("expect")
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && !toks.get(i + 2).is_some_and(is_invariant_message)
    {
        out.push(RawDiagnostic {
            rule: Rule::NoUnwrap,
            line: t.line,
            col: t.col,
            message: "`.expect(…)` in simulator code (return an error, or document a \
                      checked invariant with a message starting `invariant: `)"
                .to_owned(),
        });
    }
}

fn check_wall_clock(toks: &[Token<'_>], i: usize, t: &Token<'_>, out: &mut Vec<RawDiagnostic>) {
    let clock = t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime");
    if clock
        && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
    {
        out.push(RawDiagnostic {
            rule: Rule::NoWallClock,
            line: t.line,
            col: t.col,
            message: format!(
                "wall-clock read `{}::now` in simulator code (all time must come from \
                 the event engine)",
                t.text
            ),
        });
    }
}

fn check_hash_collections(t: &Token<'_>, out: &mut Vec<RawDiagnostic>) {
    if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
        out.push(RawDiagnostic {
            rule: Rule::NoStdHashCollections,
            line: t.line,
            col: t.col,
            message: format!(
                "`{}` in simulator code: iteration order is seeded per process and \
                 breaks cross-worker determinism (use BTree{} instead)",
                t.text,
                if t.text == "HashMap" { "Map" } else { "Set" },
            ),
        });
    }
}

fn check_float(t: &Token<'_>, out: &mut Vec<RawDiagnostic>) {
    let offending = match t.kind {
        TokenKind::Ident if t.text == "f32" || t.text == "f64" => Some(t.text.to_owned()),
        TokenKind::Float => Some(format!("float literal `{}`", t.text)),
        _ => None,
    };
    if let Some(what) = offending {
        out.push(RawDiagnostic {
            rule: Rule::NoFloatInSimPath,
            line: t.line,
            col: t.col,
            message: format!(
                "{what} in sim-time code (use integer arithmetic, e.g. \
                 SimTime::mul_permille; floats stay in reporting)"
            ),
        });
    }
}

fn check_direct_retransmit(
    toks: &[Token<'_>],
    i: usize,
    t: &Token<'_>,
    out: &mut Vec<RawDiagnostic>,
) {
    // The needle is the struct-literal initializer `retransmit: true`.
    // Field shorthand (`retransmit,`), variable initializers
    // (`retransmit: is_retx`), and the field declaration
    // (`retransmit: bool`) all stay legal: only hard-coding the flag on
    // forges a retransmission outside the recovery plan. The preceding
    // token must not be a second `:` so paths never match.
    if t.is_ident("retransmit")
        && !(i > 0 && toks[i - 1].is_punct(':'))
        && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && toks.get(i + 2).is_some_and(|n| n.is_ident("true"))
    {
        out.push(RawDiagnostic {
            rule: Rule::NoDirectRetransmit,
            line: t.line,
            col: t.col,
            message: "`retransmit: true` outside the recovery backends (retransmissions \
                      must come from a RecoveryPolicy plan; see the sanctioned-file list \
                      in the lint config)"
                .to_owned(),
        });
    }
}

/// Recursively scans `toks[lo..hi]` for `match` expressions and flags
/// bare `_ =>` arms in matches whose patterns (or guards) reference one
/// of [`PROTOCOL_ENUMS`].
fn scan_matches(
    toks: &[Token<'_>],
    masked: &[bool],
    lo: usize,
    hi: usize,
    out: &mut Vec<RawDiagnostic>,
) {
    let mut i = lo;
    while i < hi {
        if toks[i].is_ident("match") && !masked[i] {
            i = scan_one_match(toks, masked, i, hi, out);
        } else {
            i += 1;
        }
    }
}

/// Scans one `match` expression starting at the `match` keyword at `m`;
/// returns the index just past its closing brace (or `hi` on malformed
/// input, which ends the scan gracefully).
fn scan_one_match(
    toks: &[Token<'_>],
    masked: &[bool],
    m: usize,
    hi: usize,
    out: &mut Vec<RawDiagnostic>,
) -> usize {
    // Find the body-opening `{`: the first `{` at bracket depth zero.
    // Struct literals cannot appear unparenthesized in a match scrutinee,
    // so braces at depth zero can only open the body.
    let mut depth = 0usize;
    let mut j = m + 1;
    let body_open = loop {
        if j >= hi {
            return hi;
        }
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('{') {
            if depth == 0 {
                break j;
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
        }
        j += 1;
    };
    // The scrutinee may itself contain a match (inside a closure).
    scan_matches(toks, masked, m + 1, body_open, out);

    let mut enum_used = false;
    let mut wildcards: Vec<(u32, u32)> = Vec::new();
    let mut i = body_open + 1;
    loop {
        // ---- pattern position (and guard), up to `=>` ----
        let mut depth = 0usize;
        let guard_or_arrow = loop {
            if i >= hi {
                return hi;
            }
            let t = &toks[i];
            if t.is_punct('}') && depth == 0 {
                // End of the match body.
                if enum_used {
                    for (line, col) in wildcards {
                        out.push(RawDiagnostic {
                            rule: Rule::NoWildcardMatchOnProtocolEnums,
                            line,
                            col,
                            message: "`_ =>` arm in a match over a protocol enum (spell \
                                      every variant so new ones force explicit handling)"
                                .to_owned(),
                        });
                    }
                }
                return i + 1;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if t.kind == TokenKind::Ident
                && PROTOCOL_ENUMS.contains(&t.text)
                && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            {
                enum_used = true;
            } else if t.is_ident("_")
                && depth == 0
                && toks.get(i + 1).is_some_and(|n| {
                    n.is_ident("if")
                        || (n.is_punct('=')
                            && toks[i + 2..hi.min(toks.len())]
                                .first()
                                .is_some_and(|g| g.is_punct('>')))
                })
            {
                wildcards.push((t.line, t.col));
            } else if t.is_punct('=')
                && depth == 0
                && toks.get(i + 1).is_some_and(|n| n.is_punct('>'))
            {
                break i;
            }
            i += 1;
        };
        // The guard (between pattern and `=>`) may hold nested matches;
        // patterns cannot, so scanning the whole span is harmless.
        let _ = guard_or_arrow;
        i += 2; // step over `=>`

        // ---- arm body: `{ … }` or an expression up to `,` / `}` ----
        if i < hi && toks[i].is_punct('{') {
            let mut depth = 0usize;
            let body_start = i;
            while i < hi {
                if toks[i].is_punct('{') {
                    depth += 1;
                } else if toks[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            scan_matches(toks, masked, body_start + 1, i, out);
            i += 1; // past the body's `}`
            if i < hi && toks[i].is_punct(',') {
                i += 1;
            }
        } else {
            let body_start = i;
            let mut depth = 0usize;
            while i < hi {
                let t = &toks[i];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if t.is_punct('}') {
                    if depth == 0 {
                        break; // end of the match body, handled above
                    }
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    break;
                }
                i += 1;
            }
            scan_matches(toks, masked, body_start, i, out);
            if i < hi && toks[i].is_punct(',') {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, policy: Policy) -> Vec<RawDiagnostic> {
        let toks: Vec<_> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let mask = test_mod_mask(&toks);
        run_rules(&toks, &mask, &policy)
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in ALL_RULES {
            assert_eq!(Rule::from_id(r.id()), Some(r));
            assert!(!r.rationale().is_empty());
        }
        assert_eq!(Rule::from_id("nope"), None);
    }

    #[test]
    fn unwrap_is_token_exact() {
        let diags = run("fn f() { x.unwrap(); }", Policy::all());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::NoUnwrap);
        // Mentioning unwrap() in a string or comment is fine.
        let clean = run(
            "// x.unwrap() here\nfn f() { let s = \"y.unwrap()\"; }",
            Policy::all(),
        );
        assert!(clean.is_empty(), "{clean:?}");
        // unwrap_or is not unwrap.
        assert!(run("fn f() { x.unwrap_or(0); }", Policy::all()).is_empty());
    }

    #[test]
    fn bare_expect_is_flagged_like_unwrap() {
        let diags = run("fn f() { x.expect(\"oops\"); }", Policy::all());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::NoUnwrap);
        // Non-literal messages are also flagged: they cannot be audited
        // as invariant documentation.
        let dynamic = run("fn f() { x.expect(msg); }", Policy::all());
        assert_eq!(dynamic.len(), 1, "{dynamic:?}");
        // expect_err and similar are different methods.
        assert!(run("fn f() { x.expect_err(\"e\"); }", Policy::all()).is_empty());
        // Mentions in strings/comments stay clean.
        assert!(run("// x.expect(\"e\")\nfn f() {}", Policy::all()).is_empty());
    }

    #[test]
    fn documented_invariant_expect_is_accepted() {
        let ok = run(
            "fn f() { x.expect(\"invariant: heap non-empty, just pushed\"); }",
            Policy::all(),
        );
        assert!(ok.is_empty(), "{ok:?}");
        let raw = run(
            "fn f() { x.expect(r\"invariant: checked above\"); }",
            Policy::all(),
        );
        assert!(raw.is_empty(), "{raw:?}");
        // The marker must be a prefix, not buried mid-message.
        let buried = run(
            "fn f() { x.expect(\"broke an invariant: bad\"); }",
            Policy::all(),
        );
        assert_eq!(buried.len(), 1, "{buried:?}");
    }

    #[test]
    fn wall_clock_needs_the_full_path() {
        let diags = run("fn f() { let t = Instant::now(); }", Policy::all());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::NoWallClock);
        assert!(run("fn f() { let t = now(); }", Policy::all()).is_empty());
    }

    #[test]
    fn hash_collections_flag_imports_and_types() {
        let diags = run(
            "use std::collections::HashMap;\nfn f(s: HashSet<u32>) {}",
            Policy::all(),
        );
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == Rule::NoStdHashCollections));
    }

    #[test]
    fn floats_flag_types_and_literals() {
        let diags = run("fn f(x: f64) -> f32 { (x * 1.5) as f32 }", Policy::all());
        let floats: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::NoFloatInSimPath)
            .collect();
        assert_eq!(floats.len(), 4, "{floats:?}");
    }

    #[test]
    fn wildcard_on_protocol_enum_is_flagged() {
        let src = "fn f(k: PacketKind) -> u32 {\n    match k {\n        \
                   PacketKind::Ack => 1,\n        _ => 0,\n    }\n}\n";
        let diags = run(src, Policy::all());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::NoWildcardMatchOnProtocolEnums);
        assert_eq!((diags[0].line, diags[0].col), (4, 9));
    }

    #[test]
    fn wildcard_on_other_enums_is_fine() {
        let src = "fn f(k: Option<u32>) -> u32 { match k { Some(v) => v, _ => 0 } }";
        assert!(run(src, Policy::all()).is_empty());
    }

    #[test]
    fn nested_underscore_in_tuple_pattern_is_fine() {
        let src = "fn f(k: PacketKind, b: bool) -> u32 {\n    match (k, b) {\n        \
                   (PacketKind::Ack, _) => 1,\n        (PacketKind::Nak(_), true) => 2,\n        \
                   (PacketKind::Send { .. }, false) => 3,\n    }\n}\n";
        assert!(run(src, Policy::all()).is_empty());
    }

    #[test]
    fn enum_in_arm_body_does_not_taint_the_match() {
        // The enum appears only on the *result* side; the match itself is
        // over a tuple of integers.
        let src = "fn f(i: u32, t: u32) -> PacketKind {\n    match (i, t) {\n        \
                   (0, _) => PacketKind::Ack,\n        _ => PacketKind::Ack,\n    }\n}\n";
        assert!(run(src, Policy::all()).is_empty());
    }

    #[test]
    fn nested_match_in_arm_body_is_scanned() {
        let src = "fn f(a: QpState, b: QpState) -> u32 {\n    match a {\n        \
                   QpState::Rts => match b {\n            QpState::Rts => 1,\n            \
                   _ => 0,\n        },\n        QpState::Error => 9,\n    }\n}\n";
        let diags = run(src, Policy::all());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!((diags[0].line, diags[0].col), (5, 13));
    }

    #[test]
    fn wildcard_with_guard_is_flagged() {
        let src = "fn f(k: TimerFamily, n: u32) -> u32 {\n    match k {\n        \
                   TimerFamily::Ack => 1,\n        _ if n > 0 => 2,\n        _ => 0,\n    }\n}\n";
        let diags = run(src, Policy::all());
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn direct_retransmit_literal_is_flagged() {
        let diags = run(
            "fn f() { let p = Packet { psn, retransmit: true }; }",
            Policy::all(),
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::NoDirectRetransmit);
    }

    #[test]
    fn lawful_retransmit_spellings_stay_clean() {
        // Field shorthand: the value came from somewhere with authority.
        assert!(run("fn f() { let p = Packet { retransmit }; }", Policy::all()).is_empty());
        // A computed flag is a plan decision, not a forged one.
        assert!(run(
            "fn f() { let p = Packet { retransmit: is_retx }; }",
            Policy::all()
        )
        .is_empty());
        // The field declaration itself.
        assert!(run("struct Packet { retransmit: bool }", Policy::all()).is_empty());
        // Turning the flag *off* is always fine.
        assert!(run(
            "fn f() { let p = Packet { retransmit: false }; }",
            Policy::all()
        )
        .is_empty());
        // Mentions in comments and strings never fire.
        assert!(run(
            "// retransmit: true\nfn f() { let s = \"retransmit: true\"; }",
            Policy::all()
        )
        .is_empty());
    }

    #[test]
    fn test_mod_is_exempt_from_all_rules() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    \
                   fn t() { x.unwrap(); let f = 1.5f64; }\n}\n";
        assert!(run(src, Policy::all()).is_empty());
    }

    #[test]
    fn cfg_test_on_imports_does_not_end_linting() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn bad() { x.unwrap(); }\n";
        let diags = run(src, Policy::all());
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn policy_gates_rules() {
        let src = "fn f() { x.unwrap(); let h: HashMap<u32, u32> = HashMap::new(); }";
        let only_unwrap = Policy {
            no_unwrap: true,
            ..Policy::default()
        };
        let diags = run(src, only_unwrap);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::NoUnwrap);
    }

    #[test]
    fn match_in_scrutinee_is_scanned() {
        let src =
            "fn f(v: Vec<QpState>) -> usize {\n    match v.iter().map(|s| match s {\n        \
                   QpState::Rts => 1,\n        _ => 0,\n    }).sum::<usize>() {\n        \
                   0 => 0,\n        n => n,\n    }\n}\n";
        let diags = run(src, Policy::all());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }
}
