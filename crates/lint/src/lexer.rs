//! A minimal, span-accurate Rust lexer.
//!
//! The lexer turns source text into a flat stream of [`Token`]s tagged
//! with 1-based `line:col` positions. It exists so the lint rules can
//! reason about *code* rather than raw bytes: string literals, char
//! literals, raw strings, and (nested) comments are each one token, so a
//! rule looking for the identifier `HashMap` can never be fooled by a
//! doc comment or a format string that merely mentions it.
//!
//! The lexer is deliberately smaller than a real Rust front end — it has
//! no keyword table and performs no parsing — but it is exact about the
//! things that matter for token-level linting:
//!
//! * line (`//…`) and nested block (`/* /* … */ */`) comments,
//! * string-ish literals: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//! * numeric literals, including float detection (`1.0`, `2e9`, `3f64`)
//!   that does not misfire on ranges (`0..n`), method calls (`1.max(x)`),
//!   or tuple indexing (`pair.0`).

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish them).
    Ident,
    /// A lifetime such as `'a` (including the leading quote).
    Lifetime,
    /// Integer literal, including any non-float suffix.
    Int,
    /// Float literal: has a fractional part, an exponent, or an `f32`/
    /// `f64` suffix.
    Float,
    /// Any string-ish literal: `"…"`, raw, byte, or byte-raw strings.
    Str,
    /// A char or byte-char literal such as `'x'` or `b'\n'`.
    Char,
    /// A single punctuation character (`.`, `:`, `{`, `=`, …).
    Punct,
    /// A `//…` comment, including doc comments, up to the newline.
    LineComment,
    /// A `/* … */` comment, including doc comments, nesting respected.
    BlockComment,
}

/// One token with its source text and 1-based position.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The exact source slice of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte within its line.
    pub col: u32,
}

impl Token<'_> {
    /// True for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True if this is a punctuation token consisting of exactly `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True if this is an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// Lexes `src` into tokens. Invalid input never panics: unterminated
/// literals simply extend to the end of the file, and any byte the lexer
/// does not understand becomes a one-byte [`TokenKind::Punct`].
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    /// Current byte offset.
    i: usize,
    /// 1-based current line.
    line: u32,
    /// Byte offset of the first byte of the current line.
    line_start: usize,
    out: Vec<Token<'a>>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            line_start: 0,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.i + ahead).unwrap_or(&0)
    }

    /// Advances one byte, maintaining the line accounting.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.line_start = self.i + 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text: &self.src[start..self.i],
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token<'a>> {
        while self.i < self.bytes.len() {
            let b = self.peek(0);
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let start = self.i;
            let line = self.line;
            let col = (self.i - self.line_start + 1) as u32;
            match b {
                b'/' if self.peek(1) == b'/' => {
                    while self.i < self.bytes.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.quoted_string();
                    self.push(TokenKind::Str, start, line, col);
                }
                b'\'' => {
                    let kind = self.lifetime_or_char();
                    self.push(kind, start, line, col);
                }
                _ if b.is_ascii_digit() => {
                    let kind = self.number();
                    self.push(kind, start, line, col);
                }
                _ if is_ident_start(b) => {
                    if let Some(kind) = self.string_prefix() {
                        self.push(kind, start, line, col);
                    } else {
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                        self.push(TokenKind::Ident, start, line, col);
                    }
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// Consumes a nested block comment starting at `/*`.
    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1usize;
        while self.i < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a `"…"` string body with escapes; the opening quote is at
    /// the current position.
    fn quoted_string(&mut self) {
        self.bump(); // opening quote
        while self.i < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw string `r#*"…"#*`; the current position is at the
    /// first `#` or the opening quote.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            return; // not actually a raw string; treated as lexed-so-far
        }
        self.bump();
        while self.i < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Detects `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `br#"…"#`, and `b'…'`
    /// at an identifier-start position. Returns the token kind if one was
    /// consumed.
    fn string_prefix(&mut self) -> Option<TokenKind> {
        let (prefix_len, raw, is_char) = match (self.peek(0), self.peek(1), self.peek(2)) {
            (b'r', b'"', _) | (b'r', b'#', _) => (1, true, false),
            (b'b', b'r', b'"') | (b'b', b'r', b'#') => (2, true, false),
            (b'b', b'"', _) => (1, false, false),
            (b'b', b'\'', _) => (1, false, true),
            _ => return None,
        };
        // `r#foo` is a raw identifier, not a raw string: require a quote
        // after the hashes.
        if raw {
            let mut k = prefix_len;
            while self.peek(k) == b'#' {
                k += 1;
            }
            if self.peek(k) != b'"' {
                return None;
            }
        }
        self.bump_n(prefix_len);
        if raw {
            self.raw_string();
            Some(TokenKind::Str)
        } else if is_char {
            self.char_body();
            Some(TokenKind::Char)
        } else {
            self.quoted_string();
            Some(TokenKind::Str)
        }
    }

    /// Consumes a char literal starting at the opening `'`.
    fn char_body(&mut self) {
        self.bump(); // opening quote
        if self.peek(0) == b'\\' {
            self.bump_n(2);
            // `\x41`, `\u{…}`: consume until the closing quote below.
        } else {
            self.bump();
        }
        while self.i < self.bytes.len() && self.peek(0) != b'\'' {
            self.bump();
        }
        self.bump(); // closing quote
    }

    /// Disambiguates a lifetime from a char literal at a `'`.
    fn lifetime_or_char(&mut self) -> TokenKind {
        // `'a` followed by anything but another quote is a lifetime;
        // `'a'` is a char.
        if is_ident_start(self.peek(1)) {
            let mut k = 2;
            while is_ident_continue(self.peek(k)) {
                k += 1;
            }
            if self.peek(k) != b'\'' {
                self.bump_n(k);
                return TokenKind::Lifetime;
            }
        }
        self.char_body();
        TokenKind::Char
    }

    /// Consumes a numeric literal; classifies float vs. integer.
    fn number(&mut self) -> TokenKind {
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            // Radix literal: digits, underscores, and (for hex) letters.
            // The suffix, if any, is consumed by the same loop.
            self.bump_n(2);
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            return TokenKind::Int;
        }
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        // A `.` makes this a float unless it introduces a range (`0..n`),
        // a method call (`1.max(2)`), or a field access.
        if self.peek(0) == b'.' && self.peek(1) != b'.' && !is_ident_start(self.peek(1)) {
            float = true;
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Exponent: `1e9`, `1.5e-3`.
        if matches!(self.peek(0), b'e' | b'E') {
            let (sign, digit) = (self.peek(1), self.peek(2));
            if sign.is_ascii_digit() || (matches!(sign, b'+' | b'-') && digit.is_ascii_digit()) {
                float = true;
                self.bump();
                if matches!(self.peek(0), b'+' | b'-') {
                    self.bump();
                }
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
        }
        // Suffix: `u32`, `f64`, …
        let suffix_start = self.i;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.i];
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.b();");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "b"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn spans_are_one_based_line_col() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn comments_are_single_tokens() {
        let toks = kinds("x // trailing HashMap\n/* block /* nested */ f64 */ y");
        assert_eq!(toks[0], (TokenKind::Ident, "x"));
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2].0, TokenKind::BlockComment);
        assert_eq!(toks[3], (TokenKind::Ident, "y"));
    }

    #[test]
    fn strings_swallow_their_contents() {
        let toks = kinds(r#"let s = "HashMap::new() /* not a comment */";"#);
        assert!(toks.iter().all(|t| t.0 != TokenKind::LineComment));
        assert_eq!(toks[3].0, TokenKind::Str);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Ident).count(), 2);
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let a = r#"quote " inside"#; let b = br"raw"; let c = b"bytes";"##);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3);
        assert!(strs[0].1.starts_with("r#\""));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a u8, c: char) { let y = 'z'; let e = '\\''; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'z'");
    }

    #[test]
    fn float_detection() {
        for (src, kind) in [
            ("1.0", TokenKind::Float),
            ("2e9", TokenKind::Float),
            ("1.5e-3", TokenKind::Float),
            ("3f64", TokenKind::Float),
            ("7f32", TokenKind::Float),
            ("42", TokenKind::Int),
            ("42u64", TokenKind::Int),
            ("0xff", TokenKind::Int),
            ("1_000_000", TokenKind::Int),
        ] {
            assert_eq!(lex(src)[0].kind, kind, "{src}");
        }
    }

    #[test]
    fn ranges_and_methods_are_not_floats() {
        let toks = kinds("for i in 0..10 { let m = 1.max(i); let f = pair.0; }");
        assert!(toks.iter().all(|t| t.0 != TokenKind::Float), "{toks:?}");
    }

    #[test]
    fn byte_char_is_char() {
        assert_eq!(lex("b'x'")[0].kind, TokenKind::Char);
    }

    #[test]
    fn raw_ident_is_ident() {
        let toks = kinds("r#match");
        // `r` then `#` then `match` is acceptable (we only must not lex it
        // as a string); the exact split is unimportant for the rules.
        assert!(toks.iter().all(|t| t.0 != TokenKind::Str));
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("let s = \"a\nb\";\nnext");
        let next = toks.iter().find(|t| t.text == "next").expect("next token");
        assert_eq!(next.line, 3);
    }
}
