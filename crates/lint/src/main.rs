//! The `ibsim-lint` CLI.
//!
//! ```text
//! cargo run -p ibsim-lint -- --workspace                       # lint every crate
//! cargo run -p ibsim-lint -- --workspace --deny-unused-allows  # CI mode
//! cargo run -p ibsim-lint -- --json path/to/file.rs            # one file, JSON
//! ```
//!
//! Flags:
//!
//! * `--workspace` — lint every configured source root (the default
//!   when no file arguments are given);
//! * `--json` — machine-readable output instead of `file:line:col`
//!   lines;
//! * `--deny-unused-allows` — a `lint: allow` that suppresses nothing
//!   fails the run (CI mode; unused allows are always printed);
//! * `--root <dir>` — workspace root (defaults to the root this binary
//!   was built from).
//!
//! Exits non-zero if any diagnostic survives suppression, or in
//! `--deny-unused-allows` mode if any suppression is stale.

use std::path::{Path, PathBuf};

fn main() {
    let mut json = false;
    let mut deny_unused = false;
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-unused-allows" => deny_unused = true,
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => fail_usage("--root requires a directory argument"),
            },
            other if other.starts_with('-') => fail_usage(&format!("unknown flag `{other}`")),
            file => files.push(PathBuf::from(file)),
        }
    }
    if workspace && !files.is_empty() {
        fail_usage("--workspace and explicit file arguments are mutually exclusive");
    }

    let root = root.unwrap_or_else(default_root);
    let result = if files.is_empty() {
        ibsim_lint::lint_workspace(&root)
    } else {
        lint_files(&root, &files)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[ibsim-lint] error: {e}");
            std::process::exit(2);
        }
    };

    if json {
        println!("{}", ibsim_lint::render_json(&report));
    } else {
        print!("{}", ibsim_lint::render_human(&report));
    }
    if report.failed(deny_unused) {
        std::process::exit(1);
    }
}

fn lint_files(root: &Path, files: &[PathBuf]) -> std::io::Result<ibsim_lint::Report> {
    let mut report = ibsim_lint::Report::default();
    for file in files {
        let one = ibsim_lint::lint_path(root, file)?;
        report.diagnostics.extend(one.diagnostics);
        report.unused_allows.extend(one.unused_allows);
        report.files_scanned += one.files_scanned;
    }
    Ok(report)
}

/// The workspace root this binary was built from: the lint crate's
/// manifest dir is `<root>/crates/lint`.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn fail_usage(msg: &str) -> ! {
    eprintln!("[ibsim-lint] {msg}");
    eprintln!(
        "usage: ibsim-lint [--workspace] [--json] [--deny-unused-allows] \
         [--root <dir>] [files…]"
    );
    std::process::exit(2);
}
