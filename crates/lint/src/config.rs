//! The workspace rule-scoping table: which rules apply to which files.
//!
//! The scoping policy, in one place so DESIGN 8.7 and the engine cannot
//! drift apart:
//!
//! * **no-unwrap** and **no-std-hash-collections** apply to every crate
//!   in the workspace, including `bench` and this lint crate itself
//!   (the self-check).
//! * **no-wall-clock** applies everywhere except `crates/bench`, whose
//!   harness legitimately measures host time (qpsweep wall-ratio
//!   budgets).
//! * **no-float-in-sim-path** applies to the sim-time crates `event`,
//!   `verbs`, `fabric`, and `core` (the ODP crate), minus the
//!   documented float-boundary files listed in
//!   [`FLOAT_BOUNDARY_FILES`].
//! * **no-wildcard-match-on-protocol-enums** applies to `verbs` and
//!   `analysis`, where protocol-enum matches encode the RC state
//!   machine and the trace linter's opcode accounting, and — since the
//!   routed-fabric refactor added `TopologyKind` to the protected enum
//!   list — to `fabric` (route construction dispatches on it) and
//!   `scenario` (the `topology=` facet serializer must stay exhaustive).
//! * **no-direct-retransmit** applies to `verbs`, where every packet is
//!   built: retransmissions must come out of a `RecoveryPolicy` plan,
//!   not a hard-coded `retransmit: true`, minus the sanctioned sites in
//!   [`RETRANSMIT_SANCTIONED_FILES`].
//!
//! The sharded PDES executor (`verbs/src/sharded.rs`) needs no scoping
//! of its own: it inherits the full `crates/verbs` rule set, and its
//! determinism contract — bit-identical traces at every shard count —
//! rests on exactly the properties these rules protect (no wall-clock
//! reads, no floats in sim-time arithmetic, no iteration-order-dependent
//! std hash collections anywhere near the epoch merge).

use crate::rules::Policy;

/// One linted source root and its rule flags.
#[derive(Debug, Clone, Copy)]
pub struct RootConfig {
    /// Workspace-relative directory whose `src/` tree is walked
    /// (`"src"` means the workspace root crate).
    pub dir: &'static str,
    /// Enforce no-wall-clock here.
    pub wall_clock: bool,
    /// Enforce no-float-in-sim-path here.
    pub float_path: bool,
    /// Enforce no-wildcard-match-on-protocol-enums here.
    pub wildcard: bool,
    /// Enforce no-direct-retransmit here.
    pub retransmit: bool,
}

/// Every linted source root, in walk order.
pub const ROOTS: &[RootConfig] = &[
    RootConfig {
        dir: "crates/analysis",
        wall_clock: true,
        float_path: false,
        wildcard: true,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/bench",
        wall_clock: false,
        float_path: false,
        wildcard: false,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/core",
        wall_clock: true,
        float_path: true,
        wildcard: false,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/dsm",
        wall_clock: true,
        float_path: false,
        wildcard: false,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/event",
        wall_clock: true,
        float_path: true,
        wildcard: false,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/fabric",
        wall_clock: true,
        float_path: true,
        wildcard: true,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/lint",
        wall_clock: true,
        float_path: false,
        wildcard: false,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/perftest",
        wall_clock: true,
        float_path: false,
        wildcard: false,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/scenario",
        wall_clock: true,
        float_path: false,
        wildcard: true,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/shuffle",
        wall_clock: true,
        float_path: false,
        wildcard: false,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/telemetry",
        wall_clock: true,
        float_path: false,
        wildcard: false,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/ucp",
        wall_clock: true,
        float_path: false,
        wildcard: false,
        retransmit: false,
    },
    RootConfig {
        dir: "crates/verbs",
        wall_clock: true,
        float_path: true,
        wildcard: true,
        retransmit: true,
    },
    RootConfig {
        dir: "src",
        wall_clock: true,
        float_path: false,
        wildcard: false,
        retransmit: false,
    },
];

/// Files where floats are sanctioned by design even inside float-path
/// crates. Each is a conversion or randomness boundary, not sim-time
/// arithmetic:
///
/// * `event/src/time.rs` — the `SimTime` float constructors/accessors
///   themselves (every other crate goes through them);
/// * `event/src/rng.rs` and `fabric/src/loss.rs` — `next_f64` uniform
///   draws; converting the loss models to fixed-point would change the
///   RNG stream and re-pin every golden hash;
/// * `core/src/experiment.rs` and `core/src/microbench.rs` — paper
///   figure reporting (ratios, probabilities), not event scheduling.
pub const FLOAT_BOUNDARY_FILES: &[&str] = &[
    "crates/event/src/time.rs",
    "crates/event/src/rng.rs",
    "crates/fabric/src/loss.rs",
    "crates/core/src/experiment.rs",
    "crates/core/src/microbench.rs",
];

/// Files where a literal `retransmit: true` is sanctioned even inside
/// the retransmit-linted `verbs` crate:
///
/// * `verbs/src/qp/recovery.rs` — the `RecoveryPolicy` backends
///   themselves; this is where retransmission *decisions* are made, so
///   the flag originates here by definition;
/// * `verbs/src/qp/responder.rs` — duplicate READ/ATOMIC replay. A
///   responder re-answering a duplicate request is wire-mandated replay
///   (IBTA §9.7.5.1.5), not loss recovery, and never consults the
///   requester's backend.
///
/// Everywhere else the flag must flow out of a plan: the requester's
/// executor threads it positionally through `build_request_packet`.
pub const RETRANSMIT_SANCTIONED_FILES: &[&str] = &[
    "crates/verbs/src/qp/recovery.rs",
    "crates/verbs/src/qp/responder.rs",
];

/// Derives the rule set for one workspace-relative file path. Returns
/// `None` for files outside every configured root (e.g. `tests/`
/// trees, fixtures), which are not linted.
pub fn policy_for(rel: &str) -> Option<Policy> {
    let root = ROOTS.iter().find(|r| {
        if r.dir == "src" {
            rel.starts_with("src/")
        } else {
            rel.strip_prefix(r.dir)
                .is_some_and(|rest| rest.starts_with("/src/"))
        }
    })?;
    let boundary = FLOAT_BOUNDARY_FILES.contains(&rel);
    let sanctioned = RETRANSMIT_SANCTIONED_FILES.contains(&rel);
    Some(Policy {
        no_unwrap: true,
        no_wall_clock: root.wall_clock,
        no_std_hash_collections: true,
        no_float_in_sim_path: root.float_path && !boundary,
        no_wildcard_match: root.wildcard,
        no_direct_retransmit: root.retransmit && !sanctioned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_matches_the_documented_policy() {
        let verbs = policy_for("crates/verbs/src/device.rs").expect("verbs is linted");
        assert!(verbs.no_float_in_sim_path && verbs.no_wildcard_match);
        assert!(verbs.no_direct_retransmit);

        let backends = policy_for("crates/verbs/src/qp/recovery.rs").expect("linted");
        assert!(!backends.no_direct_retransmit && backends.no_wildcard_match);
        let replay = policy_for("crates/verbs/src/qp/responder.rs").expect("linted");
        assert!(!replay.no_direct_retransmit && replay.no_unwrap);

        let analysis = policy_for("crates/analysis/src/linter.rs").expect("linted");
        assert!(!analysis.no_direct_retransmit, "only verbs builds packets");

        let bench = policy_for("crates/bench/src/bin/qpsweep.rs").expect("bench is linted");
        assert!(bench.no_unwrap && !bench.no_wall_clock && !bench.no_float_in_sim_path);

        let boundary = policy_for("crates/event/src/time.rs").expect("time.rs is linted");
        assert!(!boundary.no_float_in_sim_path && boundary.no_wall_clock);

        let fabric = policy_for("crates/fabric/src/routing.rs").expect("linted");
        assert!(
            fabric.no_wildcard_match,
            "TopologyKind matches stay exhaustive"
        );
        let scenario = policy_for("crates/scenario/src/spec.rs").expect("linted");
        assert!(
            scenario.no_wildcard_match,
            "facet serializer stays exhaustive"
        );

        let root = policy_for("src/lib.rs").expect("root crate is linted");
        assert!(root.no_unwrap && !root.no_wildcard_match);

        assert!(policy_for("crates/verbs/tests/transport.rs").is_none());
        assert!(policy_for("crates/lint/tests/fixtures/bad_unwrap.rs").is_none());
        // A crate name that merely prefixes another must not match.
        assert!(policy_for("crates/eventual/src/x.rs").is_none());
    }

    #[test]
    fn every_root_lints_unwrap_and_hash_collections() {
        for r in ROOTS {
            let rel = if r.dir == "src" {
                "src/probe.rs".to_owned()
            } else {
                format!("{}/src/probe.rs", r.dir)
            };
            let p = policy_for(&rel).expect("configured root must be linted");
            assert!(p.no_unwrap && p.no_std_hash_collections, "{rel}");
        }
    }
}
