//! Known-clean fixture for no-direct-retransmit: the flag may be
//! declared, threaded through, computed, or switched off — only a
//! hard-coded `true` initializer forges a retransmission.

pub struct Packet {
    pub psn: u32,
    pub retransmit: bool,
}

pub fn fresh(psn: u32) -> Packet {
    Packet {
        psn,
        retransmit: false,
    }
}

pub fn threaded(psn: u32, retransmit: bool) -> Packet {
    Packet { psn, retransmit }
}

pub fn planned(psn: u32, in_plan: bool) -> Packet {
    // A computed flag is a plan decision: "retransmit: true" in a
    // comment or string never fires either.
    let note = "retransmit: true";
    Packet {
        psn: psn + note.len() as u32,
        retransmit: in_plan,
    }
}

#[cfg(test)]
mod tests {
    use super::Packet;

    #[test]
    fn tests_may_forge() {
        let p = Packet {
            psn: 0,
            retransmit: true,
        };
        assert!(p.retransmit);
    }
}
