//! Known-bad fixture for no-float-in-sim-path: violations at 4:20
//! (f64 type), 5:11 (float literal), and 5:20 (f64 cast target).

pub fn stretch(ns: f64) -> u64 {
    (ns * 1.87) as f64 as u64
}
