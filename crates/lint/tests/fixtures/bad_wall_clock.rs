//! Known-bad fixture for no-wall-clock: violations at 6:13 and 7:13.

use std::time::{Instant, SystemTime};

pub fn now() -> (Instant, SystemTime) {
    let a = Instant::now();
    let b = SystemTime::now();
    (a, b)
}
