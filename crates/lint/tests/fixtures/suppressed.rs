//! Fixture for suppression handling: a used trailing allow (line 5), a
//! used preceding-line allow (lines 7–8), and an unused allow (line 11).

pub fn escape_hatches(v: Option<u32>) -> u32 {
    let a = Some(v).unwrap(); // lint: allow(no-unwrap)

    // lint: allow(no-unwrap)
    let b = a.unwrap();

    // lint: allow(no-wall-clock)
    a.unwrap_or(0) + b
}
