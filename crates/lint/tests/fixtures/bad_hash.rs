//! Known-bad fixture for no-std-hash-collections: violations at
//! 4:24, 4:33, 7:15, and 8:14.

use std::collections::{HashMap, HashSet};

pub struct State {
    pub seen: HashSet<u32>,
    pub map: HashMap<u32, u32>,
}
