//! Known-bad fixture for no-unwrap: one violation at 4:25.

pub fn lookup(v: Option<u32>) -> u32 {
    let inner = Some(v).unwrap();
    inner.unwrap_or(0)
}
