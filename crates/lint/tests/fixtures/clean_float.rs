//! Known-clean fixture for no-float-in-sim-path: integer per-mille
//! arithmetic, ranges (not float literals), and idents that merely
//! contain "f64".

pub fn stretch_permille(ns: u64) -> u64 {
    (ns * 1870 + 500) / 1000
}

pub fn sum_to_ten() -> u64 {
    // `0..10` must lex as a range, not the float `0.`.
    (0..10).sum()
}

pub fn as_secs_f64_name_is_fine(ns: u64) -> u64 {
    ns
}
