//! Known-clean fixture for no-unwrap's `.expect(…)` arm: documented
//! invariant messages, `expect_err`-family names, comments, strings
//! and test modules must not fire.

pub fn lookup(v: Option<u32>) -> u32 {
    // A comment may say x.expect("anything") freely.
    let doc = "strings may say x.expect(\"whatever\") too";
    let inner = v.expect("invariant: caller validated v above");
    inner + doc.len() as u32
}

pub fn errs(r: Result<u32, u32>) -> u32 {
    r.expect_err("expect_err is a different method")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_expect() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.expect("anything goes in tests"), 3);
    }
}
