//! Known-clean fixture for no-wildcard-match-on-protocol-enums:
//! exhaustive protocol matches, wildcard matches over non-protocol
//! types, and nested `_` inside tuple patterns.

pub enum QpState {
    Rts,
    Error,
}

pub fn is_usable(s: QpState) -> bool {
    match s {
        QpState::Rts => true,
        QpState::Error => false,
    }
}

pub fn wildcard_on_plain_enums_is_fine(v: Option<u32>) -> u32 {
    match v {
        Some(x) => x,
        _ => 0,
    }
}

pub fn nested_underscore_is_fine(s: QpState, flag: bool) -> u32 {
    match (s, flag) {
        (QpState::Rts, _) => 1,
        (QpState::Error, true) => 2,
        (QpState::Error, false) => 3,
    }
}
