//! Known-bad fixture for no-direct-retransmit: one violation at 5:9.

pub fn forge(psn: u32) -> Packet {
    Packet {
        retransmit: true,
        psn,
    }
}
