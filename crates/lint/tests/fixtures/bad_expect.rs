//! Known-bad fixture for no-unwrap's `.expect(…)` arm: two violations.

pub fn lookup(v: Option<u32>) -> u32 {
    let inner = Some(v).expect("should not happen");
    let twice = inner.expect("checked");
    twice * 2
}
