//! Known-bad fixture for no-wildcard-match-on-protocol-enums: one
//! violation at 12:9 (the `_ =>` arm of a QpState match).

pub enum QpState {
    Rts,
    Error,
}

pub fn is_usable(s: QpState) -> bool {
    match s {
        QpState::Rts => true,
        _ => false,
    }
}
