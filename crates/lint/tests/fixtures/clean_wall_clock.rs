//! Known-clean fixture for no-wall-clock: a local `now` function and
//! prose mentions are fine; only `Instant::now`/`SystemTime::now`
//! token sequences fire.

pub fn now() -> u64 {
    42 // sim time comes from the event engine, not the host clock
}

pub fn later() -> u64 {
    now() + 1
}
