//! Known-clean fixture for no-std-hash-collections: the sanctioned
//! ordered collections, plus a comment mentioning HashMap.

use std::collections::{BTreeMap, BTreeSet};

pub struct State {
    // Deliberately not a HashMap: iteration order must be stable.
    pub seen: BTreeSet<u32>,
    pub map: BTreeMap<u32, u32>,
}
