//! Known-clean fixture for no-unwrap: mentions of the needle in
//! comments, strings, and `unwrap_or`-family calls must not fire.

pub fn lookup(v: Option<u32>) -> u32 {
    // A comment may say x.unwrap() freely.
    let doc = "strings may say x.unwrap() too";
    v.unwrap_or(doc.len() as u32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
