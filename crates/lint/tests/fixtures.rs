//! Integration tests over the fixture corpus: every rule has at least
//! one known-bad and one known-clean fixture, with exact `line:col`
//! span assertions, plus suppression and unused-suppression coverage.

use std::path::Path;

use ibsim_lint::rules::Policy;
use ibsim_lint::{lint_source, Report};

fn lint_fixture(name: &str) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    lint_source(name, &src, &Policy::all())
}

/// The `(rule, line, col)` triples of a report, in order.
fn spans(report: &Report) -> Vec<(String, u32, u32)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.rule.clone(), d.line, d.col))
        .collect()
}

fn assert_clean(name: &str) {
    let report = lint_fixture(name);
    assert!(
        report.is_clean(),
        "{name} should be clean, got: {:?} / unused {:?}",
        report.diagnostics,
        report.unused_allows
    );
}

#[test]
fn bad_unwrap_spans() {
    let report = lint_fixture("bad_unwrap.rs");
    assert_eq!(
        spans(&report),
        vec![("no-unwrap".to_owned(), 4, 25)],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn clean_unwrap_is_clean() {
    assert_clean("clean_unwrap.rs");
}

#[test]
fn bad_expect_spans() {
    let report = lint_fixture("bad_expect.rs");
    assert_eq!(
        spans(&report),
        vec![
            ("no-unwrap".to_owned(), 4, 25),
            ("no-unwrap".to_owned(), 5, 23),
        ],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn clean_expect_is_clean() {
    assert_clean("clean_expect.rs");
}

#[test]
fn bad_wall_clock_spans() {
    let report = lint_fixture("bad_wall_clock.rs");
    assert_eq!(
        spans(&report),
        vec![
            ("no-wall-clock".to_owned(), 6, 13),
            ("no-wall-clock".to_owned(), 7, 13),
        ],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn clean_wall_clock_is_clean() {
    assert_clean("clean_wall_clock.rs");
}

#[test]
fn bad_hash_spans() {
    let report = lint_fixture("bad_hash.rs");
    assert_eq!(
        spans(&report),
        vec![
            ("no-std-hash-collections".to_owned(), 4, 24),
            ("no-std-hash-collections".to_owned(), 4, 33),
            ("no-std-hash-collections".to_owned(), 7, 15),
            ("no-std-hash-collections".to_owned(), 8, 14),
        ],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn clean_hash_is_clean() {
    assert_clean("clean_hash.rs");
}

#[test]
fn bad_float_spans() {
    let report = lint_fixture("bad_float.rs");
    assert_eq!(
        spans(&report),
        vec![
            ("no-float-in-sim-path".to_owned(), 4, 20),
            ("no-float-in-sim-path".to_owned(), 5, 11),
            ("no-float-in-sim-path".to_owned(), 5, 20),
        ],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn clean_float_is_clean() {
    assert_clean("clean_float.rs");
}

#[test]
fn bad_wildcard_spans() {
    let report = lint_fixture("bad_wildcard.rs");
    assert_eq!(
        spans(&report),
        vec![("no-wildcard-match-on-protocol-enums".to_owned(), 12, 9)],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn clean_wildcard_is_clean() {
    assert_clean("clean_wildcard.rs");
}

#[test]
fn bad_retransmit_spans() {
    let report = lint_fixture("bad_retransmit.rs");
    assert_eq!(
        spans(&report),
        vec![("no-direct-retransmit".to_owned(), 5, 9)],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn clean_retransmit_is_clean() {
    assert_clean("clean_retransmit.rs");
}

#[test]
fn sanctioned_retransmit_files_are_exempt() {
    // The recovery backends and the responder's duplicate-replay path
    // are the two sanctioned homes of a literal `retransmit: true`.
    for rel in ibsim_lint::config::RETRANSMIT_SANCTIONED_FILES {
        let p = ibsim_lint::config::policy_for(rel).expect("sanctioned file must still be linted");
        assert!(!p.no_direct_retransmit, "{rel}");
        assert!(p.no_unwrap, "{rel} keeps every other rule");
    }
}

#[test]
fn suppression_and_unused_suppression() {
    let report = lint_fixture("suppressed.rs");
    // Both unwrap violations are suppressed (trailing + preceding-line).
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    // The no-wall-clock allow silences nothing and is reported.
    assert_eq!(report.unused_allows.len(), 1, "{:?}", report.unused_allows);
    let u = &report.unused_allows[0];
    assert_eq!((u.rule.as_str(), u.line, u.col), ("no-wall-clock", 10, 5));
    // Unused allows fail only the deny mode.
    assert!(!report.failed(false));
    assert!(report.failed(true));
}

#[test]
fn json_output_round_trips_the_spans() {
    let report = lint_fixture("bad_unwrap.rs");
    let json = ibsim_lint::render_json(&report);
    assert!(
        json.contains("\"rule\":\"no-unwrap\",\"file\":\"bad_unwrap.rs\",\"line\":4,\"col\":25"),
        "{json}"
    );
}

#[test]
fn human_output_round_trips_the_spans() {
    let report = lint_fixture("bad_wildcard.rs");
    let text = ibsim_lint::render_human(&report);
    assert!(
        text.contains("bad_wildcard.rs:12:9: [no-wildcard-match-on-protocol-enums]"),
        "{text}"
    );
}

#[test]
fn workspace_policy_exempts_fixtures() {
    // The fixture corpus itself must never be linted by --workspace
    // (it lives under tests/, outside every configured src root).
    assert!(ibsim_lint::config::policy_for("crates/lint/tests/fixtures/bad_unwrap.rs").is_none());
}
