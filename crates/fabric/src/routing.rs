//! Switch topologies and deterministic route computation.
//!
//! A [`Topology`] describes the switch graph of a subnet and computes,
//! for any ordered pair of attachment switches, the exact sequence of
//! switches a frame traverses. Routes are a pure function of the
//! topology parameters and the endpoint indices — never of construction
//! order, traffic history, or load — so every replica of a sharded run
//! computes bit-identical paths and the conservative lookahead derived
//! from them is a true lower bound.
//!
//! Four built-ins cover the shapes the congestion studies need:
//!
//! * [`TopologyKind::Crossbar`] — every host on one switch; the
//!   historical default, and the timing-identity baseline every golden
//!   trace is pinned against.
//! * [`TopologyKind::FatTree`] — `k` leaf switches fully meshed to
//!   `k/2` spines; the classic shared-uplink shape where a flood storm
//!   and a victim flow contend for the same leaf→spine link.
//! * [`TopologyKind::Ring`] — `n` switches in a cycle, shortest-path
//!   routed with a deterministic clockwise tie-break.
//! * [`TopologyKind::Dragonfly`] — `g` groups of two routers, cliqued
//!   inside a group, one global link per group pair through fixed
//!   gateway routers.

use std::fmt;

use crate::topology::Lid;

/// Identifier of one switch inside a [`Topology`] (dense from 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u16);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// The built-in topology catalog, as plain serializable data.
///
/// The scenario spec's `topology=` facet round-trips through
/// [`fmt::Display`] / [`std::str::FromStr`]; tokens are single words
/// (`crossbar`, `fattree4`, `ring5`, `dragonfly3`) so they fit the
/// line-oriented spec format without escaping.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TopologyKind {
    /// One switch, every host attached to it (the historical default).
    #[default]
    Crossbar,
    /// `k` leaf switches, each connected to every one of `k/2` spine
    /// switches. Hosts attach round-robin to leaves. `k` must be an
    /// even number ≥ 2.
    FatTree {
        /// Number of leaf switches.
        k: u16,
    },
    /// `n ≥ 2` switches in a cycle; shortest-direction routing, ties
    /// broken clockwise (ascending switch index).
    Ring {
        /// Number of switches on the ring.
        switches: u16,
    },
    /// `g ≥ 2` groups of two routers each: routers inside a group are
    /// directly linked, and each ordered group pair shares one global
    /// link between deterministically chosen gateway routers.
    Dragonfly {
        /// Number of router groups.
        groups: u16,
    },
}

impl TopologyKind {
    /// Every built-in kind at a small representative size, for tests and
    /// fuzzers that want to sweep the catalog.
    pub const ALL_SAMPLES: [TopologyKind; 4] = [
        TopologyKind::Crossbar,
        TopologyKind::FatTree { k: 2 },
        TopologyKind::Ring { switches: 3 },
        TopologyKind::Dragonfly { groups: 2 },
    ];

    /// Validates the parameters; returns the first problem found.
    pub fn validate(self) -> Result<(), String> {
        match self {
            TopologyKind::Crossbar => Ok(()),
            TopologyKind::FatTree { k } => {
                if k < 2 || k % 2 != 0 {
                    Err(format!("fat-tree needs an even leaf count >= 2, got {k}"))
                } else {
                    Ok(())
                }
            }
            TopologyKind::Ring { switches } => {
                if switches < 2 {
                    Err(format!("ring needs at least 2 switches, got {switches}"))
                } else {
                    Ok(())
                }
            }
            TopologyKind::Dragonfly { groups } => {
                if groups < 2 {
                    Err(format!("dragonfly needs at least 2 groups, got {groups}"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Builds the route computer for this kind.
    ///
    /// # Panics
    ///
    /// Panics if [`TopologyKind::validate`] fails: an invalid topology is
    /// a configuration bug and must not enter the fabric.
    pub fn build(self) -> Box<dyn Topology> {
        if let Err(e) = self.validate() {
            panic!("fabric: invalid topology: {e}");
        }
        match self {
            TopologyKind::Crossbar => Box::new(Crossbar),
            TopologyKind::FatTree { k } => Box::new(FatTree { k }),
            TopologyKind::Ring { switches } => Box::new(Ring { switches }),
            TopologyKind::Dragonfly { groups } => Box::new(Dragonfly { groups }),
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Crossbar => write!(f, "crossbar"),
            TopologyKind::FatTree { k } => write!(f, "fattree{k}"),
            TopologyKind::Ring { switches } => write!(f, "ring{switches}"),
            TopologyKind::Dragonfly { groups } => write!(f, "dragonfly{groups}"),
        }
    }
}

impl std::str::FromStr for TopologyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let parse_param = |rest: &str, what: &str| -> Result<u16, String> {
            rest.parse()
                .map_err(|_| format!("bad {what} parameter {rest:?}"))
        };
        let kind = if s == "crossbar" {
            TopologyKind::Crossbar
        } else if let Some(rest) = s.strip_prefix("fattree") {
            TopologyKind::FatTree {
                k: parse_param(rest, "fat-tree")?,
            }
        } else if let Some(rest) = s.strip_prefix("ring") {
            TopologyKind::Ring {
                switches: parse_param(rest, "ring")?,
            }
        } else if let Some(rest) = s.strip_prefix("dragonfly") {
            TopologyKind::Dragonfly {
                groups: parse_param(rest, "dragonfly")?,
            }
        } else {
            return Err(format!("unknown topology kind {s:?}"));
        };
        kind.validate()?;
        Ok(kind)
    }
}

/// One endpoint of a [`DirectedLink`]: a host NIC port or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteNode {
    /// A host NIC port, by LID.
    Host(Lid),
    /// A switch, by topology-local id.
    Switch(SwitchId),
}

impl fmt::Display for RouteNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteNode::Host(lid) => write!(f, "{lid}"),
            RouteNode::Switch(sw) => write!(f, "{sw}"),
        }
    }
}

/// One directed hop of a route. Direction matters: the fabric keeps
/// independent serialization horizons (and telemetry) per direction, so
/// `(a → b)` and `(b → a)` never contend with each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DirectedLink {
    /// Transmitting end.
    pub from: RouteNode,
    /// Receiving end.
    pub to: RouteNode,
}

/// Deterministic route computation over a fixed switch graph.
///
/// The contract every implementation (and every future out-of-tree one)
/// must honor:
///
/// * **Purity** — `route_switches(a, b)` depends only on the topology
///   parameters and `(a, b)`. No interior mutability, no load awareness.
/// * **Completeness** — for any two *attachment* switches (values of
///   [`Topology::attach`]) the returned path starts at `a`, ends at
///   `b`, and every consecutive pair is a physical link of the
///   topology. `route_switches(s, s)` is `[s]`. Routes between
///   non-attachment switches (e.g. fat-tree spines) are not part of the
///   contract — no host lives there, so the fabric never asks.
/// * **Attachment stability** — `attach(i)` depends only on `i`, so a
///   host's switch never changes as later hosts join.
///
/// These properties are what let the sharded executor derive its
/// cross-shard lookahead from routes computed independently on every
/// replica, and what the seeded route-determinism fuzz test enforces
/// for the built-ins.
pub trait Topology: fmt::Debug + Send {
    /// The serializable parameters this computer was built from.
    fn kind(&self) -> TopologyKind;

    /// Number of switches in the graph (ids are `0..switch_count()`).
    fn switch_count(&self) -> u16;

    /// The switch the `i`-th registered host attaches to (hosts are
    /// indexed densely in LID order).
    fn attach(&self, host_index: u16) -> SwitchId;

    /// The switch sequence from `from` to `to`, inclusive of both.
    fn route_switches(&self, from: SwitchId, to: SwitchId) -> Vec<SwitchId>;
}

/// The single-switch crossbar (see [`TopologyKind::Crossbar`]).
#[derive(Debug, Clone, Copy)]
pub struct Crossbar;

impl Topology for Crossbar {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Crossbar
    }

    fn switch_count(&self) -> u16 {
        1
    }

    fn attach(&self, _host_index: u16) -> SwitchId {
        SwitchId(0)
    }

    fn route_switches(&self, from: SwitchId, _to: SwitchId) -> Vec<SwitchId> {
        vec![from]
    }
}

/// Two-level fat-tree (see [`TopologyKind::FatTree`]): leaves are
/// switches `0..k`, spines are `k..k + k/2`.
#[derive(Debug, Clone, Copy)]
struct FatTree {
    k: u16,
}

impl FatTree {
    /// The spine carrying traffic between two distinct leaves. Static
    /// (destination-independent ECMP hash of the leaf pair) so the same
    /// pair always shares the same uplink — which is exactly what the
    /// congestion study wants: a storm and a victim between the same
    /// leaves collide by construction.
    fn spine_for(&self, a: u16, b: u16) -> u16 {
        self.k + (a + b) % (self.k / 2)
    }
}

impl Topology for FatTree {
    fn kind(&self) -> TopologyKind {
        TopologyKind::FatTree { k: self.k }
    }

    fn switch_count(&self) -> u16 {
        self.k + self.k / 2
    }

    fn attach(&self, host_index: u16) -> SwitchId {
        SwitchId(host_index % self.k)
    }

    fn route_switches(&self, from: SwitchId, to: SwitchId) -> Vec<SwitchId> {
        if from == to {
            return vec![from];
        }
        vec![from, SwitchId(self.spine_for(from.0, to.0)), to]
    }
}

/// Cycle of `switches` switches (see [`TopologyKind::Ring`]).
#[derive(Debug, Clone, Copy)]
struct Ring {
    switches: u16,
}

impl Topology for Ring {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Ring {
            switches: self.switches,
        }
    }

    fn switch_count(&self) -> u16 {
        self.switches
    }

    fn attach(&self, host_index: u16) -> SwitchId {
        SwitchId(host_index % self.switches)
    }

    fn route_switches(&self, from: SwitchId, to: SwitchId) -> Vec<SwitchId> {
        let n = self.switches;
        let clockwise = (to.0 + n - from.0) % n;
        let counter = (from.0 + n - to.0) % n;
        // Shortest direction; the exact half-way tie goes clockwise so
        // both replicas of a sharded run agree without consulting state.
        let step = if clockwise <= counter { 1 } else { n - 1 };
        let mut path = vec![from];
        let mut cur = from.0;
        while cur != to.0 {
            cur = (cur + step) % n;
            path.push(SwitchId(cur));
        }
        path
    }
}

/// Dragonfly of `groups` two-router groups (see
/// [`TopologyKind::Dragonfly`]): group `g` owns routers `2g` and
/// `2g + 1`.
#[derive(Debug, Clone, Copy)]
struct Dragonfly {
    groups: u16,
}

impl Dragonfly {
    fn group_of(sw: u16) -> u16 {
        sw / 2
    }

    /// The gateway router group `from` uses toward group `to`. The
    /// parity split spreads global links across both routers of a group
    /// while staying a pure function of the group pair.
    fn gateway(from_group: u16, to_group: u16) -> u16 {
        2 * from_group + to_group % 2
    }
}

impl Topology for Dragonfly {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Dragonfly {
            groups: self.groups,
        }
    }

    fn switch_count(&self) -> u16 {
        2 * self.groups
    }

    fn attach(&self, host_index: u16) -> SwitchId {
        SwitchId(host_index % (2 * self.groups))
    }

    fn route_switches(&self, from: SwitchId, to: SwitchId) -> Vec<SwitchId> {
        if from == to {
            return vec![from];
        }
        let (ga, gb) = (Self::group_of(from.0), Self::group_of(to.0));
        if ga == gb {
            // Intra-group: the two routers of a group are directly linked.
            return vec![from, to];
        }
        let out = Self::gateway(ga, gb);
        let inn = Self::gateway(gb, ga);
        let mut path = vec![from];
        if out != from.0 {
            path.push(SwitchId(out));
        }
        path.push(SwitchId(inn));
        if inn != to.0 {
            path.push(to);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The switches any host can actually attach to (sweeping well past
    /// one round-robin cycle of host indices).
    fn attachment_switches(topo: &dyn Topology) -> Vec<SwitchId> {
        let mut set: Vec<SwitchId> = (0..4 * topo.switch_count())
            .map(|i| topo.attach(i))
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    fn assert_route_contract(topo: &dyn Topology) {
        let n = topo.switch_count();
        for &SwitchId(a) in &attachment_switches(topo) {
            for &SwitchId(b) in &attachment_switches(topo) {
                let path = topo.route_switches(SwitchId(a), SwitchId(b));
                assert_eq!(path.first(), Some(&SwitchId(a)), "{topo:?} {a}->{b}");
                assert_eq!(path.last(), Some(&SwitchId(b)), "{topo:?} {a}->{b}");
                if a == b {
                    assert_eq!(path.len(), 1, "{topo:?} self-route must be trivial");
                }
                for w in path.windows(2) {
                    assert_ne!(w[0], w[1], "{topo:?} {a}->{b}: repeated switch");
                    assert!(w[0].0 < n && w[1].0 < n, "{topo:?} {a}->{b}: bad id");
                }
            }
        }
    }

    #[test]
    fn every_builtin_satisfies_the_route_contract() {
        for kind in [
            TopologyKind::Crossbar,
            TopologyKind::FatTree { k: 2 },
            TopologyKind::FatTree { k: 4 },
            TopologyKind::FatTree { k: 8 },
            TopologyKind::Ring { switches: 2 },
            TopologyKind::Ring { switches: 5 },
            TopologyKind::Ring { switches: 8 },
            TopologyKind::Dragonfly { groups: 2 },
            TopologyKind::Dragonfly { groups: 4 },
        ] {
            assert_route_contract(kind.build().as_ref());
        }
    }

    #[test]
    fn crossbar_routes_are_single_switch() {
        let t = TopologyKind::Crossbar.build();
        assert_eq!(t.switch_count(), 1);
        assert_eq!(t.attach(0), SwitchId(0));
        assert_eq!(t.attach(17), SwitchId(0));
        assert_eq!(t.route_switches(SwitchId(0), SwitchId(0)), [SwitchId(0)]);
    }

    #[test]
    fn fattree_pairs_share_a_fixed_spine() {
        let t = TopologyKind::FatTree { k: 4 }.build();
        assert_eq!(t.switch_count(), 6); // 4 leaves + 2 spines
        let via = t.route_switches(SwitchId(0), SwitchId(1));
        assert_eq!(via.len(), 3);
        assert!(via[1].0 >= 4, "middle hop is a spine");
        // The reverse direction uses the same spine (symmetric hash).
        assert_eq!(t.route_switches(SwitchId(1), SwitchId(0))[1], via[1]);
        // Leaves 0..4 round-robin host attachment.
        assert_eq!(t.attach(5), SwitchId(1));
    }

    #[test]
    fn ring_routes_take_the_shortest_direction() {
        let t = TopologyKind::Ring { switches: 5 }.build();
        assert_eq!(
            t.route_switches(SwitchId(0), SwitchId(1)),
            [SwitchId(0), SwitchId(1)]
        );
        // 0 -> 4 is one counter-clockwise hop, not four clockwise ones.
        assert_eq!(
            t.route_switches(SwitchId(0), SwitchId(4)),
            [SwitchId(0), SwitchId(4)]
        );
        // Even split on an even ring breaks clockwise.
        let even = TopologyKind::Ring { switches: 4 }.build();
        assert_eq!(
            even.route_switches(SwitchId(0), SwitchId(2)),
            [SwitchId(0), SwitchId(1), SwitchId(2)]
        );
    }

    #[test]
    fn dragonfly_routes_use_one_global_link() {
        let t = TopologyKind::Dragonfly { groups: 3 }.build();
        assert_eq!(t.switch_count(), 6);
        // Intra-group is a single hop.
        assert_eq!(
            t.route_switches(SwitchId(0), SwitchId(1)),
            [SwitchId(0), SwitchId(1)]
        );
        // Inter-group routes cross exactly one group boundary.
        for a in 0..6 {
            for b in 0..6 {
                let path = t.route_switches(SwitchId(a), SwitchId(b));
                let crossings = path
                    .windows(2)
                    .filter(|w| Dragonfly::group_of(w[0].0) != Dragonfly::group_of(w[1].0))
                    .count();
                assert!(crossings <= 1, "{a}->{b}: {path:?}");
            }
        }
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in [
            TopologyKind::Crossbar,
            TopologyKind::FatTree { k: 6 },
            TopologyKind::Ring { switches: 7 },
            TopologyKind::Dragonfly { groups: 3 },
        ] {
            let token = kind.to_string();
            let back: TopologyKind = token.parse().unwrap_or_else(|e| panic!("{token}: {e}"));
            assert_eq!(kind, back, "{token}");
        }
        assert!("torus3".parse::<TopologyKind>().is_err());
        assert!("fattree".parse::<TopologyKind>().is_err());
        assert!(
            "fattree3".parse::<TopologyKind>().is_err(),
            "odd leaf count"
        );
        assert!("ring1".parse::<TopologyKind>().is_err());
        assert!("dragonfly1".parse::<TopologyKind>().is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(TopologyKind::FatTree { k: 3 }.validate().is_err());
        assert!(TopologyKind::FatTree { k: 0 }.validate().is_err());
        assert!(TopologyKind::Ring { switches: 1 }.validate().is_err());
        assert!(TopologyKind::Dragonfly { groups: 1 }.validate().is_err());
        assert!(TopologyKind::Crossbar.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid topology")]
    fn building_an_invalid_topology_panics() {
        let _ = TopologyKind::Ring { switches: 0 }.build();
    }

    #[test]
    fn routes_are_identical_across_repeated_builds() {
        for kind in TopologyKind::ALL_SAMPLES {
            let a = kind.build();
            let b = kind.build();
            let n = a.switch_count();
            for x in 0..n {
                for y in 0..n {
                    assert_eq!(
                        a.route_switches(SwitchId(x), SwitchId(y)),
                        b.route_switches(SwitchId(x), SwitchId(y)),
                        "{kind} {x}->{y}"
                    );
                }
            }
        }
    }
}
