//! `ibdump`-style packet capture.
//!
//! The paper's methodology hinges on capturing InfiniBand traffic with
//! `ibdump` and reading the packet timeline (Figures 1, 5 and 8). In the
//! simulator every frame can be recorded here, together with whether the
//! fabric delivered or dropped it — strictly more visibility than real
//! `ibdump`, which the paper could only run on hosts with `sudo`.
//!
//! The capture is generic over the payload type `P`; the verbs layer
//! instantiates it with its transport packet so analyses can look at
//! opcodes and PSNs.

use std::fmt;

use ibsim_event::SimTime;

use crate::topology::Lid;

/// Which way a captured frame was travelling relative to the capture point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Transmitted by the captured host.
    Tx,
    /// Received by the captured host.
    Rx,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Tx => write!(f, "TX"),
            Direction::Rx => write!(f, "RX"),
        }
    }
}

/// One captured frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Captured<P> {
    /// Capture timestamp (transmit time for [`Direction::Tx`], arrival
    /// time for [`Direction::Rx`]).
    pub time: SimTime,
    /// Direction at the capture point.
    pub direction: Direction,
    /// Source port LID.
    pub src: Lid,
    /// Destination port LID.
    pub dst: Lid,
    /// Frame size in bytes.
    pub bytes: u32,
    /// True if the fabric dropped the frame (visible only on the TX side,
    /// like a capture running at the sending HCA).
    pub dropped: bool,
    /// The transport-layer payload (headers + semantics).
    pub payload: P,
}

/// An append-only capture buffer, one per observation point.
///
/// # Examples
///
/// ```
/// use ibsim_event::SimTime;
/// use ibsim_fabric::{Capture, Direction, Lid};
///
/// let mut cap: Capture<&'static str> = Capture::new();
/// cap.enable();
/// cap.record(SimTime::ZERO, Direction::Tx, Lid(1), Lid(2), 64, false, "READ req");
/// assert_eq!(cap.len(), 1);
/// assert_eq!(cap.records()[0].payload, "READ req");
/// ```
#[derive(Debug, Clone)]
pub struct Capture<P> {
    records: Vec<Captured<P>>,
    enabled: bool,
}

impl<P> Default for Capture<P> {
    fn default() -> Self {
        Capture {
            records: Vec::new(),
            enabled: false,
        }
    }
}

impl<P> Capture<P> {
    /// Creates a disabled capture (recording costs nothing until enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording (existing records are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// True if currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a frame if enabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        time: SimTime,
        direction: Direction,
        src: Lid,
        dst: Lid,
        bytes: u32,
        dropped: bool,
        payload: P,
    ) {
        if self.enabled {
            self.records.push(Captured {
                time,
                direction,
                src,
                dst,
                bytes,
                dropped,
                payload,
            });
        }
    }

    /// All records in capture order.
    pub fn records(&self) -> &[Captured<P>] {
        &self.records
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Discards all records (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Iterates over captured frames.
    pub fn iter(&self) -> std::slice::Iter<'_, Captured<P>> {
        self.records.iter()
    }
}

impl<P> IntoIterator for Capture<P> {
    type Item = Captured<P>;
    type IntoIter = std::vec::IntoIter<Captured<P>>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a, P> IntoIterator for &'a Capture<P> {
    type Item = &'a Captured<P>;
    type IntoIter = std::slice::Iter<'a, Captured<P>>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl<P: fmt::Display> Capture<P> {
    /// Renders the capture as an `ibdump`-like text timeline.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let drop_mark = if r.dropped { "  [LOST IN FABRIC]" } else { "" };
            out.push_str(&format!(
                "{:>12}  {}  {} -> {}  {:>5}B  {}{}\n",
                r.time.to_string(),
                r.direction,
                r.src,
                r.dst,
                r.bytes,
                r.payload,
                drop_mark
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cap: &mut Capture<u32>, t: u64, payload: u32) {
        cap.record(
            SimTime::from_ns(t),
            Direction::Tx,
            Lid(1),
            Lid(2),
            64,
            false,
            payload,
        );
    }

    #[test]
    fn disabled_capture_records_nothing() {
        let mut cap: Capture<u32> = Capture::new();
        rec(&mut cap, 1, 7);
        assert!(cap.is_empty());
        assert!(!cap.is_enabled());
    }

    #[test]
    fn enabled_capture_records_in_order() {
        let mut cap: Capture<u32> = Capture::new();
        cap.enable();
        rec(&mut cap, 1, 7);
        rec(&mut cap, 2, 8);
        assert_eq!(cap.len(), 2);
        let payloads: Vec<u32> = cap.iter().map(|r| r.payload).collect();
        assert_eq!(payloads, vec![7, 8]);
    }

    #[test]
    fn disable_keeps_existing_records() {
        let mut cap: Capture<u32> = Capture::new();
        cap.enable();
        rec(&mut cap, 1, 7);
        cap.disable();
        rec(&mut cap, 2, 8);
        assert_eq!(cap.len(), 1);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut cap: Capture<u32> = Capture::new();
        cap.enable();
        rec(&mut cap, 1, 7);
        cap.clear();
        assert!(cap.is_empty());
        assert!(cap.is_enabled());
    }

    #[test]
    fn timeline_marks_drops() {
        let mut cap: Capture<&str> = Capture::new();
        cap.enable();
        cap.record(
            SimTime::from_us(1),
            Direction::Tx,
            Lid(1),
            Lid(2),
            64,
            true,
            "READ req psn=0",
        );
        let text = cap.timeline();
        assert!(text.contains("LOST IN FABRIC"));
        assert!(text.contains("READ req psn=0"));
        assert!(text.contains("lid1 -> lid2"));
    }

    #[test]
    fn into_iterator_consumes() {
        let mut cap: Capture<u32> = Capture::new();
        cap.enable();
        rec(&mut cap, 1, 7);
        let v: Vec<Captured<u32>> = cap.into_iter().collect();
        assert_eq!(v.len(), 1);
    }
}
