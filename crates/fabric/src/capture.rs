//! `ibdump`-style packet capture.
//!
//! The paper's methodology hinges on capturing InfiniBand traffic with
//! `ibdump` and reading the packet timeline (Figures 1, 5 and 8). In the
//! simulator every frame can be recorded here, together with whether the
//! fabric delivered or dropped it — strictly more visibility than real
//! `ibdump`, which the paper could only run on hosts with `sudo`.
//!
//! The capture is generic over the payload type `P`; the verbs layer
//! instantiates it with its transport packet so analyses can look at
//! opcodes and PSNs.

use std::fmt;

use ibsim_event::SimTime;

use crate::topology::Lid;

/// Which way a captured frame was travelling relative to the capture point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Transmitted by the captured host.
    Tx,
    /// Received by the captured host.
    Rx,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Tx => write!(f, "TX"),
            Direction::Rx => write!(f, "RX"),
        }
    }
}

/// One captured frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Captured<P> {
    /// Capture timestamp (transmit time for [`Direction::Tx`], arrival
    /// time for [`Direction::Rx`]).
    pub time: SimTime,
    /// Direction at the capture point.
    pub direction: Direction,
    /// Source port LID.
    pub src: Lid,
    /// Destination port LID.
    pub dst: Lid,
    /// Frame size in bytes.
    pub bytes: u32,
    /// True if the fabric dropped the frame (visible only on the TX side,
    /// like a capture running at the sending HCA).
    pub dropped: bool,
    /// The transport-layer payload (headers + semantics).
    pub payload: P,
}

/// An append-only capture buffer, one per observation point.
///
/// # Examples
///
/// ```
/// use ibsim_event::SimTime;
/// use ibsim_fabric::{Capture, Direction, Lid};
///
/// let mut cap: Capture<&'static str> = Capture::new();
/// cap.enable();
/// cap.record(SimTime::ZERO, Direction::Tx, Lid(1), Lid(2), 64, false, "READ req");
/// assert_eq!(cap.len(), 1);
/// assert_eq!(cap.records()[0].payload, "READ req");
/// ```
#[derive(Debug, Clone)]
pub struct Capture<P> {
    records: Vec<Captured<P>>,
    enabled: bool,
}

impl<P> Default for Capture<P> {
    fn default() -> Self {
        Capture {
            records: Vec::new(),
            enabled: false,
        }
    }
}

impl<P> Capture<P> {
    /// Creates a disabled capture.
    ///
    /// Recording costs nothing until enabled *provided the caller uses
    /// [`Capture::record_with`]*, which builds the payload lazily. The
    /// eager [`Capture::record`] takes the payload by value, so any
    /// clone made to produce that value is paid even while disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording (existing records are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// True if currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a frame if enabled, taking the payload by value.
    ///
    /// Prefer [`Capture::record_with`] on hot paths where producing the
    /// payload costs something (e.g. cloning a packet with a data
    /// buffer): this eager form forces the caller to materialize the
    /// payload even when the capture is disabled and the value is
    /// immediately thrown away.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        time: SimTime,
        direction: Direction,
        src: Lid,
        dst: Lid,
        bytes: u32,
        dropped: bool,
        payload: P,
    ) {
        self.record_with(time, direction, src, dst, bytes, dropped, || payload);
    }

    /// Records a frame if enabled, building the payload lazily.
    ///
    /// The closure runs only when the capture is enabled, so a disabled
    /// capture never materializes (or clones) the payload — this is what
    /// makes disabled captures genuinely free on the fabric hot path.
    ///
    /// ```
    /// use std::cell::Cell;
    /// use ibsim_event::SimTime;
    /// use ibsim_fabric::{Capture, Direction, Lid};
    ///
    /// let built = Cell::new(0u32);
    /// let payload = || {
    ///     built.set(built.get() + 1);
    ///     String::from("READ req psn=0")
    /// };
    /// let mut cap: Capture<String> = Capture::new();
    ///
    /// // Disabled: the payload closure never runs.
    /// cap.record_with(SimTime::ZERO, Direction::Tx, Lid(1), Lid(2), 64, false, payload);
    /// assert_eq!((built.get(), cap.len()), (0, 0));
    ///
    /// // Enabled: the closure runs exactly once per recorded frame.
    /// cap.enable();
    /// cap.record_with(SimTime::ZERO, Direction::Tx, Lid(1), Lid(2), 64, false, payload);
    /// assert_eq!((built.get(), cap.len()), (1, 1));
    /// ```
    #[allow(clippy::too_many_arguments)]
    pub fn record_with(
        &mut self,
        time: SimTime,
        direction: Direction,
        src: Lid,
        dst: Lid,
        bytes: u32,
        dropped: bool,
        payload: impl FnOnce() -> P,
    ) {
        if self.enabled {
            self.records.push(Captured {
                time,
                direction,
                src,
                dst,
                bytes,
                dropped,
                payload: payload(),
            });
        }
    }

    /// All records in capture order.
    pub fn records(&self) -> &[Captured<P>] {
        &self.records
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Discards all records (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Iterates over captured frames.
    pub fn iter(&self) -> std::slice::Iter<'_, Captured<P>> {
        self.records.iter()
    }
}

impl<P> IntoIterator for Capture<P> {
    type Item = Captured<P>;
    type IntoIter = std::vec::IntoIter<Captured<P>>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a, P> IntoIterator for &'a Capture<P> {
    type Item = &'a Captured<P>;
    type IntoIter = std::slice::Iter<'a, Captured<P>>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl<P: fmt::Display> Capture<P> {
    /// Renders the capture as an `ibdump`-like text timeline.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let drop_mark = if r.dropped { "  [LOST IN FABRIC]" } else { "" };
            out.push_str(&format!(
                "{:>12}  {}  {} -> {}  {:>5}B  {}{}\n",
                r.time.to_string(),
                r.direction,
                r.src,
                r.dst,
                r.bytes,
                r.payload,
                drop_mark
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cap: &mut Capture<u32>, t: u64, payload: u32) {
        cap.record(
            SimTime::from_ns(t),
            Direction::Tx,
            Lid(1),
            Lid(2),
            64,
            false,
            payload,
        );
    }

    #[test]
    fn disabled_capture_records_nothing() {
        let mut cap: Capture<u32> = Capture::new();
        rec(&mut cap, 1, 7);
        assert!(cap.is_empty());
        assert!(!cap.is_enabled());
    }

    #[test]
    fn enabled_capture_records_in_order() {
        let mut cap: Capture<u32> = Capture::new();
        cap.enable();
        rec(&mut cap, 1, 7);
        rec(&mut cap, 2, 8);
        assert_eq!(cap.len(), 2);
        let payloads: Vec<u32> = cap.iter().map(|r| r.payload).collect();
        assert_eq!(payloads, vec![7, 8]);
    }

    #[test]
    fn disable_keeps_existing_records() {
        let mut cap: Capture<u32> = Capture::new();
        cap.enable();
        rec(&mut cap, 1, 7);
        cap.disable();
        rec(&mut cap, 2, 8);
        assert_eq!(cap.len(), 1);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut cap: Capture<u32> = Capture::new();
        cap.enable();
        rec(&mut cap, 1, 7);
        cap.clear();
        assert!(cap.is_empty());
        assert!(cap.is_enabled());
    }

    #[test]
    fn timeline_marks_drops() {
        let mut cap: Capture<&str> = Capture::new();
        cap.enable();
        cap.record(
            SimTime::from_us(1),
            Direction::Tx,
            Lid(1),
            Lid(2),
            64,
            true,
            "READ req psn=0",
        );
        let text = cap.timeline();
        assert!(text.contains("LOST IN FABRIC"));
        assert!(text.contains("READ req psn=0"));
        assert!(text.contains("lid1 -> lid2"));
    }

    /// A payload whose clones are counted, so tests can prove the
    /// disabled path never touches it.
    #[derive(Debug)]
    struct CloneCounter(std::rc::Rc<Cell<u32>>);

    use std::cell::Cell;

    impl Clone for CloneCounter {
        fn clone(&self) -> Self {
            self.0.set(self.0.get() + 1);
            CloneCounter(std::rc::Rc::clone(&self.0))
        }
    }

    #[test]
    fn disabled_record_with_performs_zero_clones() {
        let clones = std::rc::Rc::new(Cell::new(0u32));
        let payload = CloneCounter(std::rc::Rc::clone(&clones));
        let mut cap: Capture<CloneCounter> = Capture::new();
        for t in 0..16 {
            cap.record_with(
                SimTime::from_ns(t),
                Direction::Tx,
                Lid(1),
                Lid(2),
                64,
                false,
                || payload.clone(),
            );
        }
        // Disabled capture: the closure never ran, so zero clones.
        assert_eq!(clones.get(), 0);
        assert!(cap.is_empty());

        cap.enable();
        cap.record_with(
            SimTime::from_ns(99),
            Direction::Rx,
            Lid(2),
            Lid(1),
            64,
            false,
            || payload.clone(),
        );
        // Enabled capture: exactly one clone per recorded frame.
        assert_eq!(clones.get(), 1);
        assert_eq!(cap.len(), 1);
    }

    #[test]
    fn eager_record_still_respects_enable_flag() {
        let clones = std::rc::Rc::new(Cell::new(0u32));
        let payload = CloneCounter(std::rc::Rc::clone(&clones));
        let mut cap: Capture<CloneCounter> = Capture::new();
        // The eager form clones at the call site by construction; the
        // record itself must still be suppressed while disabled.
        cap.record(
            SimTime::ZERO,
            Direction::Tx,
            Lid(1),
            Lid(2),
            64,
            false,
            payload.clone(),
        );
        assert!(cap.is_empty());
        assert_eq!(clones.get(), 1);
    }

    #[test]
    fn into_iterator_consumes() {
        let mut cap: Capture<u32> = Capture::new();
        cap.enable();
        rec(&mut cap, 1, 7);
        let v: Vec<Captured<u32>> = cap.into_iter().collect();
        assert_eq!(v.len(), 1);
    }
}
