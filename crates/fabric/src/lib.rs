//! # ibsim-fabric
//!
//! The physical-network substrate of the `ibsim` InfiniBand simulator:
//! hosts, routed switch topologies (crossbar, fat-tree, ring, dragonfly)
//! behind the [`Topology`] trait, LID-based routing, link
//! latency/bandwidth with per-port and per-hop FIFO serialization,
//! optional ECN/PFC congestion signals, deterministic loss injection,
//! and an `ibdump`-style packet capture facility.
//!
//! The fabric is a *pure timing model*: callers (the verbs layer) ask it
//! when a frame of a given size sent now from one LID to another would be
//! delivered, and schedule the delivery event themselves. This keeps the
//! crate independent of both the event engine's world type and the
//! transport packet format.
//!
//! # Examples
//!
//! ```
//! use ibsim_event::SimTime;
//! use ibsim_fabric::{Delivery, Fabric, LinkSpec};
//!
//! let mut fabric = Fabric::new(LinkSpec::fdr());
//! let a = fabric.add_host("client");
//! let b = fabric.add_host("server");
//! match fabric.transit(SimTime::ZERO, a, b, 256) {
//!     Delivery::Deliver { at, .. } => assert!(at > SimTime::ZERO),
//!     Delivery::Dropped(reason) => panic!("unexpected drop: {reason}"),
//! }
//! ```

#![warn(missing_docs)]

mod capture;
mod loss;
mod routing;
mod topology;

pub use capture::{Capture, Captured, Direction};
pub use loss::{LossModel, Xorshift64Star};
pub use routing::{DirectedLink, RouteNode, SwitchId, Topology, TopologyKind};
pub use topology::{
    Delivery, DropReason, Fabric, InterLinkStats, Lid, LinkSpec, LinkSpecError, LinkStats,
};
