//! Hosts, links, and the routed switch fabric.

use std::collections::BTreeMap;
use std::fmt;

use ibsim_event::SimTime;

use crate::loss::LossModel;
use crate::routing::{DirectedLink, RouteNode, SwitchId, Topology, TopologyKind};

/// A Local IDentifier: the layer-2 address of a port on an InfiniBand
/// subnet. The subnet manager (implicit here) assigns them densely from 1.
///
/// LID 0 is reserved (it is the "permissive" LID in real InfiniBand), so
/// [`Lid::is_valid`] is false for it; sending to an unassigned LID models
/// the paper's Fig. 2 experiment of deliberately mis-addressing a QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lid(pub u16);

impl Lid {
    /// True unless this is the reserved LID 0.
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lid{}", self.0)
    }
}

/// Physical characteristics of one host↔switch link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// One-way propagation + PHY latency of the cable.
    pub latency: SimTime,
    /// Signalling rate in whole gigabits per second. Integral so that
    /// serialization times are exact integer arithmetic (the
    /// no-float-in-sim-path rule); every IB speed grade is a whole
    /// number of Gb/s.
    pub bandwidth_gbps: u64,
}

/// Error returned by [`LinkSpec::new`] / [`LinkSpec::validate`] for a
/// physically meaningless link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSpecError {
    /// `bandwidth_gbps` was zero: a link that can never serialize a
    /// frame has no defined serialization time.
    ZeroBandwidth,
}

impl fmt::Display for LinkSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkSpecError::ZeroBandwidth => {
                write!(f, "link bandwidth must be a nonzero number of Gb/s")
            }
        }
    }
}

impl std::error::Error for LinkSpecError {}

impl LinkSpec {
    /// Checked constructor: rejects a zero signalling rate instead of
    /// silently clamping it later (a zero-bandwidth link is a config
    /// bug, not a 1 Gb/s link).
    pub fn new(latency: SimTime, bandwidth_gbps: u64) -> Result<Self, LinkSpecError> {
        let spec = LinkSpec {
            latency,
            bandwidth_gbps,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates a spec built via struct literal (the fields are public
    /// so the speed-grade constants stay ergonomic).
    pub fn validate(&self) -> Result<(), LinkSpecError> {
        if self.bandwidth_gbps == 0 {
            return Err(LinkSpecError::ZeroBandwidth);
        }
        Ok(())
    }

    /// 56 Gb/s FDR (ConnectX-3/4 FDR systems in Table I).
    pub fn fdr() -> Self {
        LinkSpec {
            latency: SimTime::from_ns(300),
            bandwidth_gbps: 56,
        }
    }

    /// 100 Gb/s EDR (ConnectX-4/5 EDR systems in Table I).
    pub fn edr() -> Self {
        LinkSpec {
            latency: SimTime::from_ns(300),
            bandwidth_gbps: 100,
        }
    }

    /// 200 Gb/s HDR (ConnectX-6 systems in Table I).
    pub fn hdr() -> Self {
        LinkSpec {
            latency: SimTime::from_ns(300),
            bandwidth_gbps: 200,
        }
    }

    /// Time to serialize `bytes` onto the wire: `⌈8·bytes / gbps⌉` ns,
    /// in pure integer arithmetic (Gb/s over nanoseconds is bits per
    /// nanosecond, so no unit conversion factor survives).
    ///
    /// # Panics
    ///
    /// Panics on a zero-bandwidth spec, which [`LinkSpec::new`] and
    /// [`Fabric::add_host_with`] reject up front — an invalid link must
    /// fail loudly, not masquerade as a 1 Gb/s one.
    pub fn serialization(&self, bytes: u32) -> SimTime {
        assert!(
            self.bandwidth_gbps != 0,
            "invalid LinkSpec: {}",
            LinkSpecError::ZeroBandwidth
        );
        let bits = bytes as u64 * 8;
        SimTime::from_ns(bits.div_ceil(self.bandwidth_gbps))
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::edr()
    }
}

/// Why a frame did not reach its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No port with that LID exists on the subnet (mis-addressed QP).
    UnknownDestination,
    /// The configured [`LossModel`] discarded the frame.
    Injected,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropReason::UnknownDestination => write!(f, "unknown destination LID"),
            DropReason::Injected => write!(f, "injected loss"),
        }
    }
}

/// The outcome of submitting a frame to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The frame arrives at the destination port at `at`.
    Deliver {
        /// Absolute arrival time at the destination port.
        at: SimTime,
        /// True when a congested inter-switch hop marked the frame
        /// (ECN-style). Always false on the crossbar (no inter-switch
        /// hops) and whenever no marking threshold is configured.
        ecn: bool,
    },
    /// The frame was lost in the fabric.
    Dropped(DropReason),
}

impl Delivery {
    /// Arrival time if delivered.
    pub fn arrival(self) -> Option<SimTime> {
        match self {
            Delivery::Deliver { at, .. } => Some(at),
            Delivery::Dropped(_) => None,
        }
    }
}

/// Per-link traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames sent from the host into the fabric.
    pub tx_frames: u64,
    /// Bytes sent from the host into the fabric.
    pub tx_bytes: u64,
    /// Frames delivered to the host.
    pub rx_frames: u64,
    /// Bytes delivered to the host.
    pub rx_bytes: u64,
    /// Frames from this host that were dropped in the fabric.
    pub dropped: u64,
}

/// Traffic and congestion counters for one *directed* inter-switch link.
///
/// Utilization is `busy_ns` over the observation window; `peak_backlog_ns`
/// is the worst store-and-forward queueing delay any single frame saw at
/// this hop — the per-link peak-demand signal the congestion studies plot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterLinkStats {
    /// Frames forwarded over this directed link.
    pub frames: u64,
    /// Bytes forwarded over this directed link.
    pub bytes: u64,
    /// Total nanoseconds this link spent serializing frames.
    pub busy_ns: u64,
    /// Worst queueing delay (ns) a frame waited for this link.
    pub peak_backlog_ns: u64,
    /// Frames that left this hop carrying an ECN mark.
    pub ecn_marks: u64,
    /// PFC-style pauses this hop asserted against its upstream feeder.
    pub pauses: u64,
}

#[derive(Debug, Clone)]
struct Port {
    name: String,
    spec: LinkSpec,
    /// Egress (host → switch) serialization horizon.
    egress_busy_until: SimTime,
    /// Switch-egress (switch → host) serialization horizon.
    ingress_busy_until: SimTime,
    stats: LinkStats,
}

/// One directed inter-switch link's FIFO state. Created lazily on first
/// traffic so a crossbar fabric (no inter-switch hops) allocates nothing.
#[derive(Debug, Clone, Copy, Default)]
struct InterLink {
    busy_until: SimTime,
    stats: InterLinkStats,
}

/// A single-subnet InfiniBand fabric: hosts attach to the switches of a
/// pluggable [`Topology`] (default: the historical one-switch
/// [`TopologyKind::Crossbar`], which keeps every pinned trace
/// byte-identical). Frames are store-and-forward FIFO-serialized at every
/// hop.
///
/// The model accounts for:
///
/// * serialization at the sending port (frames queue behind each other),
/// * link propagation latency plus per-switch forwarding delay,
/// * FIFO serialization on each directed inter-switch link of the route,
/// * serialization at the last switch's egress toward the destination,
/// * loss: unknown destination LIDs and an optional injected [`LossModel`],
/// * optional congestion signals: ECN marking and PFC-style pauses when a
///   hop's queueing delay exceeds a configured threshold (both off by
///   default, so plain runs are congestion-oblivious exactly like the
///   original crossbar).
#[derive(Debug)]
pub struct Fabric {
    default_spec: LinkSpec,
    switch_latency: SimTime,
    ports: BTreeMap<Lid, Port>,
    next_lid: u16,
    loss: LossModel,
    topology: Box<dyn Topology>,
    /// Directed inter-switch links, keyed `(from, to)`, created lazily.
    links: BTreeMap<(u16, u16), InterLink>,
    /// Queueing delay beyond which a hop ECN-marks the frame.
    ecn_threshold: Option<SimTime>,
    /// Queueing delay beyond which a hop pauses its upstream feeder.
    pfc_threshold: Option<SimTime>,
    total_frames: u64,
    total_drops: u64,
    total_ecn_marks: u64,
    total_pfc_pauses: u64,
}

impl Fabric {
    /// Creates an empty fabric whose future hosts use `default_spec` links.
    pub fn new(default_spec: LinkSpec) -> Self {
        Fabric {
            default_spec,
            switch_latency: SimTime::from_ns(200),
            ports: BTreeMap::new(),
            next_lid: 1,
            loss: LossModel::None,
            topology: TopologyKind::Crossbar.build(),
            links: BTreeMap::new(),
            ecn_threshold: None,
            pfc_threshold: None,
            total_frames: 0,
            total_drops: 0,
            total_ecn_marks: 0,
            total_pfc_pauses: 0,
        }
    }

    /// Adds a host with the default link spec; returns its assigned LID.
    pub fn add_host(&mut self, name: &str) -> Lid {
        self.add_host_with(name, self.default_spec)
    }

    /// Adds a host with an explicit link spec; returns its assigned LID.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`LinkSpec::validate`] (e.g. zero
    /// bandwidth): an invalid link is a configuration bug and must not
    /// enter the fabric.
    pub fn add_host_with(&mut self, name: &str, spec: LinkSpec) -> Lid {
        if let Err(e) = spec.validate() {
            panic!("fabric: cannot attach host {name:?}: {e}");
        }
        let lid = Lid(self.next_lid);
        self.next_lid += 1;
        self.ports.insert(
            lid,
            Port {
                name: name.to_owned(),
                spec,
                egress_busy_until: SimTime::ZERO,
                ingress_busy_until: SimTime::ZERO,
                stats: LinkStats::default(),
            },
        );
        lid
    }

    /// Installs a loss model applied to every frame after routing.
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = loss;
    }

    /// Whether the installed loss model consumes per-frame global state
    /// (see [`LossModel::is_order_dependent`]); sharded execution must
    /// refuse to route cross-shard traffic through such a model.
    pub fn loss_is_order_dependent(&self) -> bool {
        self.loss.is_order_dependent()
    }

    /// Sets the switch forwarding delay (default 200 ns).
    pub fn set_switch_latency(&mut self, latency: SimTime) {
        self.switch_latency = latency;
    }

    /// Replaces the switch topology, resetting all inter-link FIFO state.
    /// Intended for construction time, before any traffic flows.
    ///
    /// # Panics
    ///
    /// Panics if `kind` fails [`TopologyKind::validate`].
    pub fn set_topology(&mut self, kind: TopologyKind) {
        self.topology = kind.build();
        self.links.clear();
    }

    /// The serializable parameters of the installed topology.
    pub fn topology_kind(&self) -> TopologyKind {
        self.topology.kind()
    }

    /// Configures congestion signalling: a hop whose queueing delay
    /// exceeds `ecn` marks the frame; one whose delay exceeds `pfc`
    /// pauses its upstream feeder. `None` disables the mechanism (the
    /// default — plain runs never mark or pause).
    pub fn set_congestion(&mut self, ecn: Option<SimTime>, pfc: Option<SimTime>) {
        self.ecn_threshold = ecn;
        self.pfc_threshold = pfc;
    }

    /// Host name registered for `lid`, if any.
    pub fn host_name(&self, lid: Lid) -> Option<&str> {
        self.ports.get(&lid).map(|p| p.name.as_str())
    }

    /// Traffic counters for `lid`'s link.
    pub fn link_stats(&self, lid: Lid) -> Option<LinkStats> {
        self.ports.get(&lid).map(|p| p.stats)
    }

    /// Traffic/congestion counters for every directed inter-switch link
    /// that has carried traffic, in deterministic `(from, to)` order.
    pub fn inter_links(&self) -> impl Iterator<Item = (SwitchId, SwitchId, InterLinkStats)> + '_ {
        self.links
            .iter()
            .map(|(&(a, b), l)| (SwitchId(a), SwitchId(b), l.stats))
    }

    /// Total frames submitted to the fabric.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Total frames lost (both unknown-LID and injected).
    pub fn total_drops(&self) -> u64 {
        self.total_drops
    }

    /// Total ECN marks applied across all hops.
    pub fn total_ecn_marks(&self) -> u64 {
        self.total_ecn_marks
    }

    /// Total PFC-style pauses asserted across all hops.
    pub fn total_pfc_pauses(&self) -> u64 {
        self.total_pfc_pauses
    }

    /// The switch `lid` attaches to. Attachment is a pure function of
    /// the LID (hosts are indexed densely from LID 1), so it is stable
    /// across replicas of a sharded run.
    fn attachment(&self, lid: Lid) -> SwitchId {
        self.topology.attach(lid.0 - 1)
    }

    /// The full directed route `src → dst` as host/switch nodes, or
    /// `None` if either endpoint is unregistered. Deterministic: depends
    /// only on the topology and the two LIDs.
    pub fn route(&self, src: Lid, dst: Lid) -> Option<Vec<DirectedLink>> {
        if !self.ports.contains_key(&src) || !self.ports.contains_key(&dst) {
            return None;
        }
        let switches = self
            .topology
            .route_switches(self.attachment(src), self.attachment(dst));
        let mut hops = Vec::with_capacity(switches.len() + 1);
        let mut prev = RouteNode::Host(src);
        for sw in switches {
            hops.push(DirectedLink {
                from: prev,
                to: RouteNode::Switch(sw),
            });
            prev = RouteNode::Switch(sw);
        }
        hops.push(DirectedLink {
            from: prev,
            to: RouteNode::Host(dst),
        });
        Some(hops)
    }

    /// Minimum one-way latency between two hosts for a frame of `bytes`,
    /// assuming idle links: the exact sum [`Fabric::transit`] produces on
    /// an idle fabric, including every inter-switch store-and-forward
    /// stage of the route. This is what the sharded executor's
    /// cross-shard lookahead is derived from, so it must stay a true
    /// lower bound on any contended transit.
    pub fn idle_transit(&self, src: Lid, dst: Lid, bytes: u32) -> Option<SimTime> {
        let s = self.ports.get(&src)?;
        let d = self.ports.get(&dst)?;
        let hops = self
            .topology
            .route_switches(self.attachment(src), self.attachment(dst))
            .len() as u64
            - 1;
        let inter = self.default_spec.serialization(bytes) + self.default_spec.latency;
        let mut t = s.spec.serialization(bytes) + s.spec.latency + self.switch_latency;
        for _ in 0..hops {
            t = t + inter + self.switch_latency;
        }
        Some(t + d.spec.serialization(bytes) + d.spec.latency)
    }

    /// Submits a frame of `bytes` from `src` to `dst` at time `now`.
    ///
    /// Returns the delivery time at the destination port, or the drop
    /// reason. Port serialization state advances even for frames that are
    /// dropped past the sending port (they consumed wire time). Injected
    /// loss is evaluated once, at the first switch, with the submit-time
    /// clock — identical to the historical crossbar behavior regardless
    /// of route length.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a registered host: a NIC cannot transmit from
    /// a port that does not exist.
    pub fn transit(&mut self, now: SimTime, src: Lid, dst: Lid, bytes: u32) -> Delivery {
        self.total_frames += 1;
        let switch_latency = self.switch_latency;

        // Egress serialization at the source port.
        let (depart, src_latency) = {
            let sport = self
                .ports
                .get_mut(&src)
                .unwrap_or_else(|| panic!("transmit from unregistered port {src}"));
            let start = now.max(sport.egress_busy_until);
            let ser = sport.spec.serialization(bytes);
            sport.egress_busy_until = start + ser;
            sport.stats.tx_frames += 1;
            sport.stats.tx_bytes += bytes as u64;
            (start + ser, sport.spec.latency)
        };
        let at_switch = depart + src_latency + switch_latency;

        // Routing: unknown LIDs die at the first switch.
        if !dst.is_valid() || !self.ports.contains_key(&dst) {
            return self.drop_frame(src, DropReason::UnknownDestination);
        }

        // Injected loss (applied post-routing, i.e. in the fabric).
        if self.loss.drop(now, src, dst) {
            return self.drop_frame(src, DropReason::Injected);
        }

        // Inter-switch hops. On the crossbar (and whenever src and dst
        // share a switch) the route is a single switch, this loop never
        // runs, and `t` is exactly the historical `at_switch` — no
        // allocation, no arithmetic drift.
        let mut t = at_switch;
        let mut ecn = false;
        let (src_sw, dst_sw) = (self.attachment(src), self.attachment(dst));
        if src_sw != dst_sw {
            let ser = self.default_spec.serialization(bytes);
            let inter_latency = self.default_spec.latency;
            // Key of the hop feeding the current one, for PFC backpressure.
            let mut prev_key: Option<(u16, u16)> = None;
            let path = self.topology.route_switches(src_sw, dst_sw);
            for w in path.windows(2) {
                let key = (w[0].0, w[1].0);
                let mut pause_until = None;
                {
                    let link = self.links.entry(key).or_default();
                    let start = t.max(link.busy_until);
                    let wait = start.saturating_sub(t);
                    if self.ecn_threshold.is_some_and(|thr| wait > thr) {
                        ecn = true;
                        link.stats.ecn_marks += 1;
                        self.total_ecn_marks += 1;
                    }
                    if let Some(thr) = self.pfc_threshold.filter(|&thr| wait > thr) {
                        // Pause the upstream feeder until this hop's
                        // backlog drains back under the threshold.
                        pause_until = Some(start.saturating_sub(thr));
                        link.stats.pauses += 1;
                        self.total_pfc_pauses += 1;
                    }
                    link.busy_until = start + ser;
                    link.stats.frames += 1;
                    link.stats.bytes += bytes as u64;
                    link.stats.busy_ns += ser.as_ns();
                    link.stats.peak_backlog_ns = link.stats.peak_backlog_ns.max(wait.as_ns());
                    t = start + ser + inter_latency + switch_latency;
                }
                if let Some(until) = pause_until {
                    match prev_key {
                        // First hop: backpressure lands on the source
                        // host's egress port.
                        None => {
                            if let Some(sport) = self.ports.get_mut(&src) {
                                sport.egress_busy_until = sport.egress_busy_until.max(until);
                            }
                        }
                        Some(pk) => {
                            if let Some(plink) = self.links.get_mut(&pk) {
                                plink.busy_until = plink.busy_until.max(until);
                            }
                        }
                    }
                }
                prev_key = Some(key);
            }
        }

        // Last-switch egress serialization toward the destination.
        // Routing above guarantees the port exists; if the map
        // nevertheless has no entry, fold it into the structured drop
        // path rather than panicking mid-simulation.
        let Some(dport) = self.ports.get_mut(&dst) else {
            return self.drop_frame(src, DropReason::UnknownDestination);
        };
        let start = t.max(dport.ingress_busy_until);
        let ser = dport.spec.serialization(bytes);
        dport.ingress_busy_until = start + ser;
        dport.stats.rx_frames += 1;
        dport.stats.rx_bytes += bytes as u64;
        Delivery::Deliver {
            at: start + ser + dport.spec.latency,
            ecn,
        }
    }

    /// Accounts one dropped frame against `src` and the fabric totals.
    ///
    /// `src` was validated at the top of [`Fabric::transit`]; an absent
    /// source port here simply loses its per-link attribution rather
    /// than aborting the run.
    fn drop_frame(&mut self, src: Lid, reason: DropReason) -> Delivery {
        self.total_drops += 1;
        if let Some(sport) = self.ports.get_mut(&src) {
            sport.stats.dropped += 1;
        }
        Delivery::Dropped(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hosts() -> (Fabric, Lid, Lid) {
        let mut f = Fabric::new(LinkSpec::fdr());
        let a = f.add_host("a");
        let b = f.add_host("b");
        (f, a, b)
    }

    /// Two hosts on opposite leaves of the smallest fat-tree: every
    /// a→b frame crosses leaf0 → spine → leaf1 (two inter-switch hops).
    fn fat_tree_pair() -> (Fabric, Lid, Lid) {
        let mut f = Fabric::new(LinkSpec::fdr());
        f.set_topology(TopologyKind::FatTree { k: 2 });
        let a = f.add_host("a");
        let b = f.add_host("b");
        (f, a, b)
    }

    #[test]
    fn lids_assigned_densely_from_one() {
        let (f, a, b) = two_hosts();
        assert_eq!(a, Lid(1));
        assert_eq!(b, Lid(2));
        assert_eq!(f.host_name(a), Some("a"));
        assert!(!Lid(0).is_valid());
    }

    #[test]
    fn serialization_matches_bandwidth() {
        // 56 Gb/s: 7 bytes per ns, so 56 bytes take 8 ns.
        assert_eq!(LinkSpec::fdr().serialization(56), SimTime::from_ns(8));
        // 100 Gb/s: 4096 bytes take ceil(4096*8/100) = 328 ns.
        assert_eq!(LinkSpec::edr().serialization(4096), SimTime::from_ns(328));
    }

    #[test]
    fn transit_accumulates_all_stages() {
        let (mut f, a, b) = two_hosts();
        let d = f.transit(SimTime::ZERO, a, b, 56);
        // ser(8) + latency(300) + switch(200) + ser(8) + latency(300)
        assert_eq!(
            d,
            Delivery::Deliver {
                at: SimTime::from_ns(816),
                ecn: false
            }
        );
        assert_eq!(f.idle_transit(a, b, 56), Some(SimTime::from_ns(816)));
    }

    #[test]
    fn explicit_crossbar_is_identical_to_the_default() {
        let (mut f, a, b) = two_hosts();
        f.set_topology(TopologyKind::Crossbar);
        assert_eq!(f.topology_kind(), TopologyKind::Crossbar);
        let d = f.transit(SimTime::ZERO, a, b, 56);
        assert_eq!(
            d,
            Delivery::Deliver {
                at: SimTime::from_ns(816),
                ecn: false
            }
        );
        // The crossbar has no inter-switch links, ever.
        assert_eq!(f.inter_links().count(), 0);
    }

    #[test]
    fn fat_tree_transit_adds_store_and_forward_hops() {
        let (mut f, a, b) = fat_tree_pair();
        // Route: host a → leaf0 → spine2 → leaf1 → host b. Per hop:
        // egress ser(8)+lat(300), switch(200) at each of 3 switches,
        // two inter-switch stages of ser(8)+lat(300), dst ser(8)+lat(300):
        // 308 + 3·200 + 2·308 + 308 = 1832 ns.
        let d = f.transit(SimTime::ZERO, a, b, 56);
        assert_eq!(
            d,
            Delivery::Deliver {
                at: SimTime::from_ns(1832),
                ecn: false
            }
        );
        assert_eq!(f.idle_transit(a, b, 56), Some(SimTime::from_ns(1832)));
        // Both directed hops saw exactly one frame.
        let links: Vec<_> = f.inter_links().collect();
        assert_eq!(links.len(), 2);
        for (_, _, stats) in links {
            assert_eq!(stats.frames, 1);
            assert_eq!(stats.bytes, 56);
            assert_eq!(stats.busy_ns, 8);
            assert_eq!(stats.peak_backlog_ns, 0);
        }
    }

    #[test]
    fn reverse_direction_uses_disjoint_links() {
        let (mut f, a, b) = fat_tree_pair();
        f.transit(SimTime::ZERO, a, b, 4096);
        f.transit(SimTime::ZERO, b, a, 4096);
        // Four directed links now exist (two per direction) and neither
        // direction queued behind the other.
        assert_eq!(f.inter_links().count(), 4);
        for (_, _, stats) in f.inter_links() {
            assert_eq!(stats.peak_backlog_ns, 0);
        }
    }

    #[test]
    fn shared_uplink_serializes_competing_frames() {
        // Hosts a (leaf0) and c (leaf0) both target b (leaf1): their
        // frames meet on the leaf0→spine uplink and FIFO-queue.
        let (mut f, _a, b) = fat_tree_pair();
        let c = f.add_host("c"); // host index 2 → leaf 0
        let first = f.transit(SimTime::ZERO, Lid(1), b, 4096).arrival().unwrap();
        let second = f.transit(SimTime::ZERO, c, b, 4096).arrival().unwrap();
        // Same submit time, distinct source ports: the second frame
        // waits one full uplink serialization (586 ns at 56 Gb/s), and
        // then again at the destination port.
        assert!(second > first);
        let backlog: u64 = f
            .inter_links()
            .map(|(_, _, s)| s.peak_backlog_ns)
            .max()
            .unwrap();
        assert_eq!(
            backlog,
            LinkSpec::fdr().serialization(4096).as_ns(),
            "loser of the uplink race waits exactly one serialization"
        );
    }

    #[test]
    fn ecn_marks_frames_past_the_threshold() {
        let (mut f, _a, b) = fat_tree_pair();
        let c = f.add_host("c");
        f.set_congestion(Some(SimTime::from_ns(100)), None);
        let d1 = f.transit(SimTime::ZERO, Lid(1), b, 4096);
        let d2 = f.transit(SimTime::ZERO, c, b, 4096);
        assert!(matches!(d1, Delivery::Deliver { ecn: false, .. }));
        assert!(
            matches!(d2, Delivery::Deliver { ecn: true, .. }),
            "586 ns uplink wait exceeds the 100 ns ECN threshold: {d2:?}"
        );
        assert_eq!(f.total_ecn_marks(), 1);
    }

    #[test]
    fn pfc_pause_backpressures_the_source_port() {
        // Same traffic on two fabrics; only one has PFC enabled. PFC
        // does not change who wins the bottleneck — it moves the
        // queueing out of the switch and back to the source port, so
        // the congested hop's peak backlog shrinks while arrival times
        // never improve (lossless pushback, not a fast path).
        let run = |pfc: Option<SimTime>| {
            let (mut f, _a, b) = fat_tree_pair();
            let c = f.add_host("c");
            f.set_congestion(None, pfc);
            f.transit(SimTime::ZERO, Lid(1), b, 4096);
            f.transit(SimTime::ZERO, c, b, 4096);
            let next = f.transit(SimTime::ZERO, c, b, 56).arrival().unwrap();
            let backlog = f
                .inter_links()
                .map(|(_, _, s)| s.peak_backlog_ns)
                .max()
                .unwrap();
            (next, backlog, f.total_pfc_pauses())
        };
        let (free_next, free_backlog, free_pauses) = run(None);
        let (paused_next, paused_backlog, pauses) = run(Some(SimTime::from_ns(100)));
        assert_eq!(free_pauses, 0);
        // At least the 586 ns uplink wait asserts a pause; the slowed
        // egress can cascade further pauses downstream.
        assert!(pauses >= 1, "uplink wait must assert a pause, got {pauses}");
        assert!(
            paused_backlog < free_backlog,
            "pause must drain switch-side queueing: {paused_backlog} vs {free_backlog}"
        );
        assert!(paused_next >= free_next, "PFC must never beat the free run");
    }

    #[test]
    fn congestion_signals_default_off() {
        let (mut f, _a, b) = fat_tree_pair();
        let c = f.add_host("c");
        for _ in 0..8 {
            f.transit(SimTime::ZERO, Lid(1), b, 4096);
            f.transit(SimTime::ZERO, c, b, 4096);
        }
        assert_eq!(f.total_ecn_marks(), 0);
        assert_eq!(f.total_pfc_pauses(), 0);
    }

    #[test]
    fn route_composes_hosts_and_switches() {
        let (f, a, b) = fat_tree_pair();
        let route = f.route(a, b).unwrap();
        assert_eq!(route.len(), 4); // host→leaf, leaf→spine, spine→leaf, leaf→host
        assert_eq!(route[0].from, RouteNode::Host(a));
        assert_eq!(route[route.len() - 1].to, RouteNode::Host(b));
        for w in route.windows(2) {
            assert_eq!(w[0].to, w[1].from, "route must be contiguous");
        }
        assert!(f.route(a, Lid(99)).is_none());
        // Crossbar: host → switch → host only.
        let (g, x, y) = two_hosts();
        assert_eq!(g.route(x, y).unwrap().len(), 2);
    }

    #[test]
    fn div_ceil_boundary_holds_at_every_store_and_forward_joint() {
        // 100 Gb/s EDR: 12 bytes serialize in ceil(96/100) = 1 ns but
        // 13 bytes take ceil(104/100) = 2 ns. On a two-inter-hop route
        // there are four serialization points (src, two inter-switch,
        // dst), so the one-byte bump must cost exactly 4 ns end to end.
        let mut f = Fabric::new(LinkSpec::edr());
        f.set_topology(TopologyKind::FatTree { k: 2 });
        let a = f.add_host("a");
        let b = f.add_host("b");
        let t12 = f.idle_transit(a, b, 12).unwrap();
        let t13 = f.idle_transit(a, b, 13).unwrap();
        assert_eq!(t13 - t12, SimTime::from_ns(4));
        // And transit on an idle fabric agrees with the analytical sum.
        assert_eq!(f.transit(SimTime::ZERO, a, b, 13).arrival(), Some(t13));
    }

    #[test]
    fn back_to_back_frames_queue_at_source() {
        let (mut f, a, b) = two_hosts();
        let first = f.transit(SimTime::ZERO, a, b, 4096).arrival().unwrap();
        let second = f.transit(SimTime::ZERO, a, b, 4096).arrival().unwrap();
        // Second frame waits a full serialization (586 ns at 56 Gb/s).
        assert_eq!(second - first, LinkSpec::fdr().serialization(4096));
    }

    #[test]
    fn unknown_lid_drops() {
        let (mut f, a, _) = two_hosts();
        let d = f.transit(SimTime::ZERO, a, Lid(99), 100);
        assert_eq!(d, Delivery::Dropped(DropReason::UnknownDestination));
        assert_eq!(f.total_drops(), 1);
        assert_eq!(f.link_stats(a).unwrap().dropped, 1);
        assert_eq!(d.arrival(), None);
    }

    #[test]
    fn injected_loss_drops_matching_frames() {
        let (mut f, a, b) = two_hosts();
        f.set_loss(LossModel::DropAll);
        assert!(matches!(
            f.transit(SimTime::ZERO, a, b, 100),
            Delivery::Dropped(DropReason::Injected)
        ));
        f.set_loss(LossModel::None);
        assert!(matches!(
            f.transit(SimTime::ZERO, a, b, 100),
            Delivery::Deliver { .. }
        ));
    }

    #[test]
    fn injected_loss_still_fires_on_multi_hop_routes() {
        let (mut f, a, b) = fat_tree_pair();
        f.set_loss(LossModel::DropAll);
        assert!(matches!(
            f.transit(SimTime::ZERO, a, b, 100),
            Delivery::Dropped(DropReason::Injected)
        ));
        // Dropped at the first switch: no inter-link state was touched.
        assert_eq!(f.inter_links().count(), 0);
    }

    #[test]
    fn stats_track_tx_rx() {
        let (mut f, a, b) = two_hosts();
        f.transit(SimTime::ZERO, a, b, 100);
        f.transit(SimTime::ZERO, b, a, 50);
        let sa = f.link_stats(a).unwrap();
        let sb = f.link_stats(b).unwrap();
        assert_eq!(sa.tx_frames, 1);
        assert_eq!(sa.tx_bytes, 100);
        assert_eq!(sa.rx_frames, 1);
        assert_eq!(sa.rx_bytes, 50);
        assert_eq!(sb.tx_frames, 1);
        assert_eq!(sb.rx_bytes, 100);
        assert_eq!(f.total_frames(), 2);
    }

    #[test]
    #[should_panic(expected = "unregistered port")]
    fn transmit_from_unknown_port_panics() {
        let mut f = Fabric::new(LinkSpec::fdr());
        f.transit(SimTime::ZERO, Lid(7), Lid(1), 10);
    }

    #[test]
    fn zero_bandwidth_link_is_rejected() {
        assert_eq!(
            LinkSpec::new(SimTime::from_ns(300), 0),
            Err(LinkSpecError::ZeroBandwidth)
        );
        let bad = LinkSpec {
            latency: SimTime::from_ns(300),
            bandwidth_gbps: 0,
        };
        assert_eq!(bad.validate(), Err(LinkSpecError::ZeroBandwidth));
        // Valid specs round-trip through the checked constructor.
        assert_eq!(
            LinkSpec::new(SimTime::from_ns(300), 56),
            Ok(LinkSpec::fdr())
        );
        assert!(LinkSpec::hdr().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "nonzero number of Gb/s")]
    fn zero_bandwidth_host_cannot_join_fabric() {
        let mut f = Fabric::new(LinkSpec::fdr());
        f.add_host_with(
            "broken",
            LinkSpec {
                latency: SimTime::from_ns(300),
                bandwidth_gbps: 0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "nonzero number of Gb/s")]
    fn zero_bandwidth_serialization_panics_not_clamps() {
        // Before this was fixed, bandwidth 0 was silently treated as
        // 1 Gb/s; now it fails loudly.
        let bad = LinkSpec {
            latency: SimTime::ZERO,
            bandwidth_gbps: 0,
        };
        let _ = bad.serialization(4096);
    }

    #[test]
    fn loss_order_dependence_classification() {
        let (mut f, _, b) = two_hosts();
        assert!(!f.loss_is_order_dependent());
        f.set_loss(LossModel::DropAll);
        assert!(!f.loss_is_order_dependent());
        f.set_loss(LossModel::ToDestination(b));
        assert!(!f.loss_is_order_dependent());
        f.set_loss(LossModel::uniform(0.5, 7));
        assert!(f.loss_is_order_dependent());
        f.set_loss(LossModel::nth(vec![3]));
        assert!(f.loss_is_order_dependent());
        f.set_loss(LossModel::burst(0.1, 0.5, 7));
        assert!(f.loss_is_order_dependent());
    }

    #[test]
    fn heterogeneous_links() {
        let mut f = Fabric::new(LinkSpec::fdr());
        let a = f.add_host_with("fast", LinkSpec::hdr());
        let b = f.add_host_with("slow", LinkSpec::fdr());
        // Arrival dominated by the slower destination link serialization.
        let at = f.transit(SimTime::ZERO, a, b, 4096).arrival().unwrap();
        let expected = LinkSpec::hdr().serialization(4096)
            + SimTime::from_ns(300)
            + SimTime::from_ns(200)
            + LinkSpec::fdr().serialization(4096)
            + SimTime::from_ns(300);
        assert_eq!(at, expected);
    }
}
