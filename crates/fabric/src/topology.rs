//! Hosts, links and the crossbar switch.

use std::collections::BTreeMap;
use std::fmt;

use ibsim_event::SimTime;

use crate::loss::LossModel;

/// A Local IDentifier: the layer-2 address of a port on an InfiniBand
/// subnet. The subnet manager (implicit here) assigns them densely from 1.
///
/// LID 0 is reserved (it is the "permissive" LID in real InfiniBand), so
/// [`Lid::is_valid`] is false for it; sending to an unassigned LID models
/// the paper's Fig. 2 experiment of deliberately mis-addressing a QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lid(pub u16);

impl Lid {
    /// True unless this is the reserved LID 0.
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Lid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lid{}", self.0)
    }
}

/// Physical characteristics of one host↔switch link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// One-way propagation + PHY latency of the cable.
    pub latency: SimTime,
    /// Signalling rate in whole gigabits per second. Integral so that
    /// serialization times are exact integer arithmetic (the
    /// no-float-in-sim-path rule); every IB speed grade is a whole
    /// number of Gb/s.
    pub bandwidth_gbps: u64,
}

/// Error returned by [`LinkSpec::new`] / [`LinkSpec::validate`] for a
/// physically meaningless link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSpecError {
    /// `bandwidth_gbps` was zero: a link that can never serialize a
    /// frame has no defined serialization time.
    ZeroBandwidth,
}

impl fmt::Display for LinkSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkSpecError::ZeroBandwidth => {
                write!(f, "link bandwidth must be a nonzero number of Gb/s")
            }
        }
    }
}

impl std::error::Error for LinkSpecError {}

impl LinkSpec {
    /// Checked constructor: rejects a zero signalling rate instead of
    /// silently clamping it later (a zero-bandwidth link is a config
    /// bug, not a 1 Gb/s link).
    pub fn new(latency: SimTime, bandwidth_gbps: u64) -> Result<Self, LinkSpecError> {
        let spec = LinkSpec {
            latency,
            bandwidth_gbps,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates a spec built via struct literal (the fields are public
    /// so the speed-grade constants stay ergonomic).
    pub fn validate(&self) -> Result<(), LinkSpecError> {
        if self.bandwidth_gbps == 0 {
            return Err(LinkSpecError::ZeroBandwidth);
        }
        Ok(())
    }

    /// 56 Gb/s FDR (ConnectX-3/4 FDR systems in Table I).
    pub fn fdr() -> Self {
        LinkSpec {
            latency: SimTime::from_ns(300),
            bandwidth_gbps: 56,
        }
    }

    /// 100 Gb/s EDR (ConnectX-4/5 EDR systems in Table I).
    pub fn edr() -> Self {
        LinkSpec {
            latency: SimTime::from_ns(300),
            bandwidth_gbps: 100,
        }
    }

    /// 200 Gb/s HDR (ConnectX-6 systems in Table I).
    pub fn hdr() -> Self {
        LinkSpec {
            latency: SimTime::from_ns(300),
            bandwidth_gbps: 200,
        }
    }

    /// Time to serialize `bytes` onto the wire: `⌈8·bytes / gbps⌉` ns,
    /// in pure integer arithmetic (Gb/s over nanoseconds is bits per
    /// nanosecond, so no unit conversion factor survives).
    ///
    /// # Panics
    ///
    /// Panics on a zero-bandwidth spec, which [`LinkSpec::new`] and
    /// [`Fabric::add_host_with`] reject up front — an invalid link must
    /// fail loudly, not masquerade as a 1 Gb/s one.
    pub fn serialization(&self, bytes: u32) -> SimTime {
        assert!(
            self.bandwidth_gbps != 0,
            "invalid LinkSpec: {}",
            LinkSpecError::ZeroBandwidth
        );
        let bits = bytes as u64 * 8;
        SimTime::from_ns(bits.div_ceil(self.bandwidth_gbps))
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::edr()
    }
}

/// Why a frame did not reach its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No port with that LID exists on the subnet (mis-addressed QP).
    UnknownDestination,
    /// The configured [`LossModel`] discarded the frame.
    Injected,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropReason::UnknownDestination => write!(f, "unknown destination LID"),
            DropReason::Injected => write!(f, "injected loss"),
        }
    }
}

/// The outcome of submitting a frame to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The frame arrives at the destination port at `at`.
    Deliver {
        /// Absolute arrival time at the destination port.
        at: SimTime,
    },
    /// The frame was lost in the fabric.
    Dropped(DropReason),
}

impl Delivery {
    /// Arrival time if delivered.
    pub fn arrival(self) -> Option<SimTime> {
        match self {
            Delivery::Deliver { at } => Some(at),
            Delivery::Dropped(_) => None,
        }
    }
}

/// Per-link traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames sent from the host into the fabric.
    pub tx_frames: u64,
    /// Bytes sent from the host into the fabric.
    pub tx_bytes: u64,
    /// Frames delivered to the host.
    pub rx_frames: u64,
    /// Bytes delivered to the host.
    pub rx_bytes: u64,
    /// Frames from this host that were dropped in the fabric.
    pub dropped: u64,
}

#[derive(Debug, Clone)]
struct Port {
    name: String,
    spec: LinkSpec,
    /// Egress (host → switch) serialization horizon.
    egress_busy_until: SimTime,
    /// Switch-egress (switch → host) serialization horizon.
    ingress_busy_until: SimTime,
    stats: LinkStats,
}

/// A single-subnet InfiniBand fabric: every host hangs off one crossbar
/// switch. This is the topology of all two-to-four-node experiments in the
/// paper; multi-switch fat trees are out of scope because none of the
/// studied phenomena involve inter-switch behavior.
///
/// The model accounts for:
///
/// * serialization at the sending port (frames queue behind each other),
/// * link propagation latency (both hops) plus switch forwarding delay,
/// * serialization at the switch egress toward the destination,
/// * loss: unknown destination LIDs and an optional injected [`LossModel`].
#[derive(Debug)]
pub struct Fabric {
    default_spec: LinkSpec,
    switch_latency: SimTime,
    ports: BTreeMap<Lid, Port>,
    next_lid: u16,
    loss: LossModel,
    total_frames: u64,
    total_drops: u64,
}

impl Fabric {
    /// Creates an empty fabric whose future hosts use `default_spec` links.
    pub fn new(default_spec: LinkSpec) -> Self {
        Fabric {
            default_spec,
            switch_latency: SimTime::from_ns(200),
            ports: BTreeMap::new(),
            next_lid: 1,
            loss: LossModel::None,
            total_frames: 0,
            total_drops: 0,
        }
    }

    /// Adds a host with the default link spec; returns its assigned LID.
    pub fn add_host(&mut self, name: &str) -> Lid {
        self.add_host_with(name, self.default_spec)
    }

    /// Adds a host with an explicit link spec; returns its assigned LID.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`LinkSpec::validate`] (e.g. zero
    /// bandwidth): an invalid link is a configuration bug and must not
    /// enter the fabric.
    pub fn add_host_with(&mut self, name: &str, spec: LinkSpec) -> Lid {
        if let Err(e) = spec.validate() {
            panic!("fabric: cannot attach host {name:?}: {e}");
        }
        let lid = Lid(self.next_lid);
        self.next_lid += 1;
        self.ports.insert(
            lid,
            Port {
                name: name.to_owned(),
                spec,
                egress_busy_until: SimTime::ZERO,
                ingress_busy_until: SimTime::ZERO,
                stats: LinkStats::default(),
            },
        );
        lid
    }

    /// Installs a loss model applied to every frame after routing.
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = loss;
    }

    /// Whether the installed loss model consumes per-frame global state
    /// (see [`LossModel::is_order_dependent`]); sharded execution must
    /// refuse to route cross-shard traffic through such a model.
    pub fn loss_is_order_dependent(&self) -> bool {
        self.loss.is_order_dependent()
    }

    /// Sets the switch forwarding delay (default 200 ns).
    pub fn set_switch_latency(&mut self, latency: SimTime) {
        self.switch_latency = latency;
    }

    /// Host name registered for `lid`, if any.
    pub fn host_name(&self, lid: Lid) -> Option<&str> {
        self.ports.get(&lid).map(|p| p.name.as_str())
    }

    /// Traffic counters for `lid`'s link.
    pub fn link_stats(&self, lid: Lid) -> Option<LinkStats> {
        self.ports.get(&lid).map(|p| p.stats)
    }

    /// Total frames submitted to the fabric.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Total frames lost (both unknown-LID and injected).
    pub fn total_drops(&self) -> u64 {
        self.total_drops
    }

    /// Minimum one-way latency between two hosts for a frame of `bytes`,
    /// assuming idle links. Useful for analytical baselines in tests.
    pub fn idle_transit(&self, src: Lid, dst: Lid, bytes: u32) -> Option<SimTime> {
        let s = self.ports.get(&src)?;
        let d = self.ports.get(&dst)?;
        Some(
            s.spec.serialization(bytes)
                + s.spec.latency
                + self.switch_latency
                + d.spec.serialization(bytes)
                + d.spec.latency,
        )
    }

    /// Submits a frame of `bytes` from `src` to `dst` at time `now`.
    ///
    /// Returns the delivery time at the destination port, or the drop
    /// reason. Port serialization state advances even for frames that are
    /// dropped past the sending port (they consumed wire time).
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a registered host: a NIC cannot transmit from
    /// a port that does not exist.
    pub fn transit(&mut self, now: SimTime, src: Lid, dst: Lid, bytes: u32) -> Delivery {
        self.total_frames += 1;
        let switch_latency = self.switch_latency;

        // Egress serialization at the source port.
        let (depart, src_latency) = {
            let sport = self
                .ports
                .get_mut(&src)
                .unwrap_or_else(|| panic!("transmit from unregistered port {src}"));
            let start = now.max(sport.egress_busy_until);
            let ser = sport.spec.serialization(bytes);
            sport.egress_busy_until = start + ser;
            sport.stats.tx_frames += 1;
            sport.stats.tx_bytes += bytes as u64;
            (start + ser, sport.spec.latency)
        };
        let at_switch = depart + src_latency + switch_latency;

        // Routing: unknown LIDs die at the switch.
        if !dst.is_valid() || !self.ports.contains_key(&dst) {
            return self.drop_frame(src, DropReason::UnknownDestination);
        }

        // Injected loss (applied post-routing, i.e. in the fabric).
        if self.loss.drop(now, src, dst) {
            return self.drop_frame(src, DropReason::Injected);
        }

        // Switch-egress serialization toward the destination. Routing
        // above guarantees the port exists; if the map nevertheless has
        // no entry, fold it into the structured drop path rather than
        // panicking mid-simulation.
        let Some(dport) = self.ports.get_mut(&dst) else {
            return self.drop_frame(src, DropReason::UnknownDestination);
        };
        let start = at_switch.max(dport.ingress_busy_until);
        let ser = dport.spec.serialization(bytes);
        dport.ingress_busy_until = start + ser;
        dport.stats.rx_frames += 1;
        dport.stats.rx_bytes += bytes as u64;
        Delivery::Deliver {
            at: start + ser + dport.spec.latency,
        }
    }

    /// Accounts one dropped frame against `src` and the fabric totals.
    ///
    /// `src` was validated at the top of [`Fabric::transit`]; an absent
    /// source port here simply loses its per-link attribution rather
    /// than aborting the run.
    fn drop_frame(&mut self, src: Lid, reason: DropReason) -> Delivery {
        self.total_drops += 1;
        if let Some(sport) = self.ports.get_mut(&src) {
            sport.stats.dropped += 1;
        }
        Delivery::Dropped(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hosts() -> (Fabric, Lid, Lid) {
        let mut f = Fabric::new(LinkSpec::fdr());
        let a = f.add_host("a");
        let b = f.add_host("b");
        (f, a, b)
    }

    #[test]
    fn lids_assigned_densely_from_one() {
        let (f, a, b) = two_hosts();
        assert_eq!(a, Lid(1));
        assert_eq!(b, Lid(2));
        assert_eq!(f.host_name(a), Some("a"));
        assert!(!Lid(0).is_valid());
    }

    #[test]
    fn serialization_matches_bandwidth() {
        // 56 Gb/s: 7 bytes per ns, so 56 bytes take 8 ns.
        assert_eq!(LinkSpec::fdr().serialization(56), SimTime::from_ns(8));
        // 100 Gb/s: 4096 bytes take ceil(4096*8/100) = 328 ns.
        assert_eq!(LinkSpec::edr().serialization(4096), SimTime::from_ns(328));
    }

    #[test]
    fn transit_accumulates_all_stages() {
        let (mut f, a, b) = two_hosts();
        let d = f.transit(SimTime::ZERO, a, b, 56);
        // ser(8) + latency(300) + switch(200) + ser(8) + latency(300)
        assert_eq!(
            d,
            Delivery::Deliver {
                at: SimTime::from_ns(816)
            }
        );
        assert_eq!(f.idle_transit(a, b, 56), Some(SimTime::from_ns(816)));
    }

    #[test]
    fn back_to_back_frames_queue_at_source() {
        let (mut f, a, b) = two_hosts();
        let first = f.transit(SimTime::ZERO, a, b, 4096).arrival().unwrap();
        let second = f.transit(SimTime::ZERO, a, b, 4096).arrival().unwrap();
        // Second frame waits a full serialization (586 ns at 56 Gb/s).
        assert_eq!(second - first, LinkSpec::fdr().serialization(4096));
    }

    #[test]
    fn unknown_lid_drops() {
        let (mut f, a, _) = two_hosts();
        let d = f.transit(SimTime::ZERO, a, Lid(99), 100);
        assert_eq!(d, Delivery::Dropped(DropReason::UnknownDestination));
        assert_eq!(f.total_drops(), 1);
        assert_eq!(f.link_stats(a).unwrap().dropped, 1);
        assert_eq!(d.arrival(), None);
    }

    #[test]
    fn injected_loss_drops_matching_frames() {
        let (mut f, a, b) = two_hosts();
        f.set_loss(LossModel::DropAll);
        assert!(matches!(
            f.transit(SimTime::ZERO, a, b, 100),
            Delivery::Dropped(DropReason::Injected)
        ));
        f.set_loss(LossModel::None);
        assert!(matches!(
            f.transit(SimTime::ZERO, a, b, 100),
            Delivery::Deliver { .. }
        ));
    }

    #[test]
    fn stats_track_tx_rx() {
        let (mut f, a, b) = two_hosts();
        f.transit(SimTime::ZERO, a, b, 100);
        f.transit(SimTime::ZERO, b, a, 50);
        let sa = f.link_stats(a).unwrap();
        let sb = f.link_stats(b).unwrap();
        assert_eq!(sa.tx_frames, 1);
        assert_eq!(sa.tx_bytes, 100);
        assert_eq!(sa.rx_frames, 1);
        assert_eq!(sa.rx_bytes, 50);
        assert_eq!(sb.tx_frames, 1);
        assert_eq!(sb.rx_bytes, 100);
        assert_eq!(f.total_frames(), 2);
    }

    #[test]
    #[should_panic(expected = "unregistered port")]
    fn transmit_from_unknown_port_panics() {
        let mut f = Fabric::new(LinkSpec::fdr());
        f.transit(SimTime::ZERO, Lid(7), Lid(1), 10);
    }

    #[test]
    fn zero_bandwidth_link_is_rejected() {
        assert_eq!(
            LinkSpec::new(SimTime::from_ns(300), 0),
            Err(LinkSpecError::ZeroBandwidth)
        );
        let bad = LinkSpec {
            latency: SimTime::from_ns(300),
            bandwidth_gbps: 0,
        };
        assert_eq!(bad.validate(), Err(LinkSpecError::ZeroBandwidth));
        // Valid specs round-trip through the checked constructor.
        assert_eq!(
            LinkSpec::new(SimTime::from_ns(300), 56),
            Ok(LinkSpec::fdr())
        );
        assert!(LinkSpec::hdr().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "nonzero number of Gb/s")]
    fn zero_bandwidth_host_cannot_join_fabric() {
        let mut f = Fabric::new(LinkSpec::fdr());
        f.add_host_with(
            "broken",
            LinkSpec {
                latency: SimTime::from_ns(300),
                bandwidth_gbps: 0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "nonzero number of Gb/s")]
    fn zero_bandwidth_serialization_panics_not_clamps() {
        // Before this was fixed, bandwidth 0 was silently treated as
        // 1 Gb/s; now it fails loudly.
        let bad = LinkSpec {
            latency: SimTime::ZERO,
            bandwidth_gbps: 0,
        };
        let _ = bad.serialization(4096);
    }

    #[test]
    fn loss_order_dependence_classification() {
        let (mut f, _, b) = two_hosts();
        assert!(!f.loss_is_order_dependent());
        f.set_loss(LossModel::DropAll);
        assert!(!f.loss_is_order_dependent());
        f.set_loss(LossModel::ToDestination(b));
        assert!(!f.loss_is_order_dependent());
        f.set_loss(LossModel::uniform(0.5, 7));
        assert!(f.loss_is_order_dependent());
        f.set_loss(LossModel::nth(vec![3]));
        assert!(f.loss_is_order_dependent());
        f.set_loss(LossModel::burst(0.1, 0.5, 7));
        assert!(f.loss_is_order_dependent());
    }

    #[test]
    fn heterogeneous_links() {
        let mut f = Fabric::new(LinkSpec::fdr());
        let a = f.add_host_with("fast", LinkSpec::hdr());
        let b = f.add_host_with("slow", LinkSpec::fdr());
        // Arrival dominated by the slower destination link serialization.
        let at = f.transit(SimTime::ZERO, a, b, 4096).arrival().unwrap();
        let expected = LinkSpec::hdr().serialization(4096)
            + SimTime::from_ns(300)
            + SimTime::from_ns(200)
            + LinkSpec::fdr().serialization(4096)
            + SimTime::from_ns(300);
        assert_eq!(at, expected);
    }
}
