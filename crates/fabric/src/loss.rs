//! Deterministic loss injection.
//!
//! The paper provokes packet loss deliberately (wrong destination LID,
//! §IV-B) and observes incidental loss caused by ODP itself. For testing
//! the transport's reliability machinery we additionally want repeatable
//! random loss, provided here by a self-contained xorshift PRNG so the
//! fabric stays dependency-free and every run is reproducible from a seed.

use ibsim_event::SimTime;

use crate::topology::Lid;

/// A tiny, fast, deterministic PRNG (xorshift64*).
///
/// Not cryptographic; used only for repeatable loss patterns.
///
/// # Examples
///
/// ```
/// use ibsim_fabric::Xorshift64Star;
/// let mut a = Xorshift64Star::new(42);
/// let mut b = Xorshift64Star::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Creates a generator from a seed (zero is remapped to a fixed odd
    /// constant because the all-zero state is a fixed point).
    pub fn new(seed: u64) -> Self {
        Xorshift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// Frame-loss policy applied by the fabric after routing.
#[derive(Debug, Default)]
pub enum LossModel {
    /// No injected loss (default).
    #[default]
    None,
    /// Drop every frame. Models a severed cable / black-holed route.
    DropAll,
    /// Drop each frame independently with probability `prob`, using a
    /// deterministic seeded PRNG.
    Uniform {
        /// Per-frame drop probability in `[0, 1]`.
        prob: f64,
        /// PRNG supplying the per-frame coin flips.
        rng: Xorshift64Star,
    },
    /// Drop the frames whose (0-based) submission index is in the sorted
    /// list. Gives tests exact control over which packet dies.
    Nth {
        /// Indices of frames to drop, in the order frames are submitted.
        indices: Vec<u64>,
        /// Frames seen so far.
        seen: u64,
    },
    /// Gilbert–Elliott burst loss: a two-state Markov chain toggling
    /// between a good state (no loss) and a bad state (loss with
    /// probability `drop_in_burst`). Bursty loss is what a congested or
    /// flapping link produces, and what exercises go-back-N recovery far
    /// harder than independent per-frame coin flips.
    Burst {
        /// Per-frame probability of entering a burst from the good state.
        enter: f64,
        /// Per-frame probability of leaving a burst from the bad state.
        exit: f64,
        /// Drop probability while inside a burst (1.0 = every frame).
        drop_in_burst: f64,
        /// Currently inside a burst.
        in_burst: bool,
        /// PRNG supplying state transitions and drop coins.
        rng: Xorshift64Star,
    },
    /// Drop frames directed at a specific destination LID.
    ToDestination(Lid),
}

impl LossModel {
    /// Uniform loss with probability `prob` seeded by `seed`.
    pub fn uniform(prob: f64, seed: u64) -> Self {
        LossModel::Uniform {
            prob,
            rng: Xorshift64Star::new(seed),
        }
    }

    /// Drop exactly the frames with the given submission indices.
    pub fn nth(mut indices: Vec<u64>) -> Self {
        indices.sort_unstable();
        LossModel::Nth { indices, seen: 0 }
    }

    /// Gilbert–Elliott burst loss dropping every frame inside a burst.
    /// Expected burst length is `1 / exit` frames; expected gap between
    /// bursts is `1 / enter` frames.
    pub fn burst(enter: f64, exit: f64, seed: u64) -> Self {
        LossModel::burst_with(enter, exit, 1.0, seed)
    }

    /// Gilbert–Elliott burst loss with a partial in-burst drop rate.
    pub fn burst_with(enter: f64, exit: f64, drop_in_burst: f64, seed: u64) -> Self {
        LossModel::Burst {
            enter,
            exit,
            drop_in_burst,
            in_burst: false,
            rng: Xorshift64Star::new(seed),
        }
    }

    /// True when the model's verdict depends on the *global order* in
    /// which frames reach it — a per-frame PRNG draw or a submission
    /// counter. Order-dependent models are incompatible with sharded
    /// execution, where each shard replica only sees its own hosts'
    /// frames: the streams would diverge from the sequential reference.
    /// Stateless models (`None`, `DropAll`, `ToDestination`) judge each
    /// frame in isolation and shard safely.
    pub fn is_order_dependent(&self) -> bool {
        match self {
            LossModel::None | LossModel::DropAll | LossModel::ToDestination(_) => false,
            LossModel::Uniform { .. } | LossModel::Nth { .. } | LossModel::Burst { .. } => true,
        }
    }

    /// Decides whether the frame submitted at `now` from `src` to `dst`
    /// should be dropped. Stateful models advance their state.
    pub fn drop(&mut self, _now: SimTime, _src: Lid, dst: Lid) -> bool {
        match self {
            LossModel::None => false,
            LossModel::DropAll => true,
            LossModel::Uniform { prob, rng } => rng.next_f64() < *prob,
            LossModel::Nth { indices, seen } => {
                let idx = *seen;
                *seen += 1;
                indices.binary_search(&idx).is_ok()
            }
            LossModel::Burst {
                enter,
                exit,
                drop_in_burst,
                in_burst,
                rng,
            } => {
                // Fixed draw order (transition first, then the drop coin)
                // keeps the sequence a pure function of the seed.
                let flip = rng.next_f64();
                if *in_burst {
                    if flip < *exit {
                        *in_burst = false;
                    }
                } else if flip < *enter {
                    *in_burst = true;
                }
                *in_burst && rng.next_f64() < *drop_in_burst
            }
            LossModel::ToDestination(target) => dst == *target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_spread() {
        let mut r = Xorshift64Star::new(7);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Xorshift64Star::new(7);
        let vals2: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(vals, vals2);
        assert_ne!(vals[0], vals[1]);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Xorshift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn zero_seed_remaps_to_the_golden_ratio_constant() {
        // `Xorshift64Star::new(0)` must behave exactly like the generator
        // seeded with the remap constant: the all-zero state is a fixed
        // point of xorshift, so seed 0 silently aliases that constant.
        let mut zero = Xorshift64Star::new(0);
        let mut remapped = Xorshift64Star::new(0x9E37_79B9_7F4A_7C15);
        for _ in 0..64 {
            assert_eq!(zero.next_u64(), remapped.next_u64());
        }
        // And it is NOT the identity sequence of any small nonzero seed.
        let mut one = Xorshift64Star::new(1);
        let mut zero2 = Xorshift64Star::new(0);
        assert_ne!(zero2.next_u64(), one.next_u64());
    }

    /// Drop decisions for `n` frames of a model, as a bit-string.
    fn drop_pattern(mut m: LossModel, n: usize) -> Vec<bool> {
        let t = SimTime::ZERO;
        (0..n).map(|_| m.drop(t, Lid(1), Lid(2))).collect()
    }

    #[test]
    fn uniform_rate_loss_is_deterministic_from_seed() {
        let a = drop_pattern(LossModel::uniform(0.3, 42), 4096);
        let b = drop_pattern(LossModel::uniform(0.3, 42), 4096);
        assert_eq!(a, b, "same seed must reproduce the same drop pattern");
        let c = drop_pattern(LossModel::uniform(0.3, 43), 4096);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn burst_loss_is_deterministic_from_seed() {
        let a = drop_pattern(LossModel::burst(0.02, 0.25, 7), 8192);
        let b = drop_pattern(LossModel::burst(0.02, 0.25, 7), 8192);
        assert_eq!(a, b, "same seed must reproduce the same burst pattern");
        let c = drop_pattern(LossModel::burst(0.02, 0.25, 8), 8192);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn burst_loss_clusters_drops() {
        // With enter=0.01 and exit=0.2 the chain spends ~1/21 of its time
        // in bursts of mean length 5; drops must arrive in runs, not as
        // independent singletons.
        let pat = drop_pattern(LossModel::burst(0.01, 0.2, 99), 50_000);
        let drops = pat.iter().filter(|&&d| d).count();
        assert!(drops > 500, "bursts must produce substantial loss: {drops}");
        // Count maximal runs of consecutive drops; mean run length must
        // exceed what independent flips at the same rate would give (~1).
        let mut runs = 0usize;
        let mut prev = false;
        for &d in &pat {
            if d && !prev {
                runs += 1;
            }
            prev = d;
        }
        let mean_run = drops as f64 / runs as f64;
        assert!(
            mean_run > 2.0,
            "drops must cluster into bursts: mean run {mean_run:.2}"
        );
    }

    #[test]
    fn burst_with_zero_enter_never_drops() {
        let pat = drop_pattern(LossModel::burst(0.0, 0.5, 3), 10_000);
        assert!(pat.iter().all(|&d| !d));
    }

    #[test]
    fn burst_zero_seed_is_usable() {
        // The seed-0 remap reaches the burst model through its PRNG: the
        // pattern must be well-formed and identical to the remap constant.
        let a = drop_pattern(LossModel::burst(0.05, 0.2, 0), 4096);
        let b = drop_pattern(LossModel::burst(0.05, 0.2, 0x9E37_79B9_7F4A_7C15), 4096);
        assert_eq!(a, b);
        assert!(a.iter().any(|&d| d), "seed 0 must still produce drops");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xorshift64Star::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xorshift64Star::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn nth_drops_exact_indices() {
        let mut m = LossModel::nth(vec![0, 2]);
        let t = SimTime::ZERO;
        assert!(m.drop(t, Lid(1), Lid(2)));
        assert!(!m.drop(t, Lid(1), Lid(2)));
        assert!(m.drop(t, Lid(1), Lid(2)));
        assert!(!m.drop(t, Lid(1), Lid(2)));
    }

    #[test]
    fn uniform_hits_expected_rate() {
        let mut m = LossModel::uniform(0.25, 99);
        let t = SimTime::ZERO;
        let drops = (0..10_000).filter(|_| m.drop(t, Lid(1), Lid(2))).count();
        // 4 sigma around 2500.
        assert!((2200..2800).contains(&drops), "drops={drops}");
    }

    #[test]
    fn to_destination_filters_by_lid() {
        let mut m = LossModel::ToDestination(Lid(9));
        let t = SimTime::ZERO;
        assert!(m.drop(t, Lid(1), Lid(9)));
        assert!(!m.drop(t, Lid(1), Lid(8)));
    }
}
