//! Deterministic loss injection.
//!
//! The paper provokes packet loss deliberately (wrong destination LID,
//! §IV-B) and observes incidental loss caused by ODP itself. For testing
//! the transport's reliability machinery we additionally want repeatable
//! random loss, provided here by a self-contained xorshift PRNG so the
//! fabric stays dependency-free and every run is reproducible from a seed.

use ibsim_event::SimTime;

use crate::topology::Lid;

/// A tiny, fast, deterministic PRNG (xorshift64*).
///
/// Not cryptographic; used only for repeatable loss patterns.
///
/// # Examples
///
/// ```
/// use ibsim_fabric::Xorshift64Star;
/// let mut a = Xorshift64Star::new(42);
/// let mut b = Xorshift64Star::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Creates a generator from a seed (zero is remapped to a fixed odd
    /// constant because the all-zero state is a fixed point).
    pub fn new(seed: u64) -> Self {
        Xorshift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// Frame-loss policy applied by the fabric after routing.
#[derive(Debug, Default)]
pub enum LossModel {
    /// No injected loss (default).
    #[default]
    None,
    /// Drop every frame. Models a severed cable / black-holed route.
    DropAll,
    /// Drop each frame independently with probability `prob`, using a
    /// deterministic seeded PRNG.
    Uniform {
        /// Per-frame drop probability in `[0, 1]`.
        prob: f64,
        /// PRNG supplying the per-frame coin flips.
        rng: Xorshift64Star,
    },
    /// Drop the frames whose (0-based) submission index is in the sorted
    /// list. Gives tests exact control over which packet dies.
    Nth {
        /// Indices of frames to drop, in the order frames are submitted.
        indices: Vec<u64>,
        /// Frames seen so far.
        seen: u64,
    },
    /// Drop frames directed at a specific destination LID.
    ToDestination(Lid),
}

impl LossModel {
    /// Uniform loss with probability `prob` seeded by `seed`.
    pub fn uniform(prob: f64, seed: u64) -> Self {
        LossModel::Uniform {
            prob,
            rng: Xorshift64Star::new(seed),
        }
    }

    /// Drop exactly the frames with the given submission indices.
    pub fn nth(mut indices: Vec<u64>) -> Self {
        indices.sort_unstable();
        LossModel::Nth { indices, seen: 0 }
    }

    /// Decides whether the frame submitted at `now` from `src` to `dst`
    /// should be dropped. Stateful models advance their state.
    pub fn drop(&mut self, _now: SimTime, _src: Lid, dst: Lid) -> bool {
        match self {
            LossModel::None => false,
            LossModel::DropAll => true,
            LossModel::Uniform { prob, rng } => rng.next_f64() < *prob,
            LossModel::Nth { indices, seen } => {
                let idx = *seen;
                *seen += 1;
                indices.binary_search(&idx).is_ok()
            }
            LossModel::ToDestination(target) => dst == *target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_spread() {
        let mut r = Xorshift64Star::new(7);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Xorshift64Star::new(7);
        let vals2: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(vals, vals2);
        assert_ne!(vals[0], vals[1]);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Xorshift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xorshift64Star::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xorshift64Star::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn nth_drops_exact_indices() {
        let mut m = LossModel::nth(vec![0, 2]);
        let t = SimTime::ZERO;
        assert!(m.drop(t, Lid(1), Lid(2)));
        assert!(!m.drop(t, Lid(1), Lid(2)));
        assert!(m.drop(t, Lid(1), Lid(2)));
        assert!(!m.drop(t, Lid(1), Lid(2)));
    }

    #[test]
    fn uniform_hits_expected_rate() {
        let mut m = LossModel::uniform(0.25, 99);
        let t = SimTime::ZERO;
        let drops = (0..10_000).filter(|_| m.drop(t, Lid(1), Lid(2))).count();
        // 4 sigma around 2500.
        assert!((2200..2800).contains(&drops), "drops={drops}");
    }

    #[test]
    fn to_destination_filters_by_lid() {
        let mut m = LossModel::ToDestination(Lid(9));
        let t = SimTime::ZERO;
        assert!(m.drop(t, Lid(1), Lid(9)));
        assert!(!m.drop(t, Lid(1), Lid(8)));
    }
}
