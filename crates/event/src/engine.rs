//! The discrete-event engine.
//!
//! [`Engine`] owns a priority queue of scheduled events. Each event is a
//! boxed closure receiving mutable access to the *world* (the user's state,
//! generic parameter `W`) and to the engine itself, so handlers can schedule
//! follow-up events. Events at equal timestamps fire in insertion order,
//! which makes every run bit-for-bit deterministic.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::time::SimTime;

/// Handle to a scheduled event, usable to [cancel](Engine::cancel) it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}", self.0)
    }
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    /// Reversed so the `BinaryHeap` becomes a min-heap on `(at, seq)`.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation engine over a world `W`.
///
/// # Examples
///
/// ```
/// use ibsim_event::{Engine, SimTime};
///
/// let mut engine: Engine<u32> = Engine::new();
/// engine.schedule_in(SimTime::from_us(5), |w, eng| {
///     *w += 1;
///     eng.schedule_in(SimTime::from_us(5), |w, _| *w += 10);
/// });
/// let mut world = 0u32;
/// engine.run(&mut world);
/// assert_eq!(world, 11);
/// assert_eq!(engine.now(), SimTime::from_us(10));
/// ```
pub struct Engine<W> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    /// Ids scheduled but not yet popped; removed on pop or cancel.
    live: HashSet<u64>,
    /// Ids cancelled while still in the heap; skipped at pop time.
    cancelled: HashSet<u64>,
    next_seq: u64,
    executed: u64,
    /// Event pops whose timestamp preceded the clock (only counted with
    /// the `checks` feature; always zero otherwise). A non-zero value
    /// means the min-heap ordering invariant broke — causality is gone.
    monotonicity_violations: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            executed: 0,
            monotonicity_violations: 0,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled-but-unpopped ones).
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Number of event pops that violated clock monotonicity. Counted
    /// only when the crate is built with the `checks` feature; without it
    /// this always returns zero (the condition is still a `debug_assert`
    /// in debug builds).
    #[inline]
    pub fn monotonicity_violations(&self) -> u64 {
        self.monotonicity_violations
    }

    /// Validates one popped event timestamp against the clock.
    #[inline]
    fn check_pop_monotone(&mut self, at: SimTime) {
        #[cfg(feature = "checks")]
        if at < self.now {
            self.monotonicity_violations += 1;
        }
        #[cfg(not(feature = "checks"))]
        debug_assert!(at >= self.now, "event queue went backwards");
        let _ = at;
    }

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past (`at < self.now()`): rewinding the
    /// clock would silently corrupt causality, so it is a programming error.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedules `f` to run after relative delay `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (and therefore will
    /// not fire). Cancelling an already-executed or already-cancelled event
    /// returns `false` and is harmless.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Runs events whose time is `<= deadline`, then stops.
    ///
    /// The clock is left at the time of the last executed event (or moved to
    /// `deadline` if that is later and the queue still holds future events).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                if deadline != SimTime::MAX && self.now < deadline {
                    self.now = deadline;
                }
                return;
            }
            let ev = self.queue.pop().expect("peeked entry vanished");
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.live.remove(&ev.seq);
            self.check_pop_monotone(ev.at);
            self.now = ev.at;
            self.executed += 1;
            (ev.run)(world, self);
        }
        if deadline != SimTime::MAX && self.now < deadline {
            self.now = deadline;
        }
    }

    /// Executes exactly one event if one is pending; returns whether it did.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.live.remove(&ev.seq);
            self.check_pop_monotone(ev.at);
            self.now = ev.at;
            self.executed += 1;
            (ev.run)(world, self);
            return true;
        }
        false
    }

    /// Time of the next pending (non-cancelled) event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue
            .iter()
            .filter(|s| !self.cancelled.contains(&s.seq))
            .map(|s| s.at)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime::from_us(30), |w, _| w.push(3));
        eng.schedule_at(SimTime::from_us(10), |w, _| w.push(1));
        eng.schedule_at(SimTime::from_us(20), |w, _| w.push(2));
        let mut out = Vec::new();
        eng.run(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(eng.now(), SimTime::from_us(30));
        assert_eq!(eng.executed_events(), 3);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let t = SimTime::from_us(5);
        for i in 0..100 {
            eng.schedule_at(t, move |w, _| w.push(i));
        }
        let mut out = Vec::new();
        eng.run(&mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut eng: Engine<Vec<SimTime>> = Engine::new();
        fn tick(w: &mut Vec<SimTime>, eng: &mut Engine<Vec<SimTime>>) {
            w.push(eng.now());
            if w.len() < 4 {
                eng.schedule_in(SimTime::from_us(7), tick);
            }
        }
        eng.schedule_at(SimTime::ZERO, tick);
        let mut out = Vec::new();
        eng.run(&mut out);
        assert_eq!(
            out,
            vec![
                SimTime::ZERO,
                SimTime::from_us(7),
                SimTime::from_us(14),
                SimTime::from_us(21)
            ]
        );
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_at(SimTime::from_us(10), |w, _| *w += 1);
        eng.schedule_at(SimTime::from_us(20), |w, _| *w += 100);
        assert!(eng.cancel(id));
        assert!(!eng.cancel(id), "double cancel reports false");
        let mut w = 0;
        eng.run(&mut w);
        assert_eq!(w, 100);
    }

    #[test]
    fn cancel_after_execution_is_false() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_at(SimTime::from_us(1), |w, _| *w += 1);
        let mut w = 0;
        eng.run(&mut w);
        assert!(!eng.cancel(id));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime::from_us(10), |w, _| w.push(1));
        eng.schedule_at(SimTime::from_us(30), |w, _| w.push(2));
        let mut out = Vec::new();
        eng.run_until(&mut out, SimTime::from_us(20));
        assert_eq!(out, vec![1]);
        assert_eq!(eng.now(), SimTime::from_us(20));
        eng.run(&mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn step_executes_one_event() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime::from_us(1), |w, _| *w += 1);
        eng.schedule_at(SimTime::from_us(2), |w, _| *w += 1);
        let mut w = 0;
        assert!(eng.step(&mut w));
        assert_eq!(w, 1);
        assert!(eng.step(&mut w));
        assert!(!eng.step(&mut w));
        assert_eq!(w, 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime::from_us(10), |_, eng| {
            eng.schedule_at(SimTime::from_us(5), |_, _| {});
        });
        let mut w = 0;
        eng.run(&mut w);
    }

    #[test]
    fn next_event_time_skips_cancelled() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_at(SimTime::from_us(5), |_, _| {});
        eng.schedule_at(SimTime::from_us(9), |_, _| {});
        assert_eq!(eng.next_event_time(), Some(SimTime::from_us(5)));
        eng.cancel(id);
        assert_eq!(eng.next_event_time(), Some(SimTime::from_us(9)));
    }

    #[test]
    fn world_with_shared_state() {
        // Regression test: handlers may close over Rc'd state.
        let hits = Rc::new(RefCell::new(0));
        let mut eng: Engine<()> = Engine::new();
        for _ in 0..10 {
            let h = Rc::clone(&hits);
            eng.schedule_in(SimTime::from_us(1), move |_, _| *h.borrow_mut() += 1);
        }
        eng.run(&mut ());
        assert_eq!(*hits.borrow(), 10);
    }
}
