//! The discrete-event engine.
//!
//! [`Engine`] owns an *indexed* binary min-heap of scheduled events. Each
//! event is a boxed closure receiving mutable access to the *world* (the
//! user's state, generic parameter `W`) and to the engine itself, so
//! handlers can schedule follow-up events. Events at equal timestamps fire
//! in insertion order, which makes every run bit-for-bit deterministic.
//!
//! ## Why an indexed heap
//!
//! The timer-heavy regimes this simulator exists for — thousands of QPs
//! rearming retransmit timers every ~0.5 ms (§VI packet flood) — are
//! exactly where a plain `BinaryHeap` with tombstone cancellation falls
//! over: cancelled events linger until popped (dead pops burn time and
//! skew queue-depth reports) and finding the next live event degenerates
//! to an O(n) scan. The indexed heap keeps a slot arena mapping each
//! live [`EventId`] to its heap index in O(1), so
//! [`cancel`](Engine::cancel) *physically removes* the entry in O(log n),
//! [`next_event_time`](Engine::next_event_time) is a O(1) peek, and heap
//! occupancy is observable through counters
//! ([`pending_events`](Engine::pending_events),
//! [`peak_heap_depth`](Engine::peak_heap_depth),
//! [`dead_event_pops`](Engine::dead_event_pops)).
//!
//! The arena is the scheduling hot path: an [`EventId`] packs a slot
//! index and a generation counter, sift swaps update a `Vec` entry
//! instead of a search-tree node, and freed slots are recycled through a
//! LIFO free list. Both the slot assignment order and the free-list
//! discipline are deterministic, and event *ordering* never consults
//! them — the heap ranks strictly by `(time, insertion seq)` — so the
//! arena cannot perturb a run.
//!
//! ## Keyed timers
//!
//! Protocol timers (ACK timeout, RNR wait, blind-retransmit ticks) are
//! *slots*: re-arming replaces the previous event rather than piling a
//! new one next to a stale gen-guarded no-op. The engine models this with
//! [`TimerKey`]-addressed scheduling
//! ([`schedule_keyed_in`](Engine::schedule_keyed_in) /
//! [`cancel_key`](Engine::cancel_key)): at most one live event exists per
//! key, and arming a key that is already armed cancels the old event in
//! the same call.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// Handle to a scheduled event, usable to [cancel](Engine::cancel) it.
///
/// Internally packs an arena slot index (low 32 bits) and that slot's
/// generation at scheduling time (high 32 bits); a stale handle — the
/// event fired, was cancelled, or its slot was recycled — simply fails
/// to resolve. The handle is opaque: only its `Eq`/`Ord`/`Hash` identity
/// is meaningful, never the packed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn slot(self) -> usize {
        (self.0 & u32::MAX as u64) as usize
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    #[inline]
    fn pack(slot: u32, generation: u32) -> Self {
        EventId(((generation as u64) << 32) | slot as u64)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}.{}", self.slot(), self.generation())
    }
}

/// Address of a replaceable timer slot: at most one live event exists per
/// key (see [`Engine::schedule_keyed_in`]). The two words are free-form;
/// `ibsim-verbs` packs (timer family, host) and (QP number, PSN) into
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerKey(pub u64, pub u64);

impl fmt::Display for TimerKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer({:#x},{:#x})", self.0, self.1)
    }
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Entry<W> {
    at: SimTime,
    /// Global insertion order — the determinism tiebreak. Never reused.
    seq: u64,
    /// This entry's packed (slot, generation) identity.
    id: EventId,
    key: Option<TimerKey>,
    run: EventFn<W>,
}

/// One arena slot: where its live event currently sits in the heap, and
/// a generation counter bumped on every free so stale [`EventId`]s from
/// earlier occupants cannot alias the current one.
#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u32,
    /// Heap index of the occupying event, or [`Slot::FREE`].
    idx: usize,
}

impl Slot {
    const FREE: usize = usize::MAX;
}

impl<W> Entry<W> {
    /// Lexicographic (time, insertion order) min-heap rank.
    #[inline]
    fn rank(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Occupancy and churn counters of an [`Engine`]'s event queue.
///
/// `dead_pops` and `dead_pending` exist to *prove a negative*: the
/// indexed heap removes cancelled events physically, so both stay at
/// zero by construction. Reports and CI gates pin them there so a future
/// regression back to tombstone cancellation is caught immediately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events currently scheduled (live entries only).
    pub live: usize,
    /// Cancelled events still occupying heap slots (always 0).
    pub dead_pending: usize,
    /// Events executed so far.
    pub executed: u64,
    /// Pops that found a cancelled event (always 0).
    pub dead_pops: u64,
    /// Maximum simultaneous live events observed.
    pub peak_depth: usize,
    /// Total `schedule_*` calls.
    pub scheduled: u64,
    /// Events physically removed by `cancel` / `cancel_key`.
    pub cancelled: u64,
    /// Events replaced by a keyed re-arm on the same [`TimerKey`].
    pub replaced: u64,
    /// Keyed timer slots currently armed.
    pub keyed_live: usize,
}

impl fmt::Display for QueueStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "live={} executed={} dead_pops={} peak={} scheduled={} \
             cancelled={} replaced={} keyed={}",
            self.live,
            self.executed,
            self.dead_pops,
            self.peak_depth,
            self.scheduled,
            self.cancelled,
            self.replaced,
            self.keyed_live
        )
    }
}

/// A deterministic discrete-event simulation engine over a world `W`.
///
/// # Examples
///
/// ```
/// use ibsim_event::{Engine, SimTime};
///
/// let mut engine: Engine<u32> = Engine::new();
/// engine.schedule_in(SimTime::from_us(5), |w, eng| {
///     *w += 1;
///     eng.schedule_in(SimTime::from_us(5), |w, _| *w += 10);
/// });
/// let mut world = 0u32;
/// engine.run(&mut world);
/// assert_eq!(world, 11);
/// assert_eq!(engine.now(), SimTime::from_us(10));
/// ```
pub struct Engine<W> {
    now: SimTime,
    /// Indexed binary min-heap on `(at, seq)`.
    heap: Vec<Entry<W>>,
    /// The slot arena: `id.slot() → heap index` for every live event;
    /// the heap invariantly contains exactly the live events
    /// (cancellation removes). A `Vec` rather than a search tree because
    /// sift swaps update it once per level — this is the hot path.
    slots: Vec<Slot>,
    /// Freed slot indices, recycled LIFO (deterministic, cache-warm).
    free: Vec<u32>,
    /// `key → id` of the single live event armed under each timer key.
    keyed: BTreeMap<TimerKey, EventId>,
    next_seq: u64,
    executed: u64,
    scheduled_total: u64,
    cancelled_total: u64,
    replaced_total: u64,
    /// Pops that found a cancelled event. The indexed heap removes
    /// cancelled entries physically, so this is zero by construction;
    /// the counter (and the analysis-crate invariant over it) exists to
    /// catch a regression back to tombstone cancellation.
    dead_pops: u64,
    peak_depth: usize,
    /// Event pops whose timestamp preceded the clock (only counted with
    /// the `checks` feature; always zero otherwise). A non-zero value
    /// means the min-heap ordering invariant broke — causality is gone.
    monotonicity_violations: u64,
    /// Timestamp of the last event actually executed. Unlike `now`, this
    /// is *not* advanced by a `run_until` deadline, so a sharded run —
    /// whose clocks park at epoch boundaries — can still recover the
    /// sequential run's final event time (max over shards).
    last_executed_at: SimTime,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("executed", &self.executed)
            .field("peak_depth", &self.peak_depth)
            .finish()
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            keyed: BTreeMap::new(),
            next_seq: 0,
            executed: 0,
            scheduled_total: 0,
            cancelled_total: 0,
            replaced_total: 0,
            dead_pops: 0,
            peak_depth: 0,
            monotonicity_violations: 0,
            last_executed_at: SimTime::ZERO,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Timestamp of the last executed event ([`SimTime::ZERO`] before any
    /// event ran). Unlike [`now`](Engine::now), a [`run_until`]
    /// (Engine::run_until) deadline does not advance this, so it reports
    /// where the *work* ended rather than where the clock was parked.
    #[inline]
    pub fn last_executed_at(&self) -> SimTime {
        self.last_executed_at
    }

    /// Number of *live* events still pending. Cancelled events are
    /// physically removed from the heap, so — unlike the old tombstone
    /// engine — this never overstates queue depth.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.heap.len()
    }

    /// Cancelled-but-unpopped events still occupying queue slots (the
    /// quantity the old tombstone engine silently folded into
    /// `pending_events`). The indexed heap removes cancelled entries
    /// immediately, so this is always zero; it is exposed so reports can
    /// state that fact rather than assume it.
    #[inline]
    pub fn dead_pending(&self) -> usize {
        0
    }

    /// Pops that found a cancelled event (zero by construction; see
    /// [`QueueStats::dead_pops`]).
    #[inline]
    pub fn dead_event_pops(&self) -> u64 {
        self.dead_pops
    }

    /// Maximum number of simultaneously live events observed so far.
    #[inline]
    pub fn peak_heap_depth(&self) -> usize {
        self.peak_depth
    }

    /// Total events ever scheduled.
    #[inline]
    pub fn scheduled_events(&self) -> u64 {
        self.scheduled_total
    }

    /// Events physically removed by [`cancel`](Engine::cancel) or
    /// [`cancel_key`](Engine::cancel_key) (including keyed re-arm
    /// replacements).
    #[inline]
    pub fn cancelled_events(&self) -> u64 {
        self.cancelled_total
    }

    /// Keyed timer slots currently armed.
    #[inline]
    pub fn keyed_timers(&self) -> usize {
        self.keyed.len()
    }

    /// Snapshot of every queue counter.
    pub fn queue_stats(&self) -> QueueStats {
        QueueStats {
            live: self.heap.len(),
            dead_pending: self.dead_pending(),
            executed: self.executed,
            dead_pops: self.dead_pops,
            peak_depth: self.peak_depth,
            scheduled: self.scheduled_total,
            cancelled: self.cancelled_total,
            replaced: self.replaced_total,
            keyed_live: self.keyed.len(),
        }
    }

    /// Number of event pops that violated clock monotonicity. Counted
    /// only when the crate is built with the `checks` feature; without it
    /// this always returns zero (the condition is still a `debug_assert`
    /// in debug builds).
    #[inline]
    pub fn monotonicity_violations(&self) -> u64 {
        self.monotonicity_violations
    }

    /// Validates one popped event timestamp against the clock.
    #[inline]
    fn check_pop_monotone(&mut self, at: SimTime) {
        #[cfg(feature = "checks")]
        if at < self.now {
            self.monotonicity_violations += 1;
        }
        #[cfg(not(feature = "checks"))]
        debug_assert!(at >= self.now, "event queue went backwards");
        let _ = at;
    }

    // ------------------------------------------------------------------
    // Indexed-heap plumbing
    // ------------------------------------------------------------------

    /// Resolves an id to the heap index of its live event, or `None` if
    /// the event already fired, was cancelled, or the slot was recycled.
    #[inline]
    fn live_idx(&self, id: EventId) -> Option<usize> {
        let slot = self.slots.get(id.slot())?;
        if slot.generation == id.generation() && slot.idx != Slot::FREE {
            Some(slot.idx)
        } else {
            None
        }
    }

    #[inline]
    fn set_pos(&mut self, idx: usize) {
        self.slots[self.heap[idx].id.slot()].idx = idx;
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.heap[idx].rank() < self.heap[parent].rank() {
                self.heap.swap(idx, parent);
                self.set_pos(idx);
                idx = parent;
            } else {
                break;
            }
        }
        self.set_pos(idx);
    }

    fn sift_down(&mut self, mut idx: usize) {
        let len = self.heap.len();
        loop {
            let l = 2 * idx + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let smallest = if r < len && self.heap[r].rank() < self.heap[l].rank() {
                r
            } else {
                l
            };
            if self.heap[smallest].rank() < self.heap[idx].rank() {
                self.heap.swap(idx, smallest);
                self.set_pos(idx);
                idx = smallest;
            } else {
                break;
            }
        }
        self.set_pos(idx);
    }

    /// Physically removes the entry at heap index `idx`, frees its arena
    /// slot and restores the heap property; returns the removed entry.
    fn remove_at(&mut self, idx: usize) -> Entry<W> {
        let last = self.heap.len() - 1;
        self.heap.swap(idx, last);
        let entry = self
            .heap
            .pop()
            .expect("invariant: heap non-empty, just swapped idx with last");
        let slot = entry.id.slot();
        self.slots[slot].generation = self.slots[slot].generation.wrapping_add(1);
        self.slots[slot].idx = Slot::FREE;
        self.free.push(slot as u32);
        if idx < self.heap.len() {
            // The displaced tail entry may need to move either way. If
            // sift_up moves it, it became smaller than its old parent and
            // therefore than everything below its new slot, so the
            // follow-up sift_down is a no-op; the two calls together
            // restore the heap property from any single displacement.
            let moved = self.heap[idx].id.slot();
            self.set_pos(idx);
            self.sift_up(idx);
            let cur = self.slots[moved].idx;
            self.sift_down(cur);
        }
        entry
    }

    /// Detaches an entry's keyed-slot registration (if this id is still
    /// the one the key maps to).
    fn unlink_key(&mut self, entry_key: Option<TimerKey>, id: EventId) {
        if let Some(key) = entry_key {
            if self.keyed.get(&key) == Some(&id) {
                self.keyed.remove(&key);
            }
        }
    }

    fn insert(
        &mut self,
        at: SimTime,
        key: Option<TimerKey>,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    idx: Slot::FREE,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let id = EventId::pack(slot, self.slots[slot as usize].generation);
        self.heap.push(Entry {
            at,
            seq,
            id,
            key,
            run: Box::new(f),
        });
        let idx = self.heap.len() - 1;
        self.slots[slot as usize].idx = idx;
        self.sift_up(idx);
        self.peak_depth = self.peak_depth.max(self.heap.len());
        id
    }

    fn pop(&mut self) -> Option<Entry<W>> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.remove_at(0);
        self.unlink_key(entry.key, entry.id);
        Some(entry)
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Schedules `f` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past (`at < self.now()`): rewinding the
    /// clock would silently corrupt causality, so it is a programming error.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.insert(at, None, f)
    }

    /// Schedules `f` to run after relative delay `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.insert(self.now + delay, None, f)
    }

    /// Schedules `f` at absolute time `at` under timer slot `key`,
    /// *replacing* any event currently armed under that key (the old
    /// event is physically removed and will never fire). This is the
    /// re-arm semantics protocol timers want: no gen-guarded no-op events
    /// left behind in the queue.
    pub fn schedule_keyed_at(
        &mut self,
        key: TimerKey,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        if let Some(&old_id) = self.keyed.get(&key) {
            if let Some(idx) = self.live_idx(old_id) {
                self.remove_at(idx);
                self.replaced_total += 1;
            }
            self.keyed.remove(&key);
        }
        let id = self.insert(at, Some(key), f);
        self.keyed.insert(key, id);
        id
    }

    /// Schedules `f` after `delay` under timer slot `key`; see
    /// [`schedule_keyed_at`](Engine::schedule_keyed_at).
    pub fn schedule_keyed_in(
        &mut self,
        key: TimerKey,
        delay: SimTime,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_keyed_at(key, self.now + delay, f)
    }

    /// True if an event is currently armed under `key`.
    pub fn key_armed(&self, key: TimerKey) -> bool {
        self.keyed.contains_key(&key)
    }

    /// Fire time of the event armed under `key`, if any.
    pub fn key_deadline(&self, key: TimerKey) -> Option<SimTime> {
        let id = self.keyed.get(&key)?;
        let idx = self.live_idx(*id)?;
        Some(self.heap[idx].at)
    }

    /// Cancels the event armed under timer slot `key`, physically
    /// removing it from the heap. Returns `true` if one was armed.
    pub fn cancel_key(&mut self, key: TimerKey) -> bool {
        let Some(id) = self.keyed.remove(&key) else {
            return false;
        };
        if let Some(idx) = self.live_idx(id) {
            self.remove_at(idx);
            self.cancelled_total += 1;
            true
        } else {
            false
        }
    }

    /// Cancels a previously scheduled event, physically removing it from
    /// the heap in O(log n).
    ///
    /// Returns `true` if the event had not yet fired (and therefore will
    /// not fire). Cancelling an already-executed or already-cancelled event
    /// returns `false` and is harmless.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(idx) = self.live_idx(id) else {
            return false;
        };
        let entry = self.remove_at(idx);
        self.unlink_key(entry.key, entry.id);
        self.cancelled_total += 1;
        true
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Runs events until the queue is empty.
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Runs events whose time is `<= deadline`, then stops.
    ///
    /// The clock is left at the time of the last executed event (or moved to
    /// `deadline` if that is later and the queue still holds future events).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            if let Some(head_at) = self.next_event_time() {
                if head_at > deadline {
                    break;
                }
            }
            // Pop rather than peek-then-pop: the head observed above is
            // whatever `pop` returns, with no window for it to vanish.
            let Some(ev) = self.pop() else {
                break;
            };
            self.check_pop_monotone(ev.at);
            self.now = ev.at;
            self.last_executed_at = ev.at;
            self.executed += 1;
            (ev.run)(world, self);
        }
        if deadline != SimTime::MAX && self.now < deadline {
            self.now = deadline;
        }
    }

    /// Executes exactly one event if one is pending; returns whether it did.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(ev) = self.pop() else {
            return false;
        };
        self.check_pop_monotone(ev.at);
        self.now = ev.at;
        self.last_executed_at = ev.at;
        self.executed += 1;
        (ev.run)(world, self);
        true
    }

    /// Time of the next pending event, if any — an O(1) heap peek (every
    /// heap entry is live; cancellation removes physically).
    #[inline]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime::from_us(30), |w, _| w.push(3));
        eng.schedule_at(SimTime::from_us(10), |w, _| w.push(1));
        eng.schedule_at(SimTime::from_us(20), |w, _| w.push(2));
        let mut out = Vec::new();
        eng.run(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(eng.now(), SimTime::from_us(30));
        assert_eq!(eng.executed_events(), 3);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let t = SimTime::from_us(5);
        for i in 0..100 {
            eng.schedule_at(t, move |w, _| w.push(i));
        }
        let mut out = Vec::new();
        eng.run(&mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut eng: Engine<Vec<SimTime>> = Engine::new();
        fn tick(w: &mut Vec<SimTime>, eng: &mut Engine<Vec<SimTime>>) {
            w.push(eng.now());
            if w.len() < 4 {
                eng.schedule_in(SimTime::from_us(7), tick);
            }
        }
        eng.schedule_at(SimTime::ZERO, tick);
        let mut out = Vec::new();
        eng.run(&mut out);
        assert_eq!(
            out,
            vec![
                SimTime::ZERO,
                SimTime::from_us(7),
                SimTime::from_us(14),
                SimTime::from_us(21)
            ]
        );
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_at(SimTime::from_us(10), |w, _| *w += 1);
        eng.schedule_at(SimTime::from_us(20), |w, _| *w += 100);
        assert!(eng.cancel(id));
        assert!(!eng.cancel(id), "double cancel reports false");
        let mut w = 0;
        eng.run(&mut w);
        assert_eq!(w, 100);
    }

    #[test]
    fn cancel_after_execution_is_false() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_at(SimTime::from_us(1), |w, _| *w += 1);
        let mut w = 0;
        eng.run(&mut w);
        assert!(!eng.cancel(id));
    }

    #[test]
    fn cancel_physically_removes() {
        let mut eng: Engine<u32> = Engine::new();
        let ids: Vec<_> = (0..10)
            .map(|i| eng.schedule_at(SimTime::from_us(i), |_, _| {}))
            .collect();
        assert_eq!(eng.pending_events(), 10);
        for id in &ids[..5] {
            assert!(eng.cancel(*id));
        }
        // No tombstones: the queue depth drops immediately.
        assert_eq!(eng.pending_events(), 5);
        assert_eq!(eng.dead_pending(), 0);
        assert_eq!(eng.cancelled_events(), 5);
        let mut w = 0;
        eng.run(&mut w);
        assert_eq!(eng.executed_events(), 5);
        assert_eq!(eng.dead_event_pops(), 0);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_at(SimTime::from_us(10), |w, _| w.push(1));
        eng.schedule_at(SimTime::from_us(30), |w, _| w.push(2));
        let mut out = Vec::new();
        eng.run_until(&mut out, SimTime::from_us(20));
        assert_eq!(out, vec![1]);
        assert_eq!(eng.now(), SimTime::from_us(20));
        eng.run(&mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn step_executes_one_event() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime::from_us(1), |w, _| *w += 1);
        eng.schedule_at(SimTime::from_us(2), |w, _| *w += 1);
        let mut w = 0;
        assert!(eng.step(&mut w));
        assert_eq!(w, 1);
        assert!(eng.step(&mut w));
        assert!(!eng.step(&mut w));
        assert_eq!(w, 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime::from_us(10), |_, eng| {
            eng.schedule_at(SimTime::from_us(5), |_, _| {});
        });
        let mut w = 0;
        eng.run(&mut w);
    }

    #[test]
    fn next_event_time_skips_cancelled() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_at(SimTime::from_us(5), |_, _| {});
        eng.schedule_at(SimTime::from_us(9), |_, _| {});
        assert_eq!(eng.next_event_time(), Some(SimTime::from_us(5)));
        eng.cancel(id);
        assert_eq!(eng.next_event_time(), Some(SimTime::from_us(9)));
    }

    #[test]
    fn world_with_shared_state() {
        // Regression test: handlers may close over Rc'd state.
        let hits = Rc::new(RefCell::new(0));
        let mut eng: Engine<()> = Engine::new();
        for _ in 0..10 {
            let h = Rc::clone(&hits);
            eng.schedule_in(SimTime::from_us(1), move |_, _| *h.borrow_mut() += 1);
        }
        eng.run(&mut ());
        assert_eq!(*hits.borrow(), 10);
    }

    #[test]
    fn keyed_rearm_replaces_previous_event() {
        let key = TimerKey(1, 7);
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_keyed_at(key, SimTime::from_us(10), |w, _| w.push(1));
        assert!(eng.key_armed(key));
        assert_eq!(eng.key_deadline(key), Some(SimTime::from_us(10)));
        // Re-arm: the first event must never fire.
        eng.schedule_keyed_at(key, SimTime::from_us(20), |w, _| w.push(2));
        assert_eq!(eng.pending_events(), 1, "replace, not accumulate");
        assert_eq!(eng.key_deadline(key), Some(SimTime::from_us(20)));
        let mut out = Vec::new();
        eng.run(&mut out);
        assert_eq!(out, vec![2]);
        assert!(!eng.key_armed(key));
        assert_eq!(eng.queue_stats().replaced, 1);
    }

    #[test]
    fn cancel_key_removes_event() {
        let key = TimerKey(3, 4);
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_keyed_in(key, SimTime::from_us(5), |w, _| *w += 1);
        assert!(eng.key_armed(key));
        assert!(eng.cancel_key(key));
        assert!(!eng.cancel_key(key), "double cancel reports false");
        assert_eq!(eng.pending_events(), 0);
        let mut w = 0;
        eng.run(&mut w);
        assert_eq!(w, 0, "cancelled keyed timer never fires");
    }

    #[test]
    fn cancel_by_id_frees_keyed_slot() {
        let key = TimerKey(2, 2);
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_keyed_in(key, SimTime::from_us(5), |w, _| *w += 1);
        assert!(eng.cancel(id));
        assert!(!eng.key_armed(key), "id cancel unlinks the key slot");
        assert_eq!(eng.keyed_timers(), 0);
    }

    #[test]
    fn keyed_slot_clears_after_fire() {
        let key = TimerKey(9, 9);
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_keyed_in(key, SimTime::from_us(5), |w, _| *w += 1);
        let mut w = 0;
        eng.run(&mut w);
        assert_eq!(w, 1);
        assert!(!eng.key_armed(key), "slot is free after the event fires");
        assert_eq!(eng.keyed_timers(), 0);
    }

    #[test]
    fn stale_ids_do_not_alias_recycled_slots() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule_at(SimTime::from_us(1), |w, _| *w += 1);
        assert!(eng.cancel(a));
        // The freed slot is recycled for the next event; the stale handle
        // must not resolve to (and cancel) the new occupant.
        let b = eng.schedule_at(SimTime::from_us(2), |w, _| *w += 10);
        assert_ne!(a, b);
        assert!(!eng.cancel(a), "stale id after recycle is inert");
        let mut w = 0;
        eng.run(&mut w);
        assert_eq!(w, 10);
        assert!(!eng.cancel(b), "fired id is inert");
    }

    #[test]
    fn heavy_churn_keeps_physical_cancellation_invariants() {
        // Schedule/cancel storm across interleaved times: the arena must
        // keep ids straight while slots recycle constantly.
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut live = Vec::new();
        for round in 0..50u64 {
            for i in 0..20u64 {
                let tag = round * 100 + i;
                let id =
                    eng.schedule_at(SimTime::from_us(1000 + (tag % 37)), move |w, _| w.push(tag));
                live.push((tag, id));
            }
            // Cancel every third outstanding event.
            let mut idx = 0;
            live.retain(|&(_, id)| {
                idx += 1;
                if idx % 3 == 0 {
                    assert!(eng.cancel(id));
                    false
                } else {
                    true
                }
            });
        }
        let expect: Vec<u64> = {
            let mut v: Vec<(u64, EventId)> = live.clone();
            // Equal times fire in insertion order; sort by (time, tag)
            // since tags are assigned in insertion order per time bucket.
            v.sort_by_key(|&(tag, _)| (1000 + (tag % 37), tag));
            v.into_iter().map(|(tag, _)| tag).collect()
        };
        let mut out = Vec::new();
        eng.run(&mut out);
        assert_eq!(out, expect);
        assert_eq!(eng.dead_event_pops(), 0);
        assert_eq!(eng.dead_pending(), 0);
        assert_eq!(eng.pending_events(), 0);
    }

    #[test]
    fn last_executed_at_ignores_deadline_parking() {
        let mut eng: Engine<u32> = Engine::new();
        assert_eq!(eng.last_executed_at(), SimTime::ZERO);
        eng.schedule_at(SimTime::from_us(10), |w, _| *w += 1);
        let mut w = 0;
        eng.run_until(&mut w, SimTime::from_us(50));
        // The clock parks at the deadline; the work ended at 10 µs.
        assert_eq!(eng.now(), SimTime::from_us(50));
        assert_eq!(eng.last_executed_at(), SimTime::from_us(10));
        eng.schedule_at(SimTime::from_us(60), |w, _| *w += 1);
        assert!(eng.step(&mut w));
        assert_eq!(eng.last_executed_at(), SimTime::from_us(60));
    }

    #[test]
    fn queue_stats_track_churn() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule_at(SimTime::from_us(1), |_, _| {});
        eng.schedule_at(SimTime::from_us(2), |_, _| {});
        assert_eq!(eng.peak_heap_depth(), 2);
        eng.cancel(a);
        let mut w = 0;
        eng.run(&mut w);
        let s = eng.queue_stats();
        assert_eq!(s.scheduled, 2);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.executed, 1);
        assert_eq!(s.dead_pops, 0);
        assert_eq!(s.peak_depth, 2);
        assert_eq!(s.live, 0);
        assert_eq!(format!("{s}"), s.to_string());
    }
}
