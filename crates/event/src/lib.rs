//! # ibsim-event
//!
//! Deterministic discrete-event simulation (DES) kernel for the `ibsim`
//! family of crates, which together form a packet-level InfiniBand /
//! On-Demand-Paging simulator.
//!
//! The kernel is deliberately tiny: a virtual clock ([`SimTime`]) and an
//! event queue ([`Engine`]) whose events are boxed closures over a
//! user-supplied *world* type. Determinism guarantees:
//!
//! * integer nanosecond timestamps — no floating-point drift,
//! * ties broken by insertion order — no hash-iteration nondeterminism,
//! * single-threaded execution — no scheduler races.
//!
//! # Examples
//!
//! A two-node "ping" that bounces a counter back and forth:
//!
//! ```
//! use ibsim_event::{Engine, SimTime};
//!
//! struct World { pings: u32 }
//!
//! fn ping(w: &mut World, eng: &mut Engine<World>) {
//!     w.pings += 1;
//!     if w.pings < 3 {
//!         eng.schedule_in(SimTime::from_us(2), ping);
//!     }
//! }
//!
//! let mut eng = Engine::new();
//! eng.schedule_at(SimTime::ZERO, ping);
//! let mut world = World { pings: 0 };
//! eng.run(&mut world);
//! assert_eq!(world.pings, 3);
//! assert_eq!(eng.now(), SimTime::from_us(4));
//! ```

#![warn(missing_docs)]

mod engine;
mod rng;
mod shard;
mod time;

pub use engine::{Engine, EventId, QueueStats, TimerKey};
pub use rng::SplitMix64;
pub use shard::{epoch_end, injection_sort_key, EpochBarrier, PoisonGuard, POISON_PAYLOAD};
pub use time::SimTime;
