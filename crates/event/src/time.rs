//! Simulated time.
//!
//! All of `ibsim` runs on a single virtual clock measured in integer
//! nanoseconds. Integer time keeps the simulation exactly reproducible:
//! there is no floating-point accumulation error, and equal timestamps
//! compare equal on every platform.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point on the simulated clock, in nanoseconds since simulation start.
///
/// `SimTime` doubles as a duration type: the difference of two instants is
/// again a `SimTime`. This mirrors how hardware timestamp counters are used
/// and keeps arithmetic ergonomic inside protocol state machines.
///
/// # Examples
///
/// ```
/// use ibsim_event::SimTime;
///
/// let t = SimTime::from_us(4) + SimTime::from_ns(96);
/// assert_eq!(t.as_ns(), 4_096);
/// assert_eq!(format!("{t}"), "4.096us");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start) / the zero duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from a floating-point number of microseconds,
    /// rounding to the nearest nanosecond.
    ///
    /// Convenient for constants given in the paper such as `4.096 µs`.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        SimTime((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Creates a time from a floating-point number of milliseconds.
    #[inline]
    pub fn from_ms_f64(ms: f64) -> Self {
        SimTime((ms * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiplies a duration by a dimensionless floating-point factor,
    /// rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimTime {
        SimTime((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Multiplies a duration by a per-mille factor in pure integer
    /// arithmetic, rounding half up to the nearest nanosecond:
    /// `mul_permille(1870)` scales by 1.87. This is the sanctioned
    /// sim-path alternative to [`SimTime::mul_f64`] (see the
    /// no-float-in-sim-path lint rule): it is exact, platform-independent,
    /// and cannot drift.
    #[inline]
    pub fn mul_permille(self, permille: u64) -> SimTime {
        SimTime((self.0.saturating_mul(permille).saturating_add(500)) / 1000)
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    /// Formats with the most natural unit: `ns`, `us`, `ms` or `s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{}us", trim(ns as f64 / 1e3))
        } else if ns < 1_000_000_000 {
            write!(f, "{}ms", trim(ns as f64 / 1e6))
        } else {
            write!(f, "{}s", trim(ns as f64 / 1e9))
        }
    }
}

/// Formats a float with up to three decimals, trimming trailing zeros.
fn trim(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
        assert_eq!(SimTime::from_us_f64(4.096), SimTime::from_ns(4_096));
        assert_eq!(SimTime::from_ms_f64(1.28), SimTime::from_us(1_280));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(a * 3, SimTime::from_us(30));
        assert_eq!(a / 2, SimTime::from_us(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.mul_f64(1.5), SimTime::from_us(15));
    }

    #[test]
    fn mul_permille_matches_mul_f64_on_sim_factors() {
        // The factors actually used in sim paths: timeout stretches
        // (1.87 / 1.79), the RNR stretch (3.5), and timer-load scaling.
        for (pm, f) in [
            (1870u64, 1.87f64),
            (1790, 1.79),
            (3500, 3.5),
            (1000, 1.0),
            (1002, 1.002),
        ] {
            for ns in [
                0u64,
                1,
                999,
                4_096,
                16_384,
                1_280_000,
                4_096 << 18,
                655_360_000,
            ] {
                let t = SimTime::from_ns(ns);
                assert_eq!(t.mul_permille(pm), t.mul_f64(f), "ns={ns} pm={pm} f={f}");
            }
        }
        // Half-up rounding: 1ns * 1.5 rounds to 2ns.
        assert_eq!(SimTime::from_ns(1).mul_permille(1500), SimTime::from_ns(2));
        // Saturates instead of overflowing.
        assert_eq!(
            SimTime::MAX.mul_permille(3500),
            SimTime::from_ns(u64::MAX / 1000)
        );
    }

    #[test]
    fn min_max_sum() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(total, SimTime::from_us(18));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ns(999).to_string(), "999ns");
        assert_eq!(SimTime::from_us(4).to_string(), "4us");
        assert_eq!(SimTime::from_ns(4_096).to_string(), "4.096us");
        assert_eq!(SimTime::from_ms(500).to_string(), "500ms");
        assert_eq!(SimTime::from_ms(1_500).to_string(), "1.5s");
    }

    #[test]
    fn float_accessors() {
        let t = SimTime::from_ms(2);
        assert!((t.as_ms_f64() - 2.0).abs() < 1e-12);
        assert!((t.as_us_f64() - 2000.0).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ns(1)), None);
        assert_eq!(
            SimTime::from_ns(1).checked_add(SimTime::from_ns(2)),
            Some(SimTime::from_ns(3))
        );
    }
}
