//! Cross-shard synchronization for the conservative-lookahead PDES layer.
//!
//! A sharded run gives every shard its own [`Engine`](crate::Engine) and
//! lets the shards advance in lock-step *epochs*: each shard executes its
//! local events up to the epoch boundary, deposits any cross-shard
//! traffic, and then meets the other shards at an [`EpochBarrier`]. A
//! designated leader (shard 0 by convention) merges the deposits in a
//! deterministic order and publishes the next epoch boundary before the
//! shards are released again.
//!
//! Two pieces live here because they are engine-level, not protocol-level:
//!
//! * [`EpochBarrier`] — a generation-counted rendezvous with *poisoning*:
//!   when one shard panics, its [`PoisonGuard`] marks the barrier so
//!   every other shard unwinds immediately instead of deadlocking on a
//!   rendezvous that can never complete.
//! * [`injection_sort_key`] — the deterministic merge order for events
//!   injected across shards, `(fire_time, src_shard, seq)`. Sorting
//!   injections by this key before scheduling them reproduces the
//!   sequential engine's insertion-order tiebreak bit-for-bit.
//!
//! The epoch math itself is two lines (`epoch width = min lookahead`,
//! `epoch end = earliest pending work + width`); [`epoch_end`] keeps it
//! in one audited place because the "no event may cross a boundary it
//! was sent before" proof hangs off it.

use std::sync::{Condvar, Mutex, MutexGuard};

use crate::time::SimTime;

/// Panic payload used when a barrier wait is abandoned because another
/// shard poisoned the rendezvous. Runner threads treat panics carrying
/// this exact message as *secondary* failures and re-raise the original
/// panic instead.
pub const POISON_PAYLOAD: &str = "epoch barrier poisoned";

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// A reusable rendezvous point for `parties` shard threads, with
/// poisoning so a panicking shard cannot strand the others.
///
/// Unlike [`std::sync::Barrier`], a wait on a poisoned barrier panics
/// (with [`POISON_PAYLOAD`]) rather than blocking forever, and
/// [`EpochBarrier::poison`] wakes every current waiter. The barrier is
/// generation-counted and safe to reuse across any number of epochs.
pub struct EpochBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl EpochBarrier {
    /// Creates a barrier for `parties` participating shard threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero: a rendezvous nobody attends can
    /// never trip.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "epoch barrier needs at least one party");
        EpochBarrier {
            parties,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participating shard threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Locks the state, absorbing mutex poisoning: the barrier has its
    /// own explicit `poisoned` flag with well-defined semantics, and the
    /// guarded state stays consistent under every early unlock path.
    fn lock(&self) -> MutexGuard<'_, BarrierState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Blocks until all `parties` shards have arrived, then releases
    /// them together.
    ///
    /// # Panics
    ///
    /// Panics with [`POISON_PAYLOAD`] if the barrier is (or becomes)
    /// poisoned — the rendezvous can no longer complete because another
    /// shard died.
    pub fn wait(&self) {
        let mut st = self.lock();
        if st.poisoned {
            panic!("{POISON_PAYLOAD}");
        }
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if st.poisoned {
            panic!("{POISON_PAYLOAD}");
        }
    }

    /// Marks the barrier unusable and wakes every waiter, which then
    /// panics out of [`EpochBarrier::wait`]. Idempotent.
    pub fn poison(&self) {
        let mut st = self.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }
}

/// Poisons an [`EpochBarrier`] on drop unless defused.
///
/// Each shard thread holds one guard for the duration of its run loop
/// and calls [`PoisonGuard::defuse`] on clean completion. Any panic that
/// unwinds the thread drops the live guard, poisoning the barrier so
/// the sibling shards unwind too instead of waiting forever.
pub struct PoisonGuard<'a> {
    barrier: &'a EpochBarrier,
    defused: bool,
}

impl<'a> PoisonGuard<'a> {
    /// Arms a guard over `barrier`.
    pub fn new(barrier: &'a EpochBarrier) -> Self {
        PoisonGuard {
            barrier,
            defused: false,
        }
    }

    /// Disarms the guard: the shard finished cleanly.
    pub fn defuse(mut self) {
        self.defused = true;
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if !self.defused {
            self.barrier.poison();
        }
    }
}

/// Deterministic merge order for cross-shard injections.
///
/// The sequential engine breaks timestamp ties by insertion order; a
/// sharded run reproduces that order by sorting every injection destined
/// for a shard by `(fire_time, src_shard, seq)` — `seq` being the
/// sender's own monotone per-shard counter — before scheduling them, so
/// they enter the destination heap in the same relative order the
/// sequential run would have created them.
#[inline]
pub fn injection_sort_key(fire_time: SimTime, src_shard: usize, seq: u64) -> (SimTime, usize, u64) {
    (fire_time, src_shard, seq)
}

/// The next epoch boundary: the earliest pending work anywhere in the
/// simulation plus the conservative lookahead `width`.
///
/// Soundness: any cross-shard effect generated by an event at time
/// `t ≥ min_next` lands at `t + lookahead ≥ min_next + width`, i.e. at
/// or after the boundary — so executing every shard's local events
/// strictly *before* the boundary can never miss an incoming injection.
/// A `width` of `None` means no cross-shard coupling exists at all and
/// the epoch extends to the end of time.
#[inline]
pub fn epoch_end(min_next: SimTime, width: Option<SimTime>) -> SimTime {
    match width {
        Some(w) => min_next + w,
        None => SimTime::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_releases_all_parties_each_generation() {
        let barrier = Arc::new(EpochBarrier::new(4));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = Arc::clone(&barrier);
                let h = Arc::clone(&hits);
                s.spawn(move || {
                    for _ in 0..10 {
                        b.wait();
                        h.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 40);
        assert_eq!(barrier.parties(), 4);
        assert!(!barrier.is_poisoned());
    }

    #[test]
    fn poison_wakes_waiters_with_payload() {
        let barrier = Arc::new(EpochBarrier::new(2));
        let b = Arc::clone(&barrier);
        let waiter = std::thread::spawn(move || b.wait());
        // The waiter blocks (only 1 of 2 parties); poisoning must wake
        // it with the sentinel panic payload.
        barrier.poison();
        let err = waiter
            .join()
            .expect_err("poisoned wait must panic, not return");
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| err.downcast_ref::<&str>().copied())
            .expect("invariant: panic payload is a string");
        assert_eq!(msg, POISON_PAYLOAD);
        assert!(barrier.is_poisoned());
    }

    #[test]
    fn wait_after_poison_panics_immediately() {
        let barrier = EpochBarrier::new(2);
        barrier.poison();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| barrier.wait()));
        assert!(res.is_err());
    }

    #[test]
    fn poison_guard_poisons_unless_defused() {
        let barrier = EpochBarrier::new(2);
        {
            let guard = PoisonGuard::new(&barrier);
            guard.defuse();
        }
        assert!(!barrier.is_poisoned(), "defused guard must not poison");
        {
            let _guard = PoisonGuard::new(&barrier);
        }
        assert!(barrier.is_poisoned(), "dropped live guard must poison");
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_party_barrier_rejected() {
        let _ = EpochBarrier::new(0);
    }

    #[test]
    fn injection_key_orders_time_then_shard_then_seq() {
        let mut keys = vec![
            injection_sort_key(SimTime::from_ns(5), 1, 0),
            injection_sort_key(SimTime::from_ns(5), 0, 9),
            injection_sort_key(SimTime::from_ns(4), 2, 3),
            injection_sort_key(SimTime::from_ns(5), 0, 2),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                (SimTime::from_ns(4), 2, 3),
                (SimTime::from_ns(5), 0, 2),
                (SimTime::from_ns(5), 0, 9),
                (SimTime::from_ns(5), 1, 0),
            ]
        );
    }

    #[test]
    fn epoch_end_math() {
        assert_eq!(
            epoch_end(SimTime::from_us(10), Some(SimTime::from_ns(1100))),
            SimTime::from_us(10) + SimTime::from_ns(1100)
        );
        assert_eq!(epoch_end(SimTime::from_us(10), None), SimTime::MAX);
    }
}
