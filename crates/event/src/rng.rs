//! A tiny deterministic PRNG for simulation inputs.
//!
//! The simulator must be a pure function of its seeds: no wall-clock
//! entropy and no external crates whose output could change between
//! versions. [`SplitMix64`] (Steele, Lea & Flood, OOPSLA 2014) is the
//! standard 64-bit mixer used to seed larger generators; its output
//! quality is more than sufficient for jitter, stagger, and loss draws,
//! and its implementation is small enough to audit at a glance.
//!
//! The fabric's loss models keep their own xorshift generator
//! (`ibsim_fabric::Xorshift64Star`) for seed-stability of existing
//! experiments; new code should prefer this one.

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use ibsim_event::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// assert!(a.next_below(10) < 10);
/// let x = a.range(5, 8);
/// assert!((5..8).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Unlike xorshift variants, every
    /// seed (including zero) yields a full-quality stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SplitMix64::new(0);
        let vals: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        // SplitMix64 has no all-zero fixed point.
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        // Not a statistical test suite — just a sanity screen that all
        // residue classes are hit.
        let mut r = SplitMix64::new(3);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for c in counts {
            assert!(c > 700, "suspiciously skewed: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
