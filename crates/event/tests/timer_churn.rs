//! Timer-churn stress test: the exact workload that leaked under the old
//! tombstone queue. A seeded loop arms, cancels, and re-arms thousands of
//! keyed timers over wrapping 24-bit PSN-style keys; afterwards the heap
//! must hold exactly the live timers and nothing else, two identical runs
//! must behave identically, and draining must leave zero residue.

use ibsim_event::{Engine, SimTime, SplitMix64, TimerKey};

const PSN_MODULUS: u64 = 1 << 24;
const HOSTS: u64 = 4;
const QPS: u64 = 8;
const ROUNDS: usize = 10_000;

#[derive(Default)]
struct World {
    fires: Vec<(u64, u64)>,
}

/// A keyed timer slot mimicking the cluster's (family, host, qpn, psn)
/// layout, with the PSN component wrapping mod 2^24.
fn slot(host: u64, qpn: u64, psn: u64) -> TimerKey {
    TimerKey(host, (qpn << 32) | (psn % PSN_MODULUS))
}

/// One full churn run; returns (fire log, final stats tuple).
#[allow(clippy::type_complexity)]
fn churn(seed: u64) -> (Vec<(u64, u64)>, (u64, u64, u64, u64, u64)) {
    let mut rng = SplitMix64::new(seed);
    let mut eng: Engine<World> = Engine::new();
    let mut world = World::default();

    // PSNs deliberately start near the 24-bit wrap point so the modular
    // reduction in `slot` is exercised, not just defined.
    let mut psn = PSN_MODULUS - 64;

    for round in 0..ROUNDS {
        let host = rng.next_below(HOSTS);
        let qpn = rng.next_below(QPS);
        // ACK/RNR-style slot: one per (host, qpn), so re-arms collide and
        // exercise replace-on-rearm.
        let ack_key = slot(host, qpn, 0);
        // Stall-tick-style slot: keyed by a wrapping 24-bit PSN, so the
        // modular key space is exercised too.
        let stall_key = slot(host, qpn, psn);
        psn = psn.wrapping_add(1 + rng.next_below(3));

        match rng.next_below(10) {
            // 40 %: (re-)arm the ACK slot — replaces any previous event.
            0..=3 => {
                let delay = SimTime::from_ns(1 + rng.next_below(5_000));
                let tag = (round as u64, host);
                eng.schedule_keyed_in(ack_key, delay, move |w: &mut World, _| {
                    w.fires.push(tag);
                });
            }
            // 20 %: arm a fresh stall tick under a wrapping PSN key.
            4..=5 => {
                let delay = SimTime::from_ns(1 + rng.next_below(5_000));
                let tag = (round as u64, qpn);
                eng.schedule_keyed_in(stall_key, delay, move |w: &mut World, _| {
                    w.fires.push(tag);
                });
            }
            // 20 %: cancel by key (may be a miss — that must be benign).
            6..=7 => {
                eng.cancel_key(if rng.next_bool() { ack_key } else { stall_key });
            }
            // 10 %: cancel-then-immediately-rearm, the retransmit pattern.
            8 => {
                eng.cancel_key(ack_key);
                let delay = SimTime::from_ns(1 + rng.next_below(5_000));
                let tag = (round as u64, qpn);
                eng.schedule_keyed_in(ack_key, delay, move |w: &mut World, _| {
                    w.fires.push(tag);
                });
            }
            // 10 %: let simulated time advance so some timers fire.
            _ => {
                let until = eng.now() + SimTime::from_ns(rng.next_below(2_000));
                eng.run_until(&mut world, until);
            }
        }

        // The core leak invariant: every pending event is live, and every
        // keyed slot maps to exactly one of them.
        assert_eq!(eng.dead_pending(), 0, "round {round}: dead entries leaked");
        assert!(
            eng.keyed_timers() <= eng.pending_events(),
            "round {round}: more keyed slots than live events"
        );
    }

    // Drain completely: nothing may remain, live or otherwise.
    eng.run(&mut world);
    assert_eq!(eng.pending_events(), 0, "live events leaked after drain");
    assert_eq!(eng.keyed_timers(), 0, "keyed slots leaked after drain");
    assert_eq!(eng.dead_pending(), 0, "dead entries leaked after drain");

    let s = eng.queue_stats();
    // Conservation: everything scheduled either executed, was physically
    // cancelled, or was replaced by a re-arm of its slot.
    assert_eq!(
        s.scheduled,
        s.executed + s.cancelled + s.replaced,
        "event conservation violated: {s:?}"
    );
    // The whole point of the rewrite: popping never sees a tombstone.
    assert_eq!(s.dead_pops, 0, "dead-event pops on an indexed heap");

    (
        world.fires,
        (
            s.scheduled,
            s.executed,
            s.cancelled,
            s.replaced,
            s.peak_depth as u64,
        ),
    )
}

#[test]
fn churn_is_deterministic_and_leak_free() {
    let (fires_a, stats_a) = churn(0xDEC0DE);
    let (fires_b, stats_b) = churn(0xDEC0DE);
    assert_eq!(fires_a, fires_b, "same seed must give identical fire order");
    assert_eq!(stats_a, stats_b, "same seed must give identical counters");
    assert!(!fires_a.is_empty(), "scenario should actually fire timers");
    assert!(stats_a.3 > 0, "scenario should actually replace-on-rearm");
}

#[test]
fn churn_varies_with_seed() {
    let (fires_a, _) = churn(1);
    let (fires_b, _) = churn(2);
    assert_ne!(fires_a, fires_b, "different seeds should diverge");
}

#[test]
fn golden_trace_equality_under_interleaved_churn() {
    // A fixed foreground workload must produce a byte-identical fire log
    // whether or not unrelated keyed timers churn around it — i.e. churn
    // affects *capacity*, never *ordering* of surviving events.
    fn run(with_churn: bool) -> Vec<(u64, u64)> {
        let mut eng: Engine<World> = Engine::new();
        let mut world = World::default();
        for i in 0..64u64 {
            let at = SimTime::from_ns(100 + i * 37);
            eng.schedule_at(at, move |w: &mut World, _| w.fires.push((i, 0)));
        }
        if with_churn {
            // Arm-and-cancel background timers that never survive to fire.
            let mut rng = SplitMix64::new(9);
            for i in 0..1_000u64 {
                let key = slot(i % HOSTS, i % QPS, PSN_MODULUS - 8 + i);
                let delay = SimTime::from_ns(1 + rng.next_below(3_000));
                eng.schedule_keyed_in(key, delay, move |w: &mut World, _| {
                    w.fires.push((u64::MAX, i));
                });
                assert!(eng.cancel_key(key), "just armed, must cancel");
            }
        }
        eng.run(&mut world);
        world.fires
    }

    let quiet = run(false);
    let churned = run(true);
    assert_eq!(quiet, churned, "background churn perturbed the fire order");
    assert_eq!(quiet.len(), 64);
}
