//! Randomized tests of the DES kernel: ordering, cancellation, and
//! determinism invariants under arbitrary schedules.
//!
//! These were property-based (`proptest`) tests; they now run as seeded
//! loops over the in-tree [`SplitMix64`] generator so the suite needs no
//! external dependencies and every failure reproduces from its seed.

use ibsim_event::{Engine, SimTime, SplitMix64};

const CASES: u64 = 64;

/// Events always observe a monotonically non-decreasing clock, and all
/// of them run exactly once.
#[test]
fn clock_is_monotone() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC10C * 1000 + case);
        let n = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000)).collect();
        let mut eng: Engine<Vec<u64>> = Engine::new();
        for &t in &times {
            eng.schedule_at(SimTime::from_ns(t), move |w, eng| {
                w.push(eng.now().as_ns());
            });
        }
        let mut seen = Vec::new();
        eng.run(&mut seen);
        assert_eq!(seen.len(), times.len(), "case {case}");
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted, "case {case}");
    }
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn cancellation_is_exact() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xCA7CE1 * 1000 + case);
        let n = rng.range(1, 100) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(100_000)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();
        let mut eng: Engine<Vec<usize>> = Engine::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| eng.schedule_at(SimTime::from_ns(t), move |w, _| w.push(i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                assert!(eng.cancel(*id), "case {case}: fresh cancel succeeds");
            } else {
                expect.push(i);
            }
        }
        expect.sort_by_key(|&i| (times[i], i));
        let mut seen = Vec::new();
        eng.run(&mut seen);
        assert_eq!(seen, expect, "case {case}");
    }
}

/// `run_until` then `run` sees exactly the same events in the same order
/// as a single `run` — pausing the engine is transparent.
#[test]
fn run_until_is_transparent() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5117 * 1000 + case);
        let n = rng.range(1, 150) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000)).collect();
        let split = rng.next_below(1_000_000);
        let schedule = |eng: &mut Engine<Vec<(u64, usize)>>, times: &[u64]| {
            for (i, &t) in times.iter().enumerate() {
                eng.schedule_at(SimTime::from_ns(t), move |w, eng| {
                    w.push((eng.now().as_ns(), i));
                });
            }
        };
        let mut a: Engine<Vec<(u64, usize)>> = Engine::new();
        schedule(&mut a, &times);
        let mut one_shot = Vec::new();
        a.run(&mut one_shot);

        let mut b: Engine<Vec<(u64, usize)>> = Engine::new();
        schedule(&mut b, &times);
        let mut paused = Vec::new();
        b.run_until(&mut paused, SimTime::from_ns(split));
        b.run(&mut paused);

        assert_eq!(one_shot, paused, "case {case} (split {split})");
    }
}
