//! Property-based tests of the DES kernel: ordering, cancellation, and
//! determinism invariants under arbitrary schedules.

use ibsim_event::{Engine, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always observe a monotonically non-decreasing clock, and all
    /// of them run exactly once.
    #[test]
    fn clock_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        for &t in &times {
            eng.schedule_at(SimTime::from_ns(t), move |w, eng| {
                w.push(eng.now().as_ns());
            });
        }
        let mut seen = Vec::new();
        eng.run(&mut seen);
        prop_assert_eq!(seen.len(), times.len());
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&seen, &sorted);
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..100_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut eng: Engine<Vec<usize>> = Engine::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| eng.schedule_at(SimTime::from_ns(t), move |w, _| w.push(i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            let cancel = *cancel_mask.get(i).unwrap_or(&false);
            if cancel {
                prop_assert!(eng.cancel(*id));
            } else {
                expect.push(i);
            }
        }
        expect.sort_by_key(|&i| (times[i], i));
        let mut seen = Vec::new();
        eng.run(&mut seen);
        prop_assert_eq!(seen, expect);
    }

    /// `run_until` then `run` sees exactly the same events in the same
    /// order as a single `run` — pausing the engine is transparent.
    #[test]
    fn run_until_is_transparent(
        times in proptest::collection::vec(0u64..1_000_000, 1..150),
        split in 0u64..1_000_000,
    ) {
        let schedule = |eng: &mut Engine<Vec<(u64, usize)>>| {
            for (i, &t) in times.iter().enumerate() {
                eng.schedule_at(SimTime::from_ns(t), move |w, eng| {
                    w.push((eng.now().as_ns(), i));
                });
            }
        };
        let mut a: Engine<Vec<(u64, usize)>> = Engine::new();
        schedule(&mut a);
        let mut one_shot = Vec::new();
        a.run(&mut one_shot);

        let mut b: Engine<Vec<(u64, usize)>> = Engine::new();
        schedule(&mut b);
        let mut paused = Vec::new();
        b.run_until(&mut paused, SimTime::from_ns(split));
        b.run(&mut paused);

        prop_assert_eq!(one_shot, paused);
    }
}
