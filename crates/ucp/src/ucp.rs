//! The UCP communication layer.
//!
//! A deliberately UCX-shaped API on top of `ibsim-verbs`: workers,
//! endpoints, one-sided `get`/`put`, and tagged two-sided messaging with
//! an eager protocol for small messages and a READ-based rendezvous
//! protocol for large ones — the very READ path through which the paper's
//! applications (ArgoDSM over MPI RMA, SparkUCX) hit the ODP pitfalls.
//!
//! Like the UCX release the paper studied, the layer **prefers ODP by
//! default** for application memory ([`UcpConfig::odp`]), uses a minimal
//! RNR NAK delay of 0.96 ms and `C_ack = 18` (§VII).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use ibsim_event::SimTime;
use ibsim_verbs::{
    Cluster, DeviceProfile, HostId, MrDesc, MrMode, QpConfig, Qpn, ReadWr, RecvWr, SendWr, Sim,
    WcStatus, WrId, WriteWr,
};

use crate::proto::{EpId, MemSlice, MsgMeta, ReqId, ReqKind, Tag, UcpCompletion};

/// Configuration of the UCP layer (UCX defaults from §VII).
#[derive(Debug, Clone)]
pub struct UcpConfig {
    /// Register application memory with ODP (the UCX default the paper
    /// calls out: "UCX prioritized ODP over direct memory registration by
    /// default and we were even unaware of the use of ODP").
    pub odp: bool,
    /// Local ACK Timeout field used for all QPs (UCX default 18).
    pub cack: u8,
    /// Minimal RNR NAK delay (UCX default 0.96 ms).
    pub min_rnr_delay: SimTime,
    /// Messages of this size or larger use the rendezvous protocol.
    pub rndv_threshold: u32,
    /// Pre-posted eager receive buffers per endpoint direction.
    pub eager_slots: usize,
    /// Size of one eager receive buffer.
    pub eager_slot_bytes: u32,
    /// Minimum progress-tick interval.
    pub progress_min: SimTime,
    /// Maximum progress-tick interval (idle backoff ceiling).
    pub progress_max: SimTime,
}

impl Default for UcpConfig {
    fn default() -> Self {
        UcpConfig {
            odp: true,
            cack: 18,
            min_rnr_delay: SimTime::from_us(960),
            rndv_threshold: 4096,
            eager_slots: 32,
            eager_slot_bytes: 4096,
            progress_min: SimTime::from_us(2),
            progress_max: SimTime::from_us(100),
        }
    }
}

/// Message direction within an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Dir {
    AToB,
    BToA,
}

impl Dir {
    fn flip(self) -> Dir {
        match self {
            Dir::AToB => Dir::BToA,
            Dir::BToA => Dir::AToB,
        }
    }
}

/// What an in-flight verbs work request means to the UCP layer.
#[derive(Debug)]
enum WrRole {
    /// One-sided app operation.
    App { req: ReqId, kind: ReqKind },
    /// Sender-side eager SEND carrying app payload.
    EagerSend { req: ReqId },
    /// Control SEND (RTS/FIN); no app completion on the send CQE.
    MetaSend,
    /// A ring receive landed (one incoming message).
    RingRecv { ep: EpId, dir: Dir, slot: usize },
    /// The receiver's rendezvous GET finished.
    RndvGet {
        recv_req: ReqId,
        ep: EpId,
        dir: Dir,
        send_req: ReqId,
    },
}

#[derive(Debug)]
struct Ring {
    mr: MrDesc,
    slot_bytes: u32,
}

#[derive(Debug)]
struct EpState {
    a: (HostId, Qpn),
    b: (HostId, Qpn),
    /// Eager ring at B for A→B traffic.
    ring_at_b: Ring,
    /// Eager ring at A for B→A traffic.
    ring_at_a: Ring,
}

impl EpState {
    fn dir_from(&self, host: HostId) -> Dir {
        if host == self.a.0 {
            Dir::AToB
        } else {
            Dir::BToA
        }
    }

    fn sender_qp(&self, dir: Dir) -> (HostId, Qpn) {
        match dir {
            Dir::AToB => self.a,
            Dir::BToA => self.b,
        }
    }

    fn receiver(&self, dir: Dir) -> (HostId, Qpn) {
        match dir {
            Dir::AToB => self.b,
            Dir::BToA => self.a,
        }
    }

    fn ring(&self, dir: Dir) -> &Ring {
        match dir {
            Dir::AToB => &self.ring_at_b,
            Dir::BToA => &self.ring_at_a,
        }
    }
}

#[derive(Debug)]
struct PostedRecv {
    req: ReqId,
    host: HostId,
    tag: Tag,
    dst: MemSlice,
}

#[derive(Debug)]
enum Unexpected {
    Eager {
        data: Vec<u8>,
    },
    Rndv {
        src: MemSlice,
        send_req: ReqId,
        ep: EpId,
        dir: Dir,
    },
}

#[derive(Debug)]
struct WorkerState {
    host: HostId,
    /// Pinned scratch region for control-message payloads.
    scratch: MrDesc,
}

struct Inner {
    cfg: UcpConfig,
    workers: Vec<WorkerState>,
    eps: Vec<EpState>,
    next_wr: u64,
    next_req: u64,
    wr_roles: BTreeMap<(HostId, WrId), WrRole>,
    /// Out-of-band message headers, in per-(ep, dir) send order.
    meta_q: BTreeMap<(EpId, Dir), VecDeque<MsgMeta>>,
    posted_recvs: BTreeMap<HostId, Vec<PostedRecv>>,
    unexpected: BTreeMap<(HostId, Tag), VecDeque<Unexpected>>,
    completed: BTreeMap<HostId, Vec<UcpCompletion>>,
    /// Continuations to invoke when a request completes.
    callbacks: BTreeMap<ReqId, Callback>,
    /// Requests that already completed (for late `when_done` registration).
    done: BTreeMap<ReqId, UcpCompletion>,
    /// Completions whose callbacks must fire once borrows are released.
    fired: Vec<(Callback, UcpCompletion)>,
    open_reqs: u64,
    /// True while a progress tick is already scheduled.
    tick_scheduled: bool,
}

impl Inner {
    fn alloc_wr(&mut self) -> WrId {
        self.next_wr += 1;
        WrId(self.next_wr)
    }

    fn alloc_req(&mut self) -> ReqId {
        self.next_req += 1;
        self.open_reqs += 1;
        ReqId(self.next_req)
    }

    fn finish(
        &mut self,
        host: HostId,
        req: ReqId,
        kind: ReqKind,
        at: SimTime,
        failed: bool,
        bytes: u32,
    ) {
        self.open_reqs -= 1;
        let c = UcpCompletion {
            req,
            kind,
            at,
            failed,
            bytes,
        };
        self.completed.entry(host).or_default().push(c);
        self.done.insert(req, c);
        if let Some(cb) = self.callbacks.remove(&req) {
            self.fired.push((cb, c));
        }
    }
}

/// The UCP layer. Clone-cheap: it is a shared handle; progress events
/// scheduled into the engine keep their own handle.
///
/// # Examples
///
/// ```
/// use ibsim_event::Engine;
/// use ibsim_verbs::{Cluster, DeviceProfile};
/// use ibsim_ucp::{MemSlice, Tag, Ucp, UcpConfig};
///
/// let mut eng = Engine::new();
/// let mut cl = Cluster::new(3);
/// let ucp = Ucp::new(UcpConfig { odp: false, ..Default::default() });
/// let a = ucp.add_worker(&mut cl, "a", DeviceProfile::connectx6());
/// let b = ucp.add_worker(&mut cl, "b", DeviceProfile::connectx6());
/// let ep = ucp.connect(&mut eng, &mut cl, a, b);
///
/// let src = ucp.mem_map(&mut cl, a, 4096);
/// let dst = ucp.mem_map(&mut cl, b, 4096);
/// cl.mem_write(a, src.base, b"hi there");
/// ucp.tag_recv(&mut eng, &mut cl, b, Tag(7), MemSlice { host: b, mr: dst.key, offset: 0, len: 8 });
/// ucp.tag_send(&mut eng, &mut cl, ep, a, Tag(7), MemSlice { host: a, mr: src.key, offset: 0, len: 8 });
/// eng.run(&mut cl);
/// assert_eq!(ucp.take_completed(b).len(), 1);
/// assert_eq!(cl.mem_read(b, dst.base, 8), b"hi there");
/// ```
#[derive(Clone)]
pub struct Ucp {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for Ucp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Ucp")
            .field("workers", &inner.workers.len())
            .field("endpoints", &inner.eps.len())
            .field("open_reqs", &inner.open_reqs)
            .finish()
    }
}

/// Size on the wire of a control (RTS/FIN) message.
const META_BYTES: u32 = 64;

/// A continuation invoked when a request completes.
pub type Callback = Box<dyn FnOnce(&mut Sim, &mut Cluster, UcpCompletion)>;

impl Ucp {
    /// Creates a UCP layer with the given configuration.
    pub fn new(cfg: UcpConfig) -> Self {
        Ucp {
            inner: Rc::new(RefCell::new(Inner {
                cfg,
                workers: Vec::new(),
                eps: Vec::new(),
                next_wr: 0,
                next_req: 0,
                wr_roles: BTreeMap::new(),
                meta_q: BTreeMap::new(),
                posted_recvs: BTreeMap::new(),
                unexpected: BTreeMap::new(),
                completed: BTreeMap::new(),
                callbacks: BTreeMap::new(),
                done: BTreeMap::new(),
                fired: Vec::new(),
                open_reqs: 0,
                tick_scheduled: false,
            })),
        }
    }

    /// Adds a worker (host) to the cluster and returns its id. The first
    /// worker installs this layer's completion waker on the cluster, so
    /// progress is completion-driven rather than polled.
    pub fn add_worker(&self, cl: &mut Cluster, name: &str, device: DeviceProfile) -> HostId {
        if !cl.has_cq_waker() {
            let ucp = self.clone();
            cl.set_cq_waker(std::rc::Rc::new(move |eng: &mut Sim| ucp.wake(eng)));
        }
        let host = cl.add_host(name, device);
        let scratch = cl.alloc_mr(host, 4096, MrMode::Pinned);
        self.inner
            .borrow_mut()
            .workers
            .push(WorkerState { host, scratch });
        host
    }

    /// Registers `len` bytes of fresh memory on a worker, using ODP or
    /// pinning per [`UcpConfig::odp`].
    pub fn mem_map(&self, cl: &mut Cluster, w: HostId, len: u64) -> MrDesc {
        let mode = if self.inner.borrow().cfg.odp {
            MrMode::Odp
        } else {
            MrMode::Pinned
        };
        cl.alloc_mr(w, len, mode)
    }

    /// Number of requests not yet completed.
    pub fn open_requests(&self) -> u64 {
        self.inner.borrow().open_reqs
    }

    /// Connects two workers with a fresh endpoint (QP pair + eager rings).
    pub fn connect(&self, eng: &mut Sim, cl: &mut Cluster, a: HostId, b: HostId) -> EpId {
        let mut inner = self.inner.borrow_mut();
        let qp_cfg = QpConfig {
            cack: inner.cfg.cack,
            min_rnr_delay: inner.cfg.min_rnr_delay,
            ..QpConfig::default()
        };
        let (qa, qb) = cl.connect_pair(eng, a, b, qp_cfg);
        let slots = inner.cfg.eager_slots;
        let slot_bytes = inner.cfg.eager_slot_bytes;
        // Eager rings are bounce buffers: always pinned, like UCX's
        // pre-registered RX descriptors.
        let ring_at_b = Ring {
            mr: cl.alloc_mr(b, slots as u64 * slot_bytes as u64, MrMode::Pinned),
            slot_bytes,
        };
        let ring_at_a = Ring {
            mr: cl.alloc_mr(a, slots as u64 * slot_bytes as u64, MrMode::Pinned),
            slot_bytes,
        };
        let ep = EpId(inner.eps.len());
        inner.eps.push(EpState {
            a: (a, qa),
            b: (b, qb),
            ring_at_b,
            ring_at_a,
        });
        // Pre-post both rings.
        for dir in [Dir::AToB, Dir::BToA] {
            for slot in 0..slots {
                post_ring_recv(&mut inner, cl, ep, dir, slot);
            }
        }
        ep
    }

    /// One-sided get: READ `len` bytes from `(src_mr, src_off)` on the
    /// remote side of `ep` into `(dst_mr, dst_off)` on `from`.
    #[allow(clippy::too_many_arguments)]
    pub fn get(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        ep: EpId,
        from: HostId,
        dst: MemSlice,
        src_mr: ibsim_verbs::MrKey,
        src_off: u64,
        len: u32,
    ) -> ReqId {
        let mut inner = self.inner.borrow_mut();
        let req = inner.alloc_req();
        let wr = inner.alloc_wr();
        let dir = inner.eps[ep.0].dir_from(from);
        let (host, qpn) = inner.eps[ep.0].sender_qp(dir);
        debug_assert_eq!(host, from);
        inner.wr_roles.insert(
            (host, wr),
            WrRole::App {
                req,
                kind: ReqKind::Get,
            },
        );
        cl.post(
            eng,
            host,
            qpn,
            ReadWr::new((dst.mr, dst.offset), (src_mr, src_off))
                .len(len)
                .id(wr),
        );
        drop(inner);
        self.ensure_ticking(eng);
        req
    }

    /// One-sided put: WRITE `len` bytes from `src` into the remote
    /// `(dst_mr, dst_off)` over `ep`.
    #[allow(clippy::too_many_arguments)]
    pub fn put(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        ep: EpId,
        from: HostId,
        src: MemSlice,
        dst_mr: ibsim_verbs::MrKey,
        dst_off: u64,
        len: u32,
    ) -> ReqId {
        let mut inner = self.inner.borrow_mut();
        let req = inner.alloc_req();
        let wr = inner.alloc_wr();
        let dir = inner.eps[ep.0].dir_from(from);
        let (host, qpn) = inner.eps[ep.0].sender_qp(dir);
        inner.wr_roles.insert(
            (host, wr),
            WrRole::App {
                req,
                kind: ReqKind::Put,
            },
        );
        cl.post(
            eng,
            host,
            qpn,
            WriteWr::new((src.mr, src.offset), (dst_mr, dst_off))
                .len(len)
                .id(wr),
        );
        drop(inner);
        self.ensure_ticking(eng);
        req
    }

    /// 8-byte fetch-and-add on the remote `(dst_mr, dst_off)` over `ep`;
    /// the original value lands at `local`.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_add(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        ep: EpId,
        from: HostId,
        local: MemSlice,
        dst_mr: ibsim_verbs::MrKey,
        dst_off: u64,
        add: u64,
    ) -> ReqId {
        self.atomic(
            eng,
            cl,
            ep,
            from,
            local,
            dst_mr,
            dst_off,
            ibsim_verbs::AtomicOp::FetchAdd { add },
        )
    }

    /// 8-byte compare-and-swap on the remote `(dst_mr, dst_off)` over
    /// `ep`; the original value lands at `local`.
    #[allow(clippy::too_many_arguments)]
    pub fn compare_swap(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        ep: EpId,
        from: HostId,
        local: MemSlice,
        dst_mr: ibsim_verbs::MrKey,
        dst_off: u64,
        compare: u64,
        swap: u64,
    ) -> ReqId {
        self.atomic(
            eng,
            cl,
            ep,
            from,
            local,
            dst_mr,
            dst_off,
            ibsim_verbs::AtomicOp::CompareSwap { compare, swap },
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn atomic(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        ep: EpId,
        from: HostId,
        local: MemSlice,
        dst_mr: ibsim_verbs::MrKey,
        dst_off: u64,
        op: ibsim_verbs::AtomicOp,
    ) -> ReqId {
        let mut inner = self.inner.borrow_mut();
        let req = inner.alloc_req();
        let wr = inner.alloc_wr();
        let dir = inner.eps[ep.0].dir_from(from);
        let (host, qpn) = inner.eps[ep.0].sender_qp(dir);
        inner.wr_roles.insert(
            (host, wr),
            WrRole::App {
                req,
                kind: ReqKind::Atomic,
            },
        );
        cl.post(
            eng,
            host,
            qpn,
            ibsim_verbs::WorkRequest {
                id: wr,
                op: ibsim_verbs::WrOp::Atomic {
                    local_mr: local.mr,
                    local_off: local.offset,
                    rkey: dst_mr,
                    remote_off: dst_off,
                    op,
                },
            },
        );
        drop(inner);
        self.ensure_ticking(eng);
        req
    }

    /// Tagged send from `from` over `ep`. Small messages go eager; large
    /// ones rendezvous (the receiver READs the payload from `src`).
    pub fn tag_send(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        ep: EpId,
        from: HostId,
        tag: Tag,
        src: MemSlice,
    ) -> ReqId {
        let mut inner = self.inner.borrow_mut();
        let req = inner.alloc_req();
        let dir = inner.eps[ep.0].dir_from(from);
        let (host, qpn) = inner.eps[ep.0].sender_qp(dir);
        let rndv = src.len >= inner.cfg.rndv_threshold;
        if rndv {
            inner
                .meta_q
                .entry((ep, dir))
                .or_default()
                .push_back(MsgMeta::RndvRts {
                    tag,
                    send_req: req,
                    src,
                });
            let wr = inner.alloc_wr();
            let scratch = worker_scratch(&inner, host);
            inner.wr_roles.insert((host, wr), WrRole::MetaSend);
            cl.post(
                eng,
                host,
                qpn,
                SendWr::new(scratch.key).len(META_BYTES).id(wr),
            );
        } else {
            inner
                .meta_q
                .entry((ep, dir))
                .or_default()
                .push_back(MsgMeta::Eager {
                    tag,
                    send_req: req,
                    len: src.len,
                });
            let wr = inner.alloc_wr();
            inner.wr_roles.insert((host, wr), WrRole::EagerSend { req });
            cl.post(
                eng,
                host,
                qpn,
                SendWr::new((src.mr, src.offset)).len(src.len).id(wr),
            );
        }
        drop(inner);
        self.ensure_ticking(eng);
        req
    }

    /// Posts a tagged receive on worker `w` into `dst`.
    pub fn tag_recv(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        w: HostId,
        tag: Tag,
        dst: MemSlice,
    ) -> ReqId {
        let mut inner = self.inner.borrow_mut();
        let req = inner.alloc_req();
        // Unexpected message already here?
        if let Some(q) = inner.unexpected.get_mut(&(w, tag)) {
            if let Some(u) = q.pop_front() {
                match u {
                    Unexpected::Eager { data } => {
                        let base = cl.mr_base(w, dst.mr);
                        let n = data.len().min(dst.len as usize);
                        cl.mem_write(w, base + dst.offset, &data[..n]);
                        let now = eng.now();
                        inner.finish(w, req, ReqKind::TagRecv, now, false, n as u32);
                        return req;
                    }
                    Unexpected::Rndv {
                        src,
                        send_req,
                        ep,
                        dir,
                    } => {
                        start_rndv_get(&mut inner, eng, cl, ep, dir, req, send_req, src, dst);
                        drop(inner);
                        self.ensure_ticking(eng);
                        return req;
                    }
                }
            }
        }
        inner.posted_recvs.entry(w).or_default().push(PostedRecv {
            req,
            host: w,
            tag,
            dst,
        });
        drop(inner);
        self.ensure_ticking(eng);
        req
    }

    /// Registers a continuation to run when `req` completes. If the
    /// request already completed, the continuation runs immediately.
    pub fn when_done(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        req: ReqId,
        cb: impl FnOnce(&mut Sim, &mut Cluster, UcpCompletion) + 'static,
    ) {
        let already = self.inner.borrow().done.get(&req).copied();
        if let Some(c) = already {
            cb(eng, cl, c);
        } else {
            self.inner.borrow_mut().callbacks.insert(req, Box::new(cb));
        }
    }

    /// Invokes continuations queued by completed requests.
    fn drain_callbacks(&self, eng: &mut Sim, cl: &mut Cluster) {
        loop {
            let fired = std::mem::take(&mut self.inner.borrow_mut().fired);
            if fired.is_empty() {
                return;
            }
            for (cb, c) in fired {
                cb(eng, cl, c);
            }
        }
    }

    /// Takes the completions accumulated on worker `w`.
    pub fn take_completed(&self, w: HostId) -> Vec<UcpCompletion> {
        self.inner
            .borrow_mut()
            .completed
            .entry(w)
            .or_default()
            .drain(..)
            .collect()
    }

    /// Schedules a progress tick shortly after a completion lands (the
    /// cluster invokes this through its completion waker).
    fn wake(&self, eng: &mut Sim) {
        let mut inner = self.inner.borrow_mut();
        if inner.tick_scheduled {
            return;
        }
        inner.tick_scheduled = true;
        let delay = inner.cfg.progress_min;
        drop(inner);
        let ucp = self.clone();
        eng.schedule_in(delay, move |c: &mut Cluster, eng| ucp.tick(eng, c));
    }

    /// Kept for call-site clarity: posting an operation needs no explicit
    /// progress start — its completion will wake the layer — but posting
    /// from inside a quiet system must not deadlock either, so this is a
    /// no-op today.
    fn ensure_ticking(&self, _eng: &mut Sim) {}

    /// One progress step: drain CQs, advance protocols.
    fn tick(&self, eng: &mut Sim, cl: &mut Cluster) {
        self.inner.borrow_mut().tick_scheduled = false;
        let hosts: Vec<HostId> = {
            let inner = self.inner.borrow();
            inner.workers.iter().map(|w| w.host).collect()
        };
        for host in hosts {
            for c in cl.poll_cq(host) {
                self.route_completion(eng, cl, host, c);
            }
        }
        self.drain_callbacks(eng, cl);
    }

    fn route_completion(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        host: HostId,
        c: ibsim_verbs::Completion,
    ) {
        let mut inner = self.inner.borrow_mut();
        let Some(role) = inner.wr_roles.remove(&(host, c.wr_id)) else {
            return; // not ours (application used the cluster directly)
        };
        let failed = c.status != WcStatus::Success;
        match role {
            WrRole::App { req, kind } => {
                inner.finish(host, req, kind, c.at, failed, c.bytes);
            }
            WrRole::EagerSend { req } => {
                inner.finish(host, req, ReqKind::TagSend, c.at, failed, c.bytes);
            }
            WrRole::MetaSend => {}
            WrRole::RingRecv { ep, dir, slot } => {
                if !failed {
                    self.handle_ring_message(&mut inner, eng, cl, ep, dir, slot, c.bytes, c.at);
                }
                post_ring_recv(&mut inner, cl, ep, dir, slot);
            }
            WrRole::RndvGet {
                recv_req,
                ep,
                dir,
                send_req,
            } => {
                inner.finish(host, recv_req, ReqKind::TagRecv, c.at, failed, c.bytes);
                // Tell the sender it may complete (FIN).
                let fin_dir = dir.flip();
                inner
                    .meta_q
                    .entry((ep, fin_dir))
                    .or_default()
                    .push_back(MsgMeta::RndvFin { send_req });
                let (fin_host, fin_qpn) = inner.eps[ep.0].sender_qp(fin_dir);
                let wr = inner.alloc_wr();
                let scratch = worker_scratch(&inner, fin_host);
                inner.wr_roles.insert((fin_host, wr), WrRole::MetaSend);
                cl.post(
                    eng,
                    fin_host,
                    fin_qpn,
                    SendWr::new(scratch.key).len(META_BYTES).id(wr),
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_ring_message(
        &self,
        inner: &mut Inner,
        eng: &mut Sim,
        cl: &mut Cluster,
        ep: EpId,
        dir: Dir,
        slot: usize,
        bytes: u32,
        at: SimTime,
    ) {
        let meta = inner
            .meta_q
            .get_mut(&(ep, dir))
            .and_then(|q| q.pop_front())
            .expect("invariant: RC in-order delivery keeps header and wire aligned");
        let (rcv_host, _) = inner.eps[ep.0].receiver(dir);
        match meta {
            MsgMeta::Eager { tag, len, .. } => {
                debug_assert_eq!(len, bytes, "eager length matches wire bytes");
                let ring = inner.eps[ep.0].ring(dir);
                let data = cl.mem_read(
                    rcv_host,
                    ring.mr.base + (slot as u64) * ring.slot_bytes as u64,
                    len as usize,
                );
                if let Some(pos) = inner
                    .posted_recvs
                    .get(&rcv_host)
                    .and_then(|v| v.iter().position(|r| r.tag == tag))
                {
                    let recv = inner
                        .posted_recvs
                        .get_mut(&rcv_host)
                        .expect("invariant: receiver entry checked above")
                        .swap_remove(pos);
                    let base = cl.mr_base(rcv_host, recv.dst.mr);
                    let n = data.len().min(recv.dst.len as usize);
                    cl.mem_write(rcv_host, base + recv.dst.offset, &data[..n]);
                    inner.finish(recv.host, recv.req, ReqKind::TagRecv, at, false, n as u32);
                } else {
                    inner
                        .unexpected
                        .entry((rcv_host, tag))
                        .or_default()
                        .push_back(Unexpected::Eager { data });
                }
            }
            MsgMeta::RndvRts { tag, send_req, src } => {
                if let Some(pos) = inner
                    .posted_recvs
                    .get(&rcv_host)
                    .and_then(|v| v.iter().position(|r| r.tag == tag))
                {
                    let recv = inner
                        .posted_recvs
                        .get_mut(&rcv_host)
                        .expect("invariant: receiver entry checked above")
                        .swap_remove(pos);
                    start_rndv_get(inner, eng, cl, ep, dir, recv.req, send_req, src, recv.dst);
                } else {
                    inner
                        .unexpected
                        .entry((rcv_host, tag))
                        .or_default()
                        .push_back(Unexpected::Rndv {
                            src,
                            send_req,
                            ep,
                            dir,
                        });
                }
            }
            MsgMeta::RndvFin { send_req } => {
                inner.finish(rcv_host, send_req, ReqKind::TagSend, at, false, 0);
            }
        }
    }
}

fn worker_scratch(inner: &Inner, host: HostId) -> MrDesc {
    inner
        .workers
        .iter()
        .find(|w| w.host == host)
        .expect("invariant: host registered a worker at create_worker")
        .scratch
}

fn post_ring_recv(inner: &mut Inner, cl: &mut Cluster, ep: EpId, dir: Dir, slot: usize) {
    let (host, qpn) = inner.eps[ep.0].receiver(dir);
    let ring = inner.eps[ep.0].ring(dir);
    let recv = RecvWr {
        id: WrId(0), // replaced below
        mr: ring.mr.key,
        offset: (slot as u64) * ring.slot_bytes as u64,
        max_len: ring.slot_bytes,
    };
    let wr = inner.alloc_wr();
    inner
        .wr_roles
        .insert((host, wr), WrRole::RingRecv { ep, dir, slot });
    cl.post_recv(host, qpn, RecvWr { id: wr, ..recv });
}

/// The receiver side of rendezvous: GET the payload from the sender's
/// exposed region into the receive destination.
#[allow(clippy::too_many_arguments)]
fn start_rndv_get(
    inner: &mut Inner,
    eng: &mut Sim,
    cl: &mut Cluster,
    ep: EpId,
    dir: Dir,
    recv_req: ReqId,
    send_req: ReqId,
    src: MemSlice,
    dst: MemSlice,
) {
    let (host, qpn) = inner.eps[ep.0].receiver(dir);
    let wr = inner.alloc_wr();
    inner.wr_roles.insert(
        (host, wr),
        WrRole::RndvGet {
            recv_req,
            ep,
            dir,
            send_req,
        },
    );
    let len = src.len.min(dst.len);
    cl.post(
        eng,
        host,
        qpn,
        ReadWr::new((dst.mr, dst.offset), (src.mr, src.offset))
            .len(len)
            .id(wr),
    );
}
