//! Protocol-level types of the UCX-like layer: requests, endpoints,
//! message metadata.

use core::fmt;

use ibsim_event::SimTime;
use ibsim_verbs::{HostId, MrKey};

/// A communication endpoint: one RC QP pair between two workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EpId(pub usize);

impl fmt::Display for EpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Handle to an asynchronous UCP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A message tag for two-sided matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

/// What a completed request was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// One-sided get (RDMA READ).
    Get,
    /// One-sided put (RDMA WRITE).
    Put,
    /// 8-byte remote atomic (fetch-add or compare-swap).
    Atomic,
    /// Two-sided tagged send.
    TagSend,
    /// Two-sided tagged receive.
    TagRecv,
}

/// A completed UCP request, as returned by `Ucp::take_completed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UcpCompletion {
    /// The request handle.
    pub req: ReqId,
    /// Operation kind.
    pub kind: ReqKind,
    /// Completion time.
    pub at: SimTime,
    /// True if the operation failed (transport error).
    pub failed: bool,
    /// Bytes transferred.
    pub bytes: u32,
}

/// Where message payload lives for zero-copy operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSlice {
    /// Owning worker/host.
    pub host: HostId,
    /// Memory region key.
    pub mr: MrKey,
    /// Byte offset within the region.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
}

/// The "header" of a tagged message. In a real stack this rides inside
/// the eager packet; the simulator keeps it beside the wire bytes, indexed
/// by the per-endpoint sequence number that RC's in-order delivery
/// guarantees to agree on both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum MsgMeta {
    /// Eager payload of `len` bytes, delivered inline via SEND.
    Eager { tag: Tag, send_req: ReqId, len: u32 },
    /// Rendezvous ready-to-send: the receiver should GET the payload.
    RndvRts {
        tag: Tag,
        send_req: ReqId,
        src: MemSlice,
    },
    /// Rendezvous fin: the receiver finished its GET; sender may complete.
    RndvFin { send_req: ReqId },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(EpId(3).to_string(), "ep3");
        assert_eq!(ReqId(9).to_string(), "req9");
    }

    #[test]
    fn completion_carries_outcome() {
        let c = UcpCompletion {
            req: ReqId(1),
            kind: ReqKind::Get,
            at: SimTime::from_us(5),
            failed: false,
            bytes: 128,
        };
        assert!(!c.failed);
        assert_eq!(c.kind, ReqKind::Get);
    }
}
