//! # ibsim-ucp
//!
//! A UCX-shaped communication layer over the `ibsim` verbs: workers,
//! endpoints, one-sided `get`/`put`, and tagged two-sided messaging with
//! eager and READ-based rendezvous protocols.
//!
//! The configuration defaults mirror the UCX build the paper evaluated
//! (§VII): ODP preferred for application memory, minimal RNR NAK delay of
//! 0.96 ms, `C_ack = 18`. Flipping [`UcpConfig::odp`] is exactly the
//! "ODP enabled / disabled" toggle of Figures 12 and 13.

#![warn(missing_docs)]

mod proto;
#[allow(clippy::module_inception)]
mod ucp;

pub use proto::{EpId, MemSlice, ReqId, ReqKind, Tag, UcpCompletion};
pub use ucp::{Callback, Ucp, UcpConfig};
