//! Integration tests of the UCP layer: eager and rendezvous protocols,
//! unexpected messages, RMA, callbacks, and the ODP toggle's effect.

use ibsim_event::{Engine, SimTime};
use ibsim_ucp::{MemSlice, ReqKind, Tag, Ucp, UcpConfig};
use ibsim_verbs::{Cluster, DeviceProfile, HostId, MrDesc, Sim};

fn setup(cfg: UcpConfig) -> (Sim, Cluster, Ucp, HostId, HostId, ibsim_ucp::EpId) {
    let mut eng = Engine::new();
    let mut cl = Cluster::new(21);
    let ucp = Ucp::new(cfg);
    let a = ucp.add_worker(
        &mut cl,
        "a",
        DeviceProfile::connectx4(ibsim_fabric::LinkSpec::fdr()),
    );
    let b = ucp.add_worker(
        &mut cl,
        "b",
        DeviceProfile::connectx4(ibsim_fabric::LinkSpec::fdr()),
    );
    let ep = ucp.connect(&mut eng, &mut cl, a, b);
    (eng, cl, ucp, a, b, ep)
}

fn slice(desc: &MrDesc, offset: u64, len: u32) -> MemSlice {
    MemSlice {
        host: desc.host,
        mr: desc.key,
        offset,
        len,
    }
}

#[test]
fn eager_send_recv_roundtrip() {
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig {
        odp: false,
        ..Default::default()
    });
    let src = ucp.mem_map(&mut cl, a, 4096);
    let dst = ucp.mem_map(&mut cl, b, 4096);
    cl.mem_write(a, src.base, b"eager payload");
    ucp.tag_recv(&mut eng, &mut cl, b, Tag(1), slice(&dst, 0, 13));
    let sreq = ucp.tag_send(&mut eng, &mut cl, ep, a, Tag(1), slice(&src, 0, 13));
    eng.run(&mut cl);
    let ca = ucp.take_completed(a);
    let cb = ucp.take_completed(b);
    assert_eq!(ca.len(), 1);
    assert_eq!(ca[0].req, sreq);
    assert_eq!(ca[0].kind, ReqKind::TagSend);
    assert!(!ca[0].failed);
    assert_eq!(cb.len(), 1);
    assert_eq!(cb[0].kind, ReqKind::TagRecv);
    assert_eq!(cb[0].bytes, 13);
    assert_eq!(cl.mem_read(b, dst.base, 13), b"eager payload");
}

#[test]
fn unexpected_eager_is_buffered_until_recv() {
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig {
        odp: false,
        ..Default::default()
    });
    let src = ucp.mem_map(&mut cl, a, 4096);
    let dst = ucp.mem_map(&mut cl, b, 4096);
    cl.mem_write(a, src.base, b"early bird");
    // Send first; the receive is posted 1 ms later.
    ucp.tag_send(&mut eng, &mut cl, ep, a, Tag(5), slice(&src, 0, 10));
    let ucp2 = ucp.clone();
    let dsts = slice(&dst, 0, 10);
    eng.schedule_at(SimTime::from_ms(1), move |c: &mut Cluster, eng| {
        ucp2.tag_recv(eng, c, b, Tag(5), dsts);
    });
    eng.run(&mut cl);
    assert_eq!(ucp.take_completed(b).len(), 1);
    assert_eq!(cl.mem_read(b, dst.base, 10), b"early bird");
}

#[test]
fn rendezvous_uses_read_and_transfers_bulk() {
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig {
        odp: false,
        ..Default::default()
    });
    let len = 64 * 1024;
    let src = ucp.mem_map(&mut cl, a, len as u64);
    let dst = ucp.mem_map(&mut cl, b, len as u64);
    let payload: Vec<u8> = (0..len).map(|i| (i % 239) as u8).collect();
    cl.mem_write(a, src.base, &payload);
    ucp.tag_recv(&mut eng, &mut cl, b, Tag(2), slice(&dst, 0, len as u32));
    ucp.tag_send(&mut eng, &mut cl, ep, a, Tag(2), slice(&src, 0, len as u32));
    eng.run(&mut cl);
    assert_eq!(ucp.take_completed(a).len(), 1, "FIN completes the sender");
    assert_eq!(ucp.take_completed(b).len(), 1);
    assert_eq!(cl.mem_read(b, dst.base, len), payload);
    // Bulk moved via READ responses, not eager SENDs.
    assert!(cl.stats.response_packets >= (len as u64) / 4096);
}

#[test]
fn rendezvous_unexpected_then_recv() {
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig {
        odp: false,
        ..Default::default()
    });
    let len = 16 * 1024u32;
    let src = ucp.mem_map(&mut cl, a, len as u64);
    let dst = ucp.mem_map(&mut cl, b, len as u64);
    cl.mem_write(a, src.base, &vec![0x5A; len as usize]);
    ucp.tag_send(&mut eng, &mut cl, ep, a, Tag(9), slice(&src, 0, len));
    let ucp2 = ucp.clone();
    let dsts = slice(&dst, 0, len);
    eng.schedule_at(SimTime::from_ms(2), move |c: &mut Cluster, eng| {
        ucp2.tag_recv(eng, c, b, Tag(9), dsts);
    });
    eng.run(&mut cl);
    assert_eq!(ucp.take_completed(a).len(), 1);
    assert_eq!(ucp.take_completed(b).len(), 1);
    assert_eq!(cl.mem_read(b, dst.base, 16), vec![0x5A; 16]);
}

#[test]
fn get_and_put_roundtrip() {
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig {
        odp: false,
        ..Default::default()
    });
    let ra = ucp.mem_map(&mut cl, a, 8192);
    let rb = ucp.mem_map(&mut cl, b, 8192);
    cl.mem_write(b, rb.base, b"get me");
    cl.mem_write(a, ra.base + 4096, b"put me");
    let g = ucp.get(&mut eng, &mut cl, ep, a, slice(&ra, 0, 6), rb.key, 0, 6);
    let p = ucp.put(
        &mut eng,
        &mut cl,
        ep,
        a,
        slice(&ra, 4096, 6),
        rb.key,
        4096,
        6,
    );
    eng.run(&mut cl);
    let done = ucp.take_completed(a);
    assert_eq!(done.len(), 2);
    assert!(done.iter().any(|c| c.req == g && c.kind == ReqKind::Get));
    assert!(done.iter().any(|c| c.req == p && c.kind == ReqKind::Put));
    assert_eq!(cl.mem_read(a, ra.base, 6), b"get me");
    assert_eq!(cl.mem_read(b, rb.base + 4096, 6), b"put me");
}

#[test]
fn callbacks_chain_operations() {
    // A GET whose completion triggers a tagged send — the continuation
    // style the DSM and shuffle layers use.
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig {
        odp: false,
        ..Default::default()
    });
    let ra = ucp.mem_map(&mut cl, a, 4096);
    let rb = ucp.mem_map(&mut cl, b, 4096);
    cl.mem_write(b, rb.base, b"lock");
    ucp.tag_recv(&mut eng, &mut cl, b, Tag(42), slice(&rb, 512, 4));
    let g = ucp.get(&mut eng, &mut cl, ep, a, slice(&ra, 0, 4), rb.key, 0, 4);
    let ucp2 = ucp.clone();
    let srcs = slice(&ra, 0, 4);
    ucp.when_done(&mut eng, &mut cl, g, move |eng, cl, c| {
        assert!(!c.failed);
        ucp2.tag_send(eng, cl, ep, a, Tag(42), srcs);
    });
    eng.run(&mut cl);
    assert_eq!(ucp.take_completed(b).len(), 1);
    assert_eq!(cl.mem_read(b, rb.base + 512, 4), b"lock");
}

#[test]
fn when_done_on_finished_request_fires_immediately() {
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig {
        odp: false,
        ..Default::default()
    });
    let ra = ucp.mem_map(&mut cl, a, 4096);
    let rb = ucp.mem_map(&mut cl, b, 4096);
    let g = ucp.get(&mut eng, &mut cl, ep, a, slice(&ra, 0, 4), rb.key, 0, 4);
    eng.run(&mut cl);
    let hit = std::rc::Rc::new(std::cell::Cell::new(false));
    let h = hit.clone();
    ucp.when_done(&mut eng, &mut cl, g, move |_, _, _| h.set(true));
    assert!(hit.get(), "late registration fires immediately");
}

#[test]
fn odp_enabled_get_faults_and_still_completes() {
    // With the UCX-default ODP registration, the first GET faults on both
    // sides but completes with correct data.
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig::default());
    let ra = ucp.mem_map(&mut cl, a, 4096);
    let rb = ucp.mem_map(&mut cl, b, 4096);
    cl.mem_write(b, rb.base, b"odp data");
    let g = ucp.get(&mut eng, &mut cl, ep, a, slice(&ra, 0, 8), rb.key, 0, 8);
    eng.run(&mut cl);
    let done = ucp.take_completed(a);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].req, g);
    assert!(!done[0].failed);
    assert_eq!(cl.mem_read(a, ra.base, 8), b"odp data");
    assert!(cl.mr_fault_count(b, rb.key) >= 1, "server-side fault");
    // ODP made it slower than the µs-scale pinned path.
    assert!(done[0].at > SimTime::from_us(100));
}

#[test]
fn many_messages_both_directions() {
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig {
        odp: false,
        ..Default::default()
    });
    let ra = ucp.mem_map(&mut cl, a, 64 * 128);
    let rb = ucp.mem_map(&mut cl, b, 64 * 128);
    for i in 0..64u64 {
        cl.mem_write(a, ra.base + i * 128, &[i as u8; 64]);
        ucp.tag_recv(
            &mut eng,
            &mut cl,
            a,
            Tag(1000 + i),
            slice(&ra, i * 128 + 64, 64),
        );
        ucp.tag_recv(&mut eng, &mut cl, b, Tag(i), slice(&rb, i * 128, 64));
    }
    for i in 0..64u64 {
        ucp.tag_send(&mut eng, &mut cl, ep, a, Tag(i), slice(&ra, i * 128, 64));
        cl.mem_write(b, rb.base + i * 128 + 64, &[(i + 1) as u8; 64]);
        ucp.tag_send(
            &mut eng,
            &mut cl,
            ep,
            b,
            Tag(1000 + i),
            slice(&rb, i * 128 + 64, 64),
        );
    }
    eng.run(&mut cl);
    assert_eq!(ucp.take_completed(a).len(), 128, "64 sends + 64 recvs");
    assert_eq!(ucp.take_completed(b).len(), 128);
    assert_eq!(ucp.open_requests(), 0);
    // Spot-check payload routing.
    assert_eq!(cl.mem_read(b, rb.base + 5 * 128, 4), vec![5; 4]);
    assert_eq!(cl.mem_read(a, ra.base + 5 * 128 + 64, 4), vec![6; 4]);
}

#[test]
fn ucp_atomics_roundtrip() {
    let (mut eng, mut cl, ucp, a, b, ep) = setup(UcpConfig {
        odp: false,
        ..Default::default()
    });
    let la = ucp.mem_map(&mut cl, a, 4096);
    let shared = ucp.mem_map(&mut cl, b, 4096);
    cl.mem_write(b, shared.base, &5u64.to_le_bytes());
    let r1 = ucp.fetch_add(&mut eng, &mut cl, ep, a, slice(&la, 0, 8), shared.key, 0, 3);
    eng.run(&mut cl);
    let done = ucp.take_completed(a);
    assert_eq!(done[0].req, r1);
    assert_eq!(done[0].kind, ReqKind::Atomic);
    assert!(!done[0].failed);
    let orig = u64::from_le_bytes(cl.mem_read(a, la.base, 8).try_into().unwrap());
    assert_eq!(orig, 5);
    let now = u64::from_le_bytes(cl.mem_read(b, shared.base, 8).try_into().unwrap());
    assert_eq!(now, 8);

    // CAS: swap only when the comparison matches.
    let r2 = ucp.compare_swap(
        &mut eng,
        &mut cl,
        ep,
        a,
        slice(&la, 8, 8),
        shared.key,
        0,
        8,
        100,
    );
    eng.run(&mut cl);
    assert_eq!(ucp.take_completed(a)[0].req, r2);
    let now = u64::from_le_bytes(cl.mem_read(b, shared.base, 8).try_into().unwrap());
    assert_eq!(now, 100);
}
