//! Integration tests of the DSM data plane: home-node reads/writes, page
//! caching, self-invalidation, and the global lock.

use ibsim_dsm::{Dsm, DsmConfig};
use ibsim_event::{Engine, SimTime};
use ibsim_verbs::Cluster;

fn small_cfg(odp: bool) -> DsmConfig {
    DsmConfig {
        nodes: 2,
        memory: 64 * 4096,
        odp,
        compute_base: SimTime::from_us(10),
        compute_jitter: SimTime::from_us(5),
        ..Default::default()
    }
}

fn build(odp: bool) -> (ibsim_verbs::Sim, Cluster, Dsm) {
    let mut eng = Engine::new();
    let mut cl = Cluster::new(9);
    let dsm = Dsm::build(&mut eng, &mut cl, small_cfg(odp));
    (eng, cl, dsm)
}

#[test]
fn local_read_write_roundtrip() {
    let (mut eng, mut cl, dsm) = build(false);
    // Address 0 is homed on node 0.
    let d = dsm.clone();
    dsm.write(
        &mut eng,
        &mut cl,
        0,
        64,
        b"local!".to_vec(),
        move |eng, cl| {
            d.read(eng, cl, 0, 64, 6, |_, _, data| {
                assert_eq!(data, b"local!");
            });
        },
    );
    eng.run(&mut cl);
    let s = dsm.stats();
    assert_eq!(s.local_writes, 1);
    assert_eq!(s.local_reads, 1);
    assert_eq!(s.remote_reads, 0);
}

#[test]
fn remote_read_fetches_page_then_hits_cache() {
    let (mut eng, mut cl, dsm) = build(false);
    let d = dsm.clone();
    // Address 0 is homed on node 0; node 1 reads it twice.
    dsm.write(
        &mut eng,
        &mut cl,
        0,
        100,
        b"shared".to_vec(),
        move |eng, cl| {
            let d2 = d.clone();
            d.read(eng, cl, 1, 100, 6, move |eng, cl, data| {
                assert_eq!(data, b"shared");
                d2.read(eng, cl, 1, 100, 6, |_, _, data| {
                    assert_eq!(data, b"shared");
                });
            });
        },
    );
    eng.run(&mut cl);
    let s = dsm.stats();
    assert_eq!(s.remote_reads, 1, "first read fetches the page");
    assert_eq!(s.cache_hits, 1, "second read hits the cache");
}

#[test]
fn release_self_invalidates_cache() {
    let (mut eng, mut cl, dsm) = build(false);
    dsm.start_lock_service(&mut eng, &mut cl);
    let d = dsm.clone();
    dsm.write(&mut eng, &mut cl, 0, 100, b"v1".to_vec(), move |eng, cl| {
        let d2 = d.clone();
        // Node 1 caches the page...
        d.read(eng, cl, 1, 100, 2, move |eng, cl, v| {
            assert_eq!(v, b"v1");
            let d3 = d2.clone();
            // ...home updates it...
            d2.write(eng, cl, 0, 100, b"v2".to_vec(), move |eng, cl| {
                let d4 = d3.clone();
                // ...node 1 acquires/releases the lock (self-invalidation)
                // and must see the new value.
                d3.acquire(eng, cl, 1, move |eng, cl| {
                    d4.release(eng, cl, 1);
                    let d5 = d4.clone();
                    d4.read(eng, cl, 1, 100, 2, move |_, _, v| {
                        assert_eq!(v, b"v2", "stale copy dropped on release");
                        let _ = &d5;
                    });
                });
            });
        });
    });
    eng.run(&mut cl);
    let s = dsm.stats();
    assert!(s.self_invalidations >= 1);
    assert_eq!(s.remote_reads, 2, "page re-fetched after invalidation");
    assert_eq!(s.lock_acquisitions, 1);
}

#[test]
fn lock_serializes_contenders() {
    // Three nodes hammer the lock; the grants must interleave correctly
    // (each acquire gets exactly one grant).
    let mut eng = Engine::new();
    let mut cl = Cluster::new(9);
    let cfg = DsmConfig {
        nodes: 3,
        memory: 64 * 4096,
        odp: false,
        compute_base: SimTime::from_us(10),
        compute_jitter: SimTime::from_us(5),
        ..Default::default()
    };
    let dsm = Dsm::build(&mut eng, &mut cl, cfg);
    dsm.start_lock_service(&mut eng, &mut cl);
    let counter = std::rc::Rc::new(std::cell::Cell::new(0u32));
    for node in 1..3 {
        for _ in 0..4 {
            let d = dsm.clone();
            let c = counter.clone();
            dsm.acquire(&mut eng, &mut cl, node, move |eng, cl| {
                c.set(c.get() + 1);
                d.release(eng, cl, node);
            });
        }
    }
    eng.run(&mut cl);
    assert_eq!(counter.get(), 8, "every acquire was granted exactly once");
    assert_eq!(dsm.stats().lock_acquisitions, 8);
}

#[test]
fn write_through_is_visible_at_home() {
    let (mut eng, mut cl, dsm) = build(false);
    // Node 1 writes to an address homed on node 0.
    let d = dsm.clone();
    dsm.write(
        &mut eng,
        &mut cl,
        1,
        200,
        b"from-1".to_vec(),
        move |eng, cl| {
            d.read(eng, cl, 0, 200, 6, |_, _, v| assert_eq!(v, b"from-1"));
        },
    );
    eng.run(&mut cl);
    let s = dsm.stats();
    assert_eq!(s.remote_writes, 1);
    assert_eq!(s.local_reads, 1);
}

#[test]
fn odp_mode_still_coherent() {
    // The whole coherence suite's core path, with ODP registration: first
    // accesses fault but results stay correct.
    let (mut eng, mut cl, dsm) = build(true);
    let d = dsm.clone();
    dsm.write(
        &mut eng,
        &mut cl,
        1,
        300,
        b"odp-write".to_vec(),
        move |eng, cl| {
            d.read(eng, cl, 0, 300, 9, |_, _, v| assert_eq!(v, b"odp-write"));
        },
    );
    eng.run(&mut cl);
    assert_eq!(dsm.stats().remote_writes, 1);
}

#[test]
fn barrier_waits_for_everyone() {
    let (mut eng, mut cl, dsm) = build(false);
    let hit = std::rc::Rc::new(std::cell::Cell::new(false));
    let h = hit.clone();
    dsm.barrier(&mut eng, &mut cl, move |_, _| h.set(true));
    eng.run(&mut cl);
    assert!(hit.get());
}
