//! The DSM implementation: a home-node, page-granular software
//! distributed shared memory in the style of ArgoDSM \[22\].
//!
//! Global memory is block-partitioned across nodes; each partition is
//! registered with the NIC through the UCP layer (ODP or pinned per the
//! configuration, exactly the toggle §VII-A flips). Remote reads GET whole
//! pages into a local cache; writes are written through to the home node;
//! lock release self-invalidates the cache, giving the usual
//! data-race-free semantics of home-based DSMs.
//!
//! `init`/`finalize` reproduce the Fig. 12 benchmark: node-local setup
//! compute, directory metadata exchange (first touches → page faults),
//! and a global-lock acquisition whose READ-then-SEND pattern is the
//! packet-damming trigger the paper captured on KNL.

use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;

use ibsim_event::{SimTime, SplitMix64};
use ibsim_ucp::{EpId, MemSlice, Tag, Ucp, UcpConfig};
use ibsim_verbs::{Cluster, HostId, MrDesc, Sim, PAGE_SIZE};

use crate::config::DsmConfig;

/// Tag kinds for DSM control messages.
mod tag_kind {
    pub const ARRIVE: u64 = 1;
    pub const GO: u64 = 2;
    pub const LOCK_NOTE: u64 = 3;
    pub const LOCK_REQ: u64 = 4;
    pub const LOCK_GRANT: u64 = 5;
    pub const LOCK_RELEASE: u64 = 6;
}

fn tag(kind: u64, seq: u64, node: usize) -> Tag {
    Tag((kind << 48) | (seq << 16) | node as u64)
}

/// Cumulative DSM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmStats {
    /// Reads served from the local partition.
    pub local_reads: u64,
    /// Reads served from the page cache.
    pub cache_hits: u64,
    /// Reads that fetched a page from a remote home.
    pub remote_reads: u64,
    /// Writes applied to the local partition.
    pub local_writes: u64,
    /// Writes written through to a remote home.
    pub remote_writes: u64,
    /// Global lock acquisitions.
    pub lock_acquisitions: u64,
    /// Cache pages discarded by release-time self-invalidation.
    pub self_invalidations: u64,
}

#[derive(Debug)]
struct Node {
    host: HostId,
    /// This node's slice of global memory.
    partition: MrDesc,
    /// Page cache for remote pages (one slot per global page).
    cache: MrDesc,
    /// Pinned scratch for control payloads.
    scratch: MrDesc,
    /// Endpoint to each peer (`None` on the diagonal).
    eps: Vec<Option<EpId>>,
}

struct Inner {
    cfg: DsmConfig,
    nodes: Vec<Node>,
    rng: SplitMix64,
    seq: u64,
    /// Pages currently valid in each node's cache.
    cache_valid: BTreeSet<(usize, u64)>,
    /// App-level global lock state (served by node 0).
    lock_held: bool,
    lock_queue: VecDeque<usize>,
    stats: DsmStats,
}

impl Inner {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn scratch_slice(&self, node: usize, offset: u64, len: u32) -> MemSlice {
        let s = &self.nodes[node].scratch;
        MemSlice {
            host: s.host,
            mr: s.key,
            offset,
            len,
        }
    }

    fn ep(&self, from: usize, to: usize) -> EpId {
        self.nodes[from].eps[to].expect("invariant: no self endpoints (from != to)")
    }
}

/// A distributed shared memory instance spanning `cfg.nodes` hosts.
///
/// Cheap to clone (shared handle), like [`Ucp`].
#[derive(Clone)]
pub struct Dsm {
    inner: Rc<RefCell<Inner>>,
    /// The underlying UCP layer (exposed for inspection in tests).
    pub ucp: Ucp,
}

impl std::fmt::Debug for Dsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Dsm")
            .field("nodes", &inner.nodes.len())
            .field("memory", &inner.cfg.memory)
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Dsm {
    /// Builds the DSM: workers, endpoints, partitions and caches.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes < 2` (a single node needs no DSM) or the
    /// per-node partition is smaller than the control area the directory
    /// exchange needs.
    pub fn build(eng: &mut Sim, cl: &mut Cluster, cfg: DsmConfig) -> Dsm {
        assert!(cfg.nodes >= 2, "a DSM needs at least two nodes");
        assert!(
            cfg.partition_size() >= (2 + cfg.nodes as u64) * PAGE_SIZE,
            "partition too small for the control area"
        );
        let ucp = Ucp::new(UcpConfig {
            odp: cfg.odp,
            ..Default::default()
        });
        let mut nodes = Vec::new();
        for i in 0..cfg.nodes {
            let host = ucp.add_worker(cl, &format!("dsm{i}"), cfg.device.clone());
            let partition = ucp.mem_map(cl, host, cfg.partition_size());
            let cache = ucp.mem_map(cl, host, cfg.memory);
            let scratch = cl.alloc_mr(host, PAGE_SIZE, ibsim_verbs::MrMode::Pinned);
            nodes.push(Node {
                host,
                partition,
                cache,
                scratch,
                eps: vec![None; cfg.nodes],
            });
        }
        for i in 0..cfg.nodes {
            for j in (i + 1)..cfg.nodes {
                let ep = ucp.connect(eng, cl, nodes[i].host, nodes[j].host);
                nodes[i].eps[j] = Some(ep);
                nodes[j].eps[i] = Some(ep);
            }
        }
        let rng = SplitMix64::new(cfg.seed);
        Dsm {
            inner: Rc::new(RefCell::new(Inner {
                cfg,
                nodes,
                rng,
                seq: 0,
                cache_valid: BTreeSet::new(),
                lock_held: false,
                lock_queue: VecDeque::new(),
                stats: DsmStats::default(),
            })),
            ucp,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// The host backing a node.
    pub fn host(&self, node: usize) -> HostId {
        self.inner.borrow().nodes[node].host
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DsmStats {
        self.inner.borrow().stats
    }

    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// Global barrier: `cb` runs once every node has passed it.
    pub fn barrier(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        cb: impl FnOnce(&mut Sim, &mut Cluster) + 'static,
    ) {
        let (n, seq) = {
            let mut inner = self.inner.borrow_mut();
            (inner.nodes.len(), inner.next_seq())
        };
        let pending = Rc::new(RefCell::new((n, Some(cb))));
        let done = {
            let pending = pending.clone();
            move |eng: &mut Sim, cl: &mut Cluster| {
                let mut p = pending.borrow_mut();
                p.0 -= 1;
                if p.0 == 0 {
                    let cb = p.1.take().expect("invariant: barrier callback fires once");
                    drop(p);
                    cb(eng, cl);
                }
            }
        };
        // Coordinator collects ARRIVE from everyone else, then GOes them.
        let arrive_left = Rc::new(RefCell::new(n - 1));
        for i in 1..n {
            let (ep, arrive_src, go_dst, coord_dst) = {
                let inner = self.inner.borrow();
                (
                    inner.ep(i, 0),
                    inner.scratch_slice(i, 0, 8),
                    inner.scratch_slice(i, 8, 8),
                    inner.scratch_slice(0, (i as u64) * 16, 8),
                )
            };
            // Node i: ARRIVE → coordinator; GO ← coordinator completes i.
            let host_i = self.host(i);
            self.ucp.tag_send(
                eng,
                cl,
                ep,
                host_i,
                tag(tag_kind::ARRIVE, seq, i),
                arrive_src,
            );
            let greq = self
                .ucp
                .tag_recv(eng, cl, host_i, tag(tag_kind::GO, seq, i), go_dst);
            let done_i = done.clone();
            self.ucp
                .when_done(eng, cl, greq, move |eng, cl, _| done_i(eng, cl));

            // Coordinator: recv ARRIVE(i); when all arrived, broadcast GO.
            let host0 = self.host(0);
            let areq = self
                .ucp
                .tag_recv(eng, cl, host0, tag(tag_kind::ARRIVE, seq, i), coord_dst);
            let arrive_left = arrive_left.clone();
            let dsm = self.clone();
            let done0 = done.clone();
            self.ucp.when_done(eng, cl, areq, move |eng, cl, _| {
                let left = {
                    let mut a = arrive_left.borrow_mut();
                    *a -= 1;
                    *a
                };
                if left == 0 {
                    for j in 1..n {
                        let (ep, src) = {
                            let inner = dsm.inner.borrow();
                            (inner.ep(0, j), inner.scratch_slice(0, 0, 8))
                        };
                        let host0 = dsm.host(0);
                        dsm.ucp
                            .tag_send(eng, cl, ep, host0, tag(tag_kind::GO, seq, j), src);
                    }
                    done0(eng, cl);
                }
            });
        }
    }

    // ------------------------------------------------------------------
    // init / finalize (the Fig. 12 benchmark)
    // ------------------------------------------------------------------

    /// The `argo::init()` equivalent: per-node local setup compute,
    /// directory metadata exchange (first touches on every partition),
    /// then a global-lock acquisition per non-home node — the READ+SEND
    /// pair §VII-A identified as the damming trigger. `cb` receives the
    /// time initialization finished.
    pub fn init(
        &self,
        eng: &mut Sim,
        _cl: &mut Cluster,
        cb: impl FnOnce(&mut Sim, &mut Cluster, SimTime) + 'static,
    ) {
        let n = self.node_count();
        let dsm = self.clone();
        let ready = Rc::new(RefCell::new((n, Some(cb))));
        // Phase 3 (after the per-node work): a closing barrier.
        let node_done = move |eng: &mut Sim, cl: &mut Cluster| {
            let mut r = ready.borrow_mut();
            r.0 -= 1;
            if r.0 == 0 {
                let cb = r.1.take().expect("invariant: init finishes once");
                drop(r);
                dsm.barrier(eng, cl, move |eng, cl| {
                    let now = eng.now();
                    cb(eng, cl, now);
                });
            }
        };

        for i in 0..n {
            let (start, gap) = {
                let mut inner = self.inner.borrow_mut();
                let base = inner.cfg.compute_base.as_ns();
                let jit = inner.cfg.compute_jitter.as_ns().max(1);
                let gapmax = inner.cfg.lock_gap_max.as_ns().max(1);
                (
                    SimTime::from_ns(base + inner.rng.next_below(jit)),
                    SimTime::from_ns(inner.rng.next_below(gapmax)),
                )
            };
            let dsm = self.clone();
            let node_done = node_done.clone();
            eng.schedule_at(start, move |cl: &mut Cluster, eng| {
                dsm.init_node(eng, cl, i, gap, node_done);
            });
        }
    }

    /// One node's share of initialization.
    fn init_node(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        i: usize,
        lock_gap: SimTime,
        done: impl FnOnce(&mut Sim, &mut Cluster) + Clone + 'static,
    ) {
        let n = self.node_count();
        // Directory metadata: 64 bytes into a node-specific page of every
        // peer's partition — the "abundant first touches and page faults"
        // of §VII-A.
        let mut put_reqs = Vec::new();
        for j in 0..n {
            if j == i {
                continue;
            }
            let (ep, src, dst_key) = {
                let inner = self.inner.borrow();
                (
                    inner.ep(i, j),
                    inner.scratch_slice(i, 64, 64),
                    inner.nodes[j].partition.key,
                )
            };
            let host_i = self.host(i);
            let dst_off = PAGE_SIZE * (2 + i as u64);
            put_reqs.push(self.ucp.put(eng, cl, ep, host_i, src, dst_key, dst_off, 64));
        }
        let outstanding = Rc::new(RefCell::new(put_reqs.len()));
        let dsm = self.clone();
        for r in put_reqs {
            let outstanding = outstanding.clone();
            let dsm = dsm.clone();
            let done = done.clone();
            self.ucp.when_done(eng, cl, r, move |eng, cl, _| {
                let left = {
                    let mut o = outstanding.borrow_mut();
                    *o -= 1;
                    *o
                };
                if left == 0 {
                    dsm.init_lock_phase(eng, cl, i, lock_gap, done);
                }
            });
        }
    }

    /// The global-lock acquisition during init. Non-home nodes READ the
    /// lock word on node 0 and — after a scheduler-noise gap — SEND the
    /// ownership notification *without waiting for the READ* (the
    /// pipelined MPI pattern the paper captured). When the gap falls
    /// inside the fault-recovery window of the READ's page fault, the
    /// SEND is dammed and only the ~2 s transport timeout recovers it.
    fn init_lock_phase(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        i: usize,
        gap: SimTime,
        done: impl FnOnce(&mut Sim, &mut Cluster) + Clone + 'static,
    ) {
        if i == 0 {
            // The home of the lock word touches it locally.
            done(eng, cl);
            return;
        }
        let (ep, cache_slice, lock_key, note_src, seq) = {
            let mut inner = self.inner.borrow_mut();
            let seq = inner.next_seq();
            let c = &inner.nodes[i].cache;
            (
                inner.ep(i, 0),
                MemSlice {
                    host: c.host,
                    mr: c.key,
                    offset: 0,
                    len: 8,
                },
                inner.nodes[0].partition.key,
                inner.scratch_slice(i, 128, 8),
                seq,
            )
        };
        let host_i = self.host(i);
        let host0 = self.host(0);
        // Node 0 expects the ownership note.
        let note_dst = {
            let inner = self.inner.borrow();
            inner.scratch_slice(0, 256 + (i as u64) * 8, 8)
        };
        let note_recv =
            self.ucp
                .tag_recv(eng, cl, host0, tag(tag_kind::LOCK_NOTE, seq, i), note_dst);

        // READ the lock word (faults on node 0's cold page 0)...
        let read_req = self
            .ucp
            .get(eng, cl, ep, host_i, cache_slice, lock_key, 0, 8);
        // ...and SEND the note after the scheduler-noise gap, pipelined.
        let ucp = self.ucp.clone();
        eng.schedule_in(gap, move |c: &mut Cluster, eng| {
            ucp.tag_send(
                eng,
                c,
                ep,
                host_i,
                tag(tag_kind::LOCK_NOTE, seq, i),
                note_src,
            );
        });

        // The node is done when both its READ and node 0's note arrival
        // completed (the send completion is implied by the recv).
        let pending = Rc::new(RefCell::new(2u32));
        for r in [read_req, note_recv] {
            let pending = pending.clone();
            let done = done.clone();
            self.ucp.when_done(eng, cl, r, move |eng, cl, _| {
                let left = {
                    let mut p = pending.borrow_mut();
                    *p -= 1;
                    *p
                };
                if left == 0 {
                    done(eng, cl);
                }
            });
        }
    }

    /// The `argo::finalize()` equivalent: a closing barrier.
    pub fn finalize(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        cb: impl FnOnce(&mut Sim, &mut Cluster, SimTime) + 'static,
    ) {
        self.barrier(eng, cl, move |eng, cl| {
            let now = eng.now();
            cb(eng, cl, now);
        });
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Reads `len` bytes at global address `addr` from `node`, fetching
    /// the containing page into the cache if needed. `cb` receives the
    /// bytes.
    pub fn read(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        node: usize,
        addr: u64,
        len: u32,
        cb: impl FnOnce(&mut Sim, &mut Cluster, Vec<u8>) + 'static,
    ) {
        let (home, off) = {
            let inner = self.inner.borrow();
            (inner.cfg.home_of(addr), inner.cfg.offset_in_home(addr))
        };
        if home == node {
            let mut inner = self.inner.borrow_mut();
            inner.stats.local_reads += 1;
            let base = inner.nodes[node].partition.base;
            drop(inner);
            let data = cl.mem_read(self.host(node), base + off, len as usize);
            cb(eng, cl, data);
            return;
        }
        let page = addr & !(PAGE_SIZE - 1);
        let cached = self.inner.borrow().cache_valid.contains(&(node, page));
        if cached {
            let mut inner = self.inner.borrow_mut();
            inner.stats.cache_hits += 1;
            let base = inner.nodes[node].cache.base;
            drop(inner);
            let data = cl.mem_read(self.host(node), base + addr, len as usize);
            cb(eng, cl, data);
            return;
        }
        // Fetch the whole page from home into the cache (ArgoDSM-style).
        let (ep, cache_key, home_key, page_off_in_home) = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.remote_reads += 1;
            (
                inner.ep(node, home),
                inner.nodes[node].cache.key,
                inner.nodes[home].partition.key,
                inner.cfg.offset_in_home(page),
            )
        };
        let host = self.host(node);
        let dst = MemSlice {
            host,
            mr: cache_key,
            offset: page,
            len: PAGE_SIZE as u32,
        };
        let req = self.ucp.get(
            eng,
            cl,
            ep,
            host,
            dst,
            home_key,
            page_off_in_home,
            PAGE_SIZE as u32,
        );
        let dsm = self.clone();
        self.ucp.when_done(eng, cl, req, move |eng, cl, c| {
            assert!(!c.failed, "DSM page fetch failed");
            let base = {
                let mut inner = dsm.inner.borrow_mut();
                inner.cache_valid.insert((node, page));
                inner.nodes[node].cache.base
            };
            let data = cl.mem_read(dsm.host(node), base + addr, len as usize);
            cb(eng, cl, data);
        });
    }

    /// Writes `data` at global address `addr` from `node`, writing through
    /// to the home partition. `cb` runs when the write is globally visible.
    pub fn write(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        node: usize,
        addr: u64,
        data: Vec<u8>,
        cb: impl FnOnce(&mut Sim, &mut Cluster) + 'static,
    ) {
        let (home, off) = {
            let inner = self.inner.borrow();
            (inner.cfg.home_of(addr), inner.cfg.offset_in_home(addr))
        };
        // Keep a valid cached copy coherent with the write-through.
        let page = addr & !(PAGE_SIZE - 1);
        {
            let inner = self.inner.borrow();
            if inner.cache_valid.contains(&(node, page)) {
                let base = inner.nodes[node].cache.base;
                let host = inner.nodes[node].host;
                drop(inner);
                cl.mem_write(host, base + addr, &data);
            }
        }
        if home == node {
            let mut inner = self.inner.borrow_mut();
            inner.stats.local_writes += 1;
            let base = inner.nodes[node].partition.base;
            let host = inner.nodes[node].host;
            drop(inner);
            cl.mem_write(host, base + off, &data);
            cb(eng, cl);
            return;
        }
        let (ep, stage, home_key) = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.remote_writes += 1;
            // Stage the bytes in the cache region so the PUT has a
            // registered source.
            let c = &inner.nodes[node].cache;
            (
                inner.ep(node, home),
                MemSlice {
                    host: c.host,
                    mr: c.key,
                    offset: addr,
                    len: data.len() as u32,
                },
                inner.nodes[home].partition.key,
            )
        };
        let host = self.host(node);
        let cache_base = self.inner.borrow().nodes[node].cache.base;
        cl.mem_write(host, cache_base + addr, &data);
        let req = self
            .ucp
            .put(eng, cl, ep, host, stage, home_key, off, data.len() as u32);
        self.ucp.when_done(eng, cl, req, move |eng, cl, c| {
            assert!(!c.failed, "DSM write-through failed");
            cb(eng, cl);
        });
    }

    // ------------------------------------------------------------------
    // Global lock (app-level; served by node 0)
    // ------------------------------------------------------------------

    /// Starts the lock service on node 0. Call once before using
    /// [`Dsm::acquire`].
    pub fn start_lock_service(&self, eng: &mut Sim, cl: &mut Cluster) {
        let n = self.node_count();
        for i in 1..n {
            self.serve_lock_from(eng, cl, i);
        }
    }

    fn serve_lock_from(&self, eng: &mut Sim, cl: &mut Cluster, i: usize) {
        let host0 = self.host(0);
        let dst = {
            let inner = self.inner.borrow();
            inner.scratch_slice(0, 512 + (i as u64) * 16, 8)
        };
        let req = self
            .ucp
            .tag_recv(eng, cl, host0, tag(tag_kind::LOCK_REQ, 0, i), dst);
        let dsm = self.clone();
        self.ucp.when_done(eng, cl, req, move |eng, cl, _| {
            dsm.lock_request_arrived(eng, cl, i);
            dsm.serve_lock_from(eng, cl, i); // keep serving
        });
        // Also serve releases.
        let dst2 = {
            let inner = self.inner.borrow();
            inner.scratch_slice(0, 1024 + (i as u64) * 16, 8)
        };
        let rel = self
            .ucp
            .tag_recv(eng, cl, host0, tag(tag_kind::LOCK_RELEASE, 0, i), dst2);
        let dsm2 = self.clone();
        self.ucp.when_done(eng, cl, rel, move |eng, cl, _| {
            dsm2.lock_released(eng, cl);
        });
    }

    fn lock_request_arrived(&self, eng: &mut Sim, cl: &mut Cluster, i: usize) {
        let grant_now = {
            let mut inner = self.inner.borrow_mut();
            if inner.lock_held {
                inner.lock_queue.push_back(i);
                false
            } else {
                inner.lock_held = true;
                true
            }
        };
        if grant_now {
            self.send_grant(eng, cl, i);
        }
    }

    fn lock_released(&self, eng: &mut Sim, cl: &mut Cluster) {
        let next = {
            let mut inner = self.inner.borrow_mut();
            match inner.lock_queue.pop_front() {
                Some(n) => Some(n),
                None => {
                    inner.lock_held = false;
                    None
                }
            }
        };
        if let Some(n) = next {
            self.send_grant(eng, cl, n);
        }
    }

    fn send_grant(&self, eng: &mut Sim, cl: &mut Cluster, to: usize) {
        let (ep, src) = {
            let inner = self.inner.borrow();
            (inner.ep(0, to), inner.scratch_slice(0, 16, 8))
        };
        let host0 = self.host(0);
        self.ucp
            .tag_send(eng, cl, ep, host0, tag(tag_kind::LOCK_GRANT, 0, to), src);
    }

    /// Acquires the global lock from `node` (must not be node 0, which
    /// owns the lock and would use local state). `cb` runs when granted.
    ///
    /// # Panics
    ///
    /// Panics if called from node 0.
    pub fn acquire(
        &self,
        eng: &mut Sim,
        cl: &mut Cluster,
        node: usize,
        cb: impl FnOnce(&mut Sim, &mut Cluster) + 'static,
    ) {
        assert_ne!(node, 0, "node 0 serves the lock; acquire from others");
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.lock_acquisitions += 1;
        }
        let host = self.host(node);
        let (ep, req_src, grant_dst) = {
            let inner = self.inner.borrow();
            (
                inner.ep(node, 0),
                inner.scratch_slice(node, 192, 8),
                inner.scratch_slice(node, 200, 8),
            )
        };
        let grant = self
            .ucp
            .tag_recv(eng, cl, host, tag(tag_kind::LOCK_GRANT, 0, node), grant_dst);
        self.ucp
            .tag_send(eng, cl, ep, host, tag(tag_kind::LOCK_REQ, 0, node), req_src);
        self.ucp
            .when_done(eng, cl, grant, move |eng, cl, _| cb(eng, cl));
    }

    /// Drops every page cached by `node` (the self-invalidation half of a
    /// release, usable by synchronization schemes other than the global
    /// lock, e.g. barrier-based phases).
    pub fn release_cache(&self, node: usize) {
        let mut inner = self.inner.borrow_mut();
        let before = inner.cache_valid.len();
        inner.cache_valid.retain(|&(n, _)| n != node);
        let dropped = (before - inner.cache_valid.len()) as u64;
        inner.stats.self_invalidations += dropped;
    }

    /// Releases the global lock from `node`, self-invalidating the node's
    /// page cache (the ArgoDSM coherence action).
    pub fn release(&self, eng: &mut Sim, cl: &mut Cluster, node: usize) {
        {
            let mut inner = self.inner.borrow_mut();
            let before = inner.cache_valid.len();
            inner.cache_valid.retain(|&(n, _)| n != node);
            let dropped = (before - inner.cache_valid.len()) as u64;
            inner.stats.self_invalidations += dropped;
        }
        let host = self.host(node);
        let (ep, src) = {
            let inner = self.inner.borrow();
            (inner.ep(node, 0), inner.scratch_slice(node, 208, 8))
        };
        self.ucp
            .tag_send(eng, cl, ep, host, tag(tag_kind::LOCK_RELEASE, 0, node), src);
    }
}
