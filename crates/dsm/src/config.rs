//! DSM configuration.

use ibsim_event::SimTime;
use ibsim_verbs::DeviceProfile;

/// Configuration of a DSM instance (the `argo::init` parameters plus the
/// host-environment characteristics that shape Fig. 12).
#[derive(Debug, Clone)]
pub struct DsmConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Global shared memory size (Fig. 12 passes 10 MB).
    pub memory: u64,
    /// RNIC model of every node.
    pub device: DeviceProfile,
    /// Register DSM memory with ODP (the UCX-level toggle of Fig. 12).
    pub odp: bool,
    /// Seed for all run-level jitter.
    pub seed: u64,
    /// Local initialization compute per node: memory zeroing, MPI/UCX
    /// setup. This is a host property — ~2.3 s on the slow 1.4 GHz KNL
    /// cores, ~0.5 s on Reedbush-H (the w/o-ODP averages of Fig. 12).
    pub compute_base: SimTime,
    /// Uniform jitter added to the per-node compute time.
    pub compute_jitter: SimTime,
    /// Maximum scheduler-noise gap between the global-lock READ and the
    /// SEND that follows it (§VII-A observes the damming-prone READ+SEND
    /// pair during initialization). The gap is drawn uniformly from
    /// `[0, lock_gap_max)` per acquisition; gaps inside the ~3.4 ms RNR
    /// recovery window dam the SEND.
    pub lock_gap_max: SimTime,
}

impl Default for DsmConfig {
    /// Two KNL-like nodes with 10 MB of global memory, ODP enabled — the
    /// Fig. 12a setup.
    fn default() -> Self {
        DsmConfig {
            nodes: 2,
            memory: 10 * 1024 * 1024,
            device: DeviceProfile::connectx4(ibsim_fabric::LinkSpec::fdr()),
            odp: true,
            seed: 1,
            compute_base: SimTime::from_ms(2200),
            compute_jitter: SimTime::from_ms(160),
            lock_gap_max: SimTime::from_ms(8),
        }
    }
}

impl DsmConfig {
    /// Bytes of global memory homed on each node.
    pub fn partition_size(&self) -> u64 {
        self.memory.div_ceil(self.nodes as u64)
    }

    /// Home node of a global byte address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the global memory.
    pub fn home_of(&self, addr: u64) -> usize {
        assert!(addr < self.memory, "address {addr} outside global memory");
        (addr / self.partition_size()) as usize
    }

    /// Offset of a global address within its home partition.
    pub fn offset_in_home(&self, addr: u64) -> u64 {
        addr % self.partition_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_is_even() {
        let cfg = DsmConfig {
            nodes: 4,
            memory: 4096 * 8,
            ..Default::default()
        };
        assert_eq!(cfg.partition_size(), 4096 * 2);
        assert_eq!(cfg.home_of(0), 0);
        assert_eq!(cfg.home_of(4096 * 2), 1);
        assert_eq!(cfg.home_of(4096 * 8 - 1), 3);
        assert_eq!(cfg.offset_in_home(4096 * 2 + 5), 5);
    }

    #[test]
    #[should_panic(expected = "outside global memory")]
    fn out_of_range_address_panics() {
        let cfg = DsmConfig::default();
        cfg.home_of(cfg.memory);
    }
}
