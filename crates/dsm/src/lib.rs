//! # ibsim-dsm
//!
//! An ArgoDSM-like \[22\] home-node software distributed shared memory over
//! the simulated UCX layer: block-partitioned global memory, page-granular
//! caching with release-time self-invalidation, write-through to home
//! nodes, a message-based global lock, and the `init`/`finalize`
//! benchmark the paper uses in Fig. 12 to show packet damming escaping
//! into a real system.

#![warn(missing_docs)]

pub mod bench;
mod config;
#[allow(clippy::module_inception)]
mod dsm;

pub use bench::{init_finalize_histogram, init_finalize_once, mean};
pub use config::DsmConfig;
pub use dsm::{Dsm, DsmStats};
