//! The Fig. 12 benchmark: `argo::init()` + `argo::finalize()` wall time.

use ibsim_event::{Engine, SimTime};
use ibsim_verbs::Cluster;

use crate::config::DsmConfig;
use crate::dsm::Dsm;

/// Runs one init+finalize trial and returns its wall-clock time.
pub fn init_finalize_once(cfg: DsmConfig) -> SimTime {
    let mut eng = Engine::new();
    let mut cl = Cluster::new(cfg.seed);
    let dsm = Dsm::build(&mut eng, &mut cl, cfg);
    let finished = std::rc::Rc::new(std::cell::Cell::new(SimTime::ZERO));
    let fin = finished.clone();
    let dsm2 = dsm.clone();
    dsm.init(&mut eng, &mut cl, move |eng, cl, _| {
        let fin = fin.clone();
        dsm2.finalize(eng, cl, move |_, _, at| fin.set(at));
    });
    eng.run(&mut cl);
    let t = finished.get();
    assert!(t > SimTime::ZERO, "benchmark did not finish");
    t
}

/// Runs `trials` init+finalize trials with distinct seeds — the Fig. 12
/// histogram data.
pub fn init_finalize_histogram(cfg: &DsmConfig, trials: u64) -> Vec<SimTime> {
    (0..trials)
        .map(|t| {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(t + 1);
            init_finalize_once(c)
        })
        .collect()
}

/// Mean of a sample.
pub fn mean(samples: &[SimTime]) -> SimTime {
    if samples.is_empty() {
        return SimTime::ZERO;
    }
    samples.iter().copied().sum::<SimTime>() / samples.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_odp_time_is_compute_bound() {
        let cfg = DsmConfig {
            odp: false,
            compute_base: SimTime::from_ms(100),
            compute_jitter: SimTime::from_ms(10),
            ..Default::default()
        };
        let t = init_finalize_once(cfg);
        assert!(
            (SimTime::from_ms(100)..SimTime::from_ms(130)).contains(&t),
            "compute-bound: {t}"
        );
    }

    #[test]
    fn with_odp_some_trials_dam() {
        // With the damming-prone gap distribution, trials split into a
        // fast group and a ~2 s (transport timeout) slower group.
        let cfg = DsmConfig {
            odp: true,
            compute_base: SimTime::from_ms(100),
            compute_jitter: SimTime::from_ms(10),
            lock_gap_max: SimTime::from_ms(8),
            ..Default::default()
        };
        let samples = init_finalize_histogram(&cfg, 12);
        let slow = samples
            .iter()
            .filter(|t| **t > SimTime::from_ms(1000))
            .count();
        let fast = samples.len() - slow;
        assert!(slow > 0, "some trials hit the timeout: {samples:?}");
        assert!(fast > 0, "some trials stay fast: {samples:?}");
        // The slow group sits ~T_o(18) ≈ 2 s above the fast group.
        let slow_min = samples
            .iter()
            .filter(|t| **t > SimTime::from_ms(1000))
            .min();
        assert!(*slow_min.unwrap() > SimTime::from_ms(1900));
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), SimTime::ZERO);
        assert_eq!(
            mean(&[SimTime::from_ms(1), SimTime::from_ms(3)]),
            SimTime::from_ms(2)
        );
    }
}
