//! The shuffle engine: map-output registration and READ-based block
//! fetching, SparkUCX style.
//!
//! Map tasks write their output blocks into a per-worker shuffle region
//! registered through UCP (ODP or pinned). Reduce tasks then fetch one
//! block from every map task with one-sided GETs (RDMA READ — the
//! operation Spark joins issue internally, §VII-B), spread across many
//! endpoints. With ODP enabled and many QPs faulting on the same shuffle
//! pages, this is precisely the packet-flood scenario of Fig. 13.

use std::cell::RefCell;
use std::rc::Rc;

use ibsim_event::{Engine, SimTime, SplitMix64};
use ibsim_ucp::{EpId, MemSlice, Ucp, UcpConfig};
use ibsim_verbs::{Cluster, HostId, MrDesc, Sim};

use crate::config::ShuffleConfig;

/// Outcome of one shuffle job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleReport {
    /// Wall-clock duration of the job.
    pub duration: SimTime,
    /// QPs created (the Fig. 13 "QPs" column).
    pub qps: usize,
    /// Successful block fetches.
    pub fetches: u64,
    /// Fetches that failed with a transport error
    /// (`IBV_WC_RETRY_EXC_ERR`); Fig. 13 omits such samples.
    pub failed_fetches: u64,
    /// Bytes fetched over the network.
    pub network_bytes: u64,
    /// Total packets on the fabric.
    pub packets: u64,
    /// True if every fetched block carried the expected bytes.
    pub data_ok: bool,
}

struct WorkerArea {
    host: HostId,
    /// Map-output region of this worker.
    out: MrDesc,
    /// Fetch staging region of this worker.
    stage: MrDesc,
}

struct JobState {
    remaining_reducers: usize,
    fetches: u64,
    failed: u64,
    network_bytes: u64,
    data_ok: bool,
    finished_at: SimTime,
}

/// Runs one shuffle job to completion and reports.
///
/// # Panics
///
/// Panics if the configuration has fewer than two workers or no tasks.
pub fn run_shuffle(cfg: &ShuffleConfig) -> ShuffleReport {
    assert!(cfg.workers >= 2, "shuffle needs at least two workers");
    assert!(cfg.map_tasks > 0 && cfg.reduce_tasks > 0, "need tasks");

    let mut eng = Engine::new();
    let mut cl = Cluster::new(cfg.seed);
    let ucp = Ucp::new(UcpConfig {
        odp: cfg.odp,
        ..Default::default()
    });

    // Workers and their shuffle regions.
    let out_bytes = cfg.map_tasks as u64 * cfg.reduce_tasks as u64 * cfg.block_bytes as u64;
    let mut areas = Vec::new();
    for w in 0..cfg.workers {
        let host = ucp.add_worker(&mut cl, &format!("worker{w}"), cfg.device.clone());
        let out = ucp.mem_map(&mut cl, host, out_bytes.max(4096));
        let stage = ucp.mem_map(&mut cl, host, out_bytes.max(4096));
        areas.push(WorkerArea { host, out, stage });
    }
    let areas = Rc::new(areas);

    // Endpoint mesh: `endpoints_per_pair` QP pairs per worker pair.
    let mut eps: Vec<Vec<Vec<EpId>>> = vec![vec![Vec::new(); cfg.workers]; cfg.workers];
    for i in 0..cfg.workers {
        for j in (i + 1)..cfg.workers {
            for _ in 0..cfg.endpoints_per_pair {
                let ep = ucp.connect(&mut eng, &mut cl, areas[i].host, areas[j].host);
                eps[i][j].push(ep);
                eps[j][i].push(ep);
            }
        }
    }
    let eps = Rc::new(eps);

    // Map phase: mapper m (on worker m % W) writes one block per reducer.
    // Writing touches the OS pages; with ODP the NIC mapping stays cold
    // until the first remote READ — the flood trigger.
    for m in 0..cfg.map_tasks {
        let w = m % cfg.workers;
        for r in 0..cfg.reduce_tasks {
            let off = block_offset(cfg, m, r);
            let data = block_payload(cfg, m, r);
            cl.mem_write(areas[w].host, areas[w].out.base + off, &data);
        }
    }

    let state = Rc::new(RefCell::new(JobState {
        remaining_reducers: cfg.reduce_tasks,
        fetches: 0,
        failed: 0,
        network_bytes: 0,
        data_ok: true,
        finished_at: SimTime::ZERO,
    }));

    // Reduce phase: reducer r (on worker r % W) fetches one block from
    // every mapper, `fetch_parallelism` at a time.
    let mut rng = SplitMix64::new(cfg.seed ^ 0x5u64);
    for r in 0..cfg.reduce_tasks {
        let start = cfg.setup_compute
            + SimTime::from_ns(rng.next_below(cfg.fetch_stagger.as_ns().max(1) * 4));
        let cfg2 = cfg.clone();
        let ucp2 = ucp.clone();
        let areas2 = areas.clone();
        let eps2 = eps.clone();
        let state2 = state.clone();
        let jitter_seed = cfg.seed ^ (r as u64) << 8;
        eng.schedule_at(start, move |cl: &mut Cluster, eng| {
            let task = Rc::new(ReduceTask {
                cfg: cfg2,
                ucp: ucp2,
                areas: areas2,
                eps: eps2,
                state: state2,
                r,
                next_map: RefCell::new(0),
                inflight: RefCell::new(0),
                done: RefCell::new(false),
                rng: RefCell::new(SplitMix64::new(jitter_seed)),
            });
            ReduceTask::pump(&task, eng, cl);
        });
    }

    eng.run(&mut cl);

    let s = state.borrow();
    assert_eq!(s.remaining_reducers, 0, "all reducers finished");
    ShuffleReport {
        duration: s.finished_at,
        qps: cfg.total_qps(),
        fetches: s.fetches,
        failed_fetches: s.failed,
        network_bytes: s.network_bytes,
        packets: cl.stats.total_packets,
        data_ok: s.data_ok,
    }
}

/// Byte offset of mapper `m`'s block for reducer `r` in the map-output
/// region. Blocks for consecutive reducers are adjacent, so one page
/// holds blocks destined to many different reducers — and therefore gets
/// READ by many different QPs, the packet-flood precondition.
fn block_offset(cfg: &ShuffleConfig, m: usize, r: usize) -> u64 {
    ((m / cfg.workers) * cfg.reduce_tasks + r) as u64 * cfg.block_bytes as u64
}

/// Byte offset where reducer `r` stages mapper `m`'s block. Interleaved
/// so blocks arriving for different co-located reducers share pages: the
/// requester-side mirror of the flood layout (Fig. 10).
fn stage_offset(cfg: &ShuffleConfig, m: usize, r: usize) -> u64 {
    (m * cfg.reduce_tasks.div_ceil(cfg.workers) + r / cfg.workers) as u64 * cfg.block_bytes as u64
}

/// Deterministic block contents for integrity checking.
fn block_payload(cfg: &ShuffleConfig, m: usize, r: usize) -> Vec<u8> {
    let tagbyte = ((m * 31 + r * 7) % 251) as u8;
    vec![tagbyte; cfg.block_bytes as usize]
}

struct ReduceTask {
    cfg: ShuffleConfig,
    ucp: Ucp,
    areas: Rc<Vec<WorkerArea>>,
    eps: Rc<Vec<Vec<Vec<EpId>>>>,
    state: Rc<RefCell<JobState>>,
    r: usize,
    next_map: RefCell<usize>,
    inflight: RefCell<u32>,
    done: RefCell<bool>,
    rng: RefCell<SplitMix64>,
}

impl ReduceTask {
    /// Issues fetches until the parallelism window is full; finishes the
    /// task when every block arrived.
    fn pump(task: &Rc<ReduceTask>, eng: &mut Sim, cl: &mut Cluster) {
        loop {
            let m = *task.next_map.borrow();
            if m >= task.cfg.map_tasks {
                if *task.inflight.borrow() == 0 && !*task.done.borrow() {
                    *task.done.borrow_mut() = true;
                    let mut s = task.state.borrow_mut();
                    s.remaining_reducers -= 1;
                    s.finished_at = s.finished_at.max(eng.now());
                }
                return;
            }
            if *task.inflight.borrow() >= task.cfg.fetch_parallelism as u32 {
                return;
            }
            *task.next_map.borrow_mut() += 1;
            task.fetch_block(eng, cl, m);
        }
    }

    fn fetch_block(self: &Rc<Self>, eng: &mut Sim, cl: &mut Cluster, m: usize) {
        let w_red = self.r % self.cfg.workers;
        let w_map = m % self.cfg.workers;
        let off = block_offset(&self.cfg, m, self.r);
        let dst_off = stage_offset(&self.cfg, m, self.r);
        if w_map == w_red {
            // Co-located block: a local memcpy, no network.
            let src = self.areas[w_map].out.base + off;
            let data = cl.mem_read(self.areas[w_map].host, src, self.cfg.block_bytes as usize);
            let dst = self.areas[w_red].stage.base + dst_off;
            cl.mem_write(self.areas[w_red].host, dst, &data);
            self.verify(cl, m, dst_off);
            let me = self.clone();
            // Re-enter the pump after the staggered compute.
            let delay = self.stagger_delay();
            eng.schedule_in(delay, move |cl: &mut Cluster, eng| {
                ReduceTask::pump(&me, eng, cl);
            });
            return;
        }
        *self.inflight.borrow_mut() += 1;
        let ep_set = &self.eps[w_red][w_map];
        let rot = self.cfg.fetches_per_ep.max(1);
        let ep = ep_set[(self.r * 131 + m / rot) % ep_set.len()];
        let dst = MemSlice {
            host: self.areas[w_red].host,
            mr: self.areas[w_red].stage.key,
            offset: dst_off,
            len: self.cfg.block_bytes,
        };
        let req = self.ucp.get(
            eng,
            cl,
            ep,
            self.areas[w_red].host,
            dst,
            self.areas[w_map].out.key,
            off,
            self.cfg.block_bytes,
        );
        let me = self.clone();
        self.ucp.when_done(eng, cl, req, move |eng, cl, c| {
            {
                let mut s = me.state.borrow_mut();
                if c.failed {
                    s.failed += 1;
                } else {
                    s.fetches += 1;
                    s.network_bytes += c.bytes as u64;
                }
            }
            if !c.failed {
                me.verify(cl, m, stage_offset(&me.cfg, m, me.r));
            }
            *me.inflight.borrow_mut() -= 1;
            let delay = me.stagger_delay();
            let me2 = me.clone();
            eng.schedule_in(delay, move |cl: &mut Cluster, eng| {
                ReduceTask::pump(&me2, eng, cl);
            });
        });
    }

    fn stagger_delay(&self) -> SimTime {
        let max = self.cfg.fetch_stagger.as_ns().max(1) * 2;
        SimTime::from_ns(self.rng.borrow_mut().next_below(max))
    }

    fn verify(&self, cl: &mut Cluster, m: usize, dst_off: u64) {
        let w_red = self.r % self.cfg.workers;
        let got = cl.mem_read(
            self.areas[w_red].host,
            self.areas[w_red].stage.base + dst_off,
            8.min(self.cfg.block_bytes as usize),
        );
        let want = block_payload(&self.cfg, m, self.r);
        if got != want[..got.len()] {
            self.state.borrow_mut().data_ok = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(odp: bool) -> ShuffleConfig {
        ShuffleConfig {
            workers: 2,
            odp,
            map_tasks: 4,
            reduce_tasks: 4,
            block_bytes: 1024,
            endpoints_per_pair: 4,
            fetch_parallelism: 2,
            fetch_stagger: SimTime::from_us(20),
            setup_compute: SimTime::from_us(100),
            ..Default::default()
        }
    }

    #[test]
    fn pinned_shuffle_moves_all_blocks_correctly() {
        let rep = run_shuffle(&tiny(false));
        // 4×4 blocks; half are remote (mapper parity vs reducer parity).
        assert_eq!(rep.fetches, 8);
        assert_eq!(rep.failed_fetches, 0);
        assert!(rep.data_ok);
        assert_eq!(rep.network_bytes, 8 * 1024);
        assert_eq!(rep.qps, 8, "1 pair x 4 endpoints x 2 ends");
        assert!(rep.duration > SimTime::from_us(100));
    }

    #[test]
    fn odp_shuffle_is_slower_but_correct() {
        let pinned = run_shuffle(&tiny(false));
        let odp = run_shuffle(&tiny(true));
        assert!(odp.data_ok);
        assert_eq!(odp.failed_fetches, 0);
        assert!(
            odp.duration > pinned.duration,
            "ODP adds fault overhead: {} vs {}",
            odp.duration,
            pinned.duration
        );
    }

    #[test]
    fn many_qps_with_odp_storms_versus_pinned() {
        // Flood needs many *distinct QPs* faulting on the same page: tiny
        // 128-byte blocks pack 32 blocks per page, 64 endpoints give each
        // fetch its own QP, and high parallelism makes the faults
        // simultaneous. Against the pinned baseline, ODP multiplies the
        // packet count (retransmission storms) and stretches the job.
        let mut cfg = tiny(true);
        cfg.endpoints_per_pair = 64;
        cfg.map_tasks = 24;
        cfg.reduce_tasks = 24;
        cfg.block_bytes = 128;
        cfg.fetch_parallelism = 24;
        cfg.fetch_stagger = SimTime::from_ns(500);
        let odp = run_shuffle(&cfg);
        let mut pinned_cfg = cfg.clone();
        pinned_cfg.odp = false;
        let pinned = run_shuffle(&pinned_cfg);
        assert!(odp.data_ok && pinned.data_ok);
        assert_eq!(odp.fetches, pinned.fetches);
        assert!(
            odp.packets > pinned.packets * 2,
            "ODP storms: {} vs {} packets",
            odp.packets,
            pinned.packets
        );
        assert!(
            odp.duration > pinned.duration.mul_f64(1.5),
            "ODP stretches the job: {} vs {}",
            odp.duration,
            pinned.duration
        );
    }
}
