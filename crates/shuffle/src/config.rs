//! Shuffle workload configuration.

use ibsim_event::SimTime;
use ibsim_verbs::DeviceProfile;

/// Configuration of one shuffle job (the SparkUCX-shaped workload of
/// §VII-B / Fig. 13).
#[derive(Debug, Clone)]
pub struct ShuffleConfig {
    /// Worker machines.
    pub workers: usize,
    /// RNIC model of every worker.
    pub device: DeviceProfile,
    /// Register shuffle buffers with ODP (the Fig. 13 enable/disable
    /// toggle).
    pub odp: bool,
    /// Seed for jitter.
    pub seed: u64,
    /// Map tasks (each produces one block per reduce task).
    pub map_tasks: usize,
    /// Reduce tasks (each fetches one block from every map task).
    pub reduce_tasks: usize,
    /// Bytes per shuffle block.
    pub block_bytes: u32,
    /// Endpoints (QP pairs) per ordered worker pair; SparkUCX creates
    /// hundreds to thousands of QPs (Fig. 13's "QPs" column).
    pub endpoints_per_pair: usize,
    /// Concurrent outstanding fetches per reduce task.
    pub fetch_parallelism: usize,
    /// Consecutive fetches a reduce task issues on the same endpoint
    /// before rotating to the next (connection reuse for locality, like
    /// SparkUCX's per-executor connections). Values above 1 put
    /// back-to-back READs on one QP — the packet-damming precondition
    /// when the first of them page-faults.
    pub fetches_per_ep: usize,
    /// Mean compute time between a reduce task's fetches (CPU speed and
    /// scheduling noise; larger values spread the READs out in time,
    /// which — as §VII-B observes — weakens the flood).
    pub fetch_stagger: SimTime,
    /// Fixed per-job setup compute (executor launch, scheduling).
    pub setup_compute: SimTime,
}

impl Default for ShuffleConfig {
    fn default() -> Self {
        ShuffleConfig {
            workers: 2,
            device: DeviceProfile::connectx4(ibsim_fabric::LinkSpec::fdr()),
            odp: true,
            seed: 1,
            map_tasks: 8,
            reduce_tasks: 8,
            block_bytes: 32 * 1024,
            endpoints_per_pair: 16,
            fetch_parallelism: 4,
            fetches_per_ep: 1,
            fetch_stagger: SimTime::from_us(50),
            setup_compute: SimTime::from_ms(50),
        }
    }
}

impl ShuffleConfig {
    /// Total QPs the job creates: one pair per endpoint per ordered
    /// worker pair (matching how Fig. 13 counts them: both ends).
    pub fn total_qps(&self) -> usize {
        let pairs = self.workers * (self.workers - 1) / 2;
        pairs * self.endpoints_per_pair * 2
    }

    /// Total bytes moved if nothing is co-located.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.map_tasks as u64 * self.reduce_tasks as u64 * self.block_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_accounting() {
        let cfg = ShuffleConfig {
            workers: 2,
            endpoints_per_pair: 16,
            ..Default::default()
        };
        assert_eq!(cfg.total_qps(), 32);
        let cfg4 = ShuffleConfig {
            workers: 4,
            endpoints_per_pair: 16,
            ..Default::default()
        };
        // 6 pairs × 16 eps × 2 ends.
        assert_eq!(cfg4.total_qps(), 192);
    }

    #[test]
    fn byte_accounting() {
        let cfg = ShuffleConfig {
            map_tasks: 4,
            reduce_tasks: 4,
            block_bytes: 1000,
            ..Default::default()
        };
        assert_eq!(cfg.total_shuffle_bytes(), 16_000);
    }
}
