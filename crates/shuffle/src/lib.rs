//! # ibsim-shuffle
//!
//! A SparkUCX-like \[21\] RDMA shuffle engine over the simulated UCX layer:
//! map tasks register their output blocks, reduce tasks fetch them with
//! one-sided READs over hundreds of QPs. With ODP enabled this reproduces
//! the packet-flood degradation the paper measures in Fig. 13; workload
//! presets shaped like the paper's three Spark examples live in
//! [`presets`].

#![warn(missing_docs)]

mod config;
mod engine;
pub mod presets;

pub use config::ShuffleConfig;
pub use engine::{run_shuffle, ShuffleReport};
