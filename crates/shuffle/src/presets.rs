//! Workload presets shaped like the paper's Fig. 13 cells: three Spark
//! examples (SparkTC, mllib.RecommendationExample,
//! mllib.RankingMetricsExample) on four cluster configurations.
//!
//! Absolute durations are scaled down ~100× from the paper's wall-clock
//! seconds (the paper runs full Spark jobs; we simulate one representative
//! shuffle round plus the setup compute), so the comparisons to make are
//! the *ratios* and the *QP counts*, both of which match Fig. 13.
//! `fetch_stagger` encodes how bursty each system issues its fetches —
//! the "timing issue" §VII-B blames for the per-system spread — and is
//! calibrated per cell.

use ibsim_event::SimTime;
use ibsim_verbs::DeviceProfile;

use crate::config::ShuffleConfig;

/// The Spark examples the paper runs (§VII-B), all join-heavy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparkExample {
    /// SparkTC: transitive closure — many tiny shuffle records.
    SparkTc,
    /// mllib.RecommendationExample (ALS).
    Recommendation,
    /// mllib.RankingMetricsExample.
    RankingMetrics,
}

impl SparkExample {
    /// All three, in Fig. 13 order.
    pub const ALL: [SparkExample; 3] = [
        SparkExample::SparkTc,
        SparkExample::Recommendation,
        SparkExample::RankingMetrics,
    ];

    /// Display name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            SparkExample::SparkTc => "SparkTC",
            SparkExample::Recommendation => "mllib.RecommendationExample",
            SparkExample::RankingMetrics => "mllib.RankingMetricsExample",
        }
    }
}

/// The cluster configurations of Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig13Cluster {
    /// KNL, 2 nodes (ConnectX-4 FDR).
    Knl2,
    /// Reedbush-H, 2 nodes (ConnectX-4 FDR).
    ReedbushH2,
    /// ABCI, 2 nodes (ConnectX-4 EDR).
    Abci2,
    /// ABCI, 4 nodes (ConnectX-4 EDR).
    Abci4,
}

impl Fig13Cluster {
    /// All four, in Fig. 13 order.
    pub const ALL: [Fig13Cluster; 4] = [
        Fig13Cluster::Knl2,
        Fig13Cluster::ReedbushH2,
        Fig13Cluster::Abci2,
        Fig13Cluster::Abci4,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Fig13Cluster::Knl2 => "KNL (2)",
            Fig13Cluster::ReedbushH2 => "Reedbush-H (2)",
            Fig13Cluster::Abci2 => "ABCI (2)",
            Fig13Cluster::Abci4 => "ABCI (4)",
        }
    }

    /// Number of worker machines.
    pub fn workers(self) -> usize {
        match self {
            Fig13Cluster::Abci4 => 4,
            _ => 2,
        }
    }

    fn device(self) -> DeviceProfile {
        match self {
            Fig13Cluster::Knl2 | Fig13Cluster::ReedbushH2 => {
                DeviceProfile::connectx4(ibsim_fabric::LinkSpec::fdr())
            }
            _ => DeviceProfile::connectx4(ibsim_fabric::LinkSpec::edr()),
        }
    }
}

/// One Fig. 13 cell: the paper's reference numbers plus the simulator
/// configuration that reproduces its shape.
#[derive(Debug, Clone)]
pub struct Fig13Cell {
    /// Cluster configuration.
    pub cluster: Fig13Cluster,
    /// Spark example.
    pub example: SparkExample,
    /// QPs the paper reports for this cell.
    pub paper_qps: usize,
    /// Paper's mean duration with ODP disabled (seconds).
    pub paper_disabled_s: f64,
    /// Paper's mean duration with ODP enabled (seconds).
    pub paper_enabled_s: f64,
}

impl Fig13Cell {
    /// Paper's enabled/disabled ratio.
    pub fn paper_ratio(&self) -> f64 {
        self.paper_enabled_s / self.paper_disabled_s
    }

    /// Builds the simulator configuration for this cell.
    pub fn config(&self, odp: bool, seed: u64) -> ShuffleConfig {
        let workers = self.cluster.workers();
        // Endpoints per unordered pair so that total QPs ≈ the paper's.
        let pairs = workers * (workers - 1) / 2;
        let endpoints_per_pair = (self.paper_qps / (pairs * 2)).max(1);
        let (block_bytes, tasks) = match self.example {
            // SparkTC shuffles many tiny records.
            SparkExample::SparkTc => (256, 32),
            SparkExample::Recommendation => (1024, 24),
            SparkExample::RankingMetrics => (512, 28),
        };
        // How bursty the system issues shuffle fetches: fast, lightly
        // loaded executors (ABCI) spread their READs out; over-subscribed
        // KNL/Reedbush executors fire them in tight bursts. Calibrated per
        // cell — §VII-B: "the degree of performance degradation with ODP
        // differs from each system and each example because packet flood
        // is intimately related to the timing issue".
        // (stagger µs, fetch parallelism, fetches per endpoint) per cell,
        // chosen with the `calib13` sweep.
        let (stagger_us, par, fetches_per_ep) = match (self.cluster, self.example) {
            (Fig13Cluster::Knl2, SparkExample::SparkTc) => (400, 6, 1),
            (Fig13Cluster::Knl2, SparkExample::Recommendation) => (900, 2, 1),
            (Fig13Cluster::Knl2, SparkExample::RankingMetrics) => (400, 5, 1),
            (Fig13Cluster::ReedbushH2, SparkExample::SparkTc) => (60, 4, 1),
            (Fig13Cluster::ReedbushH2, SparkExample::Recommendation) => (60, 6, 1),
            (Fig13Cluster::ReedbushH2, SparkExample::RankingMetrics) => (70, 6, 1),
            (Fig13Cluster::Abci2, SparkExample::SparkTc) => (900, 6, 1),
            (Fig13Cluster::Abci2, SparkExample::Recommendation) => (700, 6, 1),
            (Fig13Cluster::Abci2, SparkExample::RankingMetrics) => (600, 6, 1),
            (Fig13Cluster::Abci4, SparkExample::SparkTc) => (60, 6, 1),
            (Fig13Cluster::Abci4, SparkExample::Recommendation) => (250, 6, 1),
            (Fig13Cluster::Abci4, SparkExample::RankingMetrics) => (50, 6, 1),
        };
        ShuffleConfig {
            workers,
            device: self.cluster.device(),
            odp,
            seed,
            map_tasks: tasks,
            reduce_tasks: tasks,
            block_bytes,
            endpoints_per_pair,
            fetch_parallelism: par,
            fetches_per_ep,
            fetch_stagger: SimTime::from_us(stagger_us),
            // ~1/100 of the paper's disabled wall time, minus the network
            // part, is modeled as setup/compute.
            setup_compute: SimTime::from_ms_f64(self.paper_disabled_s * 10.0 * 0.95),
        }
    }
}

/// All twelve Fig. 13 cells with the paper's reference numbers.
pub fn fig13_cells() -> Vec<Fig13Cell> {
    use Fig13Cluster::*;
    use SparkExample::*;
    vec![
        // SparkTC
        Fig13Cell {
            cluster: Knl2,
            example: SparkTc,
            paper_qps: 411,
            paper_disabled_s: 303.0,
            paper_enabled_s: 473.0,
        },
        Fig13Cell {
            cluster: ReedbushH2,
            example: SparkTc,
            paper_qps: 980,
            paper_disabled_s: 39.7,
            paper_enabled_s: 256.0,
        },
        Fig13Cell {
            cluster: Abci2,
            example: SparkTc,
            paper_qps: 2191,
            paper_disabled_s: 83.9,
            paper_enabled_s: 84.9,
        },
        Fig13Cell {
            cluster: Abci4,
            example: SparkTc,
            paper_qps: 2858,
            paper_disabled_s: 41.7,
            paper_enabled_s: 59.3,
        },
        // RecommendationExample
        Fig13Cell {
            cluster: Knl2,
            example: Recommendation,
            paper_qps: 210,
            paper_disabled_s: 100.0,
            paper_enabled_s: 151.0,
        },
        Fig13Cell {
            cluster: ReedbushH2,
            example: Recommendation,
            paper_qps: 980,
            paper_disabled_s: 21.9,
            paper_enabled_s: 78.6,
        },
        Fig13Cell {
            cluster: Abci2,
            example: Recommendation,
            paper_qps: 2191,
            paper_disabled_s: 29.0,
            paper_enabled_s: 31.2,
        },
        Fig13Cell {
            cluster: Abci4,
            example: Recommendation,
            paper_qps: 1953,
            paper_disabled_s: 24.3,
            paper_enabled_s: 28.6,
        },
        // RankingMetricsExample
        Fig13Cell {
            cluster: Knl2,
            example: RankingMetrics,
            paper_qps: 389,
            paper_disabled_s: 517.0,
            paper_enabled_s: 674.0,
        },
        Fig13Cell {
            cluster: ReedbushH2,
            example: RankingMetrics,
            paper_qps: 980,
            paper_disabled_s: 46.6,
            paper_enabled_s: 111.0,
        },
        Fig13Cell {
            cluster: Abci2,
            example: RankingMetrics,
            paper_qps: 2191,
            paper_disabled_s: 107.0,
            paper_enabled_s: 147.0,
        },
        Fig13Cell {
            cluster: Abci4,
            example: RankingMetrics,
            paper_qps: 2667,
            paper_disabled_s: 83.2,
            paper_enabled_s: 197.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_cells_with_paper_ratios() {
        let cells = fig13_cells();
        assert_eq!(cells.len(), 12);
        // Extremes of the ratio column.
        let max = cells.iter().map(|c| c.paper_ratio()).fold(0.0f64, f64::max);
        assert!((6.4..6.5).contains(&max), "Reedbush SparkTC is 6.46x");
        let min = cells
            .iter()
            .map(|c| c.paper_ratio())
            .fold(f64::MAX, f64::min);
        assert!((1.0..1.05).contains(&min), "ABCI(2) SparkTC is 1.01x");
    }

    #[test]
    fn configs_hit_paper_qp_counts() {
        for cell in fig13_cells() {
            let cfg = cell.config(true, 1);
            let got = cfg.total_qps();
            let want = cell.paper_qps;
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(
                err < 0.02,
                "{} {}: {} vs {}",
                cell.cluster.name(),
                cell.example.name(),
                got,
                want
            );
        }
    }

    #[test]
    fn odp_toggle_only_changes_registration() {
        let cell = &fig13_cells()[0];
        let a = cell.config(true, 7);
        let b = cell.config(false, 7);
        assert!(a.odp && !b.odp);
        assert_eq!(a.total_qps(), b.total_qps());
        assert_eq!(a.block_bytes, b.block_bytes);
    }
}
