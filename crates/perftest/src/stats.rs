//! Latency statistics.

use core::fmt;

use ibsim_event::SimTime;

/// Latency distribution of one run, like `perftest`'s summary line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyReport {
    /// Fastest iteration.
    pub min: SimTime,
    /// Median iteration.
    pub median: SimTime,
    /// Mean iteration.
    pub avg: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Slowest iteration.
    pub max: SimTime,
    /// Number of measured iterations.
    pub iterations: usize,
}

impl LatencyReport {
    /// Computes the report from raw per-iteration latencies.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(mut samples: Vec<SimTime>) -> LatencyReport {
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_unstable();
        let n = samples.len();
        let total: SimTime = samples.iter().copied().sum();
        LatencyReport {
            min: samples[0],
            median: samples[n / 2],
            avg: total / n as u64,
            p99: samples[(n * 99) / 100],
            max: samples[n - 1],
            iterations: n,
        }
    }
}

impl fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} median={} avg={} p99={} max={}",
            self.iterations, self.min, self.median, self.avg, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_orders_statistics() {
        let samples: Vec<SimTime> = (1..=100).map(SimTime::from_us).collect();
        let r = LatencyReport::from_samples(samples);
        assert_eq!(r.min, SimTime::from_us(1));
        assert_eq!(r.max, SimTime::from_us(100));
        assert_eq!(r.median, SimTime::from_us(51));
        assert_eq!(r.p99, SimTime::from_us(100));
        assert!((r.avg.as_us_f64() - 50.5).abs() < 1.0);
        assert_eq!(r.iterations, 100);
        assert!(r.to_string().contains("n=100"));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        LatencyReport::from_samples(Vec::new());
    }
}
