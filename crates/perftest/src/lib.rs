//! # ibsim-perftest
//!
//! The standard InfiniBand micro-benchmarks (`ib_read_lat`, `ib_read_bw`,
//! `ib_write_bw`, `ib_send_lat` of the `perftest` suite) for the `ibsim`
//! simulator, with the ODP knobs the real suite mostly lacks — the
//! tooling gap the paper's investigation had to fill with hand-written
//! benchmarks.
//!
//! # Examples
//!
//! ```
//! use ibsim_perftest::{read_lat, PerfConfig};
//!
//! let report = read_lat(&PerfConfig {
//!     iterations: 100,
//!     ..PerfConfig::default()
//! });
//! // Pinned latency is a few µs round-trip.
//! assert!(report.avg.as_us_f64() < 10.0);
//! ```

#![warn(missing_docs)]

mod runner;
mod stats;

pub use runner::{read_bw, read_lat, send_lat, write_bw, BwReport, PerfConfig};
pub use stats::LatencyReport;
