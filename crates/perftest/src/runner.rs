//! The benchmark runners.

use ibsim_event::{Engine, SimTime};
use ibsim_fabric::LinkSpec;
use ibsim_verbs::{
    Cluster, DeviceProfile, HostId, MrDesc, MrMode, QpConfig, Qpn, ReadWr, RecvWr, SendWr, Sim,
    WrId, WriteWr,
};

use crate::stats::LatencyReport;

/// Parameters shared by every benchmark, mirroring `perftest` flags.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// RNIC model on both ends (`-d`).
    pub device: DeviceProfile,
    /// Message size in bytes (`-s`).
    pub size: u32,
    /// Measured iterations (`-n`).
    pub iterations: usize,
    /// Warm-up iterations excluded from statistics.
    pub warmup: usize,
    /// Register buffers with ODP (`--odp`).
    pub odp: bool,
    /// Pre-fault ODP pages before measuring (`--odp --use_hugepages`-ish
    /// prefetch; a no-op for pinned buffers).
    pub prefetch: bool,
    /// Outstanding operations for bandwidth runs (`-t`, the tx depth).
    pub window: usize,
    /// Seed for fault-latency jitter.
    pub seed: u64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            device: DeviceProfile::connectx4(LinkSpec::fdr()),
            size: 8,
            iterations: 1000,
            warmup: 10,
            odp: false,
            prefetch: false,
            window: 16,
            seed: 1,
        }
    }
}

struct Bench {
    eng: Sim,
    cl: Cluster,
    client: HostId,
    server: HostId,
    qp: Qpn,
    server_qp: Qpn,
    local: MrDesc,
    remote: MrDesc,
}

fn setup(cfg: &PerfConfig) -> Bench {
    let mut eng = Engine::new();
    let mut cl = Cluster::new(cfg.seed);
    let client = cl.add_host("client", cfg.device.clone());
    let server = cl.add_host("server", cfg.device.clone());
    let mode = if cfg.odp { MrMode::Odp } else { MrMode::Pinned };
    let span = (cfg.size as u64).max(8) * (cfg.iterations + cfg.warmup).max(1) as u64;
    let span = span.clamp(4096, 64 * 1024 * 1024);
    let remote = cl.alloc_mr(server, span, mode);
    let local = cl.alloc_mr(client, span, mode);
    if cfg.prefetch {
        cl.prefetch_mr(server, remote.key);
        cl.prefetch_mr(client, local.key);
    }
    let (qp, server_qp) = cl.connect_pair(&mut eng, client, server, QpConfig::default());
    Bench {
        eng,
        cl,
        client,
        server,
        qp,
        server_qp,
        local,
        remote,
    }
}

/// Offset used by iteration `i` so iterations touch fresh pages first
/// (exposing ODP's first-touch cost), wrapping inside the region.
fn off(b: &Bench, cfg: &PerfConfig, i: usize) -> u64 {
    (i as u64 * cfg.size.max(8) as u64) % (b.local.len - cfg.size as u64)
}

/// `ib_read_lat`: sequential RDMA READ ping, one at a time.
pub fn read_lat(cfg: &PerfConfig) -> LatencyReport {
    let mut b = setup(cfg);
    let mut samples = Vec::with_capacity(cfg.iterations);
    for i in 0..cfg.warmup + cfg.iterations {
        let o = off(&b, cfg, i);
        let start = b.eng.now();
        b.cl.post(
            &mut b.eng,
            b.client,
            b.qp,
            ReadWr::new((b.local.key, o), (b.remote.key, o))
                .len(cfg.size)
                .id(i as u64),
        );
        b.eng.run(&mut b.cl);
        let cq = b.cl.poll_cq(b.client);
        assert_eq!(cq.len(), 1, "iteration completes");
        assert!(
            cq[0].status.is_success(),
            "read_lat failed: {}",
            cq[0].status
        );
        if i >= cfg.warmup {
            samples.push(cq[0].at - start);
        }
    }
    LatencyReport::from_samples(samples)
}

/// `ib_send_lat`: two-sided ping (SEND + pre-posted receives).
pub fn send_lat(cfg: &PerfConfig) -> LatencyReport {
    let mut b = setup(cfg);
    let mut samples = Vec::with_capacity(cfg.iterations);
    for i in 0..cfg.warmup + cfg.iterations {
        let o = off(&b, cfg, i);
        b.cl.post_recv(
            b.server,
            b.server_qp,
            RecvWr {
                id: WrId(1_000_000 + i as u64),
                mr: b.remote.key,
                offset: o,
                max_len: cfg.size,
            },
        );
        let start = b.eng.now();
        b.cl.post(
            &mut b.eng,
            b.client,
            b.qp,
            SendWr::new((b.local.key, o)).len(cfg.size).id(i as u64),
        );
        b.eng.run(&mut b.cl);
        let cq = b.cl.poll_cq(b.client);
        assert!(
            cq[0].status.is_success(),
            "send_lat failed: {}",
            cq[0].status
        );
        let cq_s = b.cl.poll_cq(b.server);
        assert_eq!(cq_s.len(), 1, "receive completed");
        if i >= cfg.warmup {
            samples.push(cq[0].at - start);
        }
    }
    LatencyReport::from_samples(samples)
}

/// Bandwidth summary, like `perftest`'s `BW average` line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwReport {
    /// Payload bytes moved.
    pub bytes: u64,
    /// Wall time of the measured phase.
    pub elapsed: SimTime,
    /// Messages completed.
    pub messages: u64,
}

impl BwReport {
    /// Average bandwidth in MiB/s.
    pub fn mib_per_sec(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0) / self.elapsed.as_secs_f64()
    }

    /// Message rate in million messages per second.
    pub fn mpps(&self) -> f64 {
        self.messages as f64 / 1e6 / self.elapsed.as_secs_f64()
    }
}

fn bw_run(cfg: &PerfConfig, write: bool) -> BwReport {
    let mut b = setup(cfg);
    let total = cfg.warmup + cfg.iterations;
    // Post everything up front; max_rd_atomic and the SQ pace the wire
    // like a real tx-depth window.
    for i in 0..total {
        let o = off(&b, cfg, i);
        if write {
            b.cl.post(
                &mut b.eng,
                b.client,
                b.qp,
                WriteWr::new((b.local.key, o), (b.remote.key, o))
                    .len(cfg.size)
                    .id(i as u64),
            );
        } else {
            b.cl.post(
                &mut b.eng,
                b.client,
                b.qp,
                ReadWr::new((b.local.key, o), (b.remote.key, o))
                    .len(cfg.size)
                    .id(i as u64),
            );
        }
    }
    b.eng.run(&mut b.cl);
    let cq = b.cl.poll_cq(b.client);
    assert_eq!(cq.len(), total, "all iterations complete");
    let mut first = SimTime::MAX;
    let mut last = SimTime::ZERO;
    let mut measured = 0u64;
    for c in &cq {
        assert!(c.status.is_success(), "bw op failed: {}", c.status);
        if (c.wr_id.0 as usize) >= cfg.warmup {
            first = first.min(c.at);
            last = last.max(c.at);
            measured += 1;
        }
    }
    BwReport {
        bytes: measured * cfg.size as u64,
        elapsed: (last - first).max(SimTime::from_ns(1)),
        messages: measured,
    }
}

/// `ib_read_bw`: pipelined RDMA READ bandwidth.
pub fn read_bw(cfg: &PerfConfig) -> BwReport {
    bw_run(cfg, false)
}

/// `ib_write_bw`: pipelined RDMA WRITE bandwidth.
pub fn write_bw(cfg: &PerfConfig) -> BwReport {
    bw_run(cfg, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(odp: bool) -> PerfConfig {
        PerfConfig {
            iterations: 64,
            warmup: 4,
            odp,
            ..PerfConfig::default()
        }
    }

    #[test]
    fn pinned_read_latency_is_microseconds() {
        let r = read_lat(&quick(false));
        assert!(r.avg.as_us_f64() < 10.0, "{r}");
        assert!(r.min <= r.median && r.median <= r.max);
    }

    #[test]
    fn odp_read_latency_shows_fault_tail() {
        // 4 KiB messages so iterations keep touching cold pages: the tail
        // carries the RNR-path fault cost, the floor stays near wire.
        let cfg = PerfConfig {
            size: 4096,
            ..quick(true)
        };
        let r = read_lat(&cfg);
        assert!(
            r.max.as_ms_f64() > 1.0,
            "faulting iterations pay the RNR wait: {r}"
        );
        let pinned = read_lat(&PerfConfig {
            size: 4096,
            ..quick(false)
        });
        assert!(r.avg > pinned.avg * 10, "odp {r} vs pinned {pinned}");
    }

    #[test]
    fn prefetched_odp_matches_pinned() {
        let cfg = PerfConfig {
            size: 4096,
            prefetch: true,
            ..quick(true)
        };
        let odp = read_lat(&cfg);
        let pinned = read_lat(&PerfConfig {
            size: 4096,
            ..quick(false)
        });
        assert_eq!(odp.avg, pinned.avg, "prefetch hides every fault");
    }

    #[test]
    fn bandwidth_grows_with_message_size() {
        let small = read_bw(&PerfConfig {
            size: 64,
            ..quick(false)
        });
        let large = read_bw(&PerfConfig {
            size: 65536,
            ..quick(false)
        });
        assert!(
            large.mib_per_sec() > small.mib_per_sec() * 10.0,
            "{} vs {}",
            large.mib_per_sec(),
            small.mib_per_sec()
        );
        // FDR is 56 Gb/s ≈ 6.7 GiB/s: the large-message run should get
        // within an order of magnitude of line rate.
        assert!(large.mib_per_sec() > 1000.0, "{}", large.mib_per_sec());
        assert!(large.mib_per_sec() < 7000.0, "{}", large.mib_per_sec());
    }

    #[test]
    fn write_bw_and_read_bw_are_same_order() {
        let r = read_bw(&PerfConfig {
            size: 16384,
            ..quick(false)
        });
        let w = write_bw(&PerfConfig {
            size: 16384,
            ..quick(false)
        });
        let ratio = w.mib_per_sec() / r.mib_per_sec();
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn send_latency_close_to_read_latency() {
        let s = send_lat(&quick(false));
        let r = read_lat(&quick(false));
        let ratio = s.avg.as_us_f64() / r.avg.as_us_f64();
        assert!((0.3..3.0).contains(&ratio), "send {s} vs read {r}");
    }
}
