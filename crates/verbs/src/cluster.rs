//! The cluster: hosts, NICs, drivers and the fabric, glued to the event
//! engine. This is the user-facing verbs API of the simulator.

use std::collections::BTreeMap;

use ibsim_event::{Engine, SimTime};
use ibsim_fabric::{
    Capture, Delivery, DirectedLink, Direction, Fabric, Lid, LinkSpec, TopologyKind, Xorshift64Star,
};
use ibsim_telemetry::{Labels, MetricHandle, Telemetry};

use crate::device::DeviceProfile;
use crate::driver::{Driver, DriverStats, DriverWork};
use crate::mem::{Memory, MrMode};
use crate::nic::Nic;
use crate::packet::{Packet, PacketKind};
use crate::qp::{Effects, QpConfig, QpEnv, QpStats, RecoveryKind, TimerFamily};
use crate::sharded::{Envelope, PendingDraw, ShardState};
use crate::types::{HostId, MrKey, Qpn, WrId};
use crate::wr::{Completion, RecvWr, WorkRequest};

/// The simulation engine type used throughout `ibsim`.
pub type Sim = Engine<Cluster>;

/// A completion waker callback (see [`Cluster::set_cq_waker`]).
pub type CqWaker = std::rc::Rc<dyn Fn(&mut Sim)>;

/// A registered memory region descriptor returned to applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrDesc {
    /// Owning host.
    pub host: HostId,
    /// Key (lkey and rkey).
    pub key: MrKey,
    /// Base virtual address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Registration mode.
    pub mode: MrMode,
}

impl MrDesc {
    /// A slice of this region starting `offset` bytes in, for use in
    /// typed work-request builders.
    pub fn at(&self, offset: u64) -> crate::wr::MrSlice {
        crate::wr::MrSlice {
            mr: self.key,
            offset,
        }
    }
}

/// Cluster-wide packet counters (what `ibdump` + `perfquery` would show).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Every packet submitted for transmission, including ghosts.
    pub total_packets: u64,
    /// Request packets (first transmissions).
    pub request_packets: u64,
    /// Retransmitted request packets.
    pub retransmit_packets: u64,
    /// READ response packets.
    pub response_packets: u64,
    /// ACKs.
    pub ack_packets: u64,
    /// RNR NAKs.
    pub rnr_nak_packets: u64,
    /// PSN sequence error NAKs.
    pub seq_nak_packets: u64,
    /// Ghost packets (damming quirk: captured but never delivered).
    pub ghost_packets: u64,
    /// Packets the fabric dropped (unknown LID or injected loss).
    pub fabric_drops: u64,
}

/// A simulated InfiniBand cluster.
///
/// # Examples
///
/// A pinned-memory READ between two hosts:
///
/// ```
/// use ibsim_verbs::{ClusterBuilder, DeviceProfile, MrMode, QpConfig, ReadWr};
///
/// let (mut eng, mut cl, hosts) = ClusterBuilder::new()
///     .seed(7)
///     .host("client", DeviceProfile::connectx6())
///     .host("server", DeviceProfile::connectx6())
///     .build();
/// let (a, b) = (hosts[0], hosts[1]);
/// let src = cl.alloc_mr(b, 4096, MrMode::Pinned);
/// let dst = cl.alloc_mr(a, 4096, MrMode::Pinned);
/// cl.mem_write(b, src.base, b"greetings");
/// let (qa, _qb) = cl.connect_pair(&mut eng, a, b, QpConfig::default());
/// cl.post(&mut eng, a, qa, ReadWr::new(dst, src).len(9).id(1));
/// eng.run(&mut cl);
/// let done = cl.poll_cq(a);
/// assert_eq!(done.len(), 1);
/// assert!(done[0].status.is_success());
/// assert_eq!(cl.mem_read(a, dst.base, 9), b"greetings");
/// ```
pub struct Cluster {
    /// The switch fabric (public for loss injection and link stats).
    pub fabric: Fabric,
    nics: Vec<Nic>,
    mems: Vec<Memory>,
    drivers: Vec<Driver>,
    captures: Vec<Capture<Packet>>,
    lid_to_host: BTreeMap<Lid, HostId>,
    rng: Xorshift64Star,
    /// Invoked (with the engine) whenever completions are pushed to any
    /// CQ; upper layers use it to schedule their progress.
    cq_waker: Option<CqWaker>,
    /// Cluster-wide packet counters.
    pub stats: ClusterStats,
    /// The observability hub (disabled by default; see
    /// [`Cluster::telemetry_enable`]). Recording never schedules events
    /// or draws randomness, so enabling it cannot perturb a run.
    telemetry: Telemetry,
    /// Drained [`Effects`] values kept warm for reuse: `with_qp` pops
    /// one per handler turn and pushes it back after `apply_effects`,
    /// so steady-state turns allocate nothing. Pool contents never
    /// influence behavior (values are reset before reuse).
    fx_pool: Vec<Effects>,
    /// Cluster-wide recovery backend applied to every QP created after
    /// [`Cluster::set_default_recovery`] (ablation harnesses flip one
    /// knob instead of threading a config through every `connect_pair`).
    /// `None` leaves each [`QpConfig::recovery`] as passed.
    default_recovery: Option<RecoveryKind>,
    /// Sharded-execution state when this cluster is one replica of a
    /// conservative-lookahead PDES run (see [`crate::sharded`]); `None`
    /// on an ordinary sequential cluster.
    shard: Option<Box<ShardState>>,
    /// Per-host caches of the hot-path packet-counter handles used by
    /// `transmit` (slot 0 is `packets.total`, 1..8 the per-kind
    /// counters), so the per-packet cost is a slab write instead of a
    /// `(name, labels)` tree walk. Populated lazily only while telemetry
    /// is enabled — a disabled run registers nothing — and reset by
    /// [`Cluster::telemetry_enable`] so re-enabling a taken hub can
    /// never dereference handles from the old registry.
    packet_handles: Vec<[Option<MetricHandle>; 8]>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("hosts", &self.nics.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Cluster {
    /// Creates an empty cluster; `seed` drives every random draw (page
    /// fault latencies, loss models), making runs reproducible.
    pub fn new(seed: u64) -> Self {
        Cluster {
            fabric: Fabric::new(LinkSpec::default()),
            nics: Vec::new(),
            mems: Vec::new(),
            drivers: Vec::new(),
            captures: Vec::new(),
            lid_to_host: BTreeMap::new(),
            rng: Xorshift64Star::new(seed),
            cq_waker: None,
            stats: ClusterStats::default(),
            telemetry: Telemetry::new(),
            fx_pool: Vec::new(),
            default_recovery: None,
            shard: None,
            packet_handles: Vec::new(),
        }
    }

    /// Overrides the recovery backend of every QP created from now on;
    /// existing QPs are untouched.
    pub fn set_default_recovery(&mut self, kind: RecoveryKind) {
        self.default_recovery = Some(kind);
    }

    /// Adds a host with the given NIC profile; returns its id.
    pub fn add_host(&mut self, name: &str, profile: DeviceProfile) -> HostId {
        let host = HostId(self.nics.len());
        let lid = self.fabric.add_host_with(name, profile.link);
        self.drivers.push(Driver::new(
            profile.resume_cost,
            profile.irq_cost,
            profile.irq_burst,
        ));
        self.nics.push(Nic::new(host, lid, profile));
        self.mems.push(Memory::new());
        self.captures.push(Capture::new());
        self.lid_to_host.insert(lid, host);
        self.packet_handles.push([None; 8]);
        host
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.nics.len()
    }

    /// The NIC of `host`.
    pub fn nic(&self, host: HostId) -> &Nic {
        &self.nics[host.0]
    }

    /// The LID of `host`'s port.
    pub fn lid(&self, host: HostId) -> Lid {
        self.nics[host.0].lid
    }

    /// Driver statistics for `host`.
    pub fn driver_stats(&self, host: HostId) -> DriverStats {
        self.drivers[host.0].stats()
    }

    /// Sum of per-QP protocol counters on `host`.
    pub fn qp_stats_sum(&self, host: HostId) -> QpStats {
        let nic = &self.nics[host.0];
        let mut total = QpStats::default();
        for &qpn in nic.qpns() {
            let s = nic.qp(qpn).expect("invariant: listed qp exists").stats();
            total.retransmissions += s.retransmissions;
            total.timeouts += s.timeouts;
            total.rnr_naks_received += s.rnr_naks_received;
            total.rnr_naks_sent += s.rnr_naks_sent;
            total.seq_naks_sent += s.seq_naks_sent;
            total.responses_discarded += s.responses_discarded;
            total.faults_raised += s.faults_raised;
            total.pendency_drops += s.pendency_drops;
            total.pages_pinned += s.pages_pinned;
            total.invariant_violations += s.invariant_violations;
        }
        total
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Allocates a fresh page-aligned buffer without registering it
    /// (manual registration flows register later, paying the cost).
    pub fn alloc_buffer(&mut self, host: HostId, len: u64) -> u64 {
        self.mems[host.0].alloc(len)
    }

    /// Allocates a fresh page-aligned buffer and registers it as an MR.
    pub fn alloc_mr(&mut self, host: HostId, len: u64, mode: MrMode) -> MrDesc {
        let base = self.mems[host.0].alloc(len);
        let key = self.nics[host.0].reg_mr(base, len, mode);
        MrDesc {
            host,
            key,
            base,
            len,
            mode,
        }
    }

    /// Registers an existing buffer as an MR.
    pub fn reg_mr(&mut self, host: HostId, base: u64, len: u64, mode: MrMode) -> MrDesc {
        let key = self.nics[host.0].reg_mr(base, len, mode);
        MrDesc {
            host,
            key,
            base,
            len,
            mode,
        }
    }

    /// Registers a memory region described by an [`MrBuilder`] — the
    /// single entry point unifying the [`Cluster::alloc_mr`] and
    /// [`Cluster::reg_mr`] paths:
    ///
    /// * no base address ([`MrBuilder::pinned`] / [`MrBuilder::odp`]
    ///   alone) → a fresh page-aligned buffer is allocated and then
    ///   registered (the `alloc_mr` path);
    /// * an explicit base ([`MrBuilder::at`]) → the caller-owned buffer
    ///   is registered as-is (the `reg_mr` path);
    /// * [`MrBuilder::prefetch`] → every page is pre-touched after
    ///   registration (like `ibv_advise_mr` prefetch), so an ODP region
    ///   raises no faults until a page is invalidated. Meaningless but
    ///   harmless on pinned regions, which are always mapped.
    pub fn mr(&mut self, host: HostId, builder: MrBuilder) -> MrDesc {
        let desc = match builder.base {
            Some(base) => self.reg_mr(host, base, builder.len, builder.mode),
            None => self.alloc_mr(host, builder.len, builder.mode),
        };
        if builder.prefetch {
            self.prefetch_mr(host, desc.key);
        }
        desc
    }

    /// Writes bytes into host memory (application store).
    pub fn mem_write(&mut self, host: HostId, addr: u64, data: &[u8]) {
        self.mems[host.0].write(addr, data);
    }

    /// Reads bytes from host memory (application load).
    pub fn mem_read(&mut self, host: HostId, addr: u64, len: usize) -> Vec<u8> {
        self.mems[host.0].read(addr, len)
    }

    /// Pre-maps every page of an ODP region (like `ibv_advise_mr`
    /// prefetch): no faults will occur on it until invalidated.
    pub fn prefetch_mr(&mut self, host: HostId, key: MrKey) {
        if let Some(mr) = self.nics[host.0].mrs.get_mut(&key) {
            mr.map_all();
        }
    }

    /// Invalidates one page of an ODP region (kernel reclaimed it).
    pub fn invalidate_page(&mut self, host: HostId, key: MrKey, page: usize) {
        if let Some(mr) = self.nics[host.0].mrs.get_mut(&key) {
            mr.invalidate_page(page);
        }
    }

    /// Base virtual address of a registered region.
    ///
    /// # Panics
    ///
    /// Panics if the key is unknown on that host.
    pub fn mr_base(&self, host: HostId, key: MrKey) -> u64 {
        self.nics[host.0]
            .mrs
            .get(&key)
            .unwrap_or_else(|| panic!("unknown {key} on {host}"))
            .base()
    }

    /// Network page faults raised so far on a region.
    pub fn mr_fault_count(&self, host: HostId, key: MrKey) -> u64 {
        self.nics[host.0]
            .mrs
            .get(&key)
            .map(|m| m.fault_count)
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Connections
    // ------------------------------------------------------------------

    /// Creates an RC QP on `host`.
    pub fn create_qp(&mut self, host: HostId, mut cfg: QpConfig) -> Qpn {
        if let Some(kind) = self.default_recovery {
            cfg.recovery = kind;
        }
        self.nics[host.0].create_qp(cfg)
    }

    /// Creates and connects a QP pair between two hosts; both ends use the
    /// same config. Returns `(qp_on_a, qp_on_b)`.
    pub fn connect_pair(
        &mut self,
        _eng: &mut Sim,
        a: HostId,
        b: HostId,
        mut cfg: QpConfig,
    ) -> (Qpn, Qpn) {
        if let Some(kind) = self.default_recovery {
            cfg.recovery = kind;
        }
        let qa = self.nics[a.0].create_qp(cfg.clone());
        let qb = self.nics[b.0].create_qp(cfg);
        let (la, lb) = (self.nics[a.0].lid, self.nics[b.0].lid);
        self.nics[a.0]
            .qp_mut(qa)
            .expect("invariant: qp just created")
            .connect(lb, qb);
        self.nics[b.0]
            .qp_mut(qb)
            .expect("invariant: qp just created")
            .connect(la, qa);
        (qa, qb)
    }

    /// Points a QP at an explicit (possibly wrong) LID, reproducing the
    /// deliberate mis-addressing of the paper's Fig. 2 experiment.
    ///
    /// # Panics
    ///
    /// Panics if `qpn` does not name a QP on `host` — mis-addressing the
    /// *wire* is a supported experiment, mis-addressing the API is a bug
    /// in the caller's setup code.
    pub fn connect_to_lid(&mut self, host: HostId, qpn: Qpn, peer: Lid, peer_qpn: Qpn) {
        self.nics[host.0]
            .qp_mut(qpn)
            .unwrap_or_else(|| panic!("connect_to_lid: host {host:?} has no qp {qpn:?}"))
            .connect(peer, peer_qpn);
    }

    // ------------------------------------------------------------------
    // Verbs
    // ------------------------------------------------------------------

    /// Posts a work request: either a typed builder ([`ReadWr`],
    /// [`WriteWr`], [`SendWr`], [`FetchAddWr`], [`CompareSwapWr`]) or a
    /// raw [`WorkRequest`].
    ///
    /// [`ReadWr`]: crate::wr::ReadWr
    /// [`WriteWr`]: crate::wr::WriteWr
    /// [`SendWr`]: crate::wr::SendWr
    /// [`FetchAddWr`]: crate::wr::FetchAddWr
    /// [`CompareSwapWr`]: crate::wr::CompareSwapWr
    pub fn post(&mut self, eng: &mut Sim, host: HostId, qpn: Qpn, wr: impl Into<WorkRequest>) {
        let wr = wr.into();
        self.telemetry
            .wr_posted(host.0 as u64, qpn.0, wr.id.0, eng.now());
        self.with_qp(eng, host, qpn, move |qp, env, fx| qp.post(env, fx, wr));
    }

    /// Posts a receive buffer.
    pub fn post_recv(&mut self, host: HostId, qpn: Qpn, recv: RecvWr) {
        if let Some(qp) = self.nics[host.0].qp_mut(qpn) {
            qp.post_recv(recv);
        }
    }

    /// Drains the host completion queue.
    pub fn poll_cq(&mut self, host: HostId) -> Vec<Completion> {
        self.nics[host.0].poll_cq()
    }

    /// Completions currently queued on the host CQ.
    pub fn cq_len(&self, host: HostId) -> usize {
        self.nics[host.0].cq_len()
    }

    /// Registers the completion waker: called with the engine every time
    /// completions land on any CQ. At most one waker exists; upper layers
    /// (like `ibsim-ucp`) use it to drive their progress without polling.
    pub fn set_cq_waker(&mut self, waker: CqWaker) {
        self.cq_waker = Some(waker);
    }

    /// True if a completion waker is installed.
    pub fn has_cq_waker(&self) -> bool {
        self.cq_waker.is_some()
    }

    /// True if work request `id` on `qpn` is still pending (not completed).
    pub fn wr_pending(&self, host: HostId, qpn: Qpn, id: WrId) -> bool {
        self.nics[host.0]
            .qp(qpn)
            .is_some_and(|q| q.is_wr_pending(id))
    }

    // ------------------------------------------------------------------
    // Capture
    // ------------------------------------------------------------------

    /// Starts `ibdump`-style capture on a host.
    pub fn capture_enable(&mut self, host: HostId) {
        self.captures[host.0].enable();
    }

    /// The capture buffer of a host.
    pub fn capture(&self, host: HostId) -> &Capture<Packet> {
        &self.captures[host.0]
    }

    /// Clears a host's capture buffer.
    pub fn capture_clear(&mut self, host: HostId) {
        self.captures[host.0].clear();
    }

    // ------------------------------------------------------------------
    // Telemetry
    // ------------------------------------------------------------------

    /// Turns on the observability hub.
    ///
    /// Recording is purely passive — it never schedules events, draws
    /// randomness or changes control flow — so a run with telemetry
    /// enabled produces a byte-identical packet trace (CI pins the
    /// golden FNV hashes to prove it).
    pub fn telemetry_enable(&mut self) {
        self.telemetry.enable();
        // Drop any cached counter handles: if the hub was replaced since
        // they were acquired (`std::mem::take` leaves a fresh disabled
        // hub), old slot indices must not alias the new registry.
        for slots in &mut self.packet_handles {
            *slots = [None; 8];
        }
    }

    /// The observability hub (read side: exporters, assertions).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable access to the hub, so upper layers (`ibsim-ucp`, DSM,
    /// benches) can record their own metrics into the same registry.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Snapshots every legacy stat struct into the metric registry as
    /// gauges: engine [`ibsim_event::QueueStats`] (queue depth, dead
    /// pops, timer churn), per-host [`DriverStats`], per-host fabric
    /// link counters, per-QP [`QpStats`], and the cluster-wide packet
    /// counters. Also flushes partial QP state dwell times up to now.
    ///
    /// Call once before exporting; the structs stay API-compatible and
    /// the registry holds a superset of what they expose.
    pub fn sync_telemetry(&mut self, eng: &Sim) {
        let now = eng.now();
        self.sync_telemetry_at(eng, now);
    }

    /// [`Cluster::sync_telemetry`] with an explicit dwell-flush instant.
    ///
    /// Sharded runs park each replica's clock at its last *owned* event,
    /// so the per-shard `eng.now()` values differ from the sequential
    /// clock; passing the canonical end-of-run time (handed to the
    /// `finish` closure by [`crate::sharded::run_sharded`]) makes the
    /// flushed QP dwell counters match the sequential run exactly.
    pub fn sync_telemetry_at(&mut self, eng: &Sim, now: SimTime) {
        if !self.telemetry.is_enabled() {
            return;
        }
        // On a sharded replica, only sync driver and QP instruments for
        // the hosts this shard owns: a non-owner replica never runs a
        // host's driver or QP machinery, so its values are all zero, and
        // every host has exactly one owner — the union of per-shard hubs
        // covers every slot once and the merged export stays
        // byte-identical while each replica's O(QPs) sync cost drops to
        // its ownership share. Fabric link counters are the exception:
        // a cross-shard transit is performed by the *sender's* replica,
        // which accrues the receiver's rx frames too, so those gauges
        // must keep summing across every replica.
        let owned: Vec<bool> = (0..self.nics.len()).map(|h| self.owns(HostId(h))).collect();
        let t = &mut self.telemetry;
        let qs = eng.queue_stats();
        t.gauge_set("event.live", Labels::NONE, qs.live as u64);
        t.gauge_set("event.dead_pending", Labels::NONE, qs.dead_pending as u64);
        t.gauge_set("event.executed", Labels::NONE, qs.executed);
        t.gauge_set("event.dead_pops", Labels::NONE, qs.dead_pops);
        t.gauge_set("event.peak_depth", Labels::NONE, qs.peak_depth as u64);
        t.gauge_set("event.scheduled", Labels::NONE, qs.scheduled);
        t.gauge_set("event.cancelled", Labels::NONE, qs.cancelled);
        t.gauge_set("event.replaced", Labels::NONE, qs.replaced);
        t.gauge_set("event.keyed_live", Labels::NONE, qs.keyed_live as u64);
        let cs = self.stats;
        t.gauge_set("cluster.total_packets", Labels::NONE, cs.total_packets);
        t.gauge_set("cluster.ghost_packets", Labels::NONE, cs.ghost_packets);
        t.gauge_set("cluster.fabric_drops", Labels::NONE, cs.fabric_drops);
        for (h, (nic, driver)) in self.nics.iter().zip(self.drivers.iter()).enumerate() {
            let labels = Labels::host(h as u64);
            if let Some(ls) = self.fabric.link_stats(nic.lid) {
                t.gauge_set("fabric.tx_frames", labels, ls.tx_frames);
                t.gauge_set("fabric.tx_bytes", labels, ls.tx_bytes);
                t.gauge_set("fabric.rx_frames", labels, ls.rx_frames);
                t.gauge_set("fabric.rx_bytes", labels, ls.rx_bytes);
                t.gauge_set("fabric.dropped", labels, ls.dropped);
            }
            if !owned[h] {
                continue;
            }
            let ds = driver.stats();
            t.gauge_set("driver.stats.faults_resolved", labels, ds.faults_resolved);
            t.gauge_set("driver.stats.qp_resumes", labels, ds.qp_resumes);
            t.gauge_set("driver.stats.irqs_processed", labels, ds.irqs_processed);
            for &qpn in nic.qpns() {
                let Some(qp) = nic.qp(qpn) else { continue };
                let s = qp.stats();
                let ql = Labels::host_qp(h as u64, qpn.0);
                t.gauge_set("qp.retransmissions", ql, s.retransmissions);
                t.gauge_set("qp.timeouts", ql, s.timeouts);
                t.gauge_set("qp.rnr_naks_received", ql, s.rnr_naks_received);
                t.gauge_set("qp.rnr_naks_sent", ql, s.rnr_naks_sent);
                t.gauge_set("qp.seq_naks_sent", ql, s.seq_naks_sent);
                t.gauge_set("qp.responses_discarded", ql, s.responses_discarded);
                t.gauge_set("qp.faults_raised", ql, s.faults_raised);
                t.gauge_set("qp.pendency_drops", ql, s.pendency_drops);
            }
        }
        // Inter-switch link counters. Lazily registered by the fabric on
        // first use, so a crossbar run (no inter-switch hops) emits no
        // `fabric.link.*` slots and its JSONL export stays byte-identical
        // to the pre-topology simulator. Labels reuse the `(host, qp)`
        // slots as `(src switch, dst switch)` — see DESIGN §8.11. The
        // sharded merge is sound because routing is deterministic and
        // [`Cluster::validate_sharding`] pins every directed link to a
        // single sending shard: each gauge is non-zero on exactly one
        // replica, and gauge-ADD absorption reproduces the sequential
        // values (including the non-additive `peak_backlog_ns`).
        for (from, to, ls) in self.fabric.inter_links() {
            let labels = Labels::host_qp(from.0 as u64, to.0 as u32);
            t.gauge_set("fabric.link.frames", labels, ls.frames);
            t.gauge_set("fabric.link.bytes", labels, ls.bytes);
            t.gauge_set("fabric.link.busy_ns", labels, ls.busy_ns);
            t.gauge_set("fabric.link.peak_backlog_ns", labels, ls.peak_backlog_ns);
            t.gauge_set("fabric.link.ecn_marks", labels, ls.ecn_marks);
            t.gauge_set("fabric.link.pauses", labels, ls.pauses);
        }
        t.flush_dwell(now);
    }

    // ------------------------------------------------------------------
    // Sharded execution (conservative-lookahead PDES; see crate::sharded)
    // ------------------------------------------------------------------

    /// True if this replica executes events for `host`. Always true on
    /// an unsharded cluster — the single predicate that lets one build
    /// path serve both execution modes.
    pub fn owns(&self, host: HostId) -> bool {
        self.shard
            .as_ref()
            .is_none_or(|sh| sh.owner[host.0] == sh.id)
    }

    /// Converts this replica into shard `id` of a sharded run with the
    /// given host → shard map. Call after every host has been added and
    /// before any workload activity.
    ///
    /// # Panics
    ///
    /// Panics if the owner map does not cover every host.
    pub fn enable_sharding(&mut self, id: usize, owner: Vec<usize>) {
        assert_eq!(
            owner.len(),
            self.nics.len(),
            "owner map must name a shard for every host"
        );
        self.shard = Some(Box::new(ShardState::new(id, owner)));
    }

    /// This replica's shard id, or `None` when unsharded.
    pub fn shard_id(&self) -> Option<usize> {
        self.shard.as_ref().map(|sh| sh.id)
    }

    /// Replicated-event counters `(scheduled, executed)` for merged
    /// queue statistics (see [`crate::sharded::merge_queue_stats`]);
    /// zeros when unsharded.
    pub fn shard_global_counters(&self) -> (u64, u64) {
        self.shard
            .as_ref()
            .map_or((0, 0), |sh| (sh.global_scheduled, sh.global_executed))
    }

    /// Schedules an event that must fire on **every replica** of a
    /// sharded run (fabric-wide state changes like a loss-model swap).
    /// On an unsharded cluster this is a plain `schedule_at`; sharded,
    /// the event is counted so merged queue statistics discount the
    /// replication.
    pub fn schedule_global<F>(&mut self, eng: &mut Sim, at: SimTime, f: F)
    where
        F: FnOnce(&mut Cluster, &mut Sim) + 'static,
    {
        if let Some(sh) = self.shard.as_mut() {
            sh.global_scheduled += 1;
            eng.schedule_at(at, move |c: &mut Cluster, eng| {
                if let Some(sh) = c.shard.as_mut() {
                    sh.global_executed += 1;
                }
                f(c, eng);
            });
        } else {
            eng.schedule_at(at, f);
        }
    }

    /// Draws one ODP fault-resolution latency in `[lo, lo + max(hi-lo,1))`
    /// nanoseconds from the cluster RNG. Fault draws are the RNG's only
    /// consumer, which is what lets a sharded run reproduce the
    /// sequential stream: replicas defer their draws and the epoch
    /// leader replays them, in global raise order, through its own
    /// replica's RNG via this method.
    pub fn draw_fault_latency(&mut self, lo: u64, hi: u64) -> SimTime {
        SimTime::from_ns(lo + self.rng.next_below((hi - lo).max(1)))
    }

    /// The conservative cross-shard packet lookahead: the minimum
    /// latency any packet between hosts on *different* shards can
    /// experience (send overhead + unloaded zero-byte transit along the
    /// topology's **route** — every store-and-forward hop of a fat-tree
    /// or ring path counts — + receive overhead, minimized over
    /// connected cross-shard QP pairs). Routed topologies therefore
    /// widen the epoch for free: a deeper shard cut means a larger
    /// provable lower bound. `None` when no QP crosses a shard boundary
    /// — or when unsharded.
    pub fn cross_shard_lookahead(&self) -> Option<SimTime> {
        let sh = self.shard.as_ref()?;
        let mut best: Option<SimTime> = None;
        for nic in &self.nics {
            for &qpn in nic.qpns() {
                let Some((peer_lid, _)) = nic.qp(qpn).and_then(|qp| qp.peer()) else {
                    continue;
                };
                let Some(&dst) = self.lid_to_host.get(&peer_lid) else {
                    continue;
                };
                if sh.owner[nic.host.0] == sh.owner[dst.0] {
                    continue;
                }
                let Some(transit) = self.fabric.idle_transit(nic.lid, peer_lid, 0) else {
                    continue;
                };
                let lat =
                    nic.profile.send_overhead + transit + self.nics[dst.0].profile.recv_overhead;
                best = Some(best.map_or(lat, |b| b.min(lat)));
            }
        }
        best
    }

    /// The fault-draw floor: the smallest possible ODP fault latency
    /// across hosts owning at least one ODP region, or `None` when no
    /// region can fault. Bounds the epoch width even without cross-shard
    /// links: a stalled driver rekicked at the next epoch boundary
    /// schedules its completion no earlier than stall time + this floor,
    /// so boundaries must not outrun it.
    pub fn fault_draw_floor(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for nic in &self.nics {
            if nic.mrs.values().any(|m| m.mode() == MrMode::Odp) {
                let f = nic.profile.fault_latency_min;
                best = Some(best.map_or(f, |b| b.min(f)));
            }
        }
        best
    }

    /// Checks the fabric single-writer contract of a sharded run: the
    /// fabric's `transit` call (executed on the *sender's* replica)
    /// mutates the serialization horizon of **every directed link** on
    /// the packet's route — the destination port's ingress clock and,
    /// on a routed topology, each inter-switch link along the way. So
    /// every directed link must be traversed by QPs from a single
    /// shard. On the crossbar, where every route is `src → sw0 → dst`,
    /// this degenerates to the historical per-host ingress rule; on a
    /// fat-tree it additionally forbids two shards sharing an uplink.
    /// No-op when unsharded.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic naming the link and the two shards when
    /// the contract is violated.
    pub fn validate_sharding(&self) {
        let Some(sh) = self.shard.as_ref() else {
            return;
        };
        let mut writer: BTreeMap<DirectedLink, usize> = BTreeMap::new();
        for nic in &self.nics {
            let src_shard = sh.owner[nic.host.0];
            for &qpn in nic.qpns() {
                let Some((peer_lid, _)) = nic.qp(qpn).and_then(|qp| qp.peer()) else {
                    continue;
                };
                if !self.lid_to_host.contains_key(&peer_lid) {
                    continue;
                }
                let Some(route) = self.fabric.route(nic.lid, peer_lid) else {
                    continue;
                };
                for link in route {
                    match writer.get(&link) {
                        None => {
                            writer.insert(link, src_shard);
                        }
                        Some(&w) => assert_eq!(
                            w, src_shard,
                            "sharding violates the fabric single-writer contract: \
                             link {} -> {} carries packets sent from shard {} and \
                             shard {}; every route over one directed link must \
                             originate on a single shard",
                            link.from, link.to, w, src_shard
                        ),
                    }
                }
            }
        }
    }

    /// Drains the cross-shard outbox for an epoch deposit.
    pub(crate) fn take_outbox(&mut self) -> Vec<Envelope> {
        self.shard
            .as_mut()
            .map_or_else(Vec::new, |sh| std::mem::take(&mut sh.outbox))
    }

    /// Drains the deferred fault-draw requests for an epoch deposit.
    pub(crate) fn take_pending_draws(&mut self) -> Vec<PendingDraw> {
        self.shard
            .as_mut()
            .map_or_else(Vec::new, |sh| std::mem::take(&mut sh.pending_draws))
    }

    /// Snapshots stalled drivers as `(host, stall time, fault floor)`
    /// for the leader's progress computation. The stalls stay recorded
    /// until [`Cluster::take_stalls`] consumes them at injection time.
    pub(crate) fn snapshot_stalls(&self) -> Vec<(usize, SimTime, SimTime)> {
        let Some(sh) = self.shard.as_ref() else {
            return Vec::new();
        };
        sh.stalls
            .iter()
            .map(|(&host, &(at, _))| (host, at, self.nics[host].profile.fault_latency_min))
            .collect()
    }

    /// Drains the stalled drivers as `(host, stall time, seq)` for the
    /// unified injection sort.
    pub(crate) fn take_stalls(&mut self) -> Vec<(usize, SimTime, u64)> {
        self.shard.as_mut().map_or_else(Vec::new, |sh| {
            std::mem::take(&mut sh.stalls)
                .into_iter()
                .map(|(host, (at, seq))| (host, at, seq))
                .collect()
        })
    }

    /// Applies one leader-drawn fault latency to `host`'s oldest undrawn
    /// fault, recording the histogram sample the sequential run would
    /// have recorded at draw time (fills arrive in the same global order,
    /// and histograms are order-insensitive).
    pub(crate) fn apply_draw_fill(&mut self, host: usize, latency: SimTime) {
        self.telemetry.observe(
            "fault.drawn_latency_ns",
            Labels::host(host as u64),
            latency.as_ns(),
        );
        self.drivers[host].fill_undrawn(latency);
    }

    // ------------------------------------------------------------------
    // Internal glue
    // ------------------------------------------------------------------

    fn with_qp<F>(&mut self, eng: &mut Sim, host: HostId, qpn: Qpn, f: F)
    where
        F: FnOnce(&mut crate::qp::Qp, &mut QpEnv<'_>, &mut Effects),
    {
        let mut fx = self.fx_pool.pop().unwrap_or_default();
        {
            let nic = &mut self.nics[host.0];
            let mem = &mut self.mems[host.0];
            let Some((qp, mrs, profile)) = nic.split_mut(qpn) else {
                self.fx_pool.push(fx);
                return;
            };
            let mut env = QpEnv {
                now: eng.now(),
                mem,
                mrs,
                profile,
            };
            f(qp, &mut env, &mut fx);
        }
        self.nics[host.0].update_recovery(qpn);
        if self.telemetry.is_enabled() {
            if let Some(state) = self.nics[host.0].qp(qpn).map(|q| q.state()) {
                self.telemetry
                    .qp_state_sample(host.0 as u64, qpn.0, state.name(), eng.now());
            }
        }
        self.apply_effects(eng, host, qpn, &mut fx);
        fx.reset();
        self.fx_pool.push(fx);
    }

    /// Drains one [`Effects`] value into the engine and peripherals, in a
    /// fixed order: packets, completions, timer ops (ack, rnr, stall),
    /// faults, fault waiters, IRQs, then at most one driver kick.
    ///
    /// Takes the value by `&mut` and leaves it drained (but not reset),
    /// so `with_qp` can return it to the warm pool.
    fn apply_effects(&mut self, eng: &mut Sim, host: HostId, qpn: Qpn, fx: &mut Effects) {
        for pkt in fx.packets.drain(..) {
            self.transmit(eng, host, pkt);
        }
        let had_completions = !fx.completions.is_empty();
        for c in fx.completions.drain(..) {
            self.telemetry
                .wr_completed(host.0 as u64, c.qpn.0, c.wr_id.0, c.at);
            self.nics[host.0].push_completion(c);
        }
        if had_completions {
            if let Some(waker) = self.cq_waker.clone() {
                waker(eng);
            }
        }
        if fx.timers.cancel_ack {
            eng.cancel_key(TimerFamily::Ack.key(host, qpn, 0));
        }
        if let Some(gen) = fx.timers.arm_ack {
            let nic = &self.nics[host.0];
            let cack = nic.qp(qpn).map(|q| q.config().cack).unwrap_or_default();
            if let Some(t_o) = nic.profile.t_o(cack) {
                // Timer-management load: many QPs in recovery lengthen the
                // observed timeout (§VI-C). The load factor is re-checked
                // when the timer fires (see `on_ack_timer_fire`), so a
                // timer armed before a recovery storm still observes the
                // lengthened delay. Arming through the keyed slot replaces
                // any pending timeout event in place.
                let load = nic.recovery_count().saturating_sub(1) as u64;
                let delay =
                    t_o.mul_permille(1000 + nic.profile.timer_load_coeff_pm.saturating_mul(load));
                let armed_at = eng.now();
                eng.schedule_keyed_in(
                    TimerFamily::Ack.key(host, qpn, 0),
                    delay,
                    move |c: &mut Cluster, eng| {
                        c.on_ack_timer_fire(eng, host, qpn, gen, armed_at, t_o);
                    },
                );
            }
        }
        if fx.timers.cancel_rnr {
            eng.cancel_key(TimerFamily::Rnr.key(host, qpn, 0));
        }
        if let Some((delay, gen)) = fx.timers.arm_rnr {
            eng.schedule_keyed_in(
                TimerFamily::Rnr.key(host, qpn, 0),
                delay,
                move |c: &mut Cluster, eng| {
                    c.telemetry.counter_add(
                        "timer.rnr_fired",
                        Labels::host_qp(host.0 as u64, qpn.0),
                        1,
                    );
                    c.with_qp(eng, host, qpn, move |qp, env, fx| {
                        qp.on_rnr_fire(env, fx, gen)
                    });
                },
            );
        }
        for psn in fx.timers.cancel_stalls.drain(..) {
            eng.cancel_key(TimerFamily::Stall.key(host, qpn, psn.value()));
        }
        for (psn, delay, gen) in fx.timers.arm_stalls.drain(..) {
            eng.schedule_keyed_in(
                TimerFamily::Stall.key(host, qpn, psn.value()),
                delay,
                move |c: &mut Cluster, eng| {
                    c.telemetry.counter_add(
                        "timer.stall_tick_fired",
                        Labels::host_qp(host.0 as u64, qpn.0),
                        1,
                    );
                    c.with_qp(eng, host, qpn, move |qp, env, fx| {
                        qp.on_stall_tick(env, fx, psn, gen)
                    });
                },
            );
        }
        let mut kick = false;
        for (mr, page) in fx.faults.drain(..) {
            let lo = self.nics[host.0].profile.fault_latency_min.as_ns();
            let hi = self.nics[host.0].profile.fault_latency_max.as_ns();
            self.telemetry
                .fault_raised(host.0 as u64, mr.0, page as u64, eng.now());
            let now = eng.now();
            if let Some(sh) = self.shard.as_mut() {
                // Sharded replicas must not consume the fault-latency RNG
                // locally — shards would race for the stream. The draw is
                // deferred: the epoch leader replays all raises in global
                // order through its own replica's RNG and sends the fill
                // back (see crate::sharded). The histogram sample moves to
                // fill time too (apply_draw_fill); histograms commute.
                sh.seq += 1;
                sh.pending_draws.push(PendingDraw {
                    raised_at: now,
                    src_shard: sh.id,
                    seq: sh.seq,
                    host: host.0,
                    lo,
                    hi,
                });
                self.drivers[host.0].push_fault_undrawn(mr, page);
            } else {
                let latency = self.draw_fault_latency(lo, hi);
                self.telemetry.observe(
                    "fault.drawn_latency_ns",
                    Labels::host(host.0 as u64),
                    latency.as_ns(),
                );
                self.drivers[host.0].push_fault(mr, page, latency);
            }
            kick = true;
        }
        for (mr, page) in fx.fault_waits.drain(..) {
            self.nics[host.0].register_fault_waiter(qpn, mr, page);
        }
        for _ in 0..fx.irqs {
            self.drivers[host.0].push_irq();
            kick = true;
        }
        if kick {
            self.driver_kick(eng, host);
        }
    }

    /// An ACK-timeout event reached its scheduled time. The §VI-C
    /// timer-management load factor is sampled *again* here: a timer armed
    /// before a recovery storm was scheduled with a stale (too short)
    /// delay, so if the load has since grown the timeout is deferred to
    /// `armed_at + T_o · (1 + coeff · load_now)` instead of firing early.
    /// A shrinking load never retracts an elapsed wait: the timer just
    /// fires at its (longer) armed delay.
    fn on_ack_timer_fire(
        &mut self,
        eng: &mut Sim,
        host: HostId,
        qpn: Qpn,
        gen: u64,
        armed_at: SimTime,
        t_o: SimTime,
    ) {
        let nic = &self.nics[host.0];
        let load = nic.recovery_count().saturating_sub(1) as u64;
        let due = armed_at
            + t_o.mul_permille(1000 + nic.profile.timer_load_coeff_pm.saturating_mul(load));
        if eng.now() < due {
            self.telemetry.counter_add(
                "timer.ack_deferred",
                Labels::host_qp(host.0 as u64, qpn.0),
                1,
            );
            eng.schedule_keyed_at(
                TimerFamily::Ack.key(host, qpn, 0),
                due,
                move |c: &mut Cluster, eng| {
                    c.on_ack_timer_fire(eng, host, qpn, gen, armed_at, t_o);
                },
            );
            return;
        }
        self.telemetry
            .counter_add("timer.ack_fired", Labels::host_qp(host.0 as u64, qpn.0), 1);
        self.with_qp(eng, host, qpn, |qp, env, fx| {
            qp.on_ack_timeout(env, fx, gen)
        });
    }

    /// Adds one to the host-labelled counter `name`, going through the
    /// cached [`MetricHandle`] in `packet_handles[host][slot]` (acquired
    /// lazily on first use) instead of the registry's `(name, labels)`
    /// tree walk — `transmit` runs once per packet, and the walk was the
    /// dominant telemetry cost in the flood profile.
    fn hot_counter_add(&mut self, host: HostId, slot: usize, name: &'static str) {
        let cache = &mut self.packet_handles[host.0][slot];
        let h = match *cache {
            Some(h) => h,
            None => {
                let Some(h) = self
                    .telemetry
                    .counter_handle(name, Labels::host(host.0 as u64))
                else {
                    return;
                };
                *cache = Some(h);
                h
            }
        };
        self.telemetry.counter_add_handle(h, 1);
    }

    fn transmit(&mut self, eng: &mut Sim, host: HostId, mut pkt: Packet) {
        self.stats.total_packets += 1;
        let (kind_metric, kind_slot) = match (&pkt.kind, pkt.retransmit) {
            (PacketKind::Ack, _) => {
                self.stats.ack_packets += 1;
                ("packets.ack", 1)
            }
            (PacketKind::Nak(crate::packet::NakKind::Rnr { .. }), _) => {
                self.stats.rnr_nak_packets += 1;
                ("packets.rnr_nak", 2)
            }
            (PacketKind::Nak(crate::packet::NakKind::SequenceError { .. }), _) => {
                self.stats.seq_nak_packets += 1;
                ("packets.seq_nak", 3)
            }
            (PacketKind::Nak(_), _) => ("packets.nak_other", 4),
            (PacketKind::ReadResponse { .. }, _) => {
                self.stats.response_packets += 1;
                ("packets.response", 5)
            }
            (_, true) => {
                self.stats.retransmit_packets += 1;
                ("packets.retransmit", 6)
            }
            (_, false) => {
                self.stats.request_packets += 1;
                ("packets.request", 7)
            }
        };
        if self.telemetry.is_enabled() {
            self.hot_counter_add(host, 0, "packets.total");
            self.hot_counter_add(host, kind_slot, kind_metric);
        }
        let bytes = pkt.wire_bytes();
        let src_lid = pkt.src;
        let dst_lid = pkt.dst;
        if pkt.ghost {
            // Damming quirk: the capture sees it, the wire never does.
            self.stats.ghost_packets += 1;
            self.telemetry
                .counter_add("packets.ghost", Labels::host(host.0 as u64), 1);
            self.captures[host.0].record_with(
                eng.now(),
                Direction::Tx,
                src_lid,
                dst_lid,
                bytes,
                true,
                || pkt,
            );
            return;
        }
        let send_overhead = self.nics[host.0].profile.send_overhead;
        let submit = eng.now() + send_overhead;
        let delivery = self.fabric.transit(submit, src_lid, dst_lid, bytes);
        let dropped = delivery.arrival().is_none();
        if dropped {
            self.stats.fabric_drops += 1;
            self.telemetry
                .counter_add("packets.fabric_drops", Labels::host(host.0 as u64), 1);
        }
        // Lazy payload: a disabled capture must not pay the deep clone
        // of the packet (its data `Vec` included) on every frame.
        self.captures[host.0].record_with(
            eng.now(),
            Direction::Tx,
            src_lid,
            dst_lid,
            bytes,
            dropped,
            || pkt.clone(),
        );
        if let Delivery::Deliver { at, ecn } = delivery {
            // The fabric marked the packet in flight (a congested
            // inter-switch hop crossed the ECN threshold). The Tx
            // capture above deliberately recorded the pre-mark packet —
            // the sender's `ibdump` sees what left the NIC — so only the
            // receiver observes the mark, and a crossbar run (which has
            // no inter-switch links) renders byte-identical timelines.
            if ecn {
                pkt.ecn = true;
            }
            let Some(&dst_host) = self.lid_to_host.get(&dst_lid) else {
                return;
            };
            let recv_overhead = self.nics[dst_host.0].profile.recv_overhead;
            let deliver_at = at + recv_overhead;
            if !self.owns(dst_host) {
                // Cross-shard delivery: the packet leaves this replica as
                // an envelope and re-enters the destination's shard at the
                // next epoch boundary, which the lookahead guarantees is
                // no later than `deliver_at`.
                assert!(
                    !self.fabric.loss_is_order_dependent(),
                    "sharded run with an order-dependent loss model: \
                     cross-shard traffic would consume the loss PRNG in \
                     per-shard order, diverging from the sequential stream; \
                     run single-shard instead"
                );
                let sent_at = eng.now();
                let sh = self
                    .shard
                    .as_mut()
                    .expect("invariant: unowned host implies sharding");
                sh.seq += 1;
                sh.outbox.push(Envelope {
                    deliver_at,
                    sent_at,
                    src_shard: sh.id,
                    seq: sh.seq,
                    dst_host: dst_host.0,
                    pkt,
                });
                return;
            }
            eng.schedule_at(deliver_at, move |c: &mut Cluster, eng| {
                c.deliver(eng, dst_host, pkt);
            });
        }
    }

    pub(crate) fn deliver(&mut self, eng: &mut Sim, host: HostId, pkt: Packet) {
        self.captures[host.0].record_with(
            eng.now(),
            Direction::Rx,
            pkt.src,
            pkt.dst,
            pkt.wire_bytes(),
            false,
            || pkt.clone(),
        );
        let qpn = pkt.dst_qp;
        self.with_qp(eng, host, qpn, move |qp, env, fx| {
            qp.on_packet(env, fx, &pkt)
        });
    }

    fn driver_kick(&mut self, eng: &mut Sim, host: HostId) {
        let now = eng.now();
        self.driver_kick_at(eng, host, now);
    }

    /// [`Cluster::driver_kick`] with an explicit "now". Sharded epoch
    /// rekicks re-enter a driver stalled at `t_s` from an event firing
    /// at a later epoch boundary; timestamping the kick with `t_s`
    /// reproduces the sequential begin time (the scheduled completion,
    /// `t_s + cost`, is never earlier than the boundary because the
    /// fault floor bounds the epoch width).
    pub(crate) fn driver_kick_at(&mut self, eng: &mut Sim, host: HostId, now: SimTime) {
        if let Some((work, cost)) = self.drivers[host.0].begin_next() {
            if self.telemetry.is_enabled() {
                let labels = Labels::host(host.0 as u64);
                match &work {
                    DriverWork::FaultResolved { mr, page } => {
                        self.telemetry.counter_add("driver.faults_begun", labels, 1);
                        self.telemetry
                            .fault_service_begin(host.0 as u64, mr.0, *page as u64, now);
                    }
                    DriverWork::QpResumed { .. } => {
                        self.telemetry
                            .counter_add("driver.resumes_begun", labels, 1);
                    }
                    DriverWork::IrqBatch { .. } => {
                        self.telemetry
                            .counter_add("driver.irq_batches_begun", labels, 1);
                    }
                }
                self.telemetry
                    .observe("driver.work_cost_ns", labels, cost.as_ns());
            }
            eng.schedule_at(now + cost, move |c: &mut Cluster, eng| {
                c.on_driver_done(eng, host, work);
            });
        } else if self.drivers[host.0].blocked_on_undrawn() {
            // The queue head is a fault whose latency the epoch leader
            // has not yet filled. Record the stall (first stall time
            // wins) so the leader bounds the epoch and rekicks us.
            let sh = self
                .shard
                .as_mut()
                .expect("invariant: undrawn faults only exist when sharded");
            sh.seq += 1;
            let seq = sh.seq;
            sh.stalls.entry(host.0).or_insert((now, seq));
        }
    }

    fn on_driver_done(&mut self, eng: &mut Sim, host: HostId, work: DriverWork) {
        self.drivers[host.0].finish();
        match work {
            DriverWork::FaultResolved { mr, page } => {
                if let Some(region) = self.nics[host.0].mrs.get_mut(&mr) {
                    region.set_page_state(page, crate::mem::PageState::Mapped);
                }
                let waiters = self.nics[host.0].take_fault_waiters(mr, page);
                let slots = self.nics[host.0].profile.resume_slots as usize;
                let stale: Vec<Qpn> = if waiters.len() > slots {
                    waiters[..waiters.len() - slots].to_vec()
                } else {
                    Vec::new()
                };
                if self.telemetry.is_enabled() {
                    let waiter_qpns: Vec<u32> = waiters.iter().map(|q| q.0).collect();
                    self.telemetry.fault_resolved(
                        host.0 as u64,
                        mr.0,
                        page as u64,
                        eng.now(),
                        &waiter_qpns,
                        stale.len() as u32,
                    );
                }
                // Flood: QPs beyond the NIC's instant-resume capacity get a
                // stale page status that only a serialized driver resume
                // refreshes (§VI-B "update failure of page statuses").
                for &q in &stale {
                    if let Some(qp) = self.nics[host.0].qp_mut(q) {
                        qp.mark_page_stale(mr, page);
                    }
                    self.drivers[host.0].push_resume(q, mr, page);
                }
                let all: Vec<Qpn> = self.nics[host.0].qpns().to_vec();
                for q in all {
                    if stale.contains(&q) {
                        continue;
                    }
                    self.with_qp(eng, host, q, move |qp, env, fx| {
                        qp.on_page_ready(env, fx, mr, page)
                    });
                }
            }
            DriverWork::QpResumed { qpn, mr, page } => {
                self.telemetry
                    .resume_done(host.0 as u64, mr.0, page as u64, eng.now());
                self.with_qp(eng, host, qpn, move |qp, env, fx| {
                    qp.on_page_ready(env, fx, mr, page)
                });
            }
            DriverWork::IrqBatch { .. } => {}
        }
        self.driver_kick(eng, host);
    }
}

/// Builder collapsing the `Engine::new` + `Cluster::new` +
/// `add_host`/`capture_enable`/`telemetry_enable` boilerplate into one
/// fluent expression.
///
/// # Examples
///
/// ```
/// use ibsim_verbs::{ClusterBuilder, DeviceProfile};
///
/// let (eng, cl, hosts) = ClusterBuilder::new()
///     .seed(42)
///     .host("client", DeviceProfile::connectx4(ibsim_fabric::LinkSpec::fdr()))
///     .host("server", DeviceProfile::connectx4(ibsim_fabric::LinkSpec::fdr()))
///     .capture(true)
///     .telemetry(true)
///     .build();
/// assert_eq!(hosts.len(), 2);
/// assert!(cl.telemetry().is_enabled());
/// assert_eq!(eng.now(), ibsim_event::SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterBuilder {
    seed: u64,
    hosts: Vec<(String, DeviceProfile)>,
    capture: bool,
    telemetry: bool,
    recovery: Option<RecoveryKind>,
    topology: Option<TopologyKind>,
}

impl ClusterBuilder {
    /// A builder with seed 0, no hosts, capture and telemetry off.
    pub fn new() -> Self {
        ClusterBuilder::default()
    }

    /// The seed driving every random draw (page-fault latencies, loss
    /// models); same seed, same run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a host with the given NIC profile. Hosts get ids in call
    /// order, returned by [`ClusterBuilder::build`].
    pub fn host(mut self, name: &str, profile: DeviceProfile) -> Self {
        self.hosts.push((name.to_owned(), profile));
        self
    }

    /// Enables `ibdump`-style capture on every host.
    pub fn capture(mut self, on: bool) -> Self {
        self.capture = on;
        self
    }

    /// Enables the telemetry hub (metric registry + fault spans).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Runs every QP of the cluster on this recovery backend (the
    /// ablation knob). Unset, each QP keeps its own
    /// [`QpConfig::recovery`], which defaults to go-back-N.
    pub fn recovery(mut self, kind: RecoveryKind) -> Self {
        self.recovery = Some(kind);
        self
    }

    /// Routes the fabric over this topology instead of the default
    /// single-switch crossbar. Hosts attach to switches round-robin in
    /// add order (the topology's `attach` rule), so host placement in
    /// the builder determines which flows share uplinks.
    ///
    /// # Panics
    ///
    /// `build` panics if the kind fails [`TopologyKind::validate`].
    pub fn topology(mut self, kind: TopologyKind) -> Self {
        self.topology = Some(kind);
        self
    }

    /// Builds the engine and cluster; returns them with the host ids in
    /// the order the hosts were added.
    pub fn build(self) -> (Sim, Cluster, Vec<HostId>) {
        let eng = Engine::new();
        let mut cl = Cluster::new(self.seed);
        if let Some(kind) = self.topology {
            cl.fabric.set_topology(kind);
        }
        if self.telemetry {
            cl.telemetry_enable();
        }
        if let Some(kind) = self.recovery {
            cl.set_default_recovery(kind);
        }
        let mut ids = Vec::with_capacity(self.hosts.len());
        for (name, profile) in self.hosts {
            let id = cl.add_host(&name, profile);
            if self.capture {
                cl.capture_enable(id);
            }
            ids.push(id);
        }
        (eng, cl, ids)
    }
}

/// Describes a memory registration for [`Cluster::mr`], unifying the
/// allocate-then-register and register-existing-buffer paths behind one
/// entry point (see [`Cluster::mr`] for which path is taken when).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrBuilder {
    len: u64,
    base: Option<u64>,
    mode: MrMode,
    prefetch: bool,
}

impl MrBuilder {
    /// A registration of `len` bytes in the given mode, allocating a
    /// fresh buffer unless [`MrBuilder::at`] is called.
    pub fn new(len: u64, mode: MrMode) -> Self {
        MrBuilder {
            len,
            base: None,
            mode,
            prefetch: false,
        }
    }

    /// Shorthand for a pinned registration.
    pub fn pinned(len: u64) -> Self {
        MrBuilder::new(len, MrMode::Pinned)
    }

    /// Shorthand for an On-Demand Paging registration.
    pub fn odp(len: u64) -> Self {
        MrBuilder::new(len, MrMode::Odp)
    }

    /// Registers the existing buffer at `base` instead of allocating.
    pub fn at(mut self, base: u64) -> Self {
        self.base = Some(base);
        self
    }

    /// Pre-touches every page after registration, so an ODP region
    /// starts fully mapped.
    pub fn prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }
}
