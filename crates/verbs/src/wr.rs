//! Work requests, work-queue elements and completions.

use core::fmt;

use ibsim_event::SimTime;

use crate::types::{packets_for, MrKey, Psn, Qpn, WrId};

/// The operation carried by a send work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrOp {
    /// One-sided RDMA READ: fetch `len` bytes from `(rkey, remote_off)` on
    /// the peer into `(local_mr, local_off)`.
    Read {
        /// Local destination region.
        local_mr: MrKey,
        /// Byte offset within the local region.
        local_off: u64,
        /// Peer region key.
        rkey: MrKey,
        /// Byte offset within the peer region.
        remote_off: u64,
        /// Transfer length in bytes.
        len: u32,
    },
    /// One-sided RDMA WRITE: push `len` bytes from `(local_mr, local_off)`
    /// into `(rkey, remote_off)` on the peer.
    Write {
        /// Local source region.
        local_mr: MrKey,
        /// Byte offset within the local region.
        local_off: u64,
        /// Peer region key.
        rkey: MrKey,
        /// Byte offset within the peer region.
        remote_off: u64,
        /// Transfer length in bytes.
        len: u32,
    },
    /// Two-sided SEND of `len` bytes from `(local_mr, local_off)`; the
    /// peer must have posted a receive.
    Send {
        /// Local source region.
        local_mr: MrKey,
        /// Byte offset within the local region.
        local_off: u64,
        /// Transfer length in bytes.
        len: u32,
    },
    /// 8-byte atomic on `(rkey, remote_off)`; the original value lands at
    /// `(local_mr, local_off)`.
    Atomic {
        /// Local region receiving the original value.
        local_mr: MrKey,
        /// Byte offset within the local region.
        local_off: u64,
        /// Peer region key.
        rkey: MrKey,
        /// Byte offset of the 8-byte target (must be 8-aligned).
        remote_off: u64,
        /// The operation.
        op: crate::packet::AtomicOp,
    },
}

impl WrOp {
    /// Transfer length in bytes.
    pub fn len(&self) -> u32 {
        match self {
            WrOp::Read { len, .. } | WrOp::Write { len, .. } | WrOp::Send { len, .. } => *len,
            WrOp::Atomic { .. } => 8,
        }
    }

    /// True for zero-length transfers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of request packets at the given MTU.
    pub fn request_packets(&self, mtu: u32) -> u32 {
        match self {
            WrOp::Read { .. } | WrOp::Atomic { .. } => 1,
            WrOp::Write { len, .. } | WrOp::Send { len, .. } => packets_for(*len, mtu),
        }
    }

    /// Number of PSNs the operation consumes: SEND/WRITE use one per
    /// request packet; READ consumes one per *response* packet (§9.7.2 of
    /// the InfiniBand spec: read responses reuse the request PSN range);
    /// atomics consume one.
    pub fn psn_span(&self, mtu: u32) -> u32 {
        match self {
            WrOp::Read { len, .. } => packets_for(*len, mtu),
            WrOp::Write { len, .. } | WrOp::Send { len, .. } => packets_for(*len, mtu),
            WrOp::Atomic { .. } => 1,
        }
    }
}

/// A send work request as posted by the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkRequest {
    /// Caller-chosen identifier echoed in the completion.
    pub id: WrId,
    /// The operation.
    pub op: WrOp,
}

/// A position inside a registered memory region: `(key, byte offset)`.
///
/// Everything that builds a typed work request takes `impl Into<MrSlice>`,
/// so call sites can pass a bare [`MrKey`] (offset 0), a `(MrKey, u64)`
/// tuple, an [`MrDesc`](crate::cluster::MrDesc) (offset 0), or the result
/// of [`MrDesc::at`](crate::cluster::MrDesc::at).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrSlice {
    /// Region key (doubles as lkey and rkey in the simulator).
    pub mr: MrKey,
    /// Byte offset within the region.
    pub offset: u64,
}

impl From<MrKey> for MrSlice {
    fn from(mr: MrKey) -> Self {
        MrSlice { mr, offset: 0 }
    }
}

impl From<(MrKey, u64)> for MrSlice {
    fn from((mr, offset): (MrKey, u64)) -> Self {
        MrSlice { mr, offset }
    }
}

impl From<crate::cluster::MrDesc> for MrSlice {
    fn from(d: crate::cluster::MrDesc) -> Self {
        MrSlice {
            mr: d.key,
            offset: 0,
        }
    }
}

impl From<&crate::cluster::MrDesc> for MrSlice {
    fn from(d: &crate::cluster::MrDesc) -> Self {
        MrSlice {
            mr: d.key,
            offset: 0,
        }
    }
}

/// Typed builder for an RDMA READ work request.
///
/// ```
/// use ibsim_verbs::{MrKey, ReadWr, WorkRequest};
///
/// let wr: WorkRequest = ReadWr::new(MrKey(1), (MrKey(2), 64)).len(28).id(1).into();
/// assert_eq!(wr.op.len(), 28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadWr {
    local: MrSlice,
    remote: MrSlice,
    len: u32,
    id: WrId,
}

impl ReadWr {
    /// A READ fetching from `remote` on the peer into `local`.
    pub fn new(local: impl Into<MrSlice>, remote: impl Into<MrSlice>) -> Self {
        ReadWr {
            local: local.into(),
            remote: remote.into(),
            len: 0,
            id: WrId(0),
        }
    }

    /// Transfer length in bytes (default 0).
    pub fn len(mut self, len: u32) -> Self {
        self.len = len;
        self
    }

    /// Work-request id echoed in the completion (default 0).
    pub fn id(mut self, id: impl Into<WrId>) -> Self {
        self.id = id.into();
        self
    }
}

impl From<ReadWr> for WorkRequest {
    fn from(b: ReadWr) -> Self {
        WorkRequest {
            id: b.id,
            op: WrOp::Read {
                local_mr: b.local.mr,
                local_off: b.local.offset,
                rkey: b.remote.mr,
                remote_off: b.remote.offset,
                len: b.len,
            },
        }
    }
}

/// Typed builder for an RDMA WRITE work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteWr {
    local: MrSlice,
    remote: MrSlice,
    len: u32,
    id: WrId,
}

impl WriteWr {
    /// A WRITE pushing from `local` into `remote` on the peer.
    pub fn new(local: impl Into<MrSlice>, remote: impl Into<MrSlice>) -> Self {
        WriteWr {
            local: local.into(),
            remote: remote.into(),
            len: 0,
            id: WrId(0),
        }
    }

    /// Transfer length in bytes (default 0).
    pub fn len(mut self, len: u32) -> Self {
        self.len = len;
        self
    }

    /// Work-request id echoed in the completion (default 0).
    pub fn id(mut self, id: impl Into<WrId>) -> Self {
        self.id = id.into();
        self
    }
}

impl From<WriteWr> for WorkRequest {
    fn from(b: WriteWr) -> Self {
        WorkRequest {
            id: b.id,
            op: WrOp::Write {
                local_mr: b.local.mr,
                local_off: b.local.offset,
                rkey: b.remote.mr,
                remote_off: b.remote.offset,
                len: b.len,
            },
        }
    }
}

/// Typed builder for a two-sided SEND work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendWr {
    local: MrSlice,
    len: u32,
    id: WrId,
}

impl SendWr {
    /// A SEND sourcing its payload from `local`.
    pub fn new(local: impl Into<MrSlice>) -> Self {
        SendWr {
            local: local.into(),
            len: 0,
            id: WrId(0),
        }
    }

    /// Payload length in bytes (default 0).
    pub fn len(mut self, len: u32) -> Self {
        self.len = len;
        self
    }

    /// Work-request id echoed in the completion (default 0).
    pub fn id(mut self, id: impl Into<WrId>) -> Self {
        self.id = id.into();
        self
    }
}

impl From<SendWr> for WorkRequest {
    fn from(b: SendWr) -> Self {
        WorkRequest {
            id: b.id,
            op: WrOp::Send {
                local_mr: b.local.mr,
                local_off: b.local.offset,
                len: b.len,
            },
        }
    }
}

/// Typed builder for an 8-byte fetch-and-add; the original value lands
/// at `local`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchAddWr {
    local: MrSlice,
    remote: MrSlice,
    add: u64,
    id: WrId,
}

impl FetchAddWr {
    /// A fetch-and-add on the 8-byte word at `remote` (default addend 1).
    pub fn new(local: impl Into<MrSlice>, remote: impl Into<MrSlice>) -> Self {
        FetchAddWr {
            local: local.into(),
            remote: remote.into(),
            add: 1,
            id: WrId(0),
        }
    }

    /// The addend (default 1).
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, add: u64) -> Self {
        self.add = add;
        self
    }

    /// Work-request id echoed in the completion (default 0).
    pub fn id(mut self, id: impl Into<WrId>) -> Self {
        self.id = id.into();
        self
    }
}

impl From<FetchAddWr> for WorkRequest {
    fn from(b: FetchAddWr) -> Self {
        WorkRequest {
            id: b.id,
            op: WrOp::Atomic {
                local_mr: b.local.mr,
                local_off: b.local.offset,
                rkey: b.remote.mr,
                remote_off: b.remote.offset,
                op: crate::packet::AtomicOp::FetchAdd { add: b.add },
            },
        }
    }
}

/// Typed builder for an 8-byte compare-and-swap; the original value
/// lands at `local` (the swap took effect iff it equals the compare
/// operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompareSwapWr {
    local: MrSlice,
    remote: MrSlice,
    compare: u64,
    swap: u64,
    id: WrId,
}

impl CompareSwapWr {
    /// A compare-and-swap on the 8-byte word at `remote` (defaults:
    /// compare 0, swap 0).
    pub fn new(local: impl Into<MrSlice>, remote: impl Into<MrSlice>) -> Self {
        CompareSwapWr {
            local: local.into(),
            remote: remote.into(),
            compare: 0,
            swap: 0,
            id: WrId(0),
        }
    }

    /// The expected current value (default 0).
    pub fn compare(mut self, compare: u64) -> Self {
        self.compare = compare;
        self
    }

    /// The replacement value (default 0).
    pub fn swap(mut self, swap: u64) -> Self {
        self.swap = swap;
        self
    }

    /// Work-request id echoed in the completion (default 0).
    pub fn id(mut self, id: impl Into<WrId>) -> Self {
        self.id = id.into();
        self
    }
}

impl From<CompareSwapWr> for WorkRequest {
    fn from(b: CompareSwapWr) -> Self {
        WorkRequest {
            id: b.id,
            op: WrOp::Atomic {
                local_mr: b.local.mr,
                local_off: b.local.offset,
                rkey: b.remote.mr,
                remote_off: b.remote.offset,
                op: crate::packet::AtomicOp::CompareSwap {
                    compare: b.compare,
                    swap: b.swap,
                },
            },
        }
    }
}

/// A receive work request (buffer for an incoming SEND).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvWr {
    /// Caller-chosen identifier echoed in the completion.
    pub id: WrId,
    /// Region the payload lands in.
    pub mr: MrKey,
    /// Byte offset within the region.
    pub offset: u64,
    /// Buffer capacity.
    pub max_len: u32,
}

/// Completion status, mirroring `ibv_wc_status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcStatus {
    /// The operation completed successfully.
    Success,
    /// Transport retries exhausted (`IBV_WC_RETRY_EXC_ERR`): the error the
    /// paper's Fig. 2 experiment measures and that SparkUCX runs hit.
    RetryExcErr,
    /// RNR retries exhausted.
    RnrRetryExcErr,
    /// The remote key or address was invalid.
    RemoteAccessErr,
    /// The work request was flushed because the QP entered the error state.
    WrFlushErr,
}

impl WcStatus {
    /// True only for [`WcStatus::Success`].
    pub fn is_success(self) -> bool {
        self == WcStatus::Success
    }
}

impl fmt::Display for WcStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcStatus::Success => write!(f, "IBV_WC_SUCCESS"),
            WcStatus::RetryExcErr => write!(f, "IBV_WC_RETRY_EXC_ERR"),
            WcStatus::RnrRetryExcErr => write!(f, "IBV_WC_RNR_RETRY_EXC_ERR"),
            WcStatus::RemoteAccessErr => write!(f, "IBV_WC_REM_ACCESS_ERR"),
            WcStatus::WrFlushErr => write!(f, "IBV_WC_WR_FLUSH_ERR"),
        }
    }
}

/// Which operation a completion reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcOpcode {
    /// RDMA READ completed on the requester.
    Read,
    /// RDMA WRITE completed on the requester.
    Write,
    /// SEND completed on the requester.
    Send,
    /// An incoming SEND landed in a posted receive.
    Recv,
    /// Fetch-and-add completed on the requester.
    FetchAdd,
    /// Compare-and-swap completed on the requester.
    CompareSwap,
}

impl fmt::Display for WcOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcOpcode::Read => write!(f, "READ"),
            WcOpcode::Write => write!(f, "WRITE"),
            WcOpcode::Send => write!(f, "SEND"),
            WcOpcode::Recv => write!(f, "RECV"),
            WcOpcode::FetchAdd => write!(f, "FETCH_ADD"),
            WcOpcode::CompareSwap => write!(f, "CMP_SWAP"),
        }
    }
}

/// A completion queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Echoed work-request id.
    pub wr_id: WrId,
    /// QP the work request belonged to.
    pub qpn: Qpn,
    /// Outcome.
    pub status: WcStatus,
    /// Operation type.
    pub opcode: WcOpcode,
    /// Bytes transferred.
    pub bytes: u32,
    /// Completion timestamp.
    pub at: SimTime,
}

/// Internal send-queue element: a work request plus transport progress.
#[derive(Debug, Clone)]
pub(crate) struct SendWqe {
    pub id: WrId,
    pub op: WrOp,
    /// First PSN of the message.
    pub psn_first: Psn,
    /// Last PSN of the message (inclusive).
    pub psn_last: Psn,
    /// Request packets in the message.
    pub req_packets: u32,
    /// Response packets expected (READ only).
    pub resp_packets: u32,
    /// Request segments transmitted at least once.
    pub sent_segments: u32,
    /// Response segments consumed in order (READ only).
    pub recv_segments: u32,
    /// Remote side has acknowledged the message (ACK or implicit).
    pub acked: bool,
    /// Damming quirk: first transmission happened inside a fault-recovery
    /// window, so recovery retransmissions skip it and the wire never saw
    /// it (see `DeviceProfile::damming`).
    pub ghosted: bool,
    /// Time of first transmission of the first segment.
    pub first_tx: Option<SimTime>,
}

impl SendWqe {
    /// True when the WQE can retire: acked, and for READs and atomics all
    /// response data consumed.
    pub(crate) fn is_done(&self) -> bool {
        match self.op {
            WrOp::Read { .. } | WrOp::Atomic { .. } => self.recv_segments == self.resp_packets,
            WrOp::Write { .. } | WrOp::Send { .. } => self.acked,
        }
    }

    /// True if `psn` falls within this message's PSN span.
    pub(crate) fn covers(&self, psn: Psn) -> bool {
        self.psn_first.at_or_before(psn) && psn.at_or_before(self.psn_last)
    }

    /// The completion opcode for this WQE.
    pub(crate) fn wc_opcode(&self) -> WcOpcode {
        match self.op {
            WrOp::Read { .. } => WcOpcode::Read,
            WrOp::Write { .. } => WcOpcode::Write,
            WrOp::Send { .. } => WcOpcode::Send,
            WrOp::Atomic {
                op: crate::packet::AtomicOp::FetchAdd { .. },
                ..
            } => WcOpcode::FetchAdd,
            WrOp::Atomic {
                op: crate::packet::AtomicOp::CompareSwap { .. },
                ..
            } => WcOpcode::CompareSwap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_op(len: u32) -> WrOp {
        WrOp::Read {
            local_mr: MrKey(1),
            local_off: 0,
            rkey: MrKey(2),
            remote_off: 0,
            len,
        }
    }

    #[test]
    fn read_consumes_response_psns() {
        assert_eq!(read_op(100).psn_span(4096), 1);
        assert_eq!(read_op(4097).psn_span(4096), 2);
        assert_eq!(read_op(100).request_packets(4096), 1);
        assert_eq!(read_op(10_000).request_packets(4096), 1);
    }

    #[test]
    fn write_consumes_segment_psns() {
        let w = WrOp::Write {
            local_mr: MrKey(1),
            local_off: 0,
            rkey: MrKey(2),
            remote_off: 0,
            len: 10_000,
        };
        assert_eq!(w.psn_span(4096), 3);
        assert_eq!(w.request_packets(4096), 3);
        assert_eq!(w.len(), 10_000);
        assert!(!w.is_empty());
    }

    #[test]
    fn wqe_covers_its_span() {
        let wqe = SendWqe {
            id: WrId(1),
            op: read_op(10_000),
            psn_first: Psn::new(10),
            psn_last: Psn::new(12),
            req_packets: 1,
            resp_packets: 3,
            sent_segments: 0,
            recv_segments: 0,
            acked: false,
            ghosted: false,
            first_tx: None,
        };
        assert!(!wqe.covers(Psn::new(9)));
        assert!(wqe.covers(Psn::new(10)));
        assert!(wqe.covers(Psn::new(12)));
        assert!(!wqe.covers(Psn::new(13)));
        assert_eq!(wqe.wc_opcode(), WcOpcode::Read);
    }

    #[test]
    fn read_done_requires_data_not_just_ack() {
        let mut wqe = SendWqe {
            id: WrId(1),
            op: read_op(100),
            psn_first: Psn::new(0),
            psn_last: Psn::new(0),
            req_packets: 1,
            resp_packets: 1,
            sent_segments: 1,
            recv_segments: 0,
            acked: true,
            ghosted: false,
            first_tx: None,
        };
        assert!(!wqe.is_done(), "acked READ without data is not done");
        wqe.recv_segments = 1;
        assert!(wqe.is_done());
    }

    #[test]
    fn builders_produce_equivalent_work_requests() {
        let local = MrKey(1);
        let remote = MrKey(2);
        let read: WorkRequest = ReadWr::new(local, (remote, 64)).len(28).id(1).into();
        assert_eq!(
            read,
            WorkRequest {
                id: WrId(1),
                op: WrOp::Read {
                    local_mr: local,
                    local_off: 0,
                    rkey: remote,
                    remote_off: 64,
                    len: 28,
                },
            }
        );
        let write: WorkRequest = WriteWr::new((local, 8), remote).len(100).id(2).into();
        assert_eq!(
            write.op,
            WrOp::Write {
                local_mr: local,
                local_off: 8,
                rkey: remote,
                remote_off: 0,
                len: 100,
            }
        );
        let send: WorkRequest = SendWr::new(local).len(5).id(3).into();
        assert_eq!(
            send.op,
            WrOp::Send {
                local_mr: local,
                local_off: 0,
                len: 5,
            }
        );
        let faa: WorkRequest = FetchAddWr::new(local, remote).add(7).id(4).into();
        assert_eq!(
            faa.op,
            WrOp::Atomic {
                local_mr: local,
                local_off: 0,
                rkey: remote,
                remote_off: 0,
                op: crate::packet::AtomicOp::FetchAdd { add: 7 },
            }
        );
        let cas: WorkRequest = CompareSwapWr::new(local, (remote, 16))
            .compare(1)
            .swap(9)
            .id(5)
            .into();
        assert_eq!(
            cas.op,
            WrOp::Atomic {
                local_mr: local,
                local_off: 0,
                rkey: remote,
                remote_off: 16,
                op: crate::packet::AtomicOp::CompareSwap {
                    compare: 1,
                    swap: 9,
                },
            }
        );
    }

    #[test]
    fn mr_slice_conversions() {
        assert_eq!(
            MrSlice::from(MrKey(3)),
            MrSlice {
                mr: MrKey(3),
                offset: 0
            }
        );
        assert_eq!(
            MrSlice::from((MrKey(3), 12)),
            MrSlice {
                mr: MrKey(3),
                offset: 12
            }
        );
    }

    #[test]
    fn status_display_matches_ibverbs_names() {
        assert_eq!(WcStatus::RetryExcErr.to_string(), "IBV_WC_RETRY_EXC_ERR");
        assert!(WcStatus::Success.is_success());
        assert!(!WcStatus::RetryExcErr.is_success());
    }
}
