//! Work requests, work-queue elements and completions.

use core::fmt;

use ibsim_event::SimTime;

use crate::types::{packets_for, MrKey, Psn, Qpn, WrId};

/// The operation carried by a send work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrOp {
    /// One-sided RDMA READ: fetch `len` bytes from `(rkey, remote_off)` on
    /// the peer into `(local_mr, local_off)`.
    Read {
        /// Local destination region.
        local_mr: MrKey,
        /// Byte offset within the local region.
        local_off: u64,
        /// Peer region key.
        rkey: MrKey,
        /// Byte offset within the peer region.
        remote_off: u64,
        /// Transfer length in bytes.
        len: u32,
    },
    /// One-sided RDMA WRITE: push `len` bytes from `(local_mr, local_off)`
    /// into `(rkey, remote_off)` on the peer.
    Write {
        /// Local source region.
        local_mr: MrKey,
        /// Byte offset within the local region.
        local_off: u64,
        /// Peer region key.
        rkey: MrKey,
        /// Byte offset within the peer region.
        remote_off: u64,
        /// Transfer length in bytes.
        len: u32,
    },
    /// Two-sided SEND of `len` bytes from `(local_mr, local_off)`; the
    /// peer must have posted a receive.
    Send {
        /// Local source region.
        local_mr: MrKey,
        /// Byte offset within the local region.
        local_off: u64,
        /// Transfer length in bytes.
        len: u32,
    },
    /// 8-byte atomic on `(rkey, remote_off)`; the original value lands at
    /// `(local_mr, local_off)`.
    Atomic {
        /// Local region receiving the original value.
        local_mr: MrKey,
        /// Byte offset within the local region.
        local_off: u64,
        /// Peer region key.
        rkey: MrKey,
        /// Byte offset of the 8-byte target (must be 8-aligned).
        remote_off: u64,
        /// The operation.
        op: crate::packet::AtomicOp,
    },
}

impl WrOp {
    /// Transfer length in bytes.
    pub fn len(&self) -> u32 {
        match self {
            WrOp::Read { len, .. } | WrOp::Write { len, .. } | WrOp::Send { len, .. } => *len,
            WrOp::Atomic { .. } => 8,
        }
    }

    /// True for zero-length transfers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of request packets at the given MTU.
    pub fn request_packets(&self, mtu: u32) -> u32 {
        match self {
            WrOp::Read { .. } | WrOp::Atomic { .. } => 1,
            WrOp::Write { len, .. } | WrOp::Send { len, .. } => packets_for(*len, mtu),
        }
    }

    /// Number of PSNs the operation consumes: SEND/WRITE use one per
    /// request packet; READ consumes one per *response* packet (§9.7.2 of
    /// the InfiniBand spec: read responses reuse the request PSN range);
    /// atomics consume one.
    pub fn psn_span(&self, mtu: u32) -> u32 {
        match self {
            WrOp::Read { len, .. } => packets_for(*len, mtu),
            WrOp::Write { len, .. } | WrOp::Send { len, .. } => packets_for(*len, mtu),
            WrOp::Atomic { .. } => 1,
        }
    }
}

/// A send work request as posted by the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkRequest {
    /// Caller-chosen identifier echoed in the completion.
    pub id: WrId,
    /// The operation.
    pub op: WrOp,
}

/// A receive work request (buffer for an incoming SEND).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvWr {
    /// Caller-chosen identifier echoed in the completion.
    pub id: WrId,
    /// Region the payload lands in.
    pub mr: MrKey,
    /// Byte offset within the region.
    pub offset: u64,
    /// Buffer capacity.
    pub max_len: u32,
}

/// Completion status, mirroring `ibv_wc_status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcStatus {
    /// The operation completed successfully.
    Success,
    /// Transport retries exhausted (`IBV_WC_RETRY_EXC_ERR`): the error the
    /// paper's Fig. 2 experiment measures and that SparkUCX runs hit.
    RetryExcErr,
    /// RNR retries exhausted.
    RnrRetryExcErr,
    /// The remote key or address was invalid.
    RemoteAccessErr,
    /// The work request was flushed because the QP entered the error state.
    WrFlushErr,
}

impl WcStatus {
    /// True only for [`WcStatus::Success`].
    pub fn is_success(self) -> bool {
        self == WcStatus::Success
    }
}

impl fmt::Display for WcStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcStatus::Success => write!(f, "IBV_WC_SUCCESS"),
            WcStatus::RetryExcErr => write!(f, "IBV_WC_RETRY_EXC_ERR"),
            WcStatus::RnrRetryExcErr => write!(f, "IBV_WC_RNR_RETRY_EXC_ERR"),
            WcStatus::RemoteAccessErr => write!(f, "IBV_WC_REM_ACCESS_ERR"),
            WcStatus::WrFlushErr => write!(f, "IBV_WC_WR_FLUSH_ERR"),
        }
    }
}

/// Which operation a completion reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcOpcode {
    /// RDMA READ completed on the requester.
    Read,
    /// RDMA WRITE completed on the requester.
    Write,
    /// SEND completed on the requester.
    Send,
    /// An incoming SEND landed in a posted receive.
    Recv,
    /// Fetch-and-add completed on the requester.
    FetchAdd,
    /// Compare-and-swap completed on the requester.
    CompareSwap,
}

impl fmt::Display for WcOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcOpcode::Read => write!(f, "READ"),
            WcOpcode::Write => write!(f, "WRITE"),
            WcOpcode::Send => write!(f, "SEND"),
            WcOpcode::Recv => write!(f, "RECV"),
            WcOpcode::FetchAdd => write!(f, "FETCH_ADD"),
            WcOpcode::CompareSwap => write!(f, "CMP_SWAP"),
        }
    }
}

/// A completion queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Echoed work-request id.
    pub wr_id: WrId,
    /// QP the work request belonged to.
    pub qpn: Qpn,
    /// Outcome.
    pub status: WcStatus,
    /// Operation type.
    pub opcode: WcOpcode,
    /// Bytes transferred.
    pub bytes: u32,
    /// Completion timestamp.
    pub at: SimTime,
}

/// Internal send-queue element: a work request plus transport progress.
#[derive(Debug, Clone)]
pub(crate) struct SendWqe {
    pub id: WrId,
    pub op: WrOp,
    /// First PSN of the message.
    pub psn_first: Psn,
    /// Last PSN of the message (inclusive).
    pub psn_last: Psn,
    /// Request packets in the message.
    pub req_packets: u32,
    /// Response packets expected (READ only).
    pub resp_packets: u32,
    /// Request segments transmitted at least once.
    pub sent_segments: u32,
    /// Response segments consumed in order (READ only).
    pub recv_segments: u32,
    /// Remote side has acknowledged the message (ACK or implicit).
    pub acked: bool,
    /// Damming quirk: first transmission happened inside a fault-recovery
    /// window, so recovery retransmissions skip it and the wire never saw
    /// it (see `DeviceProfile::damming`).
    pub ghosted: bool,
    /// Time of first transmission of the first segment.
    pub first_tx: Option<SimTime>,
}

impl SendWqe {
    /// True when the WQE can retire: acked, and for READs and atomics all
    /// response data consumed.
    pub(crate) fn is_done(&self) -> bool {
        match self.op {
            WrOp::Read { .. } | WrOp::Atomic { .. } => self.recv_segments == self.resp_packets,
            _ => self.acked,
        }
    }

    /// True if `psn` falls within this message's PSN span.
    pub(crate) fn covers(&self, psn: Psn) -> bool {
        self.psn_first.at_or_before(psn) && psn.at_or_before(self.psn_last)
    }

    /// The completion opcode for this WQE.
    pub(crate) fn wc_opcode(&self) -> WcOpcode {
        match self.op {
            WrOp::Read { .. } => WcOpcode::Read,
            WrOp::Write { .. } => WcOpcode::Write,
            WrOp::Send { .. } => WcOpcode::Send,
            WrOp::Atomic {
                op: crate::packet::AtomicOp::FetchAdd { .. },
                ..
            } => WcOpcode::FetchAdd,
            WrOp::Atomic {
                op: crate::packet::AtomicOp::CompareSwap { .. },
                ..
            } => WcOpcode::CompareSwap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_op(len: u32) -> WrOp {
        WrOp::Read {
            local_mr: MrKey(1),
            local_off: 0,
            rkey: MrKey(2),
            remote_off: 0,
            len,
        }
    }

    #[test]
    fn read_consumes_response_psns() {
        assert_eq!(read_op(100).psn_span(4096), 1);
        assert_eq!(read_op(4097).psn_span(4096), 2);
        assert_eq!(read_op(100).request_packets(4096), 1);
        assert_eq!(read_op(10_000).request_packets(4096), 1);
    }

    #[test]
    fn write_consumes_segment_psns() {
        let w = WrOp::Write {
            local_mr: MrKey(1),
            local_off: 0,
            rkey: MrKey(2),
            remote_off: 0,
            len: 10_000,
        };
        assert_eq!(w.psn_span(4096), 3);
        assert_eq!(w.request_packets(4096), 3);
        assert_eq!(w.len(), 10_000);
        assert!(!w.is_empty());
    }

    #[test]
    fn wqe_covers_its_span() {
        let wqe = SendWqe {
            id: WrId(1),
            op: read_op(10_000),
            psn_first: Psn::new(10),
            psn_last: Psn::new(12),
            req_packets: 1,
            resp_packets: 3,
            sent_segments: 0,
            recv_segments: 0,
            acked: false,
            ghosted: false,
            first_tx: None,
        };
        assert!(!wqe.covers(Psn::new(9)));
        assert!(wqe.covers(Psn::new(10)));
        assert!(wqe.covers(Psn::new(12)));
        assert!(!wqe.covers(Psn::new(13)));
        assert_eq!(wqe.wc_opcode(), WcOpcode::Read);
    }

    #[test]
    fn read_done_requires_data_not_just_ack() {
        let mut wqe = SendWqe {
            id: WrId(1),
            op: read_op(100),
            psn_first: Psn::new(0),
            psn_last: Psn::new(0),
            req_packets: 1,
            resp_packets: 1,
            sent_segments: 1,
            recv_segments: 0,
            acked: true,
            ghosted: false,
            first_tx: None,
        };
        assert!(!wqe.is_done(), "acked READ without data is not done");
        wqe.recv_segments = 1;
        assert!(wqe.is_done());
    }

    #[test]
    fn status_display_matches_ibverbs_names() {
        assert_eq!(WcStatus::RetryExcErr.to_string(), "IBV_WC_RETRY_EXC_ERR");
        assert!(WcStatus::Success.is_success());
        assert!(!WcStatus::RetryExcErr.is_success());
    }
}
