//! Host memory and memory regions.
//!
//! Each host owns a sparse byte-addressable [`Memory`]. Registering a
//! [`MemRegion`] makes a range of it visible to the RNIC, either *pinned*
//! (the classic path: every page mapped in the NIC translation table at
//! registration time) or *ODP* (pages start unmapped; access triggers
//! network page faults, §III).

use std::collections::BTreeMap;
use std::fmt;

use crate::types::{MrKey, PAGE_SIZE};

/// Sparse page-granular memory for one host.
///
/// Pages materialize zero-filled on first access, which doubles as a
/// first-touch model: [`Memory::is_resident`] tells whether the OS has the
/// page yet.
///
/// # Examples
///
/// ```
/// use ibsim_verbs::Memory;
///
/// let mut mem = Memory::new();
/// mem.write(0x1000, b"hello");
/// assert_eq!(mem.read(0x1000, 5), b"hello");
/// assert!(mem.is_resident(0x1000));
/// assert!(!mem.is_resident(0x9000));
/// ```
#[derive(Debug, Default)]
pub struct Memory {
    pages: BTreeMap<u64, Box<[u8]>>,
    next_alloc: u64,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory {
            pages: BTreeMap::new(),
            // Start allocations away from address zero so that a zero
            // address is always a bug, never a valid buffer.
            next_alloc: 0x1000,
        }
    }

    /// Reserves `len` bytes of fresh page-aligned address space and
    /// returns its base address. No pages are materialized yet.
    pub fn alloc(&mut self, len: u64) -> u64 {
        let base = self.next_alloc;
        let span = len.max(1).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.next_alloc = base + span + PAGE_SIZE; // guard page
        base
    }

    fn page_base(addr: u64) -> u64 {
        addr & !(PAGE_SIZE - 1)
    }

    /// True if the page containing `addr` has been materialized.
    pub fn is_resident(&self, addr: u64) -> bool {
        self.pages.contains_key(&Self::page_base(addr))
    }

    /// Materializes the page containing `addr` (first touch).
    pub fn touch(&mut self, addr: u64) {
        self.pages
            .entry(Self::page_base(addr))
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
    }

    /// Reads `len` bytes at `addr`, materializing pages as needed.
    pub fn read(&mut self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        let mut remaining = len;
        while remaining > 0 {
            self.touch(a);
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let take = remaining.min(PAGE_SIZE as usize - off);
            let page = self
                .pages
                .get(&base)
                .expect("invariant: page touched above");
            out.extend_from_slice(&page[off..off + take]);
            a += take as u64;
            remaining -= take;
        }
        out
    }

    /// Writes `data` at `addr`, materializing pages as needed.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut a = addr;
        let mut src = data;
        while !src.is_empty() {
            self.touch(a);
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let take = src.len().min(PAGE_SIZE as usize - off);
            let page = self
                .pages
                .get_mut(&base)
                .expect("invariant: page touched above");
            page[off..off + take].copy_from_slice(&src[..take]);
            a += take as u64;
            src = &src[take..];
        }
    }

    /// Number of materialized pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// How a memory region is registered with the RNIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrMode {
    /// Classic registration: pages pinned and NIC-mapped up front.
    Pinned,
    /// On-Demand Paging: pages mapped lazily via network page faults.
    Odp,
}

impl fmt::Display for MrMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrMode::Pinned => write!(f, "pinned"),
            MrMode::Odp => write!(f, "odp"),
        }
    }
}

/// NIC-side mapping state of one page of an ODP region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Not in the NIC translation table; access faults.
    Unmapped,
    /// A network page fault is being resolved by the driver.
    Faulting,
    /// Present in the NIC translation table.
    Mapped,
}

/// A registered memory region as the RNIC sees it.
#[derive(Debug)]
pub struct MemRegion {
    key: MrKey,
    base: u64,
    len: u64,
    mode: MrMode,
    pages: Vec<PageState>,
    /// Total network page faults raised on this region (diagnostics; the
    /// paper reads the equivalent counters from `/sys`).
    pub fault_count: u64,
    /// Total invalidations applied to this region.
    pub invalidation_count: u64,
}

impl MemRegion {
    /// Creates a region covering `[base, base+len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(key: MrKey, base: u64, len: u64, mode: MrMode) -> Self {
        assert!(len > 0, "cannot register an empty memory region");
        let first_page = base / PAGE_SIZE;
        let last_page = (base + len - 1) / PAGE_SIZE;
        let n = (last_page - first_page + 1) as usize;
        let initial = match mode {
            MrMode::Pinned => PageState::Mapped,
            MrMode::Odp => PageState::Unmapped,
        };
        MemRegion {
            key,
            base,
            len,
            mode,
            pages: vec![initial; n],
            fault_count: 0,
            invalidation_count: 0,
        }
    }

    /// The region's key (lkey/rkey).
    pub fn key(&self) -> MrKey {
        self.key
    }

    /// Base virtual address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the region registers no bytes (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Registration mode.
    pub fn mode(&self) -> MrMode {
        self.mode
    }

    /// Number of pages the region spans.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// True if `[offset, offset+len)` lies within the region.
    pub fn contains(&self, offset: u64, len: u32) -> bool {
        offset
            .checked_add(len as u64)
            .is_some_and(|end| end <= self.len)
    }

    /// Page index within the region for a byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn page_of(&self, offset: u64) -> usize {
        assert!(
            offset < self.len,
            "offset {offset} beyond region {}",
            self.len
        );
        (((self.base + offset) / PAGE_SIZE) - self.base / PAGE_SIZE) as usize
    }

    /// Indices of the pages touched by `[offset, offset+len)`.
    pub fn pages_spanned(&self, offset: u64, len: u32) -> std::ops::RangeInclusive<usize> {
        assert!(self.contains(offset, len), "range out of bounds");
        let last = if len == 0 {
            offset
        } else {
            offset + len as u64 - 1
        };
        self.page_of(offset)..=self.page_of(last)
    }

    /// Mapping state of page `idx`.
    pub fn page_state(&self, idx: usize) -> PageState {
        self.pages[idx]
    }

    /// Sets the mapping state of page `idx`.
    pub fn set_page_state(&mut self, idx: usize, state: PageState) {
        self.pages[idx] = state;
    }

    /// True if every page covering the range is NIC-mapped.
    pub fn range_mapped(&self, offset: u64, len: u32) -> bool {
        self.pages_spanned(offset, len)
            .all(|p| self.pages[p] == PageState::Mapped)
    }

    /// First non-mapped page index covering the range, if any.
    pub fn first_unmapped(&self, offset: u64, len: u32) -> Option<usize> {
        self.pages_spanned(offset, len)
            .find(|&p| self.pages[p] != PageState::Mapped)
    }

    /// Maps every page (pre-touch / prefetch, like `ibv_advise_mr`).
    pub fn map_all(&mut self) {
        for p in &mut self.pages {
            *p = PageState::Mapped;
        }
    }

    /// Invalidates one page (kernel reclaimed it). Only meaningful for ODP
    /// regions; pinned pages cannot be reclaimed.
    ///
    /// # Panics
    ///
    /// Panics if called on a pinned region.
    pub fn invalidate_page(&mut self, idx: usize) {
        assert_eq!(
            self.mode,
            MrMode::Odp,
            "cannot invalidate a pinned region's page"
        );
        self.pages[idx] = PageState::Unmapped;
        self.invalidation_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_read_write_roundtrip() {
        let mut m = Memory::new();
        let a = m.alloc(10_000);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        m.write(a, &data);
        assert_eq!(m.read(a, 10_000), data);
    }

    #[test]
    fn memory_crosses_page_boundaries() {
        let mut m = Memory::new();
        let a = m.alloc(2 * PAGE_SIZE);
        let addr = a + PAGE_SIZE - 3;
        m.write(addr, b"abcdef");
        assert_eq!(m.read(addr, 6), b"abcdef");
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn alloc_is_page_aligned_and_disjoint() {
        let mut m = Memory::new();
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert_eq!(a % PAGE_SIZE, 0);
        assert_eq!(b % PAGE_SIZE, 0);
        assert!(b >= a + PAGE_SIZE);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let mut m = Memory::new();
        let a = m.alloc(100);
        assert_eq!(m.read(a, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn pinned_region_starts_mapped() {
        let r = MemRegion::new(MrKey(1), 0x1000, 8192, MrMode::Pinned);
        assert_eq!(r.page_count(), 2);
        assert!(r.range_mapped(0, 8192));
        assert_eq!(r.first_unmapped(0, 8192), None);
    }

    #[test]
    fn odp_region_starts_unmapped() {
        let r = MemRegion::new(MrKey(1), 0x1000, 8192, MrMode::Odp);
        assert!(!r.range_mapped(0, 1));
        assert_eq!(r.first_unmapped(0, 8192), Some(0));
        assert_eq!(r.page_state(0), PageState::Unmapped);
    }

    #[test]
    fn page_math_with_unaligned_base() {
        // Region starting mid-page: page 0 covers the first partial page.
        let r = MemRegion::new(MrKey(1), 0x1800, 4096, MrMode::Odp);
        assert_eq!(r.page_count(), 2);
        assert_eq!(r.page_of(0), 0);
        assert_eq!(r.page_of(0x7FF), 0);
        assert_eq!(r.page_of(0x800), 1);
        assert_eq!(r.pages_spanned(0, 4096), 0..=1);
    }

    #[test]
    fn pages_spanned_single_byte() {
        let r = MemRegion::new(MrKey(1), 0, 4096 * 3, MrMode::Odp);
        assert_eq!(r.pages_spanned(4096, 1), 1..=1);
        assert_eq!(r.pages_spanned(4095, 2), 0..=1);
    }

    #[test]
    fn contains_checks_bounds() {
        let r = MemRegion::new(MrKey(1), 0, 4096, MrMode::Pinned);
        assert!(r.contains(0, 4096));
        assert!(!r.contains(1, 4096));
        assert!(!r.contains(4096, 1));
        assert!(r.contains(4095, 1));
    }

    #[test]
    fn map_all_and_invalidate() {
        let mut r = MemRegion::new(MrKey(1), 0, 8192, MrMode::Odp);
        r.map_all();
        assert!(r.range_mapped(0, 8192));
        r.invalidate_page(1);
        assert_eq!(r.page_state(1), PageState::Unmapped);
        assert_eq!(r.invalidation_count, 1);
        assert_eq!(r.first_unmapped(0, 8192), Some(1));
    }

    #[test]
    #[should_panic(expected = "cannot invalidate a pinned region")]
    fn invalidating_pinned_panics() {
        let mut r = MemRegion::new(MrKey(1), 0, 4096, MrMode::Pinned);
        r.invalidate_page(0);
    }

    #[test]
    #[should_panic(expected = "cannot register an empty memory region")]
    fn empty_region_panics() {
        MemRegion::new(MrKey(1), 0, 0, MrMode::Pinned);
    }
}
