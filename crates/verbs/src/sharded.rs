//! Conservative-lookahead sharded execution (PDES) of a cluster run.
//!
//! ## Model
//!
//! Every shard thread builds a **full replica** of the cluster (same
//! hosts, QPs, seeds) but only *executes* events for the hosts it owns
//! (`ShardPlan::owner`). The shards advance in lock-step epochs:
//!
//! 1. each shard runs its local event heap up to the current epoch
//!    boundary, diverting cross-shard packet deliveries into an outbox
//!    and deferring ODP fault-latency draws;
//! 2. at the [`EpochBarrier`], a leader (shard 0) merges the deposits in
//!    a deterministic `(time, src_shard, seq)` order, draws the deferred
//!    fault latencies from *its own* cluster RNG (the only RNG consumer,
//!    so the stream matches the sequential run exactly), routes each
//!    envelope to its destination shard and publishes the next boundary;
//! 3. each shard applies its fills and injections — sorted by
//!    [`injection_sort_key`] so they enter the destination heap in the
//!    sequential insertion order — and runs the next epoch.
//!
//! The epoch width is the *conservative lookahead*: the minimum of the
//! fastest possible cross-shard packet
//! ([`Cluster::cross_shard_lookahead`]) and the smallest possible fault
//! latency ([`Cluster::fault_draw_floor`]). Any cross-shard effect
//! created at or after the epoch's earliest pending event therefore
//! lands at or beyond the next boundary, so no shard can ever miss an
//! incoming injection ("lookahead violation" is a panic, not a silent
//! reordering). With identical replicas, deterministic merge order and a
//! sequential-order RNG stream, a sharded run produces **bit-identical
//! traces** at every shard count — the property the cross-shard
//! conformance battery in `tests/end_to_end.rs` pins.
//!
//! ## Single-writer contract
//!
//! [`Fabric::transit`] mutates the *source* port's egress clock and the
//! *destination* port's ingress clock on the replica that executes the
//! send. All hosts whose QPs peer into a given destination must
//! therefore live on one shard (not necessarily the destination's own);
//! [`Cluster::validate_sharding`] checks this after the build and the
//! fabric's per-port counters merge by summation.
//!
//! [`Fabric::transit`]: ibsim_fabric::Fabric

use std::collections::BTreeMap;
use std::sync::Mutex;

use ibsim_event::{
    epoch_end, injection_sort_key, EpochBarrier, PoisonGuard, QueueStats, SimTime, POISON_PAYLOAD,
};
use ibsim_telemetry::{Labels, Telemetry};

use crate::cluster::{Cluster, Sim};
use crate::packet::Packet;
use crate::types::HostId;

/// A host-to-shard partition plus the epoch parameters of one sharded
/// run.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Number of shard threads.
    pub shards: usize,
    /// `owner[h]` is the shard executing host `h`'s events.
    pub owner: Vec<usize>,
    /// Replaces the computed cross-shard packet lookahead (testing knob:
    /// an override larger than the real minimum latency manufactures a
    /// lookahead violation). The fault-draw floor still applies.
    pub lookahead_override: Option<SimTime>,
}

impl ShardPlan {
    /// A plan with an explicit owner map and no lookahead override.
    pub fn new(shards: usize, owner: Vec<usize>) -> Self {
        ShardPlan {
            shards,
            owner,
            lookahead_override: None,
        }
    }

    /// Block-contiguous partition: host `h` of `hosts` goes to shard
    /// `h * shards / hosts`, keeping neighboring hosts (e.g. the two
    /// ends of a connected pair laid out adjacently) on one shard.
    pub fn block(shards: usize, hosts: usize) -> Self {
        ShardPlan::new(shards, (0..hosts).map(|h| h * shards / hosts).collect())
    }
}

/// Per-replica sharding state carried by a [`Cluster`].
///
/// Created by [`Cluster::enable_sharding`]; drained by the epoch loop in
/// [`run_sharded`].
#[derive(Debug)]
pub struct ShardState {
    /// This replica's shard id.
    pub(crate) id: usize,
    /// Host → shard map (shared by every replica of the run).
    pub(crate) owner: Vec<usize>,
    /// Monotone per-shard sequence number stamping outbox envelopes,
    /// pending draws and stalls, so same-time items keep their local
    /// creation order through the leader's global merge sort.
    pub(crate) seq: u64,
    /// Cross-shard packet deliveries generated this epoch.
    pub(crate) outbox: Vec<Envelope>,
    /// ODP faults raised this epoch whose latency draw is deferred to
    /// the leader (global draw order == sequential RNG order).
    pub(crate) pending_draws: Vec<PendingDraw>,
    /// Hosts whose driver is idle but head-of-line blocked on an undrawn
    /// fault: `host → (stall time, seq)`. Rekicked next epoch.
    pub(crate) stalls: BTreeMap<usize, (SimTime, u64)>,
    /// Events scheduled via [`Cluster::schedule_global`] (replicated on
    /// every shard; merged queue stats must not count them `shards`
    /// times).
    pub(crate) global_scheduled: u64,
    /// Replicated events that actually executed.
    pub(crate) global_executed: u64,
}

impl ShardState {
    pub(crate) fn new(id: usize, owner: Vec<usize>) -> Self {
        ShardState {
            id,
            owner,
            seq: 0,
            outbox: Vec::new(),
            pending_draws: Vec::new(),
            stalls: BTreeMap::new(),
            global_scheduled: 0,
            global_executed: 0,
        }
    }
}

/// One cross-shard packet delivery in flight between epochs.
#[derive(Debug)]
pub(crate) struct Envelope {
    /// Absolute delivery time (fabric arrival + receive overhead).
    pub(crate) deliver_at: SimTime,
    /// When the sending event executed — the moment the sequential run
    /// would have inserted the delivery into the heap.
    pub(crate) sent_at: SimTime,
    /// Originating shard (merge-order tiebreak).
    pub(crate) src_shard: usize,
    /// Originating shard's sequence number (merge-order tiebreak).
    pub(crate) seq: u64,
    /// Destination host index.
    pub(crate) dst_host: usize,
    /// The packet itself.
    pub(crate) pkt: Packet,
}

/// A deferred ODP fault-latency draw request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingDraw {
    /// When the fault was raised (primary global sort key).
    pub(crate) raised_at: SimTime,
    /// Raising shard (tiebreak).
    pub(crate) src_shard: usize,
    /// Raising shard's sequence number (tiebreak).
    pub(crate) seq: u64,
    /// Faulting host index.
    pub(crate) host: usize,
    /// Draw range lower bound, in nanoseconds.
    pub(crate) lo: u64,
    /// Draw range width upper bound, in nanoseconds.
    pub(crate) hi: u64,
}

/// What one shard hands the leader at an epoch boundary.
struct Deposit {
    outbox: Vec<Envelope>,
    draws: Vec<PendingDraw>,
    /// `(host, stall time, that host's minimum fault latency)`.
    stalls: Vec<(usize, SimTime, SimTime)>,
    next_event: Option<SimTime>,
    last_executed: SimTime,
}

/// What the leader hands each shard back.
struct Directive {
    /// `(host, latency)` fills in global draw order, restricted to this
    /// shard's hosts.
    fills: Vec<(usize, SimTime)>,
    /// Envelopes destined for this shard's hosts.
    injections: Vec<Envelope>,
    /// Next epoch boundary; `None` means the run is complete.
    epoch_end: Option<SimTime>,
    /// On completion: the canonical end-of-run clock (max last-executed
    /// event across shards, or the deadline) — what the sequential
    /// engine's `now()` would read. Zero until the final round.
    canonical_end: SimTime,
}

/// Leader-side merge state shared through a mutex; barrier phases make
/// every slot single-writer single-reader per round.
struct Coordinator {
    deposits: Vec<Option<Deposit>>,
    directives: Vec<Option<Directive>>,
    prev_epoch_end: SimTime,
    width: Option<SimTime>,
}

/// Runs one simulation split across `plan.shards` OS threads in
/// conservative-lookahead epochs.
///
/// `build` is called once per shard (inside its thread — [`Cluster`] is
/// not `Send`) and must construct a **full replica**: add every host,
/// call [`Cluster::enable_sharding`] with this shard's id and
/// `plan.owner`, then install the workload with posts gated on
/// [`Cluster::owns`] and schedule-everywhere events routed through
/// [`Cluster::schedule_global`]. `finish` maps each completed shard to
/// its result; it receives the canonical end-of-run clock (pass it to
/// [`Cluster::sync_telemetry_at`] so dwell flushes match the sequential
/// run). `deadline` bounds the run like `Engine::run_until`; `None`
/// runs to exhaustion.
///
/// # Panics
///
/// Panics if the plan and replicas disagree (wrong owner map, an
/// ingress single-writer violation), or with a "lookahead violation"
/// diagnostic if a cross-shard packet arrives inside the epoch it was
/// sent in — the conservative-lookahead soundness condition. A panic on
/// any shard poisons the barrier and unwinds every thread; the original
/// panic payload is re-raised.
pub fn run_sharded<D, B, F>(
    plan: &ShardPlan,
    deadline: Option<SimTime>,
    build: B,
    finish: F,
) -> Vec<D>
where
    D: Send,
    B: Fn(usize) -> (Sim, Cluster) + Sync,
    F: Fn(usize, Sim, Cluster, SimTime) -> D + Sync,
{
    assert!(plan.shards >= 1, "a sharded run needs at least one shard");
    assert!(
        plan.owner.iter().all(|&s| s < plan.shards),
        "owner map names shard >= {}",
        plan.shards
    );
    let barrier = EpochBarrier::new(plan.shards);
    let coord = Mutex::new(Coordinator {
        deposits: (0..plan.shards).map(|_| None).collect(),
        directives: (0..plan.shards).map(|_| None).collect(),
        prev_epoch_end: SimTime::ZERO,
        width: None,
    });
    let mut results: Vec<Option<D>> = (0..plan.shards).map(|_| None).collect();
    let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.shards)
            .map(|id| {
                let barrier = &barrier;
                let coord = &coord;
                let build = &build;
                let finish = &finish;
                scope.spawn(move || shard_main(id, plan, deadline, barrier, coord, build, finish))
            })
            .collect();
        for (id, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(d) => results[id] = Some(d),
                Err(payload) => panics.push(payload),
            }
        }
    });
    if !panics.is_empty() {
        // Re-raise the *original* panic, not a secondary barrier-poison
        // unwind, so `#[should_panic(expected = ...)]` sees the real
        // diagnostic.
        let primary = panics
            .iter()
            .position(|p| !is_poison_payload(p.as_ref()))
            .unwrap_or(0);
        std::panic::resume_unwind(panics.swap_remove(primary));
    }
    results
        .into_iter()
        .map(|d| d.expect("invariant: every shard joined cleanly"))
        .collect()
}

fn is_poison_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied());
    msg == Some(POISON_PAYLOAD)
}

/// One shard thread: build the replica, then loop deposit → leader
/// merge → apply → run until the leader declares the run complete.
fn shard_main<D, B, F>(
    id: usize,
    plan: &ShardPlan,
    deadline: Option<SimTime>,
    barrier: &EpochBarrier,
    coord: &Mutex<Coordinator>,
    build: &B,
    finish: &F,
) -> D
where
    B: Fn(usize) -> (Sim, Cluster),
    F: Fn(usize, Sim, Cluster, SimTime) -> D,
{
    let guard = PoisonGuard::new(barrier);
    let (mut eng, mut cl) = build(id);
    assert_eq!(
        cl.shard_id(),
        Some(id),
        "run_sharded build closure must call enable_sharding(id, owner)"
    );
    cl.validate_sharding();
    if id == 0 {
        // The leader computes the epoch width once, from its own replica
        // (all replicas are identical post-build).
        let lookahead = plan
            .lookahead_override
            .or_else(|| cl.cross_shard_lookahead());
        let width = match (lookahead, cl.fault_draw_floor()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        lock(coord).width = width;
    }
    loop {
        let deposit = Deposit {
            outbox: cl.take_outbox(),
            draws: cl.take_pending_draws(),
            stalls: cl.snapshot_stalls(),
            next_event: eng.next_event_time(),
            last_executed: eng.last_executed_at(),
        };
        lock(coord).deposits[id] = Some(deposit);
        barrier.wait();
        if id == 0 {
            let mut c = lock(coord);
            leader_merge(&mut c, &mut cl, plan, deadline);
        }
        barrier.wait();
        let directive = lock(coord).directives[id]
            .take()
            .expect("invariant: leader left a directive for every shard");
        // Fills first (in the leader's global draw order), so rekicked
        // drivers see their latencies.
        for (host, latency) in directive.fills {
            cl.apply_draw_fill(host, latency);
        }
        apply_injections(&mut eng, &mut cl, directive.injections);
        match directive.epoch_end {
            None => {
                if let Some(d) = deadline {
                    // Park the clock exactly as the sequential run would.
                    eng.run_until(&mut cl, d);
                }
                guard.defuse();
                return finish(id, eng, cl, directive.canonical_end);
            }
            Some(end) => {
                let mut target = if end == SimTime::MAX {
                    SimTime::MAX
                } else {
                    // Run *strictly before* the boundary; injections for
                    // the boundary instant arrive next round.
                    SimTime::from_ns(end.as_ns() - 1)
                };
                if let Some(d) = deadline {
                    target = target.min(d);
                }
                eng.run_until(&mut cl, target);
            }
        }
    }
}

/// Applies this epoch's rekicks and envelope injections in the order the
/// sequential run would have *inserted* them into its heap: rekicks are
/// keyed by their stall time (when the sequential driver would have
/// scheduled the fault's completion), envelopes by their send time.
fn apply_injections(eng: &mut Sim, cl: &mut Cluster, envelopes: Vec<Envelope>) {
    enum Item {
        Rekick { host: usize, at: SimTime },
        Deliver(Envelope),
    }
    let mut items: Vec<((SimTime, usize, u64), Item)> = Vec::new();
    let own_shard = cl.shard_id().expect("invariant: sharded replica");
    for (host, at, seq) in cl.take_stalls() {
        items.push((
            injection_sort_key(at, own_shard, seq),
            Item::Rekick { host, at },
        ));
    }
    for env in envelopes {
        items.push((
            injection_sort_key(env.sent_at, env.src_shard, env.seq),
            Item::Deliver(env),
        ));
    }
    items.sort_by_key(|&(key, _)| key);
    for (_, item) in items {
        match item {
            Item::Rekick { host, at } => cl.driver_kick_at(eng, HostId(host), at),
            Item::Deliver(env) => {
                let host = HostId(env.dst_host);
                let pkt = env.pkt;
                eng.schedule_at(env.deliver_at, move |c: &mut Cluster, eng| {
                    c.deliver(eng, host, pkt);
                });
            }
        }
    }
}

/// The leader's barrier-phase work: violation check, global-order fault
/// draws, envelope routing, and the next epoch verdict.
fn leader_merge(
    c: &mut Coordinator,
    cl: &mut Cluster,
    plan: &ShardPlan,
    deadline: Option<SimTime>,
) {
    let deposits: Vec<Deposit> = c
        .deposits
        .iter_mut()
        .map(|d| d.take().expect("invariant: every shard deposited"))
        .collect();
    for dep in &deposits {
        for env in &dep.outbox {
            assert!(
                env.deliver_at >= c.prev_epoch_end,
                "lookahead violation: cross-shard packet from shard {} sent at {} \
                 arrives at {} inside the epoch ending at {}; the configured \
                 lookahead exceeds the real minimum cross-shard latency",
                env.src_shard,
                env.sent_at.as_ns(),
                env.deliver_at.as_ns(),
                c.prev_epoch_end.as_ns()
            );
        }
    }
    // Draw deferred fault latencies in global (raised_at, shard, seq)
    // order — the order the sequential run consumed the RNG in. The
    // leader's own replica RNG is the stream: fault draws are its only
    // consumer, and sharded replicas never draw locally.
    let mut draws: Vec<&PendingDraw> = deposits.iter().flat_map(|d| d.draws.iter()).collect();
    draws.sort_by_key(|d| injection_sort_key(d.raised_at, d.src_shard, d.seq));
    let mut fills: Vec<Vec<(usize, SimTime)>> = (0..plan.shards).map(|_| Vec::new()).collect();
    for d in draws {
        let latency = cl.draw_fault_latency(d.lo, d.hi);
        fills[plan.owner[d.host]].push((d.host, latency));
    }
    // Route envelopes and compute the earliest pending work anywhere:
    // local heaps, in-flight envelopes, and stalled drivers (whose next
    // event lands no earlier than stall time + that host's fault floor).
    let mut injections: Vec<Vec<Envelope>> = (0..plan.shards).map(|_| Vec::new()).collect();
    let mut min_next: Option<SimTime> = None;
    let mut stalled = false;
    let mut canonical_end = SimTime::ZERO;
    let fold = |t: SimTime, min_next: &mut Option<SimTime>| {
        *min_next = Some(min_next.map_or(t, |m: SimTime| m.min(t)));
    };
    for dep in deposits {
        canonical_end = canonical_end.max(dep.last_executed);
        if let Some(t) = dep.next_event {
            fold(t, &mut min_next);
        }
        for &(_, at, fault_floor) in &dep.stalls {
            stalled = true;
            fold(at + fault_floor, &mut min_next);
        }
        for env in dep.outbox {
            fold(env.deliver_at, &mut min_next);
            injections[plan.owner[env.dst_host]].push(env);
        }
    }
    // Done only when nothing is pending within the deadline *and* no
    // driver is stalled: a stall at t <= deadline must still be rekicked
    // (the sequential run began that fault even if its completion falls
    // past the deadline).
    let done = match min_next {
        None => true,
        Some(m) => !stalled && deadline.is_some_and(|d| m > d),
    };
    let end = if done {
        None
    } else {
        let m = min_next.expect("invariant: not done implies pending work");
        let e = epoch_end(m, c.width);
        c.prev_epoch_end = e;
        Some(e)
    };
    if let Some(d) = deadline {
        canonical_end = d;
    }
    for (id, (fills, injections)) in fills.into_iter().zip(injections).enumerate() {
        c.directives[id] = Some(Directive {
            fills,
            injections,
            epoch_end: end,
            canonical_end,
        });
    }
}

/// Locks the coordinator, absorbing mutex poisoning: barrier poisoning
/// (not mutex state) is the cross-thread failure protocol here, and
/// every critical section leaves the slots consistent.
fn lock(coord: &Mutex<Coordinator>) -> std::sync::MutexGuard<'_, Coordinator> {
    match coord.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Merges per-shard engine queue statistics into the numbers one
/// sequential engine would have reported.
///
/// Replicated events ([`Cluster::schedule_global`]) exist once per
/// shard, so their schedule/execute counts are discounted by
/// `shards - 1` (the per-shard counters are identical across replicas —
/// pass shard 0's). `peak_depth` is not derivable from per-shard peaks
/// (the maxima need not coincide in time) and is reported as 0; sharded
/// merges drop the `event.peak_depth` gauge rather than publish a lie.
pub fn merge_queue_stats(
    per_shard: &[QueueStats],
    global_scheduled: u64,
    global_executed: u64,
) -> QueueStats {
    let mut m = QueueStats::default();
    for qs in per_shard {
        m.live += qs.live;
        m.dead_pending += qs.dead_pending;
        m.executed += qs.executed;
        m.dead_pops += qs.dead_pops;
        m.scheduled += qs.scheduled;
        m.cancelled += qs.cancelled;
        m.replaced += qs.replaced;
        m.keyed_live += qs.keyed_live;
    }
    let extra = per_shard.len().saturating_sub(1) as u64;
    m.executed -= extra * global_executed;
    m.scheduled -= extra * global_scheduled;
    m.live -= (extra * (global_scheduled - global_executed)) as usize;
    m.peak_depth = 0;
    m
}

/// Merges per-shard telemetry hubs into the hub one sequential run
/// would have produced: counters/gauges sum (per-host instruments are
/// zero on non-owner replicas, so sums are exact), histograms merge
/// bucket-wise, spans concatenate and re-sort by completion time, and
/// the `event.*` engine gauges are recomputed from the merged
/// [`QueueStats`] (`event.peak_depth` is dropped — see
/// [`merge_queue_stats`]).
pub fn merge_shard_telemetry(
    hubs: &[Telemetry],
    per_shard: &[QueueStats],
    global_scheduled: u64,
    global_executed: u64,
) -> (Telemetry, QueueStats) {
    let qs = merge_queue_stats(per_shard, global_scheduled, global_executed);
    let mut hub = Telemetry::new();
    for t in hubs {
        hub.absorb(t);
    }
    hub.sort_spans_by_completion();
    // Mirror `Cluster::sync_telemetry`'s engine-gauge block with the
    // merged stats (minus the non-derivable peak depth).
    hub.gauge_set("event.live", Labels::NONE, qs.live as u64);
    hub.gauge_set("event.dead_pending", Labels::NONE, qs.dead_pending as u64);
    hub.gauge_set("event.executed", Labels::NONE, qs.executed);
    hub.gauge_set("event.dead_pops", Labels::NONE, qs.dead_pops);
    hub.gauge_set("event.scheduled", Labels::NONE, qs.scheduled);
    hub.gauge_set("event.cancelled", Labels::NONE, qs.cancelled);
    hub.gauge_set("event.replaced", Labels::NONE, qs.replaced);
    hub.gauge_set("event.keyed_live", Labels::NONE, qs.keyed_live as u64);
    hub.remove_metric("event.peak_depth", Labels::NONE);
    (hub, qs)
}
