//! The requester's receive path: ACK processing, READ/ATOMIC response
//! consumption behind the client-side ODP gate, and NAK handling.
//!
//! Split from the transmit-side machinery in the parent module purely by
//! direction of flow; both halves operate on the same [`Requester`]
//! state and emit into the same [`Effects`] pipeline.

use crate::mem::MrMode;
use crate::packet::{NakKind, Packet, PacketKind};
use crate::types::{MrKey, Psn};
use crate::wr::{Completion, WcStatus, WrOp};

use super::super::effects::Effects;
use super::super::fault::{self, FaultTracker, OdpStall, RnrWait};
use super::super::recovery::{RecoveryKind, RetransmitCtx};
use super::super::state::Lifecycle;
use super::super::{QpCtx, QpEnv};
use super::Requester;

impl Requester {
    /// Marks acknowledged messages. Under a cumulative backend
    /// (go-back-N semantics) every fully-covered message up to `psn` is
    /// acknowledged; under selective repeat only the message whose final
    /// PSN is exactly `psn` — earlier losses are repaired by their own
    /// retransmissions, not implied by later acknowledgments.
    fn advance_acked(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        psn: Psn,
        fx: &mut Effects,
        env: &QpEnv<'_>,
    ) {
        let cumulative = self.policy.cumulative_ack();
        let mut progressed = false;
        for wqe in self.sq.iter_mut() {
            let covered = if cumulative {
                wqe.psn_last.at_or_before(psn)
            } else {
                wqe.psn_last == psn
            };
            if covered && !wqe.acked {
                wqe.acked = true;
                self.policy
                    .note_message_delivered(wqe.psn_first, wqe.psn_last);
                progressed = true;
            }
        }
        if progressed {
            self.retire(ctx, fx, env);
            self.note_progress(ctx, life, fx);
        }
    }

    /// Retires contiguously finished WQEs from the SQ head (CQEs are
    /// delivered in posting order, like hardware).
    fn retire(&mut self, ctx: &QpCtx, fx: &mut Effects, env: &QpEnv<'_>) {
        while let Some(front) = self.sq.front() {
            if !front.is_done() {
                break;
            }
            let wqe = self
                .sq
                .pop_front()
                .expect("invariant: front checked non-empty above");
            if self.recovery.stalls.iter().any(|s| s.psn == wqe.psn_first) {
                // The stalled message completed: take its pending blind
                // retransmit tick out of the event heap instead of leaving
                // it to fire as a no-op up to 0.5 ms later.
                fx.timers.cancel_stalls.push(wqe.psn_first);
                self.recovery.stalls.retain(|s| s.psn != wqe.psn_first);
            }
            fx.completions.push(Completion {
                wr_id: wqe.id,
                qpn: ctx.qpn,
                status: WcStatus::Success,
                opcode: wqe.wc_opcode(),
                bytes: wqe.op.len(),
                at: env.now,
            });
        }
        // Everything before the new head is retired: the backend may
        // prune its loss-tracking state (the SACK bitmap stays bounded
        // by the outstanding window).
        let up_to = self
            .sq
            .front()
            .map(|w| w.psn_first)
            .unwrap_or(self.next_psn);
        self.policy.note_retired(up_to);
    }

    /// Handles a bare transport ACK.
    pub(in crate::qp) fn on_ack(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        psn: Psn,
    ) {
        self.policy.note_delivered(psn);
        self.advance_acked(ctx, life, psn, fx, env);
        self.rearm_timer_if_needed(ctx, life, fx);
        self.pump_after_progress(ctx, life, env, fx);
    }

    /// Registers a client-side ODP stall for `msg_psn`, or counts the
    /// interrupt work of a discarded duplicate if already stalled — the
    /// per-response cost that feeds the packet flood. Whether the stall
    /// gets a blind 0.5 ms retransmit tick is the backend's call:
    /// go-back-N arms it (§IV-A); selective repeat leaves the stall
    /// quiescent until the fault-resolution event resumes it.
    fn stall_or_irq(
        &mut self,
        env: &QpEnv<'_>,
        fx: &mut Effects,
        msg_psn: Psn,
        blocked_on: Option<(MrKey, usize)>,
    ) {
        if let Some(stall) = self.recovery.stalls.iter_mut().find(|s| s.psn == msg_psn) {
            fx.irqs += 1;
            // A re-discard after a resume means a *different* page now
            // blocks the message; track the fresh one so the next
            // event-driven resume waits for the right resolution.
            stall.blocked_on = blocked_on;
        } else {
            let gen = self.next_gen();
            let delay = env.profile.odp_client_retx;
            self.recovery.stalls.push(OdpStall {
                psn: msg_psn,
                ghost_until: env.now + delay,
                gen,
                blocked_on,
            });
            if self.policy.arms_blind_stall() {
                fx.timers.arm_stalls.push((msg_psn, delay, gen));
            }
        }
    }

    /// Consumes one READ response segment, or discards it behind the
    /// client-side ODP gate.
    pub(in crate::qp) fn on_read_response(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        tracker: &FaultTracker,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        pkt: &Packet,
    ) {
        let PacketKind::ReadResponse {
            seg, data, offset, ..
        } = &pkt.kind
        else {
            unreachable!("dispatch guarantees a read response");
        };
        // ConnectX-4 discards responses arriving during an RNR wait
        // ("while discarding responses sent back during the waiting
        // time", §IV-A) — a quirk of the go-back-N recovery engine.
        if env.profile.damming && self.policy.ghost_quirks() && self.recovery.rnr_wait.is_some() {
            self.stats.responses_discarded += 1;
            return;
        }
        let Some(wqe_idx) = self
            .sq
            .iter()
            .position(|w| w.covers(pkt.psn) && matches!(w.op, WrOp::Read { .. }) && !w.is_done())
        else {
            // Stale duplicate of an already-completed message.
            self.stats.responses_discarded += 1;
            return;
        };
        let (expected_psn, local_mr, local_off, seg_done_bytes) = {
            let w = &self.sq[wqe_idx];
            let WrOp::Read {
                local_mr,
                local_off,
                ..
            } = w.op
            else {
                unreachable!()
            };
            (
                w.psn_first.add(w.recv_segments),
                local_mr,
                local_off,
                w.recv_segments * ctx.cfg.mtu,
            )
        };
        if pkt.psn != expected_psn {
            // Duplicate of an already-consumed segment, or a gap left by a
            // drop; recovery retransmission will resolve either.
            self.stats.responses_discarded += 1;
            return;
        }
        debug_assert_eq!(*offset, seg_done_bytes, "segment offset mismatch");

        // Client-side ODP gate: destination pages must be NIC-mapped AND
        // propagated to this QP.
        let dest_off = local_off + *offset as u64;
        let dest_len = (data.len() as u32).max(1);
        let mr = env
            .mrs
            .get_mut(&local_mr)
            .expect("invariant: READ admitted with a valid lkey");
        let mut usable = true;
        let mut blocking = None;
        if mr.mode() == MrMode::Odp {
            if ctx.cfg.recovery == RecoveryKind::OnDemandPin {
                // NP-RDMA model: pin the landing pages on first touch —
                // the response is always usable, so neither the stall
                // nor the per-QP staleness machinery ever engages.
                let pinned = fault::pin_pages(mr, dest_off, dest_len);
                if pinned > 0 {
                    self.stats.pages_pinned += pinned as u64;
                    fx.pins += pinned;
                }
            } else {
                let gate = fault::gate_dest_pages(tracker, mr, local_mr, dest_off, dest_len, fx);
                usable = gate.usable;
                blocking = gate.blocking;
                if gate.newly_faulted {
                    self.stats.faults_raised += 1;
                }
            }
        }
        if !usable {
            self.stats.responses_discarded += 1;
            let msg_psn = self.sq[wqe_idx].psn_first;
            self.stall_or_irq(env, fx, msg_psn, blocking);
            return;
        }

        // Accept the segment.
        let base = mr.base();
        env.mem.write(base + dest_off, data);
        let w = &mut self.sq[wqe_idx];
        w.recv_segments += 1;
        if seg.is_final() {
            debug_assert_eq!(w.recv_segments, w.resp_packets, "final segment count");
        }
        let done_psn = pkt.psn;
        self.policy.note_delivered(done_psn);
        // A response implicitly acknowledges all earlier requests (only
        // under cumulative backends; see advance_acked).
        self.advance_acked(ctx, life, done_psn, fx, env);
        self.retire(ctx, fx, env);
        self.note_progress(ctx, life, fx);
        self.pump_after_progress(ctx, life, env, fx);
    }

    /// Consumes the original value returned by an atomic. Same client-side
    /// ODP gate as READ responses: the 8-byte landing pad must be usable.
    pub(in crate::qp) fn on_atomic_response(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        tracker: &FaultTracker,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        pkt: &Packet,
    ) {
        let PacketKind::AtomicResponse { original, .. } = &pkt.kind else {
            unreachable!("dispatch guarantees an atomic response");
        };
        if env.profile.damming && self.policy.ghost_quirks() && self.recovery.rnr_wait.is_some() {
            self.stats.responses_discarded += 1;
            return;
        }
        let Some(wqe_idx) = self
            .sq
            .iter()
            .position(|w| w.covers(pkt.psn) && matches!(w.op, WrOp::Atomic { .. }) && !w.is_done())
        else {
            self.stats.responses_discarded += 1;
            return;
        };
        let (local_mr, local_off) = {
            let WrOp::Atomic {
                local_mr,
                local_off,
                ..
            } = self.sq[wqe_idx].op
            else {
                unreachable!()
            };
            (local_mr, local_off)
        };
        let mr = env
            .mrs
            .get_mut(&local_mr)
            .expect("invariant: atomic admitted with a valid lkey");
        let mut usable = true;
        let mut blocking = None;
        if mr.mode() == MrMode::Odp {
            if ctx.cfg.recovery == RecoveryKind::OnDemandPin {
                let pinned = fault::pin_pages(mr, local_off, 8);
                if pinned > 0 {
                    self.stats.pages_pinned += pinned as u64;
                    fx.pins += pinned;
                }
            } else {
                let gate = fault::gate_dest_pages(tracker, mr, local_mr, local_off, 8, fx);
                usable = gate.usable;
                blocking = gate.blocking;
                if gate.newly_faulted {
                    self.stats.faults_raised += 1;
                }
            }
        }
        if !usable {
            self.stats.responses_discarded += 1;
            let msg_psn = self.sq[wqe_idx].psn_first;
            self.stall_or_irq(env, fx, msg_psn, blocking);
            return;
        }
        let base = mr.base();
        env.mem.write(base + local_off, &original.to_le_bytes());
        self.sq[wqe_idx].recv_segments = 1;
        let done_psn = pkt.psn;
        self.policy.note_delivered(done_psn);
        self.advance_acked(ctx, life, done_psn, fx, env);
        self.retire(ctx, fx, env);
        self.note_progress(ctx, life, fx);
        self.pump_after_progress(ctx, life, env, fx);
    }

    /// Handles a NAK addressed to this requester.
    pub(in crate::qp) fn on_nak(
        &mut self,
        ctx: &QpCtx,
        life: &mut Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        psn: Psn,
        kind: NakKind,
    ) {
        match kind {
            NakKind::Rnr { delay } => {
                self.stats.rnr_naks_received += 1;
                // Ignore stale RNR NAKs for finished messages.
                if !self.sq.iter().any(|w| w.covers(psn) && !w.is_done()) {
                    return;
                }
                if ctx.cfg.rnr_retry != 7 {
                    if self.rnr_budget == 0 {
                        self.error_out(ctx, life, env, fx, WcStatus::RnrRetryExcErr);
                        return;
                    }
                    self.rnr_budget -= 1;
                }
                let gen = self.next_gen();
                self.recovery.rnr_wait = Some(RnrWait { psn, gen });
                fx.timers.arm_rnr = Some((env.profile.rnr_actual(delay), gen));
                if self.ack_gen != 0 {
                    self.ack_gen = 0;
                    fx.timers.cancel_ack = true;
                }
                // Doorbell latency: requests that left the pipeline just
                // before this NAK were still queued behind it in hardware;
                // the flawed recovery forgets them too (they are dropped
                // at the responder's fault pendency either way). Another
                // go-back-N engine quirk.
                if env.profile.damming && self.policy.ghost_quirks() {
                    let lookback = env.profile.ghost_lookback;
                    for wqe in self.sq.iter_mut() {
                        if wqe.sent_segments > 0 && !wqe.is_done() && psn.precedes(wqe.psn_first) {
                            if let Some(tx) = wqe.first_tx {
                                if env.now.saturating_sub(tx) <= lookback {
                                    wqe.ghosted = true;
                                }
                            }
                        }
                    }
                }
            }
            NakKind::SequenceError { epsn } => {
                // The rescue path of Fig. 8: the backend decides what the
                // hole [epsn, psn] costs — go-back-N retransmits
                // everything from the responder's expected PSN; selective
                // repeat only the undelivered messages inside the hole.
                if self.recovery.rnr_wait.take().is_some() {
                    fx.timers.cancel_rnr = true;
                }
                let views = self.wr_views();
                let plan = self.policy.on_seq_nak(
                    &RetransmitCtx {
                        wrs: &views,
                        now: env.now,
                    },
                    epsn,
                    psn,
                );
                self.execute_plan(ctx, env, fx, &plan);
                self.rearm_timer_if_needed(ctx, life, fx);
            }
            NakKind::RemoteAccess => {
                self.error_out(ctx, life, env, fx, WcStatus::RemoteAccessErr);
            }
        }
    }
}
