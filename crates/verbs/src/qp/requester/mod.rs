//! The requester engine: send queue, PSN assignment, ACK timeout, RNR
//! wait, ODP response stalls, and plan-driven loss recovery.
//!
//! Everything here runs on the *initiating* side of a connection. The
//! engine owns no responder state; the only cross-role input is a
//! read-only view of the [`FaultTracker`](super::fault::FaultTracker)
//! page map, consulted by the client-side ODP gate. This file holds the
//! transmit-side machinery; [`response`] holds the ACK/response/NAK
//! receive path.
//!
//! Loss recovery is not decided here: on every timeout / RNR expiry /
//! NAK / stall tick / fault resolution the engine builds a [`WrView`]
//! snapshot of the send queue, asks its [`RecoveryPolicy`] backend for a
//! [`RecoveryPlan`], and executes that plan against the live queue in
//! send-queue order (see [`Requester::execute_plan`]). The go-back-N
//! backend reproduces the pre-trait behavior bit-identically.

mod response;

use std::collections::{BTreeSet, VecDeque};

use ibsim_event::SimTime;

use crate::mem::MrMode;
use crate::types::{MrKey, Psn, WrId};
use crate::wr::{Completion, SendWqe, WcOpcode, WcStatus, WorkRequest, WrOp};

use super::effects::Effects;
use super::fault::{self, Recovery};
use super::recovery::{
    policy_for, RecoveryKind, RecoveryPlan, RecoveryPolicy, RetransmitCtx, WrView,
};
use super::state::{Lifecycle, QpState};
use super::wire::{build_request_packet, source_segment};
use super::{QpCtx, QpEnv};

/// Requester-side protocol counters (merged into the public
/// [`QpStats`](super::QpStats) by the facade).
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct ReqStats {
    /// Request packets retransmitted.
    pub(super) retransmissions: u64,
    /// ACK timeouts fired.
    pub(super) timeouts: u64,
    /// RNR NAKs received.
    pub(super) rnr_naks_received: u64,
    /// READ/ATOMIC responses discarded by client-side ODP.
    pub(super) responses_discarded: u64,
    /// Network page faults raised on this side.
    pub(super) faults_raised: u64,
    /// Pages pinned on first touch (`OnDemandPin` backend only).
    pub(super) pages_pinned: u64,
    /// ACKs received carrying an ECN echo (congested forward path).
    pub(super) ecn_echoes: u64,
}

/// The requester half of an RC queue pair.
#[derive(Debug)]
pub(super) struct Requester {
    sq: VecDeque<SendWqe>,
    next_psn: Psn,
    retry_budget: u8,
    rnr_budget: u8,
    timer_gen: u64,
    ack_gen: u64,
    recovery: Recovery,
    /// The pluggable loss-recovery backend: decision logic only; this
    /// engine snapshots the queue, asks for a plan, and executes it.
    policy: Box<dyn RecoveryPolicy>,
    /// Local source pages whose faults block further transmission.
    tx_blocked: BTreeSet<(MrKey, usize)>,
    /// Protocol counters.
    pub(super) stats: ReqStats,
}

impl Requester {
    /// A fresh requester with full retry budgets running the `kind`
    /// loss-recovery backend.
    pub(super) fn new(retry_count: u8, rnr_retry: u8, kind: RecoveryKind) -> Self {
        Requester {
            sq: VecDeque::new(),
            next_psn: Psn::new(0),
            retry_budget: retry_count,
            rnr_budget: rnr_retry,
            timer_gen: 0,
            ack_gen: 0,
            recovery: Recovery::default(),
            policy: policy_for(kind),
            tx_blocked: BTreeSet::new(),
            stats: ReqStats::default(),
        }
    }

    /// Number of send WQEs not yet retired.
    pub(super) fn pending_sends(&self) -> usize {
        self.sq.len()
    }

    /// True if the work request `id` is still in the send queue.
    pub(super) fn is_wr_pending(&self, id: WrId) -> bool {
        self.sq.iter().any(|w| w.id == id)
    }

    /// Next PSN to be assigned (for debugging).
    pub(super) fn next_psn(&self) -> Psn {
        self.next_psn
    }

    /// Number of active ODP stalls (for debugging).
    pub(super) fn stall_count(&self) -> usize {
        self.recovery.stalls.len()
    }

    /// See [`Recovery::in_window`].
    pub(super) fn in_recovery_window(&self, now: SimTime) -> bool {
        self.recovery.in_window(now)
    }

    /// See [`Recovery::active`].
    pub(super) fn in_recovery(&self) -> bool {
        self.recovery.active()
    }

    /// An ACK arrived with its ECN-echo bit set: count it and let the
    /// recovery backend react (the default backend reaction is a no-op,
    /// so unmarked runs are timing-identical).
    pub(super) fn on_ecn_echo(&mut self, now: SimTime) {
        self.stats.ecn_echoes += 1;
        self.policy.on_ecn_echo(now);
    }

    fn next_gen(&mut self) -> u64 {
        self.timer_gen += 1;
        self.timer_gen
    }

    // ------------------------------------------------------------------
    // Posting
    // ------------------------------------------------------------------

    /// Posts a send work request and transmits as far as possible.
    ///
    /// # Panics
    ///
    /// Panics if the QP was never connected.
    pub(super) fn post(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        wr: WorkRequest,
    ) {
        if life.is_error() {
            fx.completions.push(Completion {
                wr_id: wr.id,
                qpn: ctx.qpn,
                status: WcStatus::WrFlushErr,
                opcode: match wr.op {
                    WrOp::Read { .. } => WcOpcode::Read,
                    WrOp::Write { .. } => WcOpcode::Write,
                    WrOp::Send { .. } => WcOpcode::Send,
                    WrOp::Atomic {
                        op: crate::packet::AtomicOp::FetchAdd { .. },
                        ..
                    } => WcOpcode::FetchAdd,
                    WrOp::Atomic { .. } => WcOpcode::CompareSwap,
                },
                bytes: 0,
                at: env.now,
            });
            return;
        }
        let span = wr.op.psn_span(ctx.cfg.mtu);
        let req_packets = wr.op.request_packets(ctx.cfg.mtu);
        let resp_packets = match wr.op {
            WrOp::Read { len, .. } => crate::types::packets_for(len, ctx.cfg.mtu),
            WrOp::Atomic { .. } => 1,
            WrOp::Write { .. } | WrOp::Send { .. } => 0,
        };
        let wqe = SendWqe {
            id: wr.id,
            op: wr.op,
            psn_first: self.next_psn,
            psn_last: self.next_psn.add(span - 1),
            req_packets,
            resp_packets,
            sent_segments: 0,
            recv_segments: 0,
            acked: false,
            ghosted: false,
            first_tx: None,
        };
        self.next_psn = self.next_psn.add(span);
        self.sq.push_back(wqe);
        self.pump(ctx, life, env, fx);
    }

    /// Transmits every not-yet-sent segment, in SQ order, stopping at a
    /// send-side ODP fault on a local source page.
    pub(super) fn pump(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
    ) {
        if life.is_error() || !self.tx_blocked.is_empty() {
            return;
        }
        let (peer_lid, peer_qpn) = ctx.peer_or_panic();
        let ghost_window =
            env.profile.damming && self.policy.ghost_quirks() && self.recovery.in_window(env.now);
        let mtu = ctx.cfg.mtu;
        let mut outstanding_rd = self
            .sq
            .iter()
            .filter(|w| {
                matches!(w.op, WrOp::Read { .. } | WrOp::Atomic { .. })
                    && w.sent_segments > 0
                    && !w.is_done()
            })
            .count();
        for wqe in self.sq.iter_mut() {
            // max_rd_atomic: hardware bounds outstanding READ/ATOMIC
            // requests; later WQEs wait in the send queue.
            if matches!(wqe.op, WrOp::Read { .. } | WrOp::Atomic { .. }) && wqe.sent_segments == 0 {
                if outstanding_rd >= ctx.cfg.max_rd_atomic {
                    break;
                }
                outstanding_rd += 1;
            }
            while wqe.sent_segments < wqe.req_packets {
                // Send-side ODP: WRITE/SEND payloads are DMA-read from
                // local memory; unmapped pages stall transmission.
                if let Some((mr_key, local_off, seg_len, seg_off)) =
                    source_segment(wqe, wqe.sent_segments, mtu)
                {
                    let mr = env
                        .mrs
                        .get_mut(&mr_key)
                        .expect("invariant: WQE admitted with a valid lkey");
                    if mr.mode() == MrMode::Odp && seg_len > 0 {
                        if ctx.cfg.recovery == RecoveryKind::OnDemandPin {
                            // NP-RDMA model: pin the source pages on
                            // first touch and keep transmitting — no
                            // fault, no head-of-line block.
                            let pinned = fault::pin_pages(mr, local_off + seg_off, seg_len);
                            if pinned > 0 {
                                self.stats.pages_pinned += pinned as u64;
                                fx.pins += pinned;
                            }
                        } else if mr.first_unmapped(local_off + seg_off, seg_len).is_some() {
                            let (blocked, faulted) = fault::fault_source_pages(
                                mr,
                                mr_key,
                                local_off + seg_off,
                                seg_len,
                                fx,
                            );
                            for b in blocked {
                                self.tx_blocked.insert(b);
                            }
                            if faulted {
                                self.stats.faults_raised += 1;
                            }
                            return; // head-of-line blocked
                        }
                    }
                }
                let seg = wqe.sent_segments;
                if seg == 0 {
                    wqe.first_tx = Some(env.now);
                    if ghost_window {
                        wqe.ghosted = true;
                    }
                }
                let pkt = build_request_packet(
                    env, ctx.lid, ctx.qpn, peer_lid, peer_qpn, wqe, seg, mtu, false,
                );
                fx.packets.push(pkt);
                wqe.sent_segments += 1;
            }
        }
        self.rearm_timer_if_needed(ctx, life, fx);
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// True if some transmitted work still awaits acknowledgment or data.
    fn has_outstanding(&self) -> bool {
        self.sq.iter().any(|w| w.sent_segments > 0 && !w.is_done())
    }

    fn rearm_timer_if_needed(&mut self, ctx: &QpCtx, life: &Lifecycle, fx: &mut Effects) {
        if ctx.cfg.cack == 0 || life.is_error() {
            return;
        }
        if self.recovery.rnr_wait.is_some() {
            // The RNR timer replaces the ACK timer while waiting.
            if self.ack_gen != 0 {
                self.ack_gen = 0;
                fx.timers.cancel_ack = true;
            }
            fx.timers.arm_ack = None;
            return;
        }
        if self.has_outstanding() {
            let gen = self.next_gen();
            self.ack_gen = gen;
            fx.timers.arm_ack = Some(gen);
        } else {
            if self.ack_gen != 0 {
                self.ack_gen = 0;
                fx.timers.cancel_ack = true;
            }
            // An earlier handler in this same effects batch may have armed
            // the timer; the cancel must win or a stale no-op event
            // lingers in the queue for a full T_o.
            fx.timers.arm_ack = None;
        }
    }

    /// Notes forward progress: refills the retry budget and restarts the
    /// ACK timer.
    fn note_progress(&mut self, ctx: &QpCtx, life: &Lifecycle, fx: &mut Effects) {
        self.retry_budget = ctx.cfg.retry_count;
        self.rnr_budget = ctx.cfg.rnr_retry;
        self.rearm_timer_if_needed(ctx, life, fx);
    }

    /// Progress may have freed `max_rd_atomic` slots: transmit waiting
    /// READs/ATOMICs.
    fn pump_after_progress(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
    ) {
        let waiting = self.sq.iter().any(|w| w.sent_segments == 0);
        if waiting {
            self.pump(ctx, life, env, fx);
        }
    }

    /// Handles an ACK-timeout event with guard generation `gen`.
    pub(super) fn on_ack_timeout(
        &mut self,
        ctx: &QpCtx,
        life: &mut Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        gen: u64,
    ) {
        if gen != self.ack_gen || life.is_error() {
            return;
        }
        self.ack_gen = 0;
        if !self.has_outstanding() {
            return;
        }
        self.stats.timeouts += 1;
        if self.retry_budget == 0 {
            self.error_out(ctx, life, env, fx, WcStatus::RetryExcErr);
            return;
        }
        self.retry_budget -= 1;
        let from = self.lowest_pending_psn();
        let views = self.wr_views();
        let plan = self.policy.on_timeout(
            &RetransmitCtx {
                wrs: &views,
                now: env.now,
            },
            from,
        );
        self.execute_plan(ctx, env, fx, &plan);
        self.rearm_timer_if_needed(ctx, life, fx);
    }

    /// Handles the RNR wait expiring.
    pub(super) fn on_rnr_fire(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        gen: u64,
    ) {
        let Some(wait) = self.recovery.rnr_wait else {
            return;
        };
        if wait.gen != gen || life.is_error() {
            return;
        }
        self.recovery.rnr_wait = None;
        // On damming devices the go-back-N backend reproduces the
        // ConnectX-4 flaw here: recovery retransmits the requests that
        // were in flight when the RNR NAK arrived, but *forgets* the
        // ghosts — successors first transmitted during the wait
        // (→ packet damming). Back-to-back posts that beat the NAK onto
        // the wire are recovered fine, which is why Fig. 6a's timeout
        // probability is zero at near-zero intervals.
        let views = self.wr_views();
        let plan = self.policy.on_rnr_expire(
            &RetransmitCtx {
                wrs: &views,
                now: env.now,
            },
            wait.psn,
            env.profile.damming,
        );
        self.execute_plan(ctx, env, fx, &plan);
        self.rearm_timer_if_needed(ctx, life, fx);
    }

    /// Handles one blind ODP retransmission tick for the stalled message
    /// with first PSN `psn`.
    pub(super) fn on_stall_tick(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        psn: Psn,
        gen: u64,
    ) {
        if life.is_error() {
            return;
        }
        let Some(idx) = self
            .recovery
            .stalls
            .iter()
            .position(|s| s.psn == psn && s.gen == gen)
        else {
            return;
        };
        let still_pending = self.sq.iter().any(|w| w.psn_first == psn && !w.is_done());
        if !still_pending {
            self.recovery.stalls.swap_remove(idx);
            return;
        }
        // Go-back-N: blind retransmission "regardless of the resolution
        // of the page fault" (§IV-A) — resend the request and re-tick.
        // Selective repeat never arms these ticks; a stray one neither
        // resends nor re-arms.
        let verdict = {
            let views = self.wr_views();
            self.policy.on_stall_tick(
                &RetransmitCtx {
                    wrs: &views,
                    now: env.now,
                },
                psn,
            )
        };
        if verdict.retransmit {
            self.execute_plan(ctx, env, fx, &RecoveryPlan::messages(vec![psn]));
        }
        if verdict.rearm {
            let delay = env.profile.odp_client_retx;
            let gen = self.recovery.stalls[idx].gen; // unchanged generation keeps ticking
            fx.timers.arm_stalls.push((psn, delay, gen));
        }
    }

    // ------------------------------------------------------------------
    // Retransmission
    // ------------------------------------------------------------------

    /// First PSN of the oldest not-yet-done transmitted message.
    fn lowest_pending_psn(&self) -> Psn {
        self.sq
            .iter()
            .find(|w| w.sent_segments > 0 && !w.is_done())
            .map(|w| w.psn_first)
            .unwrap_or(self.next_psn)
    }

    /// The narrow send-queue snapshot a [`RecoveryPolicy`] decides over.
    fn wr_views(&self) -> Vec<WrView> {
        self.sq
            .iter()
            .map(|w| WrView {
                psn_first: w.psn_first,
                psn_last: w.psn_last,
                sent: w.sent_segments > 0,
                done: w.is_done(),
                acked: w.acked,
                ghosted: w.ghosted,
            })
            .collect()
    }

    /// Executes a [`RecoveryPlan`] against the live send queue: walks the
    /// queue in posting order, resends every transmitted segment of each
    /// planned message (clearing its damming ghost flag — a recovery
    /// retransmission really goes on the wire), and accounts the
    /// retransmissions. Because plans are built from a send-queue-order
    /// view and executed in send-queue order, the go-back-N backend's
    /// packet stream is bit-identical to the pre-trait inlined loop.
    fn execute_plan(
        &mut self,
        ctx: &QpCtx,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        plan: &RecoveryPlan,
    ) {
        if plan.is_empty() {
            return;
        }
        let (peer_lid, peer_qpn) = ctx.peer_or_panic();
        let mtu = ctx.cfg.mtu;
        let mut retx = 0;
        for wqe in self.sq.iter_mut() {
            if wqe.is_done() || wqe.sent_segments == 0 {
                continue;
            }
            if !plan.retransmit.contains(&wqe.psn_first) {
                continue;
            }
            wqe.ghosted = false;
            for seg in 0..wqe.sent_segments {
                let pkt = build_request_packet(
                    env, ctx.lid, ctx.qpn, peer_lid, peer_qpn, wqe, seg, mtu, true,
                );
                fx.packets.push(pkt);
                retx += 1;
            }
        }
        self.stats.retransmissions += retx;
    }

    /// Fails all outstanding work and moves the QP to the error state.
    fn error_out(
        &mut self,
        ctx: &QpCtx,
        life: &mut Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        status: WcStatus,
    ) {
        life.set(QpState::Error);
        let mut first = true;
        while let Some(wqe) = self.sq.pop_front() {
            if wqe.is_done() {
                fx.completions.push(Completion {
                    wr_id: wqe.id,
                    qpn: ctx.qpn,
                    status: WcStatus::Success,
                    opcode: wqe.wc_opcode(),
                    bytes: wqe.op.len(),
                    at: env.now,
                });
                continue;
            }
            fx.completions.push(Completion {
                wr_id: wqe.id,
                qpn: ctx.qpn,
                status: if first { status } else { WcStatus::WrFlushErr },
                opcode: wqe.wc_opcode(),
                bytes: 0,
                at: env.now,
            });
            first = false;
        }
        for s in &self.recovery.stalls {
            fx.timers.cancel_stalls.push(s.psn);
        }
        self.recovery.stalls.clear();
        if self.recovery.rnr_wait.take().is_some() {
            fx.timers.cancel_rnr = true;
        }
        self.tx_blocked.clear();
        if self.ack_gen != 0 {
            self.ack_gen = 0;
            fx.timers.cancel_ack = true;
        }
        fx.timers.arm_ack = None;
        self.timer_gen += 1; // invalidate everything in flight
    }

    // ------------------------------------------------------------------
    // Page events
    // ------------------------------------------------------------------

    /// A local source page became usable: unblock transmission if this
    /// was the last blocking page, then offer the recovery backend its
    /// fault-resolution event for any active ODP stalls. Go-back-N
    /// returns the empty plan (its hardware is deaf to resolution — the
    /// blind tick is the only resume path), so this stays a no-op on the
    /// golden traces; selective repeat resumes stalled messages here,
    /// event-driven, which is what removes the flood's blind-retransmit
    /// amplification.
    pub(super) fn page_ready(
        &mut self,
        ctx: &QpCtx,
        life: &Lifecycle,
        env: &mut QpEnv<'_>,
        fx: &mut Effects,
        mr: MrKey,
        page: usize,
    ) {
        if self.tx_blocked.remove(&(mr, page)) && self.tx_blocked.is_empty() {
            self.pump(ctx, life, env, fx);
        }
        if self.recovery.stalls.is_empty() {
            return;
        }
        // Offer only the stalls this resolution actually unblocks: a
        // stall waiting on a different page would just be discarded and
        // re-stalled if resent now. Stalls with no recorded page (the
        // gate could not tell) are always offered.
        let stalled: Vec<Psn> = self
            .recovery
            .stalls
            .iter()
            .filter(|s| s.blocked_on.is_none_or(|b| b == (mr, page)))
            .map(|s| s.psn)
            .collect();
        if stalled.is_empty() {
            return;
        }
        let plan = {
            let views = self.wr_views();
            self.policy.on_fault_resolved(
                &RetransmitCtx {
                    wrs: &views,
                    now: env.now,
                },
                &stalled,
            )
        };
        if plan.is_empty() {
            return;
        }
        self.recovery
            .stalls
            .retain(|s| !plan.retransmit.contains(&s.psn));
        self.execute_plan(ctx, env, fx, &plan);
        self.rearm_timer_if_needed(ctx, life, fx);
    }
}
